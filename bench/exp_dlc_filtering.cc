// E6 — Hierarchical DLC message filtering (paper §4.2.1).
//
// Paper: with a per-client Display Lock Client, "a database object is
// display-locked at the DLM only once, no matter how many local displays
// depend on it. Also, the DLM has to send only one update notification to
// the client no matter how many of the client's displays are affected" —
// vs the rejected design where each display is its own DLM client.

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

void RunRow(bool hierarchical, int displays, double overlap, Table* table,
            bool batched = false) {
  NmsConfig net;
  net.num_nodes = 32;
  Testbed tb = MakeTestbed({}, net);

  auto viewer = tb.dep().NewSession(
      100, {}, DlcOptions{.hierarchical = hierarchical});
  const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);

  // Each display shows `kPerView` links; a fraction `overlap` of them is a
  // common shared set, the rest are private to the display.
  constexpr int kPerView = 8;
  int shared = static_cast<int>(kPerView * overlap);
  size_t next_private = shared;
  if (batched) viewer->dlc().BeginLockBatch();
  for (int d = 0; d < displays; ++d) {
    ActiveView* view = viewer->CreateView("display-" + std::to_string(d));
    for (int i = 0; i < shared; ++i) {
      (void)view->Materialize(dc, {tb.db.link_oids[i]});
    }
    for (int i = shared; i < kPerView; ++i) {
      (void)view->Materialize(
          dc, {tb.db.link_oids[next_private++ % tb.db.link_oids.size()]});
    }
  }
  if (batched) (void)viewer->dlc().EndLockBatch();

  // A writer updates every shared link once.
  auto writer = tb.dep().NewSession(50);
  uint64_t notify_before = tb.dep().bus().messages_sent();
  for (int i = 0; i < shared; ++i) {
    (void)UpdateUtilization(&writer->client(), tb.db.link_oids[i], 0.5);
  }
  viewer->PumpOnce();
  uint64_t notifications = tb.dep().bus().messages_sent() - notify_before;

  std::string design = hierarchical
                           ? (batched ? "DLC + batched open" : "DLC (paper)")
                           : "per-display clients";
  table->AddRow({design, FmtInt(displays), Fmt("%.0f%%", overlap * 100),
                 FmtInt(viewer->dlc().remote_lock_requests()),
                 FmtInt(notifications),
                 Fmt("%.2f", shared ? static_cast<double>(notifications) / shared
                                    : 0.0)});
}

void Run() {
  Banner("E6", "hierarchical DLC message filtering",
         "one DLM lock request and one notification per client per commit, "
         "regardless of how many displays depend on the object");
  Table table({"design", "displays", "overlap", "lock msgs to DLM",
               "notify msgs", "notify/commit"});
  for (double overlap : {1.0, 0.5}) {
    for (int displays : {1, 2, 4, 8}) {
      RunRow(/*hierarchical=*/true, displays, overlap, &table);
    }
    for (int displays : {1, 2, 4, 8}) {
      RunRow(/*hierarchical=*/false, displays, overlap, &table);
    }
    for (int displays : {1, 8}) {
      RunRow(/*hierarchical=*/true, displays, overlap, &table, /*batched=*/true);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: with the DLC, lock traffic grows only with the\n"
      "number of DISTINCT objects and notifications stay at 1 per commit;\n"
      "per-display clients multiply both by the display count on shared\n"
      "objects.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
