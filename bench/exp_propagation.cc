// E1 — Update propagation latency (paper §4.3).
//
// Paper: "the actual time between an update commit to the database and its
// appearance on all relevant displays was in the order of 1 to 2 seconds";
// the lazy path exchanges "at least three network messages" after the
// commit (DLM notification, client fetch request, server reply); an eager
// variant that ships objects with the notification "could eliminate two of
// the three messages".
//
// This binary sweeps protocol x viewer count and reports commit->screen
// propagation in calibrated virtual milliseconds plus messages per update.

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

struct Config {
  std::string label;
  DlmOptions dlm;
};

void RunRow(const Config& config, int viewers, Table* table) {
  DeploymentOptions dopts;
  dopts.dlm = config.dlm;
  NmsConfig net;
  net.num_nodes = 16;
  net.sites = 1;
  Testbed tb = MakeTestbed(dopts, net);

  // Viewer clients, each displaying the same 10 links.
  std::vector<std::unique_ptr<InteractiveSession>> sessions;
  std::vector<ActiveView*> views;
  const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);
  for (int v = 0; v < viewers; ++v) {
    auto session = tb.dep().NewSession(100 + v);
    ActiveView* view = session->CreateView("links");
    for (int i = 0; i < 10; ++i) {
      (void)view->Materialize(dc, {tb.db.link_oids[i]});
    }
    views.push_back(view);
    sessions.push_back(std::move(session));
  }
  auto writer = tb.dep().NewSession(50);

  uint64_t notify_before = tb.dep().bus().messages_sent();
  uint64_t rpc_msgs_before = tb.dep().meter().messages();

  const int kUpdates = 40;
  Rng rng(1);
  for (int u = 0; u < kUpdates; ++u) {
    Oid oid = tb.db.link_oids[rng.NextBelow(10)];
    Status st = UpdateUtilization(&writer->client(), oid, rng.NextDouble());
    if (!st.ok()) continue;
    for (auto& s : sessions) s->PumpOnce();
  }

  double mean = 0, p95 = 0, max_ms = 0;
  uint64_t count = 0;
  for (ActiveView* view : views) {
    mean += view->propagation_ms().mean();
    p95 = std::max(p95, view->propagation_ms().Percentile(0.95));
    max_ms = std::max(max_ms, view->propagation_ms().max());
    count += view->propagation_ms().count();
  }
  mean /= views.size();
  double notify_per_update =
      static_cast<double>(tb.dep().bus().messages_sent() - notify_before) /
      kUpdates;
  double rpc_per_update =
      static_cast<double>(tb.dep().meter().messages() - rpc_msgs_before) /
      kUpdates;

  table->AddRow({config.label, FmtInt(viewers), FmtInt(count),
                 Fmt("%.0f", mean), Fmt("%.0f", p95), Fmt("%.0f", max_ms),
                 Fmt("%.1f", notify_per_update), Fmt("%.1f", rpc_per_update)});
}

void Run() {
  Banner("E1", "update propagation latency",
         "lazy path = 3 messages after commit, 1-2 s end-to-end; eager "
         "shipping eliminates 2 of the 3; integrated server saves the agent "
         "hops");
  Table table({"protocol", "viewers", "samples", "mean_ms", "p95_ms", "max_ms",
               "notify_msgs/upd", "rpc_msgs/upd"});
  std::vector<Config> configs = {
      {"lazy agent (paper)", {NotifyProtocol::kPostCommit, false, false}},
      {"eager agent", {NotifyProtocol::kPostCommit, true, false}},
      {"lazy integrated", {NotifyProtocol::kPostCommit, false, true}},
      {"eager integrated", {NotifyProtocol::kPostCommit, true, true}},
  };
  for (const auto& config : configs) {
    for (int viewers : {1, 2, 4, 8}) {
      RunRow(config, viewers, &table);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: lazy-agent mean in the paper's 1-2 s band; eager cuts\n"
      "the fetch round trip (~2 message hops + disk); integrated cuts the two\n"
      "agent hops; latency roughly flat in viewer count (per-client fan-out\n"
      "dispatch only).\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
