// E10 — Cost-model sensitivity ablation (DESIGN.md): how the paper's
// propagation numbers move across network eras, holding the protocol
// fixed. Shows (a) which design conclusions are era-independent (message
// COUNTS, protocol orderings) and (b) that the 1-2 s absolute number is a
// property of the 1996 stack, not of display locking.

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

struct Era {
  std::string label;
  CostModelOptions cost;
};

std::vector<Era> Eras() {
  Era paper;  // defaults: calibrated 1996 campus LAN + agent stack
  paper.label = "1996 LAN (paper)";

  Era y2005;
  y2005.label = "2005 switched LAN";
  y2005.cost.message_base = 5 * kVMillisecond;
  y2005.cost.network_bandwidth_bps = 125'000'000;  // 1 Gbit
  y2005.cost.disk_seek = 8 * kVMillisecond;
  y2005.cost.disk_page_transfer = 100;  // 0.1 ms
  y2005.cost.server_request_cpu = 300;
  y2005.cost.display_refresh_cpu = 1 * kVMillisecond;
  y2005.cost.notification_dispatch_cpu = 100;

  Era modern;
  modern.label = "modern DC + SSD";
  modern.cost.message_base = 200;  // 0.2 ms RPC
  modern.cost.network_bandwidth_bps = 1'250'000'000;  // 10 Gbit
  modern.cost.disk_seek = 100;     // SSD
  modern.cost.disk_page_transfer = 10;
  modern.cost.server_request_cpu = 50;
  modern.cost.display_refresh_cpu = 200;
  modern.cost.notification_dispatch_cpu = 20;
  return {paper, y2005, modern};
}

void RunRow(const Era& era, bool eager, Table* table) {
  DeploymentOptions dopts;
  dopts.cost = era.cost;
  dopts.dlm.eager_shipping = eager;
  NmsConfig net;
  net.num_nodes = 16;
  net.sites = 1;
  Testbed tb = MakeTestbed(dopts, net);

  auto viewer = tb.dep().NewSession(100);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);
  for (int i = 0; i < 10; ++i) {
    (void)view->Materialize(dc, {tb.db.link_oids[i]});
  }
  auto writer = tb.dep().NewSession(50);
  uint64_t msgs0 = tb.dep().bus().messages_sent() + tb.dep().meter().messages();

  Rng rng(1);
  const int kUpdates = 30;
  for (int u = 0; u < kUpdates; ++u) {
    (void)UpdateUtilization(&writer->client(), tb.db.link_oids[rng.NextBelow(10)],
                            rng.NextDouble());
    viewer->PumpOnce();
  }
  double msgs_per_update =
      static_cast<double>(tb.dep().bus().messages_sent() +
                          tb.dep().meter().messages() - msgs0) /
      kUpdates;
  table->AddRow({era.label, eager ? "eager" : "lazy",
                 Fmt("%.1f", view->propagation_ms().mean()),
                 Fmt("%.1f", view->propagation_ms().Percentile(0.95)),
                 Fmt("%.1f", msgs_per_update)});
}

void Run() {
  Banner("E10", "cost-model era ablation",
         "the 1-2 s absolute latency is a property of the 1996 stack; the "
         "protocol structure (message counts, lazy>eager ordering) is "
         "era-independent");
  Table table({"era", "protocol", "propagation mean ms", "p95 ms",
               "msgs/update"});
  for (const Era& era : Eras()) {
    RunRow(era, /*eager=*/false, &table);
    RunRow(era, /*eager=*/true, &table);
  }
  table.Print();
  std::printf(
      "\nexpected shape: per-era absolute latencies span ~3 orders of\n"
      "magnitude, yet messages/update and the lazy-vs-eager gap structure\n"
      "are identical — confirming the reproduction's relative results do\n"
      "not depend on the 1996 calibration.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
