// M4 — Visualization layout microbenchmarks: Tree-Map and PDQ tree-browser
// layout costs (the client-side redraw work of §4's prototype).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "viz/pdq_tree.h"
#include "viz/treemap.h"

namespace idba {
namespace {

TreemapNode BuildHierarchy(int fanout, int depth, Rng& rng) {
  TreemapNode node;
  node.label = "n";
  if (depth == 0) {
    node.weight = 1.0 + rng.NextDouble() * 9;
    return node;
  }
  for (int i = 0; i < fanout; ++i) {
    node.children.push_back(BuildHierarchy(fanout, depth - 1, rng));
  }
  return node;
}

void BM_TreemapSliceAndDice(benchmark::State& state) {
  Rng rng(1);
  TreemapNode root = BuildHierarchy(4, static_cast<int>(state.range(0)), rng);
  Rect bounds{0, 0, 1024, 768};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayoutTreemap(root, bounds, {}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(root.TotalWeight()));
}
BENCHMARK(BM_TreemapSliceAndDice)->Arg(3)->Arg(5);

void BM_TreemapSquarified(benchmark::State& state) {
  Rng rng(1);
  TreemapNode root = BuildHierarchy(4, static_cast<int>(state.range(0)), rng);
  Rect bounds{0, 0, 1024, 768};
  TreemapOptions opts;
  opts.algorithm = TreemapAlgorithm::kSquarified;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayoutTreemap(root, bounds, opts));
  }
}
BENCHMARK(BM_TreemapSquarified)->Arg(3)->Arg(5);

PdqNode BuildPdq(int fanout, int depth, Rng& rng) {
  PdqNode node;
  node.label = "n";
  node.attributes["Utilization"] = rng.NextDouble();
  if (depth == 0) return node;
  for (int i = 0; i < fanout; ++i) {
    node.children.push_back(BuildPdq(fanout, depth - 1, rng));
  }
  return node;
}

void BM_PdqLayoutNoQueries(benchmark::State& state) {
  Rng rng(2);
  PdqNode root = BuildPdq(4, static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayoutPdqTree(root, {}));
  }
}
BENCHMARK(BM_PdqLayoutNoQueries)->Arg(3)->Arg(5);

void BM_PdqLayoutWithPruning(benchmark::State& state) {
  Rng rng(2);
  PdqNode root = BuildPdq(4, static_cast<int>(state.range(0)), rng);
  std::vector<DynamicQuery> queries = {
      {DynamicQuery::kAllLevels, "Utilization", 0.0, 0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayoutPdqTree(root, queries));
  }
}
BENCHMARK(BM_PdqLayoutWithPruning)->Arg(3)->Arg(5);

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
