// E9 — Detection-based vs avoidance-based cache consistency (paper §3.3).
//
// Paper: "Detection-based protocols, which allow stale copies of data to
// reside in the client's cache, are not suitable for display objects...
// The user interface, therefore, needs to be somehow notified on relevant
// data updates... This makes avoidance-based protocols more appropriate."
//
// Two measurements:
//  (a) Staleness: how much of a client's cached working set is stale after
//      a burst of remote updates — avoidance keeps it at zero by callback,
//      detection lets it rot silently (what a display must never do).
//  (b) Transaction behaviour under contention: detection converts
//      conflicts into commit-time validation aborts (optimistic), while
//      avoidance blocks/deadlocks (pessimistic). Both serialize correctly;
//      the display-relevant difference is (a).

#include <thread>

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

void RunStalenessRow(ConsistencyMode mode, int updates, Table* table) {
  NmsConfig net;
  net.num_nodes = 48;
  Testbed tb = MakeTestbed({}, net);
  DatabaseClientOptions copts;
  copts.consistency = mode;
  DatabaseClient viewer(&tb.dep().server(), 100, &tb.dep().meter(),
                        &tb.dep().bus(), copts);
  // Viewer caches every link (its "displayed" working set).
  for (Oid oid : tb.db.link_oids) (void)viewer.ReadCurrent(oid);
  size_t cached = viewer.cache().entry_count();

  // A remote writer updates a subset.
  auto writer = tb.dep().NewSession(50);
  Rng rng(5);
  for (int u = 0; u < updates; ++u) {
    (void)UpdateUtilization(&writer->client(),
                            tb.db.link_oids[rng.NextBelow(tb.db.link_oids.size())],
                            rng.NextDouble());
  }

  // Count stale cache entries against the server's heap.
  const SchemaCatalog& cat = tb.dep().server().schema();
  (void)cat;
  size_t stale = 0;
  for (Oid oid : tb.db.link_oids) {
    auto cached_copy = viewer.cache().Get(oid);
    if (!cached_copy.has_value()) continue;
    auto current = tb.dep().server().heap().Read(oid);
    if (current.ok() && current.value().version() != cached_copy->version()) {
      ++stale;
    }
  }
  table->AddRow({mode == ConsistencyMode::kAvoidance ? "avoidance (paper)"
                                                     : "detection",
                 FmtInt(cached), FmtInt(updates), FmtInt(stale),
                 Fmt("%.0f%%", cached ? 100.0 * stale / cached : 0)});
}

void RunContentionRow(ConsistencyMode mode, int clients, Table* table) {
  NmsConfig net;
  net.num_nodes = 8;
  Testbed tb = MakeTestbed({}, net);
  const SchemaCatalog& cat = tb.dep().server().schema();

  std::vector<std::unique_ptr<DatabaseClient>> workers;
  for (int c = 0; c < clients; ++c) {
    DatabaseClientOptions copts;
    copts.consistency = mode;
    workers.push_back(std::make_unique<DatabaseClient>(
        &tb.dep().server(), 100 + c, &tb.dep().meter(), &tb.dep().bus(), copts));
  }
  std::atomic<uint64_t> commits{0}, aborts{0};
  std::vector<std::thread> threads;
  for (auto& worker : workers) {
    threads.emplace_back([&, w = worker.get()] {
      Rng rng(reinterpret_cast<uintptr_t>(w));
      for (int i = 0; i < 150; ++i) {
        Oid oid = tb.db.link_oids[rng.NextBelow(4)];  // hot set of 4
        TxnId t = w->Begin();
        auto obj = w->Read(t, oid);
        if (!obj.ok()) {
          (void)w->Abort(t);
          aborts.fetch_add(1);
          continue;
        }
        DatabaseObject o = std::move(obj).value();
        (void)o.SetByName(cat, "CostMetric", int64_t(i));
        if (!w->Write(t, std::move(o)).ok()) {
          (void)w->Abort(t);
          aborts.fetch_add(1);
          continue;
        }
        if (w->Commit(t).ok()) {
          commits.fetch_add(1);
        } else {
          aborts.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t attempts = commits.load() + aborts.load();
  table->AddRow({mode == ConsistencyMode::kAvoidance ? "avoidance (paper)"
                                                     : "detection",
                 FmtInt(clients), FmtInt(attempts), FmtInt(commits.load()),
                 FmtInt(aborts.load()),
                 Fmt("%.1f%%", attempts ? 100.0 * aborts.load() / attempts : 0)});
}

void Run() {
  Banner("E9", "detection-based vs avoidance-based cache consistency",
         "detection-based protocols allow stale copies in the client cache "
         "and are therefore unsuitable for display objects");
  std::printf("(a) cached working-set staleness after remote updates:\n");
  Table staleness({"protocol", "cached objs", "remote updates", "stale",
                   "stale %"});
  for (int updates : {10, 40, 160}) {
    RunStalenessRow(ConsistencyMode::kAvoidance, updates, &staleness);
    RunStalenessRow(ConsistencyMode::kDetection, updates, &staleness);
  }
  staleness.Print();

  std::printf("\n(b) update transactions under contention (hot set of 4):\n");
  Table contention({"protocol", "clients", "attempts", "commits", "aborts",
                    "abort %"});
  for (int clients : {2, 4, 8}) {
    RunContentionRow(ConsistencyMode::kAvoidance, clients, &contention);
    RunContentionRow(ConsistencyMode::kDetection, clients, &contention);
  }
  contention.Print();
  std::printf(
      "\nexpected shape: (a) avoidance keeps staleness at exactly 0 (every\n"
      "remote copy is called back before the commit returns); detection's\n"
      "staleness grows with the update count — a display built on it shows\n"
      "wrong data until some validation event. (b) both families\n"
      "serialize updates; detection pays with validation aborts at commit,\n"
      "avoidance with blocking — the display-relevant difference is (a),\n"
      "which is why the paper builds display locks on avoidance.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
