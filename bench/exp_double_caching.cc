// E8 — Double caching ablation: display cache vs DB-cache-only GUI
// (paper §2.2 / §3.2).
//
// Paper: with database caching alone, applications "cannot 'pin' data
// there... the buffer manager may drop an object out of the buffer...
// As a result, a simple user action such as zooming or panning that
// involves that object may be unexpectedly delayed until it is brought
// back into the buffer." The display cache is "explicitly managed by the
// application... not affected either by DBMS policies and parameters or
// by other concurrent user accesses" — making interaction latency
// predictable.
//
// A user pans/zooms over a view of V links while the same client also runs
// a query workload (hardware scans) that churns its small DB cache.
// Interaction latency (virtual) is measured per user action.

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

void RunRow(bool use_display_cache, size_t db_cache_bytes, Table* table) {
  NmsConfig net;
  net.num_nodes = 48;
  net.sites = 2;
  net.racks_per_building = 3;
  Testbed tb = MakeTestbed({}, net);

  DatabaseClientOptions copts;
  copts.cache.capacity_bytes = db_cache_bytes;
  auto session = tb.dep().NewSession(100, copts);
  ClientApi& client = session->client();
  const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);
  const CostModel& cm = tb.dep().bus().cost_model();

  constexpr size_t kViewObjs = 24;
  ActiveView* view = session->CreateView("links");
  std::vector<Oid> shown;
  for (size_t i = 0; i < kViewObjs; ++i) {
    Oid oid = tb.db.link_oids[i];
    shown.push_back(oid);
    (void)view->Materialize(dc, {oid});
  }

  Histogram interaction_ms;
  Rng rng(11);
  const SchemaCatalog& cat = client.schema();
  for (int action = 0; action < 300; ++action) {
    // Background query work of the same application: scan some hardware
    // objects through the DB cache (this is what churns it).
    for (int q = 0; q < 8; ++q) {
      Oid hw = tb.db.all_hardware_oids[rng.NextBelow(
          tb.db.all_hardware_oids.size())];
      (void)client.ReadCurrent(hw);
    }
    // User action: pan/zoom touching 4 displayed elements.
    VTime start = client.clock().Now();
    for (int k = 0; k < 4; ++k) {
      Oid oid = shown[rng.NextBelow(shown.size())];
      if (use_display_cache) {
        // GUI state lives in the pinned display object: no DB access.
        DisplayObject* dob = view->display_objects()[0];
        for (DisplayObject* candidate : view->display_objects()) {
          if (candidate->sources()[0] == oid) dob = candidate;
        }
        (void)dob->Get("Utilization");
        (void)dob->Get("Color");
        client.clock().Advance(cm.NotificationDispatchCpu());
      } else {
        // Baseline GUI keeps only OIDs and re-derives from the DB cache —
        // subject to whatever the buffer manager kept around.
        auto obj = client.ReadCurrent(oid);
        if (obj.ok()) {
          (void)obj.value().GetByName(cat, "Utilization");
        }
        client.clock().Advance(cm.NotificationDispatchCpu());
      }
    }
    interaction_ms.Record(
        static_cast<double>(client.clock().Now() - start) / kVMillisecond);
  }

  table->AddRow({use_display_cache ? "display cache (paper)" : "DB cache only",
                 FmtInt(db_cache_bytes / 1024),
                 Fmt("%.0f", interaction_ms.Percentile(0.5)),
                 Fmt("%.0f", interaction_ms.Percentile(0.95)),
                 Fmt("%.0f", interaction_ms.Percentile(0.99)),
                 Fmt("%.0f", interaction_ms.max()),
                 FmtInt(client.cache().misses())});
}

void Run() {
  Banner("E8", "double caching vs DB-cache-only GUI (ablation)",
         "pinned display objects make interaction latency predictable; with "
         "DB caching alone, cache churn makes pans/zooms unexpectedly slow");
  Table table({"GUI design", "db cache KiB", "p50 ms", "p95 ms", "p99 ms",
               "max ms", "db misses"});
  for (size_t kib : {16, 64, 256}) {
    RunRow(/*use_display_cache=*/true, kib * 1024, &table);
    RunRow(/*use_display_cache=*/false, kib * 1024, &table);
  }
  table.Print();
  std::printf(
      "\nexpected shape: with the display cache, interaction latency is flat\n"
      "(sub-ms virtual CPU) at every DB-cache size. Without it, tail latency\n"
      "explodes when the DB cache is small (each touched object may need a\n"
      "server round trip + disk), and the variance is exactly the paper's\n"
      "'unexpected delays'.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
