// E7 — Periodic refresh vs display-lock notifications (paper §2.3).
//
// Paper: "the straightforward approach of periodically refreshing the user
// interfaces is not considered acceptable, since it may cause excessive
// overhead."
//
// Compares, for a viewer over V displayed links while updates arrive at
// rate r (updates per virtual second), the VIEWER-side consistency traffic
// (the writer's own update transactions cost the same in every scheme and
// are excluded):
//  - notify: display locks + post-commit notifications (this paper) —
//    measured as the traffic delta between runs with and without the
//    viewer, scaled by r;
//  - poll naive(T): the strawman — every T the GUI re-fetches each of its
//    V objects (what a 1996 GUI without server-side change tracking does);
//  - poll validate(T): a generous batched baseline — one round trip per
//    period carrying V (oid, version) pairs, returning changed images.

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

struct Traffic {
  double msgs = 0;
  double bytes = 0;
};

Traffic MeasureUpdateTraffic(size_t view_objs, bool with_viewer,
                             double* staleness_ms) {
  NmsConfig net;
  net.num_nodes = 64;
  Testbed tb = MakeTestbed({}, net);
  std::unique_ptr<InteractiveSession> viewer;
  ActiveView* view = nullptr;
  if (with_viewer) {
    viewer = tb.dep().NewSession(100);
    view = viewer->CreateView("links");
    const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);
    for (size_t i = 0; i < view_objs; ++i) {
      (void)view->Materialize(dc,
                              {tb.db.link_oids[i % tb.db.link_oids.size()]});
    }
  }
  auto writer = tb.dep().NewSession(50);

  const int kUpdates = 40;
  uint64_t msgs0 = tb.dep().bus().messages_sent() + tb.dep().meter().messages();
  uint64_t bytes0 = tb.dep().bus().bytes_sent() + tb.dep().meter().bytes();
  Rng rng(7);
  for (int u = 0; u < kUpdates; ++u) {
    (void)UpdateUtilization(&writer->client(),
                            tb.db.link_oids[rng.NextBelow(view_objs)],
                            rng.NextDouble());
    if (viewer) viewer->PumpOnce();
  }
  Traffic t;
  t.msgs = static_cast<double>(tb.dep().bus().messages_sent() +
                               tb.dep().meter().messages() - msgs0) /
           kUpdates;
  t.bytes = static_cast<double>(tb.dep().bus().bytes_sent() +
                                tb.dep().meter().bytes() - bytes0) /
            kUpdates;
  if (view != nullptr && staleness_ms != nullptr) {
    *staleness_ms = view->propagation_ms().mean();
  }
  return t;
}

struct PollCost {
  double msgs_per_s;
  double bytes_per_s;
  double staleness_ms;
};

PollCost MeasurePoll(size_t view_objs, double period_s,
                     double update_rate_per_s, bool naive) {
  NmsConfig net;
  net.num_nodes = 64;
  Testbed tb = MakeTestbed({}, net);
  const CostModel& cm = tb.dep().bus().cost_model();
  auto probe = tb.dep().NewSession(50);
  auto link = probe->client().ReadCurrent(tb.db.link_oids[0]).value();
  double obj_bytes = static_cast<double>(link.WireBytes());
  double polls_per_s = 1.0 / period_s;
  PollCost cost;
  double round_trip_ms;
  if (naive) {
    // Re-fetch every displayed object, one request/reply per object.
    cost.msgs_per_s = 2.0 * static_cast<double>(view_objs) * polls_per_s;
    cost.bytes_per_s =
        static_cast<double>(view_objs) * (40 + obj_bytes) * polls_per_s;
    // The refresh itself completes after V serialized fetches.
    round_trip_ms = static_cast<double>(cm.MessageCost(40) +
                                        cm.MessageCost(static_cast<int64_t>(
                                            obj_bytes))) /
                    kVMillisecond;
  } else {
    // One batched validation round trip per period.
    double changed = std::min<double>(static_cast<double>(view_objs),
                                      update_rate_per_s * period_s);
    double req_bytes = 32 + 16.0 * static_cast<double>(view_objs);
    double resp_bytes = 32 + changed * obj_bytes;
    cost.msgs_per_s = 2 * polls_per_s;
    cost.bytes_per_s = (req_bytes + resp_bytes) * polls_per_s;
    round_trip_ms = static_cast<double>(
                        cm.MessageCost(static_cast<int64_t>(req_bytes)) +
                        cm.MessageCost(static_cast<int64_t>(resp_bytes))) /
                    kVMillisecond;
  }
  cost.staleness_ms = period_s * 1000 / 2 + round_trip_ms;
  return cost;
}

void Run() {
  Banner("E7", "periodic refresh (strawman) vs display-lock notifications",
         "periodic refresh causes excessive overhead; notifications cost "
         "traffic only when something actually changes");
  Table table({"scheme", "view objs", "upd/s", "msgs/s", "KB/s",
               "staleness ms"});
  for (size_t view_objs : {32, 128}) {
    double staleness = 0;
    Traffic with_viewer = MeasureUpdateTraffic(view_objs, true, &staleness);
    Traffic writer_only = MeasureUpdateTraffic(view_objs, false, nullptr);
    double msgs_per_update = with_viewer.msgs - writer_only.msgs;
    double bytes_per_update = with_viewer.bytes - writer_only.bytes;
    for (double rate : {0.5, 4.0}) {
      table.AddRow({"notify (paper)", FmtInt(view_objs), Fmt("%.1f", rate),
                    Fmt("%.1f", msgs_per_update * rate),
                    Fmt("%.2f", bytes_per_update * rate / 1024),
                    Fmt("%.0f", staleness)});
      for (double period : {1.0, 5.0, 30.0}) {
        PollCost naive = MeasurePoll(view_objs, period, rate, true);
        table.AddRow({"poll naive T=" + Fmt("%.0fs", period),
                      FmtInt(view_objs), Fmt("%.1f", rate),
                      Fmt("%.1f", naive.msgs_per_s),
                      Fmt("%.2f", naive.bytes_per_s / 1024),
                      Fmt("%.0f", naive.staleness_ms)});
      }
      PollCost validate = MeasurePoll(view_objs, 5.0, rate, false);
      table.AddRow({"poll validate T=5s", FmtInt(view_objs), Fmt("%.1f", rate),
                    Fmt("%.1f", validate.msgs_per_s),
                    Fmt("%.2f", validate.bytes_per_s / 1024),
                    Fmt("%.0f", validate.staleness_ms)});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: notify costs ~3-5 viewer-side messages PER UPDATE\n"
      "and holds staleness at the fixed 1-2 s propagation latency. Naive\n"
      "periodic refresh pays 2V messages and V full objects PER PERIOD even\n"
      "when nothing changed — at T=1 s and V=128 that is two orders of\n"
      "magnitude more traffic than notify at 0.5 upd/s (the paper's\n"
      "'excessive overhead'); stretching T to recover bandwidth pushes\n"
      "staleness to T/2 >> the notify propagation time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
