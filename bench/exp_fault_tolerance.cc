// T1 — Transport failure handling: deadlines, injected faults, reconnect.
//
// The 1996 paper assumes a LAN that never fails; a reproduction that runs
// client and server in separate processes cannot. This experiment
// demonstrates the failure-handling layer's three guarantees over real
// loopback TCP:
//
//   1. bounded stalls — RPCs against a stalled server return TimedOut
//      within rpc_deadline_ms instead of hanging the interactive client;
//   2. measured degradation — injected per-frame delays surface as
//      exactly-that-much-slower calls (the injector is honest);
//   3. resumability — a killed-and-restarted server transport is survived
//      by Reconnect(), and the workload completes with object state
//      identical to a never-interrupted run.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/exp_common.h"
#include "net/fault_injector.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"

namespace idba {
namespace bench {
namespace {

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Mean latency of `n` Begin+Abort round-trip pairs, in microseconds.
double MeanRpcUs(RemoteDatabaseClient* client, int n) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    Result<TxnId> t = client->BeginTxn();
    if (!t.ok()) return -1;
    (void)client->Abort(t.value());
  }
  return static_cast<double>(ElapsedUs(start)) / (2.0 * n);
}

std::vector<std::pair<uint64_t, Value>> Fingerprint(ClientApi* client,
                                                    const NmsDatabase& db) {
  std::vector<std::pair<uint64_t, Value>> out;
  for (Oid oid : db.link_oids) {
    DatabaseObject obj = client->ReadCurrent(oid).value();
    out.emplace_back(obj.version(),
                     obj.GetByName(client->schema(), "Utilization").value());
  }
  return out;
}

void Run() {
  Banner("T1", "transport failure handling over loopback TCP",
         "not in the paper — infrastructure the out-of-process reproduction "
         "needs: bounded stalls, honest fault injection, reconnect parity");

  NmsConfig net;
  net.num_nodes = 16;

  // --- 1+2: latency under injected delay, and bounded stalls -------------
  {
    Testbed tb = MakeTestbed({}, net);
    TransportServer transport(&tb.dep().server(), &tb.dep().dlm(),
                              &tb.dep().bus(), &tb.dep().meter());
    if (!transport.Start().ok()) {
      std::printf("FAIL: transport did not start\n");
      return;
    }
    RemoteClientOptions copts;
    copts.rpc_deadline_ms = 200;
    auto client = RemoteDatabaseClient::Connect("127.0.0.1", transport.port(),
                                                1, copts)
                      .value();
    auto faults = std::make_shared<FaultInjector>();
    client->set_fault_injector(faults);

    Table table({"scenario", "rpcs", "mean us/rpc", "outcome"});
    const int kRpcs = 500;
    double base_us = MeanRpcUs(client.get(), kRpcs);
    table.AddRow({"healthy loopback (baseline)", FmtInt(2 * kRpcs),
                  Fmt("%.1f", base_us), "OK"});

    for (int delay_ms : {1, 5}) {
      faults->Reset();
      faults->InjectAll(FaultDirection::kWrite, FaultKind::kDelay, delay_ms);
      double us = MeanRpcUs(client.get(), 50);
      faults->Reset();
      table.AddRow({"+" + FmtInt(delay_ms) + " ms injected write delay",
                    FmtInt(100), Fmt("%.1f", us),
                    us >= delay_ms * 1000.0 ? "OK (delay visible)"
                                            : "FAIL (delay not visible)"});
    }

    // Stall: responses vanish. Every call must come back TimedOut within
    // the deadline (plus scheduling slack), never hang.
    faults->InjectAll(FaultDirection::kRead, FaultKind::kDrop);
    const int kStalled = 5;
    bool all_timed_out = true;
    int64_t worst_us = 0;
    for (int i = 0; i < kStalled; ++i) {
      auto start = std::chrono::steady_clock::now();
      Status st = client->BeginTxn().status();
      worst_us = std::max(worst_us, ElapsedUs(start));
      all_timed_out = all_timed_out && st.IsTimedOut();
    }
    faults->Reset();
    table.AddRow({"stalled server (responses dropped)", FmtInt(kStalled),
                  Fmt("%.0f", static_cast<double>(worst_us)),
                  all_timed_out && worst_us < 1000 * 1000
                      ? "OK (TimedOut within deadline)"
                      : "FAIL"});
    table.Print();
    std::printf(
        "\nexpected shape: baseline tens of microseconds on loopback; each\n"
        "injected delay adds almost exactly its nominal cost; stalled calls\n"
        "return TimedOut in ~%lld ms, not hang.\n",
        static_cast<long long>(copts.rpc_deadline_ms));
  }

  // --- 3: kill the transport mid-workload, reconnect, finish -------------
  {
    Testbed tb = MakeTestbed({}, net);
    auto transport = std::make_unique<TransportServer>(
        &tb.dep().server(), &tb.dep().dlm(), &tb.dep().bus(),
        &tb.dep().meter());
    if (!transport->Start().ok()) {
      std::printf("FAIL: transport did not start\n");
      return;
    }
    uint16_t port = transport->port();
    auto client =
        RemoteDatabaseClient::Connect("127.0.0.1", port, 1).value();

    size_t half = tb.db.link_oids.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      (void)UpdateUtilization(client.get(), tb.db.link_oids[i],
                              0.1 * (i % 9 + 1));
    }
    // Server "crash": the transport dies with the client mid-session.
    transport->Stop();
    TransportServerOptions topts;
    topts.port = port;
    transport = std::make_unique<TransportServer>(
        &tb.dep().server(), &tb.dep().dlm(), &tb.dep().bus(),
        &tb.dep().meter(), topts);
    if (!transport->Start().ok()) {
      std::printf("FAIL: transport restart did not bind port %u\n", port);
      return;
    }
    auto start = std::chrono::steady_clock::now();
    Status st = client->Reconnect();
    int64_t reconnect_us = ElapsedUs(start);
    if (!st.ok()) {
      std::printf("FAIL: Reconnect: %s\n", st.ToString().c_str());
      return;
    }
    for (size_t i = half; i < tb.db.link_oids.size(); ++i) {
      (void)UpdateUtilization(client.get(), tb.db.link_oids[i],
                              0.1 * (i % 9 + 1));
    }
    auto interrupted_fp = Fingerprint(client.get(), tb.db);

    // Control: identical workload, never interrupted.
    Testbed control = MakeTestbed({}, net);
    TransportServer ctl_transport(&control.dep().server(),
                                  &control.dep().dlm(), &control.dep().bus(),
                                  &control.dep().meter());
    (void)ctl_transport.Start();
    auto ctl_client = RemoteDatabaseClient::Connect(
                          "127.0.0.1", ctl_transport.port(), 1)
                          .value();
    for (size_t i = 0; i < control.db.link_oids.size(); ++i) {
      (void)UpdateUtilization(ctl_client.get(), control.db.link_oids[i],
                              0.1 * (i % 9 + 1));
    }
    auto control_fp = Fingerprint(ctl_client.get(), control.db);

    std::printf(
        "\nkill-and-reconnect: reconnected in %.1f ms (%llu reconnects), "
        "workload %s a never-interrupted run (%zu objects compared)\n",
        reconnect_us / 1000.0,
        static_cast<unsigned long long>(client->reconnects()),
        interrupted_fp == control_fp ? "MATCHES" : "DIVERGES FROM",
        interrupted_fp.size());
  }
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
