// M1 — Lock manager microbenchmarks: the per-operation costs behind E3's
// "very small fraction of overhead" claim.

#include <benchmark/benchmark.h>

#include "txn/lock_manager.h"

namespace idba {
namespace {

void BM_LockUnlockS(benchmark::State& state) {
  LockManager lm;
  uint64_t i = 0;
  for (auto _ : state) {
    Oid oid(i % 1024 + 1);
    benchmark::DoNotOptimize(lm.Lock(1, oid, LockMode::kS));
    benchmark::DoNotOptimize(lm.Unlock(1, oid));
    ++i;
  }
}
BENCHMARK(BM_LockUnlockS);

void BM_LockUnlockX(benchmark::State& state) {
  LockManager lm;
  uint64_t i = 0;
  for (auto _ : state) {
    Oid oid(i % 1024 + 1);
    benchmark::DoNotOptimize(lm.Lock(1, oid, LockMode::kX));
    benchmark::DoNotOptimize(lm.Unlock(1, oid));
    ++i;
  }
}
BENCHMARK(BM_LockUnlockX);

void BM_DisplayLockUnlock(benchmark::State& state) {
  LockManager lm;
  uint64_t i = 0;
  for (auto _ : state) {
    Oid oid(i % 1024 + 1);
    benchmark::DoNotOptimize(lm.Lock(100, oid, LockMode::kD));
    benchmark::DoNotOptimize(lm.Unlock(100, oid));
    ++i;
  }
}
BENCHMARK(BM_DisplayLockUnlock);

// X grant on an object already display-locked by N clients — the exact
// extra work a commit pays per display-locked object.
void BM_XLockWithDisplayHolders(benchmark::State& state) {
  LockManager lm;
  const int holders = static_cast<int>(state.range(0));
  Oid oid(1);
  for (int h = 0; h < holders; ++h) {
    (void)lm.Lock(100 + h, oid, LockMode::kD);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.Lock(1, oid, LockMode::kX));
    benchmark::DoNotOptimize(lm.Unlock(1, oid));
  }
}
BENCHMARK(BM_XLockWithDisplayHolders)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_DisplayHolderLookup(benchmark::State& state) {
  LockManager lm;
  const int holders = static_cast<int>(state.range(0));
  Oid oid(1);
  for (int h = 0; h < holders; ++h) {
    (void)lm.Lock(100 + h, oid, LockMode::kD);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.DisplayLockHolders(oid));
  }
}
BENCHMARK(BM_DisplayHolderLookup)->Arg(1)->Arg(16)->Arg(64);

void BM_ReleaseAll(benchmark::State& state) {
  LockManager lm;
  const int locks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < locks; ++i) (void)lm.Lock(1, Oid(i + 1), LockMode::kS);
    state.ResumeTiming();
    lm.ReleaseAll(1);
  }
}
BENCHMARK(BM_ReleaseAll)->Arg(16)->Arg(256);

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
