// Recovery-time benchmark: how long a restart's WAL replay takes as
// committed history grows, with and without online fuzzy checkpointing.
//
// Without checkpoints the WAL holds every record since the database was
// created, so replay cost grows linearly with history. With the
// checkpointer sweeping dirty pages and truncating the log, replay is
// bounded by WAL-since-last-checkpoint and the restart-time curve goes
// flat — the headline claim of DESIGN.md §14.
//
// Each iteration re-runs recovery against a byte-identical crash image
// (the replayed pool is dropped without flushing), so the measurement is
// the pure scan+redo cost over MemDisks — deterministic and fsync-free,
// which keeps it stable enough for run_bench.py's regression gate.

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "server/database_server.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/heap_store.h"
#include "txn/recovery.h"

namespace idba {
namespace {

struct CrashImage {
  MemDisk data;
  MemDisk wal;
};

/// Commits `commits` single-insert transactions (checkpointing every
/// `checkpoint_every` when > 0), then crashes: unswept pool frames are
/// dropped so only checkpointed pages reach the data disk.
void BuildHistory(CrashImage* img, int commits, int checkpoint_every) {
  DatabaseServer server(&img->data, &img->wal, 0, {});
  ClassId cls = server.schema().DefineClass("Item").value();
  (void)server.schema().AddAttribute(cls, "Value", ValueType::kInt);
  for (int i = 1; i <= commits; ++i) {
    TxnId t = server.Begin(0);
    Oid oid = server.AllocateOid();
    DatabaseObject obj(oid, cls, 1);
    obj.Set(0, Value(static_cast<int64_t>(i)));
    (void)server.Insert(0, t, std::move(obj), nullptr);
    (void)server.Commit(0, t, nullptr);
    if (checkpoint_every > 0 && i % checkpoint_every == 0) {
      (void)server.FuzzyCheckpoint();
    }
  }
  server.buffer_pool().DropAllNoFlush();
}

void BM_Recovery(benchmark::State& state, int checkpoint_every) {
  const int commits = static_cast<int>(state.range(0));
  CrashImage img;
  BuildHistory(&img, commits, checkpoint_every);
  RecoveryStats last{};
  for (auto _ : state) {
    BufferPool pool(&img.data, {.frame_count = 4096});
    auto heap = std::move(HeapStore::Open(&pool, img.data.PageCount()).value());
    Result<RecoveryStats> st = RecoverFromWal(&img.wal, heap.get());
    if (!st.ok()) {
      state.SkipWithError(st.status().ToString().c_str());
      break;
    }
    last = st.value();
    benchmark::DoNotOptimize(heap);
    pool.DropAllNoFlush();  // keep the crash image identical across iterations
  }
  state.counters["records_scanned"] = static_cast<double>(last.records_scanned);
  state.counters["redone_writes"] = static_cast<double>(last.redone_writes);
}

BENCHMARK_CAPTURE(BM_Recovery, no_checkpoint, 0)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Recovery, checkpoint_every_500, 500)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
