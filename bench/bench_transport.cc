// Transport microbenchmarks: real cost of the TCP loopback wire path vs
// the in-process function-call path, for the same logical operations. The
// virtual cost model charges both identically (that is the point of the
// meter); this measures the *wall-clock* overhead the wire adds — frame
// encode/decode, syscalls, thread handoffs — which bounds how much real
// concurrency an out-of-process experiment can drive.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/metrics.h"
#include "core/session.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"
#include "obs/audit.h"
#include "obs/profiler.h"

namespace idba {
namespace {

NmsConfig SmallNms() {
  NmsConfig config;
  config.num_nodes = 16;
  config.sites = 1;
  config.buildings_per_site = 1;
  config.racks_per_building = 1;
  config.devices_per_rack = 1;
  return config;
}

struct RemoteRig {
  RemoteRig() : deployment(DeploymentOptions{}) {
    db = PopulateNms(&deployment.server(), SmallNms()).value();
    transport = std::make_unique<TransportServer>(
        &deployment.server(), &deployment.dlm(), &deployment.bus(),
        &deployment.meter());
    if (!transport->Start().ok()) std::abort();
    client = RemoteDatabaseClient::Connect("127.0.0.1", transport->port(), 100)
                 .value();
  }
  ~RemoteRig() {
    client.reset();
    transport->Stop();
  }
  Deployment deployment;
  NmsDatabase db;
  std::unique_ptr<TransportServer> transport;
  std::unique_ptr<RemoteDatabaseClient> client;
};

struct LocalRig {
  LocalRig() : deployment(DeploymentOptions{}) {
    db = PopulateNms(&deployment.server(), SmallNms()).value();
    client = std::make_unique<DatabaseClient>(&deployment.server(), 100,
                                              &deployment.meter(),
                                              &deployment.bus());
  }
  Deployment deployment;
  NmsDatabase db;
  std::unique_ptr<DatabaseClient> client;
};

// --- Reactor-lag reporting ------------------------------------------------
// TCP benchmarks attach the p99 of net.loop.lag_us (Post()-to-run latency
// on the reactor, in µs) accumulated over the measurement as a counter, so
// run_bench.py can track reactor responsiveness alongside throughput.

double LoopLagP99Delta(const std::vector<uint64_t>& before,
                       const std::vector<uint64_t>& after) {
  uint64_t total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) total += after[b] - before[b];
  if (total == 0) return 0;
  const uint64_t target = (total * 99 + 99) / 100;  // ceil(total * 0.99)
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    cumulative += after[b] - before[b];
    if (cumulative >= target) return Histogram::BucketUpperBound(b);
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
}

class ScopedLoopLagCounter {
 public:
  explicit ScopedLoopLagCounter(benchmark::State& state)
      : state_(state),
        hist_(GlobalMetrics().GetHistogram("net.loop.lag_us")),
        before_(hist_->BucketCounts()) {}
  ~ScopedLoopLagCounter() {
    state_.counters["loop_lag_p99_us"] =
        LoopLagP99Delta(before_, hist_->BucketCounts());
  }

 private:
  benchmark::State& state_;
  Histogram* hist_;
  std::vector<uint64_t> before_;
};

/// RAII profiler-on window for the _Profiled benchmark variants, which
/// exist to measure the sampling overhead itself (run_bench.py gates the
/// profiled/unprofiled delta at 2%).
class ScopedProfiler {
 public:
  explicit ScopedProfiler(int hz) { ok_ = obs::GlobalProfiler().Start(hz); }
  ~ScopedProfiler() {
    if (ok_) obs::GlobalProfiler().Stop();
  }

 private:
  bool ok_ = false;
};

/// RAII consistency-auditor window for the _Audited benchmark variants:
/// track mode with the default staleness SLO, reset on exit so the other
/// benchmarks in the binary run with the hooks at their one-relaxed-load
/// cost. run_bench.py gates the audited/unaudited delta at 2%.
class ScopedAudit {
 public:
  ScopedAudit() {
    obs::GlobalAuditor().set_staleness_slo_us(100 * kVMillisecond);
    obs::GlobalAuditor().SetMode(obs::AuditMode::kTrack);
  }
  ~ScopedAudit() { obs::GlobalAuditor().ResetForTest(); }
};

// --- Read round trip ------------------------------------------------------
// One uncached object fetch per iteration (the cache is dropped each time
// so every read crosses the boundary).

void BM_ReadRoundTrip_Tcp(benchmark::State& state) {
  RemoteRig rig;
  ScopedLoopLagCounter lag(state);
  Oid oid = rig.db.link_oids.front();
  for (auto _ : state) {
    rig.client->cache().Drop(oid);
    auto obj = rig.client->ReadCurrent(oid);
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadRoundTrip_Tcp)->UseRealTime();

void BM_ReadRoundTrip_Tcp_Profiled(benchmark::State& state) {
  RemoteRig rig;
  ScopedProfiler prof(99);
  ScopedLoopLagCounter lag(state);
  Oid oid = rig.db.link_oids.front();
  for (auto _ : state) {
    rig.client->cache().Drop(oid);
    auto obj = rig.client->ReadCurrent(oid);
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadRoundTrip_Tcp_Profiled)->UseRealTime();

void BM_ReadRoundTrip_InProcess(benchmark::State& state) {
  LocalRig rig;
  Oid oid = rig.db.link_oids.front();
  for (auto _ : state) {
    rig.client->cache().Drop(oid);
    auto obj = rig.client->ReadCurrent(oid);
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadRoundTrip_InProcess)->UseRealTime();

// --- Cached read ----------------------------------------------------------
// Same call with a warm cache: the remote path answers locally too, so the
// two should converge — this is the double-caching argument in wall time.

void BM_CachedRead_Tcp(benchmark::State& state) {
  RemoteRig rig;
  Oid oid = rig.db.link_oids.front();
  (void)rig.client->ReadCurrent(oid);
  for (auto _ : state) {
    auto obj = rig.client->ReadCurrent(oid);
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedRead_Tcp)->UseRealTime();

void BM_CachedRead_InProcess(benchmark::State& state) {
  LocalRig rig;
  Oid oid = rig.db.link_oids.front();
  (void)rig.client->ReadCurrent(oid);
  for (auto _ : state) {
    auto obj = rig.client->ReadCurrent(oid);
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedRead_InProcess)->UseRealTime();

// --- Update transaction ---------------------------------------------------
// Begin, read-modify-write one link, commit. The commit path exercises the
// WAL + callback machinery on both backends.

template <typename Rig>
void RunUpdateTxn(Rig& rig, int* util) {
  Oid oid = rig.db.link_oids.front();
  TxnId txn = rig.client->Begin();
  auto obj = rig.client->Read(txn, oid);
  if (!obj.ok()) std::abort();
  DatabaseObject link = std::move(obj).value();
  if (!link.SetByName(rig.client->schema(), "Utilization",
                      Value(0.01 * (++*util % 100)))
           .ok()) {
    std::abort();
  }
  if (!rig.client->Write(txn, std::move(link)).ok()) std::abort();
  if (!rig.client->Commit(txn).ok()) std::abort();
}

void BM_UpdateTxn_Tcp(benchmark::State& state) {
  RemoteRig rig;
  ScopedLoopLagCounter lag(state);
  int util = 0;
  for (auto _ : state) RunUpdateTxn(rig, &util);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateTxn_Tcp)->UseRealTime();

void BM_UpdateTxn_Tcp_Profiled(benchmark::State& state) {
  RemoteRig rig;
  ScopedProfiler prof(99);
  ScopedLoopLagCounter lag(state);
  int util = 0;
  for (auto _ : state) RunUpdateTxn(rig, &util);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateTxn_Tcp_Profiled)->UseRealTime();

void BM_UpdateTxn_Tcp_Audited(benchmark::State& state) {
  RemoteRig rig;
  ScopedAudit audit;
  ScopedLoopLagCounter lag(state);
  int util = 0;
  for (auto _ : state) RunUpdateTxn(rig, &util);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateTxn_Tcp_Audited)->UseRealTime();

void BM_UpdateTxn_InProcess(benchmark::State& state) {
  LocalRig rig;
  int util = 0;
  for (auto _ : state) RunUpdateTxn(rig, &util);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateTxn_InProcess)->UseRealTime();

// --- Notify -> refresh pump -----------------------------------------------
// One commit against a display-locked object followed by one display pump:
// the full DLM fan-out -> DLC dispatch -> view refresh chain, which is the
// path every consistency-auditor hook sits on. The _Audited variant runs
// with the auditor in track mode; run_bench.py gates the delta at 2%,
// which is the ISSUE's audit-overhead budget on its hottest path.

struct ViewRig {
  ViewRig() : deployment(DeploymentOptions{}) {
    db = PopulateNms(&deployment.server(), SmallNms()).value();
    dcs = RegisterNmsDisplayClasses(&deployment.display_schema(),
                                    deployment.server().schema(), db.schema)
              .value();
    viewer = deployment.NewSession(100);
    writer = deployment.NewSession(101);
    view = viewer->CreateView("links");
    const DisplayClassDef* dc =
        deployment.display_schema().Find(dcs.color_coded_link);
    if (dc == nullptr) std::abort();
    if (!view->Materialize(dc, {db.link_oids.front()}).ok()) std::abort();
  }
  Deployment deployment;
  NmsDatabase db;
  NmsDisplayClasses dcs;
  std::unique_ptr<InteractiveSession> viewer;
  std::unique_ptr<InteractiveSession> writer;
  ActiveView* view = nullptr;
};

void RunNotifyRefresh(ViewRig& rig, int* util) {
  ClientApi* client = &rig.writer->client();
  Oid oid = rig.db.link_oids.front();
  TxnId txn = client->BeginTxn().value();
  auto obj = client->Read(txn, oid);
  if (!obj.ok()) std::abort();
  DatabaseObject link = std::move(obj).value();
  if (!link.SetByName(client->schema(), "Utilization",
                      Value(0.01 * (++*util % 100)))
           .ok()) {
    std::abort();
  }
  if (!client->Write(txn, std::move(link)).ok()) std::abort();
  if (!client->Commit(txn).ok()) std::abort();
  if (rig.viewer->PumpOnce() != 1) std::abort();
}

void BM_NotifyRefresh_InProcess(benchmark::State& state) {
  ViewRig rig;
  int util = 0;
  for (auto _ : state) RunNotifyRefresh(rig, &util);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifyRefresh_InProcess)->UseRealTime();

void BM_NotifyRefresh_InProcess_Audited(benchmark::State& state) {
  ViewRig rig;
  ScopedAudit audit;
  int util = 0;
  for (auto _ : state) RunNotifyRefresh(rig, &util);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifyRefresh_InProcess_Audited)->UseRealTime();

// --- Class scan -----------------------------------------------------------
// Bulk result marshaling: 16 links per scan over the wire vs by value.

void BM_ScanClass_Tcp(benchmark::State& state) {
  RemoteRig rig;
  for (auto _ : state) {
    auto links = rig.client->ScanClass(rig.db.schema.link);
    benchmark::DoNotOptimize(links);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScanClass_Tcp)->UseRealTime();

void BM_ScanClass_InProcess(benchmark::State& state) {
  LocalRig rig;
  for (auto _ : state) {
    auto links = rig.client->ScanClass(rig.db.schema.link);
    benchmark::DoNotOptimize(links);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScanClass_InProcess)->UseRealTime();

// --- NOTIFY fan-out -------------------------------------------------------
// One committed update fanned out to Arg(0) display-lock subscribers over
// real sockets; a frame is read back from every subscriber before the
// iteration ends. The per-update body is serialized once and shared across
// all connections (SharedBuf + writev), so cost per subscriber is a head
// encode + queue append, not a payload encode.

void BM_NotifyFanout_Tcp(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  RemoteRig rig;
  Oid hot = rig.db.link_oids.front();
  std::mutex write_mu;
  std::vector<Socket> subs;
  subs.reserve(subscribers);
  for (int i = 0; i < subscribers; ++i) {
    Socket sock =
        Socket::ConnectTo("127.0.0.1", rig.transport->port()).value();
    {
      std::vector<uint8_t> payload;
      Encoder enc(&payload);
      enc.PutU8(static_cast<uint8_t>(wire::Method::kHello));
      enc.PutI64(0);
      enc.PutU64(10000 + i);
      enc.PutU8(0);
      enc.PutU8(wire::kWireVersion);
      if (!sock.WriteFrame(write_mu, wire::FrameType::kRequest, 1, payload)
               .ok()) {
        std::abort();
      }
      wire::FrameHeader header;
      std::vector<uint8_t> reply;
      if (!sock.ReadFrame(&header, &reply).ok()) std::abort();
    }
    {
      std::vector<uint8_t> payload;
      Encoder enc(&payload);
      enc.PutU8(static_cast<uint8_t>(wire::Method::kDlmLock));
      enc.PutI64(0);
      enc.PutI64(0);
      enc.PutU64(10000 + i);
      enc.PutU64(hot.value);
      if (!sock.WriteFrame(write_mu, wire::FrameType::kRequest, 2, payload)
               .ok()) {
        std::abort();
      }
      wire::FrameHeader header;
      std::vector<uint8_t> reply;
      if (!sock.ReadFrame(&header, &reply).ok()) std::abort();
    }
    if (!subs.emplace_back(std::move(sock)).SetRecvTimeout(10000).ok()) {
      std::abort();
    }
  }
  int util = 0;
  for (auto _ : state) {
    RunUpdateTxn(rig, &util);
    for (Socket& sock : subs) {
      wire::FrameHeader header;
      std::vector<uint8_t> frame;
      if (!sock.ReadFrame(&header, &frame).ok()) std::abort();
    }
  }
  // Notifications delivered, not commits: this is a fan-out benchmark.
  state.SetItemsProcessed(state.iterations() * subscribers);
}
BENCHMARK(BM_NotifyFanout_Tcp)->Arg(8)->Arg(64)->Arg(256)->UseRealTime();

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
