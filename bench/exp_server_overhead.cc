// E3 — Server-side overhead of display locking (paper §4.3).
//
// Paper: "our tests indicated no effect of the server overhead for handling
// display locks. Extending the traditional locking mechanisms to include
// display locks will only contribute a very small fraction of overhead".
//
// Measures real (wall-clock) commit throughput through the server while
// the display-lock apparatus varies. Viewer clients run on other machines
// in the paper's deployment, so their refresh work must not be charged to
// the server: inboxes are drained without client-side processing. A final
// whole-system row (viewers refreshing in-process) is shown for context.

#include <atomic>
#include <chrono>
#include <thread>

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

double CommitsPerSecond(Testbed& tb, ClientApi* writer, int commits) {
  Rng rng(3);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < commits; ++i) {
    Oid oid = tb.db.link_oids[rng.NextBelow(tb.db.link_oids.size())];
    (void)UpdateUtilization(writer, oid, rng.NextDouble());
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return commits / elapsed;
}

struct Row {
  std::string label;
  int holders;       // display-lock holders per link
  bool integrated;   // D locks mirrored into the server lock manager
  bool full_refresh; // context row: viewers refresh on host CPU too
};

void Run() {
  Banner("E3", "server overhead of display-lock handling",
         "display locks contribute only a very small fraction of server "
         "overhead");
  Table table({"configuration", "locked objs", "holders", "commits/s",
               "us/commit", "delta us", "of 1996 commit"});

  const int kCommits = 20000;
  NmsConfig net;
  net.num_nodes = 64;

  double baseline_cps = 0;
  std::vector<Row> rows = {
      {"no display locks (baseline)", 0, false, false},
      {"agent DLM, 1 holder/obj", 1, false, false},
      {"agent DLM, 4 holders/obj", 4, false, false},
      {"agent DLM, 16 holders/obj", 16, false, false},
      {"integrated D locks, 4 holders/obj", 4, true, false},
      {"whole system, 4 viewers refreshing", 4, false, true},
  };
  for (const auto& row : rows) {
    DeploymentOptions dopts;
    dopts.dlm.integrated = row.integrated;
    Testbed tb = MakeTestbed(dopts, net);
    auto writer = tb.dep().NewSession(50);

    std::vector<std::unique_ptr<InteractiveSession>> viewers;
    for (int v = 0; v < row.holders; ++v) {
      auto s = tb.dep().NewSession(100 + v);
      ActiveView* view = s->CreateView("links");
      (void)view->PopulateFromClass(tb.Dc(tb.dcs.color_coded_link));
      viewers.push_back(std::move(s));
    }

    // Keep inboxes bounded. Viewers live on other machines in the paper's
    // setup, so by default we discard envelopes without doing client-side
    // refresh work on this host; the context row does the full pumping.
    std::atomic<bool> draining{true};
    std::thread drainer([&] {
      while (draining.load()) {
        for (auto& v : viewers) {
          if (row.full_refresh) {
            v->PumpOnce();
          } else {
            (void)v->client().inbox().DrainAll();
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    double cps = CommitsPerSecond(tb, &writer->client(), kCommits);
    draining = false;
    drainer.join();

    if (row.holders == 0) baseline_cps = cps;
    double delta_us = 1e6 / cps - 1e6 / baseline_cps;
    // A 1996 commit forced the log to disk: >= one ~10 ms disk write. The
    // display-lock delta is measured in microseconds of CPU on top.
    double vs_1996_pct = delta_us / 10000.0 * 100.0;
    table.AddRow({row.label, FmtInt(row.holders ? tb.db.link_oids.size() : 0),
                  FmtInt(row.holders), Fmt("%.0f", cps),
                  Fmt("%.1f", 1e6 / cps),
                  row.holders ? Fmt("%+.1f", delta_us) : "--",
                  row.holders ? Fmt("%+.3f%%", vs_1996_pct) : "--"});
  }
  table.Print();
  std::printf(
      "\nexpected shape: per-commit cost grows by only a few microseconds —\n"
      "a small fraction of the commit path (WAL + heap + locks) — even with\n"
      "many holders; the whole-system row shows that the visible cost of\n"
      "displays is client refresh work, not server lock handling, matching\n"
      "the paper's conclusion.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
