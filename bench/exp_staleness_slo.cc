// A1 — Per-view staleness SLO sweep: consistency-auditor visibility
// obligations under SLO windows of 1 / 10 / 100 virtual ms crossed with
// commit rate (commits landing between display pumps).
//
// Not a paper table: the 1996 design reports mean update propagation time;
// this experiment recasts it as a bounded-staleness contract the online
// auditor enforces (DESIGN.md §15). Two numbers per cell:
//
//   - SLO hit rate: fraction of visibility obligations settled before the
//     deadline (the rest count into consistency.slo.violations; they are
//     misses, not correctness violations — the violations column stays 0).
//     The deadline is anchored at notification DISPATCH, but the settling
//     refresh still pays a refetch round trip (~420 vms: 2 x message_base
//     + server CPU) when the object is not cache-fresh, and the FIRST
//     refresh after the viewer idled merges the server's Lamport clock —
//     a catch-up that dwarfs any SLO. So pumping per commit misses ~100%
//     at every SLO <= 100 vms, while batching (4/16 commits per pump)
//     pays the catch-up once per drain round and settles the rest from
//     the warm display cache.
//   - End-to-end staleness (commit -> displayed, virtual us) from the
//     display.staleness_slo_us histogram. This includes the commit ->
//     notify leg (message_base = 200 vms floor) plus inbox queueing, so it
//     grows with commits-per-pump even while the dispatch-anchored hit
//     rate stays flat — the reason the deadline is not commit-anchored.
//
// Usage: exp_staleness_slo [--json PATH]   (table to stdout; optional artifact)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "common/metrics.h"
#include "obs/audit.h"

namespace idba {
namespace bench {
namespace {

struct Row {
  int64_t slo_vms = 0;
  int commits_per_pump = 0;
  uint64_t commits = 0;
  uint64_t settled = 0;
  uint64_t slo_misses = 0;
  uint64_t violations = 0;
  double hit_pct = 0;
  double e2e_p50_vus = 0;
  double e2e_p95_vus = 0;
  double e2e_max_vus = 0;
};

std::vector<Row> g_rows;

Row RunCell(int64_t slo_vms, int commits_per_pump) {
  obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
  auditor.ResetForTest();
  auditor.set_staleness_slo_us(slo_vms * kVMillisecond);
  auditor.SetMode(obs::AuditMode::kTrack);

  Testbed tb = MakeTestbed({}, {});
  auto viewer = tb.dep().NewSession(100);
  auto writer = tb.dep().NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);
  Row r;
  r.slo_vms = slo_vms;
  r.commits_per_pump = commits_per_pump;
  if (dc == nullptr || !view->Materialize(dc, tb.db.link_oids).ok()) {
    std::printf("FAIL: cannot materialize the link view\n");
    auditor.ResetForTest();
    return r;
  }

  const int kCommits = 48;
  for (int i = 0; i < kCommits; ++i) {
    Oid oid = tb.db.link_oids[i % tb.db.link_oids.size()];
    if (!UpdateUtilization(&writer->client(), oid, (i % 9 + 1) / 10.0).ok()) {
      std::printf("FAIL: commit %d\n", i);
      break;
    }
    ++r.commits;
    if ((i + 1) % commits_per_pump == 0) {
      while (viewer->PumpOnce() > 0) {
      }
    }
  }
  while (viewer->PumpOnce() > 0) {
  }
  // Expire anything a refresh never settled (there should be nothing: the
  // pump drained fully above).
  auditor.CheckNow(viewer->client().clock().Now());

  MetricsRegistry& reg = GlobalMetrics();
  r.settled = reg.GetCounter("consistency.obligations.settled")->Get();
  r.slo_misses = reg.GetCounter("consistency.slo.violations")->Get();
  r.violations = auditor.violations_total();
  const uint64_t obligations = r.settled + auditor.pending_obligations();
  r.hit_pct = obligations == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(r.slo_misses) /
                                       static_cast<double>(obligations));
  HistogramSnapshot snap =
      reg.GetHistogram("display.staleness_slo_us")->Snapshot();
  r.e2e_p50_vus = snap.p50;
  r.e2e_p95_vus = snap.p95;
  r.e2e_max_vus = snap.max;

  auditor.ResetForTest();
  return r;
}

void Run(const char* json_path) {
  Banner("A1", "per-view staleness SLO sweep (consistency auditor)",
         "not in the paper — DESIGN.md §15: visibility obligations audited "
         "against a bounded-staleness window, deadline anchored at dispatch");

  Table table({"slo vms", "commits/pump", "commits", "settled", "slo misses",
               "hit %", "e2e p50 vus", "e2e p95 vus", "e2e max vus"});
  for (int64_t slo_vms : {1, 10, 100}) {
    for (int per_pump : {1, 4, 16}) {
      Row r = RunCell(slo_vms, per_pump);
      table.AddRow({FmtInt(static_cast<uint64_t>(r.slo_vms)),
                    FmtInt(static_cast<uint64_t>(r.commits_per_pump)),
                    FmtInt(r.commits), FmtInt(r.settled), FmtInt(r.slo_misses),
                    Fmt("%.1f", r.hit_pct), Fmt("%.0f", r.e2e_p50_vus),
                    Fmt("%.0f", r.e2e_p95_vus), Fmt("%.0f", r.e2e_max_vus)});
      g_rows.push_back(r);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: pumping per commit misses ~100%% at every SLO (each\n"
      "refresh pays a ~420 vms refetch round trip, above even the 100 vms\n"
      "window); batching 4/16 commits per pump leaves ~one miss per drain\n"
      "round — the first refresh merges the server's Lamport catch-up, the\n"
      "rest settle from the warm display cache. Misses are SLO signal only:\n"
      "the violations count stays 0 because every obligation settles — the\n"
      "commit was reflected, just late.\n");

  if (json_path) {
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::printf("FAIL: cannot open %s\n", json_path);
      return;
    }
    std::fprintf(f,
                 "{\n  \"experiment\": \"exp_staleness_slo\",\n  \"rows\": [\n");
    for (size_t i = 0; i < g_rows.size(); ++i) {
      const Row& r = g_rows[i];
      std::fprintf(
          f,
          "    {\"slo_vms\": %lld, \"commits_per_pump\": %d, "
          "\"commits\": %llu, \"settled\": %llu, \"slo_misses\": %llu, "
          "\"violations\": %llu, \"hit_pct\": %.1f, \"e2e_p50_vus\": %.1f, "
          "\"e2e_p95_vus\": %.1f, \"e2e_max_vus\": %.1f}%s\n",
          static_cast<long long>(r.slo_vms), r.commits_per_pump,
          static_cast<unsigned long long>(r.commits),
          static_cast<unsigned long long>(r.settled),
          static_cast<unsigned long long>(r.slo_misses),
          static_cast<unsigned long long>(r.violations), r.hit_pct,
          r.e2e_p50_vus, r.e2e_p95_vus, r.e2e_max_vus,
          i + 1 < g_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu rows to %s\n", g_rows.size(), json_path);
  }
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  idba::bench::Run(json_path);
  return 0;
}
