// E2 — Display cache vs client database cache footprint (paper §4.3) and
// figure 2's extended memory hierarchy.
//
// Paper: "the required size for the client display cache was from 3 to 5
// times smaller than the corresponding client database cache", because
// display objects project a handful of the many attributes a database
// object carries (§2.2, §3.2).

#include "bench/exp_common.h"

namespace idba {
namespace bench {
namespace {

struct ViewMix {
  std::string label;
  bool links = false;
  bool hardware = false;
  /// Paper §3.2: the GUI displays only part of what layout computation
  /// reads — here the treemap shows tiles down to devices while cards and
  /// ports (read for weights) never become display objects.
  bool hardware_visible_only = false;
};

void RunRow(const ViewMix& mix, NmsConfig net, const std::string& scale_label,
            Table* table) {
  Testbed tb = MakeTestbed({}, net);
  auto session = tb.dep().NewSession(100);
  if (mix.links) {
    ActiveView* view = session->CreateView("links");
    (void)view->PopulateFromClass(tb.Dc(tb.dcs.color_coded_link));
  }
  if (mix.hardware) {
    ActiveView* view = session->CreateView("hardware");
    (void)view->PopulateFromClass(tb.Dc(tb.dcs.hardware_tile),
                                  /*include_subclasses=*/true);
  }
  if (mix.hardware_visible_only) {
    // Layout reads the whole hierarchy (through the DB cache)...
    (void)session->client().ScanClass(tb.db.schema.hardware_component,
                                      /*include_subclasses=*/true);
    // ...but only the visible site and device tiles are on screen.
    ActiveView* view = session->CreateView("hardware-visible");
    const DisplayClassDef* dc = tb.Dc(tb.dcs.hardware_tile);
    for (Oid oid : tb.db.site_oids) (void)view->Materialize(dc, {oid});
    for (Oid oid : tb.db.device_oids) (void)view->Materialize(dc, {oid});
  }
  size_t db_cache = session->client().cache().bytes_used();
  size_t display_cache = session->display_cache().bytes_used();
  double ratio = display_cache > 0
                     ? static_cast<double>(db_cache) / display_cache
                     : 0.0;
  table->AddRow({mix.label, scale_label,
                 FmtInt(session->client().cache().entry_count()),
                 FmtInt(db_cache),
                 FmtInt(session->display_cache().object_count()),
                 FmtInt(display_cache), Fmt("%.1fx", ratio)});
}

void Run() {
  Banner("E2", "display cache vs client DB cache size (figure 2 hierarchy)",
         "display cache 3-5x smaller than the client database cache");
  Table table({"view mix", "scale", "db objs", "db cache B", "display objs",
               "display cache B", "db/display"});
  NmsConfig small;
  small.num_nodes = 24;
  NmsConfig large;
  large.num_nodes = 96;
  large.sites = 3;
  large.racks_per_building = 4;
  for (const auto& [net, label] :
       std::vector<std::pair<NmsConfig, std::string>>{{small, "small"},
                                                      {large, "large"}}) {
    RunRow({"links (color-coded)", true, false, false}, net, label, &table);
    RunRow({"hardware treemap (all tiles)", false, true, false}, net, label,
           &table);
    RunRow({"treemap, visible tiles only", false, false, true}, net, label,
           &table);
    RunRow({"links + all hardware", true, true, false}, net, label, &table);
    RunRow({"links + visible tiles", true, false, true}, net, label, &table);
  }
  table.Print();

  // Figure 2: byte accounting across all four memory-hierarchy levels.
  Testbed tb = MakeTestbed({}, large);
  auto session = tb.dep().NewSession(100);
  ActiveView* view = session->CreateView("links");
  (void)view->PopulateFromClass(tb.Dc(tb.dcs.color_coded_link));
  std::printf("\nfigure 2 — extended client-server memory hierarchy (bytes):\n");
  std::printf("  server disk        : %llu (pages x 4KiB)\n",
              static_cast<unsigned long long>(
                  tb.dep().server().heap().data_page_count() * kPageSize));
  std::printf("  server buffer pool : %llu (frames x 4KiB)\n",
              static_cast<unsigned long long>(
                  tb.dep().server().buffer_pool().frame_count() * kPageSize));
  std::printf("  client DB cache    : %llu\n",
              static_cast<unsigned long long>(session->client().cache().bytes_used()));
  std::printf("  display cache (new): %llu   <- the level this paper adds\n",
              static_cast<unsigned long long>(session->display_cache().bytes_used()));
  std::printf(
      "\nexpected shape: db/display ratio within (or near) the paper's 3-5x\n"
      "band; ratio grows with schema width, independent of database scale.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
