// Shared scaffolding for the experiment binaries (bench/exp_*.cc).
//
// Each binary regenerates one row-set of the paper's evaluation (§4.3) or
// an ablation called out in DESIGN.md; EXPERIMENTS.md records expected vs
// measured. Binaries print fixed-width tables to stdout and exit 0.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace bench {

/// A deployment with a populated NMS database and display classes.
struct Testbed {
  std::unique_ptr<Deployment> deployment;
  NmsDatabase db;
  NmsDisplayClasses dcs;

  Deployment& dep() { return *deployment; }
  const DisplayClassDef* Dc(DisplayClassId id) {
    return deployment->display_schema().Find(id);
  }
};

inline Testbed MakeTestbed(DeploymentOptions opts = {}, NmsConfig config = {}) {
  Testbed tb;
  opts.server.integrated_display_locks = opts.dlm.integrated;
  tb.deployment = std::make_unique<Deployment>(opts);
  tb.db = PopulateNms(&tb.deployment->server(), config).value();
  tb.dcs = RegisterNmsDisplayClasses(&tb.deployment->display_schema(),
                                     tb.deployment->server().schema(),
                                     tb.db.schema)
               .value();
  return tb;
}

/// Commits one utilization update through `writer`; returns commit status.
inline Status UpdateUtilization(ClientApi* writer, Oid oid, double util) {
  const SchemaCatalog& cat = writer->schema();
  TxnId t = writer->Begin();
  auto obj = writer->Read(t, oid);
  if (!obj.ok()) {
    (void)writer->Abort(t);
    return obj.status();
  }
  DatabaseObject link = std::move(obj).value();
  IDBA_RETURN_NOT_OK(link.SetByName(cat, "Utilization", Value(util)));
  Status st = writer->Write(t, std::move(link));
  if (!st.ok()) {
    (void)writer->Abort(t);
    return st;
  }
  return writer->Commit(t).status();
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (size_t i = 0; i < headers_.size(); ++i) {
        std::string cell = i < cells.size() ? cells[i] : "";
        std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s|", std::string(width[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

inline void Banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

}  // namespace bench
}  // namespace idba
