// M5 — Core display-stack microbenchmarks: the per-operation costs of the
// paper's contribution itself (display object refresh, DLC dispatch, DLM
// notification-set maintenance, view materialization).

#include <benchmark/benchmark.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

struct CoreFixture {
  CoreFixture() {
    NmsConfig config;
    config.num_nodes = 32;
    config.sites = 1;
    deployment = std::make_unique<Deployment>();
    db = PopulateNms(&deployment->server(), config).value();
    dcs = RegisterNmsDisplayClasses(&deployment->display_schema(),
                                    deployment->server().schema(), db.schema)
              .value();
  }
  std::unique_ptr<Deployment> deployment;
  NmsDatabase db;
  NmsDisplayClasses dcs;
};

void BM_DisplayObjectRefresh(benchmark::State& state) {
  CoreFixture fx;
  auto session = fx.deployment->NewSession(100);
  ActiveView* view = session->CreateView("v");
  const DisplayClassDef* dc =
      fx.deployment->display_schema().Find(fx.dcs.color_coded_link);
  DisplayObject* dob = view->Materialize(dc, {fx.db.link_oids[0]}).value();
  DatabaseObject image =
      fx.deployment->server().heap().Read(fx.db.link_oids[0]).value();
  const SchemaCatalog& cat = fx.deployment->server().schema();
  std::vector<DatabaseObject> images = {image};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dob->Refresh(cat, images));
  }
}
BENCHMARK(BM_DisplayObjectRefresh);

void BM_DisplayObjectGetAttribute(benchmark::State& state) {
  CoreFixture fx;
  auto session = fx.deployment->NewSession(100);
  ActiveView* view = session->CreateView("v");
  const DisplayClassDef* dc =
      fx.deployment->display_schema().Find(fx.dcs.color_coded_link);
  DisplayObject* dob = view->Materialize(dc, {fx.db.link_oids[0]}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dob->Get("Utilization"));
    benchmark::DoNotOptimize(dob->Get("Color"));
  }
}
BENCHMARK(BM_DisplayObjectGetAttribute);

void BM_NotificationDeliveryAndDispatch(benchmark::State& state) {
  // Full path: commit -> DLM fan-out -> DLC dispatch -> view refresh,
  // for a view of `range(0)` display-locked objects (one is updated).
  CoreFixture fx;
  auto viewer = fx.deployment->NewSession(100);
  auto writer = fx.deployment->NewSession(101);
  ActiveView* view = viewer->CreateView("v");
  const DisplayClassDef* dc =
      fx.deployment->display_schema().Find(fx.dcs.color_coded_link);
  const int objs = static_cast<int>(state.range(0));
  for (int i = 0; i < objs; ++i) {
    (void)view->Materialize(dc, {fx.db.link_oids[i % fx.db.link_oids.size()]});
  }
  const SchemaCatalog& cat = fx.deployment->server().schema();
  double util = 0.1;
  for (auto _ : state) {
    TxnId t = writer->client().Begin();
    DatabaseObject link = writer->client().Read(t, fx.db.link_oids[0]).value();
    util = util < 0.9 ? util + 0.01 : 0.1;
    (void)link.SetByName(cat, "Utilization", Value(util));
    (void)writer->client().Write(t, std::move(link));
    (void)writer->client().Commit(t);
    benchmark::DoNotOptimize(viewer->PumpOnce());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotificationDeliveryAndDispatch)->Arg(1)->Arg(32)->Arg(128);

void BM_DlmLockUnlock(benchmark::State& state) {
  CoreFixture fx;
  uint64_t i = 0;
  for (auto _ : state) {
    Oid oid = fx.db.link_oids[i % fx.db.link_oids.size()];
    benchmark::DoNotOptimize(fx.deployment->dlm().Lock(100, oid, 0));
    benchmark::DoNotOptimize(fx.deployment->dlm().Unlock(100, oid, 0));
    ++i;
  }
}
BENCHMARK(BM_DlmLockUnlock);

void BM_ViewPopulate(benchmark::State& state) {
  CoreFixture fx;
  auto session = fx.deployment->NewSession(100);
  const DisplayClassDef* dc =
      fx.deployment->display_schema().Find(fx.dcs.color_coded_link);
  int round = 0;
  for (auto _ : state) {
    ActiveView* view = session->CreateView("v" + std::to_string(round++));
    benchmark::DoNotOptimize(view->PopulateFromClass(dc));
    (void)session->CloseView("v" + std::to_string(round - 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.db.link_oids.size()));
}
BENCHMARK(BM_ViewPopulate);

// Contention on the telemetry hot path: N threads hammering one Histogram.
// The striped shards (one ring of buckets per thread-id stripe) should keep
// the per-record cost roughly flat as threads grow; a single-mutex
// histogram collapses here. Compare Threads(1) vs Threads(8) scaling.
void BM_HistogramRecordContended(benchmark::State& state) {
  static Histogram histogram;
  double v = static_cast<double>(state.thread_index() + 1);
  for (auto _ : state) {
    histogram.Record(v);
    v += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordContended)->Threads(1)->Threads(2)->Threads(8);

// The same path through the process-global registry pointer, as the
// instrumented code uses it (cached Histogram* — no name lookup per record).
void BM_GlobalHistogramRecord(benchmark::State& state) {
  Histogram* h = GlobalMetrics().GetHistogram("bench.record_us");
  for (auto _ : state) {
    h->Record(42.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GlobalHistogramRecord);

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
