// E4 — Client-side display consistency maintenance overhead (paper §4.3).
//
// Paper: "because of the relatively high update rate caused by the updating
// process, we can more safely conclude that, at the client side, the
// display consistency maintenance overhead is very small to deteriorate
// performance".
//
// Measures real CPU time a viewer client spends handling notifications and
// refreshing display objects, per update and as a rate at various update
// intensities and view sizes.

#include <chrono>

#include "bench/exp_common.h"
#include "nms/monitor.h"

namespace idba {
namespace bench {
namespace {

void RunRow(size_t view_size, int updates_per_step, int steps, Table* table) {
  NmsConfig net;
  net.num_nodes = 64;
  Testbed tb = MakeTestbed({}, net);

  auto viewer = tb.dep().NewSession(100);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc = tb.Dc(tb.dcs.color_coded_link);
  for (size_t i = 0; i < view_size && i < tb.db.link_oids.size(); ++i) {
    (void)view->Materialize(dc, {tb.db.link_oids[i]});
  }

  auto monitor_session = tb.dep().NewSession(50);
  MonitorOptions mo;
  mo.updates_per_step = updates_per_step;
  MonitorProcess monitor(&monitor_session->client(), &tb.db, mo);

  double pump_seconds = 0;
  for (int s = 0; s < steps; ++s) {
    (void)monitor.StepOnce();
    auto start = std::chrono::steady_clock::now();
    viewer->PumpOnce();
    pump_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  uint64_t refreshes = view->refreshes();
  uint64_t notifications = viewer->dlc().notifications_received();
  table->AddRow({FmtInt(view_size), FmtInt(updates_per_step), FmtInt(steps),
                 FmtInt(notifications), FmtInt(refreshes),
                 Fmt("%.1f", pump_seconds * 1e6 / std::max<uint64_t>(1, refreshes)),
                 Fmt("%.2f", pump_seconds * 1000)});
}

void Run() {
  Banner("E4", "client-side consistency maintenance overhead",
         "display consistency maintenance overhead at the client is very "
         "small even under a high update rate");
  Table table({"view objs", "upd/txn", "txns", "notifies", "refreshes",
               "us/refresh", "total ms"});
  for (size_t view_size : {16, 64, 128}) {
    for (int upd : {1, 4, 16}) {
      RunRow(view_size, upd, 200, &table);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: per-refresh CPU cost is tens of microseconds of\n"
      "real work (projection + derivation), independent of view size —\n"
      "only affected objects are touched, so total cost scales with the\n"
      "update rate, not with how much is displayed.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
