// R1 — Crash chaos: availability and recovery cost of a real idba_serve
// under a SIGKILL loop.
//
// Drives the same kill/restart cycle as tests/crash_chaos_test.cc but as
// a measurement: a writer commits continuously against a forked server
// process, a seeded killer SIGKILLs it mid-burst, and the harness
// restarts it on the same data directory. Reported per cycle: commits
// acked before the kill, records replayed at restart, and downtime from
// SIGKILL to serving again. The summary row is the paper-facing claim —
// with a 50 ms checkpoint interval, replay stays bounded and restart
// latency flat no matter how much history the loop accumulates.
//
// Usage: exp_crash_chaos --serve-bin PATH [--cycles N] [--seed S]
//        (or IDBA_SERVE_BIN in the environment, as in ctest)

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/remote_client.h"
#include "nms/network_model.h"
#include "objectmodel/object.h"

namespace idba {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

class ServerProcess {
 public:
  ~ServerProcess() { Kill(); }

  bool Start(const std::string& bin, const std::string& data_dir,
             uint16_t port) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::string port_arg = std::to_string(port);
      // Strict consistency auditing: a coherence regression anywhere in
      // the kill/restart loop aborts the server instead of skewing the
      // measurement silently.
      ::execl(bin.c_str(), bin.c_str(), "--port", port_arg.c_str(),
              "--data-dir", data_dir.c_str(), "--checkpoint-interval-ms",
              "50", "--audit", "strict", static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(fds[1]);
    out_ = fds[0];
    std::string buf;
    char tmp[512];
    while (buf.find("listening on") == std::string::npos) {
      ssize_t n = ::read(out_, tmp, sizeof(tmp));
      if (n <= 0) {
        Kill();
        return false;
      }
      buf.append(tmp, static_cast<size_t>(n));
    }
    size_t colon = buf.find(':', buf.find("listening on "));
    if (colon == std::string::npos) return false;
    port_ = static_cast<uint16_t>(std::atoi(buf.c_str() + colon + 1));
    records_scanned_ = 0;
    size_t rec = buf.find("records_scanned=");
    if (rec != std::string::npos) {
      records_scanned_ =
          std::atoll(buf.c_str() + rec + std::strlen("records_scanned="));
    }
    return port_ != 0;
  }

  void Kill() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_ >= 0) {
      ::close(out_);
      out_ = -1;
    }
  }

  uint16_t port() const { return port_; }
  int64_t records_scanned() const { return records_scanned_; }

 private:
  pid_t pid_ = -1;
  int out_ = -1;
  uint16_t port_ = 0;
  int64_t records_scanned_ = 0;
};

int Run(const std::string& bin, int cycles, uint64_t seed) {
  std::string dir = "/tmp/idba_exp_chaos_" + std::to_string(::getpid());
  std::remove((dir + "/data.idb").c_str());
  std::remove((dir + "/wal.idb").c_str());
  std::mt19937_64 rng(seed);

  ServerProcess server;
  if (!server.Start(bin, dir, 0)) {
    std::fprintf(stderr, "FATAL: could not start %s\n", bin.c_str());
    return 1;
  }

  RemoteClientOptions copts;
  copts.rpc_deadline_ms = 5000;
  auto writer_r = RemoteDatabaseClient::Connect("127.0.0.1", server.port(),
                                                100, copts);
  if (!writer_r.ok()) {
    std::fprintf(stderr, "FATAL: connect: %s\n",
                 writer_r.status().ToString().c_str());
    return 1;
  }
  auto writer = std::move(writer_r).value();
  auto define_schema = [&]() -> ClassId {
    Result<ClassId> cls = writer->DefineClass("ChaosItem");
    if (!cls.ok()) return 0;
    if (!writer->AddAttribute(cls.value(), "Value", ValueType::kInt).ok())
      return 0;
    return cls.value();
  };
  ClassId cls = define_schema();

  std::map<uint64_t, int64_t> committed;
  int64_t next_value = 1;
  int64_t lost = 0, mismatched = 0;
  double max_downtime_ms = 0, sum_downtime_ms = 0;
  int64_t max_replay = 0;

  std::printf("exp_crash_chaos: %d SIGKILL/restart cycles, seed=%llu, "
              "checkpoint-interval-ms=50\n\n",
              cycles, static_cast<unsigned long long>(seed));
  std::printf("%-8s %-12s %-14s %-14s %-12s\n", "cycle", "acked", "survivors",
              "replayed", "downtime_ms");

  for (int cycle = 1; cycle <= cycles; ++cycle) {
    const int64_t kill_after_ms = 15 + static_cast<int64_t>(rng() % 120);
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
      server.Kill();
    });
    size_t acked_before = committed.size();
    while (writer->connected()) {
      Result<Oid> oid = writer->NewOid();
      if (!oid.ok()) break;
      Result<TxnId> txn = writer->BeginTxn();
      if (!txn.ok()) break;
      DatabaseObject obj = NewObject(writer->schema(), cls, oid.value());
      (void)obj.SetByName(writer->schema(), "Value", Value(next_value));
      if (!writer->Insert(txn.value(), obj).ok()) break;
      if (writer->Commit(txn.value()).ok()) {
        committed[oid.value().value] = next_value;
      }
      ++next_value;
    }
    killer.join();

    Clock::time_point down_at = Clock::now();
    uint16_t port = server.port();
    bool up = false;
    for (int attempt = 0; attempt < 200 && !up; ++attempt) {
      up = server.Start(bin, dir, port);
      if (!up) std::this_thread::sleep_for(10ms);
    }
    if (!up) {
      std::fprintf(stderr, "FATAL: cycle %d: restart failed\n", cycle);
      return 1;
    }
    bool reconnected = false;
    for (int attempt = 0; attempt < 100 && !reconnected; ++attempt) {
      reconnected = writer->Reconnect(1).ok();
    }
    if (!reconnected || define_schema() != cls) {
      std::fprintf(stderr, "FATAL: cycle %d: reconnect failed\n", cycle);
      return 1;
    }
    double downtime_ms = MsSince(down_at);
    max_downtime_ms = std::max(max_downtime_ms, downtime_ms);
    sum_downtime_ms += downtime_ms;
    max_replay = std::max(max_replay, server.records_scanned());

    Result<std::vector<DatabaseObject>> scan = writer->ScanClass(cls);
    if (!scan.ok()) {
      std::fprintf(stderr, "FATAL: cycle %d: scan: %s\n", cycle,
                   scan.status().ToString().c_str());
      return 1;
    }
    std::map<uint64_t, int64_t> present;
    for (const DatabaseObject& obj : scan.value()) {
      present[obj.oid().value] =
          obj.GetByName(writer->schema(), "Value").value().AsInt();
    }
    for (const auto& [oid, value] : committed) {
      auto it = present.find(oid);
      if (it == present.end()) {
        ++lost;
      } else if (it->second != value) {
        ++mismatched;
      }
    }
    // Anything present beyond the acked ledger was a commit whose reply
    // the kill swallowed: applied-but-unacked, adopt it (it is durable).
    for (const auto& [oid, value] : present) committed.emplace(oid, value);
    std::printf("%-8d %-12zu %-14zu %-14lld %-12.1f\n", cycle,
                committed.size() - acked_before, present.size(),
                static_cast<long long>(server.records_scanned()), downtime_ms);
  }

  std::printf("\nsummary: total_committed=%zu lost=%lld mismatched=%lld "
              "max_replayed_records=%lld avg_downtime_ms=%.1f "
              "max_downtime_ms=%.1f\n",
              committed.size(), static_cast<long long>(lost),
              static_cast<long long>(mismatched),
              static_cast<long long>(max_replay), sum_downtime_ms / cycles,
              max_downtime_ms);
  std::printf("verdict: %s\n",
              (lost == 0 && mismatched == 0) ? "PASS (no committed work lost)"
                                             : "FAIL");
  return (lost == 0 && mismatched == 0) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main(int argc, char** argv) {
  std::string bin;
  if (const char* env = std::getenv("IDBA_SERVE_BIN")) bin = env;
  int cycles = 25;
  uint64_t seed = 1996;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve-bin") == 0 && i + 1 < argc) {
      bin = argv[++i];
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s --serve-bin PATH [--cycles N] [--seed S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (bin.empty()) {
    std::fprintf(stderr,
                 "FATAL: --serve-bin (or IDBA_SERVE_BIN) is required\n");
    return 2;
  }
  return idba::bench::Run(bin, cycles, seed);
}
