// M2 — Storage microbenchmarks: buffer pool and heap store operation costs
// (the substrate behind the fetch path of E1 and the churn of E8).

#include <benchmark/benchmark.h>

#include "storage/heap_store.h"
#include "storage/wal.h"
#include "txn/txn_manager.h"

namespace idba {
namespace {

DatabaseObject MakeObj(uint64_t oid, size_t payload) {
  DatabaseObject obj(Oid(oid), 1, 2);
  obj.Set(0, Value(std::string(payload, 'b')));
  obj.Set(1, Value(static_cast<int64_t>(oid)));
  return obj;
}

void BM_BufferPoolHit(benchmark::State& state) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 64});
  { auto g = pool.FetchPage(0); }
  for (auto _ : state) {
    auto g = pool.FetchPage(0);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 8});
  PageId p = 0;
  for (auto _ : state) {
    auto g = pool.FetchPage(p % 64);  // working set >> pool: always miss
    benchmark::DoNotOptimize(g);
    ++p;
  }
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_HeapInsert(benchmark::State& state) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 1024});
  auto store = std::move(HeapStore::Open(&pool, 0).value());
  uint64_t oid = 1;
  const size_t payload = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Insert(MakeObj(oid++, payload)));
  }
}
BENCHMARK(BM_HeapInsert)->Arg(64)->Arg(512)->Arg(2048);

void BM_HeapRead(benchmark::State& state) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 1024});
  auto store = std::move(HeapStore::Open(&pool, 0).value());
  for (uint64_t i = 1; i <= 1000; ++i) {
    (void)store->Insert(MakeObj(i, 256));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Read(Oid(i % 1000 + 1)));
    ++i;
  }
}
BENCHMARK(BM_HeapRead);

void BM_HeapUpdateInPlace(benchmark::State& state) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 1024});
  auto store = std::move(HeapStore::Open(&pool, 0).value());
  for (uint64_t i = 1; i <= 100; ++i) {
    (void)store->Insert(MakeObj(i, 256));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Update(MakeObj(i % 100 + 1, 256)));
    ++i;
  }
}
BENCHMARK(BM_HeapUpdateInPlace);

void BM_WalAppendFlush(benchmark::State& state) {
  MemDisk disk;
  Wal wal(&disk);
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      WalRecord rec;
      rec.type = WalRecordType::kUpdate;
      rec.txn = 1;
      rec.oid = Oid(i + 1);
      rec.after = MakeObj(i + 1, 128);
      benchmark::DoNotOptimize(wal.Append(std::move(rec)));
    }
    benchmark::DoNotOptimize(wal.Flush());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WalAppendFlush)->Arg(1)->Arg(16);

// Full durable-commit path (insert + WAL force) under concurrency: the
// threaded variants measure how well group commit coalesces the per-commit
// sync barriers (items/s should scale far better than 1/threads).
void BM_CommitDurable(benchmark::State& state) {
  struct Shared {
    MemDisk data_disk;
    MemDisk wal_disk;
    BufferPool pool{&data_disk, {.frame_count = 4096}};
    std::unique_ptr<HeapStore> heap;
    std::unique_ptr<Wal> wal;
    std::unique_ptr<TxnManager> mgr;
    Shared() {
      heap = std::move(HeapStore::Open(&pool, 0).value());
      wal = std::make_unique<Wal>(&wal_disk);
      mgr = std::make_unique<TxnManager>(heap.get(), wal.get());
    }
  };
  static Shared* shared = nullptr;
  if (state.thread_index() == 0) shared = new Shared();
  // All threads rendezvous on the state loop; per-thread OIDs avoid lock
  // contention so the WAL force is the only shared resource.
  for (auto _ : state) {
    TxnId txn = shared->mgr->Begin();
    DatabaseObject obj(shared->mgr->AllocateOid(), 1, 2);
    obj.Set(0, Value(std::string(64, 'c')));
    obj.Set(1, Value(int64_t(state.thread_index())));
    bool ok = shared->mgr->Insert(txn, std::move(obj)).ok() &&
              shared->mgr->Commit(txn).ok();
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["fsyncs_per_commit"] = benchmark::Counter(
        static_cast<double>(shared->wal->fsyncs()) /
        static_cast<double>(shared->mgr->commits()));
    delete shared;
    shared = nullptr;
  }
}
BENCHMARK(BM_CommitDurable)->Threads(1)->Threads(4)->Threads(16)
    ->UseRealTime();

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
