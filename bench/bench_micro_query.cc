// M6 — Query-layer microbenchmarks: server-side predicate scan rates and
// the client-side cost of populating query-scoped views.

#include <benchmark/benchmark.h>

#include "bench/exp_common.h"

namespace idba {
namespace {

bench::Testbed* SharedTestbed() {
  static bench::Testbed* tb = [] {
    NmsConfig config;
    config.num_nodes = 128;
    config.sites = 2;
    config.racks_per_building = 3;
    auto* t = new bench::Testbed(bench::MakeTestbed({}, config));
    return t;
  }();
  return tb;
}

void BM_ScanClass(benchmark::State& state) {
  bench::Testbed* tb = SharedTestbed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tb->dep().server().heap().ScanClass(tb->db.schema.link));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tb->db.link_oids.size()));
}
BENCHMARK(BM_ScanClass);

void BM_ExecuteQuerySelective(benchmark::State& state) {
  bench::Testbed* tb = SharedTestbed();
  ObjectQuery q;
  q.cls = tb->db.schema.link;
  q.conjuncts = {{"Utilization", CompareOp::kGe, Value(0.9)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tb->dep().server().ExecuteQuery(0, q, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tb->db.link_oids.size()));
}
BENCHMARK(BM_ExecuteQuerySelective);

void BM_ExecuteQuerySubclasses(benchmark::State& state) {
  bench::Testbed* tb = SharedTestbed();
  ObjectQuery q;
  q.cls = tb->db.schema.hardware_component;
  q.include_subclasses = true;
  q.conjuncts = {{"Utilization", CompareOp::kLe, Value(0.5)},
                 {"Status", CompareOp::kEq, Value(int64_t(1))}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb->dep().server().ExecuteQuery(0, q, nullptr));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(tb->db.all_hardware_oids.size()));
}
BENCHMARK(BM_ExecuteQuerySubclasses);

void BM_PredicateMatch(benchmark::State& state) {
  bench::Testbed* tb = SharedTestbed();
  const SchemaCatalog& cat = tb->dep().server().schema();
  DatabaseObject link =
      tb->dep().server().heap().Read(tb->db.link_oids[0]).value();
  AttrPredicate pred{"Utilization", CompareOp::kGe, Value(0.5)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.Matches(cat, link));
  }
}
BENCHMARK(BM_PredicateMatch);

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
