// M3 — Object serialization microbenchmarks: the marshaling cost of every
// fetch reply and WAL record.

#include <benchmark/benchmark.h>

#include "objectmodel/object.h"

namespace idba {
namespace {

DatabaseObject WideLink(int attrs) {
  DatabaseObject obj(Oid(7), 2, attrs);
  for (int i = 0; i < attrs; ++i) {
    switch (i % 4) {
      case 0: obj.Set(i, Value(static_cast<int64_t>(i))); break;
      case 1: obj.Set(i, Value(0.5 * i)); break;
      case 2: obj.Set(i, Value("attribute-value-" + std::to_string(i))); break;
      case 3: obj.Set(i, Value(Oid(i + 1))); break;
    }
  }
  return obj;
}

void BM_ObjectEncode(benchmark::State& state) {
  DatabaseObject obj = WideLink(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    Encoder enc(&buf);
    obj.EncodeTo(&enc);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(obj.WireBytes()));
}
BENCHMARK(BM_ObjectEncode)->Arg(4)->Arg(28)->Arg(64);

void BM_ObjectDecode(benchmark::State& state) {
  DatabaseObject obj = WideLink(static_cast<int>(state.range(0)));
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  obj.EncodeTo(&enc);
  for (auto _ : state) {
    Decoder dec(buf);
    DatabaseObject out;
    benchmark::DoNotOptimize(DatabaseObject::DecodeFrom(&dec, &out));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_ObjectDecode)->Arg(4)->Arg(28)->Arg(64);

void BM_VarintEncode(benchmark::State& state) {
  std::vector<uint8_t> buf;
  buf.reserve(1 << 16);
  uint64_t v = 0x123456789ULL;
  for (auto _ : state) {
    buf.clear();
    Encoder enc(&buf);
    for (int i = 0; i < 100; ++i) enc.PutVarint(v + i);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_VarintEncode);

void BM_ObjectMemoryBytes(benchmark::State& state) {
  DatabaseObject obj = WideLink(28);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.MemoryBytes());
  }
}
BENCHMARK(BM_ObjectMemoryBytes);

}  // namespace
}  // namespace idba

BENCHMARK_MAIN();
