#!/usr/bin/env python3
"""Normalized micro-benchmark runner.

Runs the google-benchmark binaries (micro benches + bench_transport),
collects per-benchmark samples, and emits one normalized document:

    BENCH_<ISO-date>.json
    {
      "schema": 1,
      "date": "2026-08-07",
      "machine": {"system": ..., "release": ..., "machine": ..., "cpus": N},
      "benches": {
        "bench_micro_core": {
          "BM_SessionFetch": {"median_ns": ..., "p99_ns": ..., "samples": 5,
                              "counters": {"loop_lag_p99_us": ...}},
          ...
        }, ...
      }
    }

User counters attached by a benchmark (state.counters[...] — e.g.
bench_transport's reactor-lag p99) are recorded per benchmark under
"counters" as the median across repetitions. Benchmarks named
X_Profiled are the same workload as X with the 99 Hz sampling profiler
running; after a run the script gates the pair-wise overhead at
--profiler-threshold (default 2%) and fails when exceeded. Benchmarks
named X_Audited are the same workload as X with the consistency
auditor in track mode; their pair-wise overhead is gated the same way
at --audit-threshold (default 2%).

CI runs this in the bench job, uploads the document as an artifact, and
compares against the previous run's document (restored from the actions
cache) with --compare, failing the job when any benchmark's median
regresses by more than --threshold (default 20%).

Usage:
    bench/run_bench.py --build-dir build --out BENCH_2026-08-07.json
    bench/run_bench.py --compare old.json --candidate new.json
"""

import argparse
import datetime
import json
import os
import platform
import statistics
import subprocess
import sys

DEFAULT_BENCHES = [
    "bench_micro_core",
    "bench_micro_lockmgr",
    "bench_micro_codec",
    "bench_micro_storage",
    "bench_micro_query",
    "bench_micro_viz",
    "bench_transport",
    "exp_recovery_time",
]


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
    if scale is None:
        raise ValueError("unknown benchmark time unit %r" % unit)
    return value * scale


def percentile(sorted_vals, q):
    """Nearest-rank percentile; with few repetitions p99 is the max."""
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1)))))
    return sorted_vals[rank]


def run_binary(path, min_time, repetitions):
    # Older google-benchmark rejects the "0.05s" suffix form; newer accepts
    # the bare double too (with a deprecation warning). Use the bare form.
    cmd = [
        path,
        "--benchmark_min_time=%s" % min_time.rstrip("s"),
        "--benchmark_repetitions=%d" % repetitions,
        "--benchmark_report_aggregates_only=false",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError("%s exited %d" % (path, proc.returncode))
    doc = json.loads(proc.stdout)
    # Standard google-benchmark row keys; anything else in a repetition row
    # is a user counter (e.g. bench_transport's loop_lag_p99_us).
    ROW_KEYS = {
        "name", "run_name", "run_type", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time", "time_unit",
        "items_per_second", "bytes_per_second", "label", "family_index",
        "per_family_instance_index", "aggregate_name", "aggregate_unit",
        "error_occurred", "error_message",
    }
    samples = {}
    counters = {}
    for b in doc.get("benchmarks", []):
        # Repetition rows only; skip google-benchmark's own mean/median/
        # stddev aggregate rows (we compute our own from the raw samples).
        if b.get("run_type", "iteration") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        samples.setdefault(name, []).append(to_ns(b["real_time"], b["time_unit"]))
        for key, value in b.items():
            if key in ROW_KEYS or not isinstance(value, (int, float)):
                continue
            counters.setdefault(name, {}).setdefault(key, []).append(value)
    out = {}
    for name, vals in sorted(samples.items()):
        vals.sort()
        out[name] = {
            "median_ns": statistics.median(vals),
            "p99_ns": percentile(vals, 0.99),
            "samples": len(vals),
        }
        for key, cvals in sorted(counters.get(name, {}).items()):
            out[name].setdefault("counters", {})[key] = statistics.median(cvals)
    return out


def machine_info():
    u = platform.uname()
    return {
        "system": u.system,
        "release": u.release,
        "machine": u.machine,
        "cpus": os.cpu_count(),
    }


def compare(baseline_doc, candidate_doc, threshold):
    """Returns a list of regression strings (empty = pass)."""
    regressions = []
    base = baseline_doc.get("benches", {})
    cand = candidate_doc.get("benches", {})
    for binary, benches in sorted(cand.items()):
        for name, stats in sorted(benches.items()):
            old = base.get(binary, {}).get(name)
            if not old or old.get("median_ns", 0) <= 0:
                continue  # new benchmark: nothing to regress against
            ratio = stats["median_ns"] / old["median_ns"]
            if ratio > 1.0 + threshold:
                regressions.append(
                    "%s/%s: %.0f ns -> %.0f ns (%.0f%% slower)"
                    % (binary, name, old["median_ns"], stats["median_ns"],
                       (ratio - 1.0) * 100.0))
    return regressions


def paired_overhead(doc, suffix, what, ratio_limit, floor_ns):
    """Gates an instrumentation feature's overhead: for every X / X<suffix>
    benchmark pair, the instrumented median may not exceed the plain one
    by more than `ratio_limit` (default 2%). An absolute floor keeps noise
    on very fast benchmarks from tripping the relative gate."""
    failures = []
    for binary, benches in sorted(doc.get("benches", {}).items()):
        for name, stats in sorted(benches.items()):
            if not name.endswith(suffix):
                continue
            base = benches.get(name[: -len(suffix)])
            if not base or base.get("median_ns", 0) <= 0:
                continue
            delta = stats["median_ns"] - base["median_ns"]
            ratio = stats["median_ns"] / base["median_ns"]
            if ratio > 1.0 + ratio_limit and delta > floor_ns:
                failures.append(
                    "%s/%s: %.0f ns -> %.0f ns with %s on "
                    "(%.1f%% > %.0f%% budget)"
                    % (binary, name[: -len(suffix)], base["median_ns"],
                       stats["median_ns"], what, (ratio - 1.0) * 100.0,
                       ratio_limit * 100.0))
    return failures


def profiler_overhead(doc, ratio_limit, floor_ns):
    return paired_overhead(doc, "_Profiled", "profiler", ratio_limit, floor_ns)


def audit_overhead(doc, ratio_limit, floor_ns):
    return paired_overhead(doc, "_Audited", "auditor", ratio_limit, floor_ns)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default=None,
                    help="output path (default BENCH_<ISO-date>.json)")
    ap.add_argument("--benches", nargs="*", default=DEFAULT_BENCHES)
    ap.add_argument("--min-time", default="0.05s")
    ap.add_argument("--repetitions", type=int, default=3)
    ap.add_argument("--compare", default=None,
                    help="baseline BENCH_*.json to compare against")
    ap.add_argument("--candidate", default=None,
                    help="with --compare: compare this document instead of "
                         "running the benchmarks")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative median regression that fails (0.20 = 20%%)")
    ap.add_argument("--profiler-threshold", type=float, default=0.02,
                    help="allowed profiled/unprofiled median overhead "
                         "(0.02 = 2%%)")
    ap.add_argument("--profiler-floor-ns", type=float, default=2000.0,
                    help="absolute overhead below which the profiler gate "
                         "never fails (noise floor)")
    ap.add_argument("--audit-threshold", type=float, default=0.02,
                    help="allowed audited/unaudited median overhead "
                         "(0.02 = 2%%)")
    ap.add_argument("--audit-floor-ns", type=float, default=2000.0,
                    help="absolute overhead below which the audit gate "
                         "never fails (noise floor)")
    args = ap.parse_args()

    if args.compare and args.candidate:
        with open(args.compare) as f:
            baseline = json.load(f)
        with open(args.candidate) as f:
            candidate = json.load(f)
        regressions = compare(baseline, candidate, args.threshold)
        for r in regressions:
            print("REGRESSION: " + r)
        if regressions:
            return 1
        print("no regressions beyond %.0f%%" % (args.threshold * 100.0))
        return 0

    today = datetime.date.today().isoformat()
    out_path = args.out or ("BENCH_%s.json" % today)
    doc = {
        "schema": 1,
        "date": today,
        "machine": machine_info(),
        "min_time": args.min_time,
        "repetitions": args.repetitions,
        "benches": {},
    }
    for bench in args.benches:
        path = os.path.join(args.build_dir, "bench", bench)
        if not os.path.exists(path):
            sys.stderr.write("skip %s (not built)\n" % path)
            continue
        print("running %s ..." % bench, flush=True)
        doc["benches"][bench] = run_binary(path, args.min_time,
                                           args.repetitions)
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print("wrote %s (%d binaries)" % (out_path, len(doc["benches"])))

    overhead = profiler_overhead(doc, args.profiler_threshold,
                                 args.profiler_floor_ns)
    for o in overhead:
        print("PROFILER OVERHEAD: " + o)
    if overhead:
        return 1

    overhead = audit_overhead(doc, args.audit_threshold, args.audit_floor_ns)
    for o in overhead:
        print("AUDIT OVERHEAD: " + o)
    if overhead:
        return 1

    if args.compare:
        with open(args.compare) as f:
            baseline = json.load(f)
        regressions = compare(baseline, doc, args.threshold)
        for r in regressions:
            print("REGRESSION: " + r)
        if regressions:
            return 1
        print("no regressions beyond %.0f%%" % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
