// O1 — Overload protection: goodput and tail latency vs offered load.
//
// Not a paper table: the 1996 design assumes subscribers keep up and the
// request rate fits the server. This experiment measures the DESIGN.md §9
// degradation ladder over real loopback TCP:
//
//   1. slow-subscriber isolation — with one subscriber's socket stalled via
//      fault injection, other writers' commit p99 stays within noise of the
//      unstalled run (one commit pays the bounded callback-ack timeout,
//      every later one elides the dead client's callbacks);
//   2. admission control — offered load is swept past the in-flight
//      capacity with admission on vs off; with it on, excess requests are
//      shed with Status::Overloaded while goodput holds and the server's
//      resident queue state (in-flight requests) stays bounded near the cap.
//
// "Offered load" here is closed-loop concurrency relative to the admission
// capacity: N synchronous clients against `max_inflight = C` offer N/C x
// the load the server admits, so 2x saturation = 2C client threads.
//
// Usage: exp_overload [--json PATH]   (table to stdout; optional artifact)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/exp_common.h"
#include "net/fault_injector.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"

namespace idba {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

double Percentile(std::vector<int64_t>* us, double p) {
  if (us->empty()) return 0;
  std::sort(us->begin(), us->end());
  size_t idx = static_cast<size_t>(p * (us->size() - 1));
  return static_cast<double>((*us)[idx]);
}

/// One JSON-serializable result row; both parts of the experiment append
/// here so --json emits a single artifact.
struct JsonRow {
  std::string scenario;
  double offered_x = 0;      ///< offered load as a multiple of capacity
  double goodput_ops = 0;    ///< successful ops/s
  double p50_us = 0;
  double p99_us = 0;
  uint64_t rejections = 0;   ///< Overloaded rejections observed client-side
  uint64_t peak_inflight = 0;
};

std::vector<JsonRow> g_rows;

// --- Part 1: slow-subscriber isolation ------------------------------------

/// Commits `n` utilization updates round-robin over `oids`, recording each
/// commit's wall latency.
std::vector<int64_t> CommitSeries(ClientApi* writer,
                                  const std::vector<Oid>& oids, int n) {
  std::vector<int64_t> us;
  us.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto start = Clock::now();
    Status st =
        UpdateUtilization(writer, oids[i % oids.size()], (i % 9 + 1) / 10.0);
    if (st.ok()) us.push_back(ElapsedUs(start));
  }
  return us;
}

void RunIsolation() {
  std::printf("--- slow-subscriber isolation ---------------------------\n");
  Table table({"scenario", "commits", "p50 us", "p99 us", "elided",
               "forced resyncs"});

  const int kCommits = 200;
  for (bool stalled : {false, true}) {
    Testbed tb = MakeTestbed({}, {});
    TransportServerOptions topts;
    topts.callback_ack_timeout_ms = 100;
    TransportServer transport(&tb.dep().server(), &tb.dep().dlm(),
                              &tb.dep().bus(), &tb.dep().meter(), topts);
    if (!transport.Start().ok()) return;
    auto viewer =
        RemoteDatabaseClient::Connect("127.0.0.1", transport.port(), 1)
            .value();
    auto writer =
        RemoteDatabaseClient::Connect("127.0.0.1", transport.port(), 2)
            .value();

    // The viewer registers cached copies of every link, so each commit
    // would owe it an invalidation CALLBACK.
    for (Oid oid : tb.db.link_oids) (void)viewer->ReadCurrent(oid);
    auto faults = std::make_shared<FaultInjector>();
    viewer->set_fault_injector(faults);
    if (stalled) {
      faults->InjectAll(FaultDirection::kRead, FaultKind::kDelay, 30000);
      // The first commit pays the bounded ack timeout and marks the viewer
      // stale; it is the escalation cost, not steady state, so it is kept
      // out of the measured series.
      (void)UpdateUtilization(writer.get(), tb.db.link_oids[0], 0.5);
    }

    std::vector<int64_t> us =
        CommitSeries(writer.get(), tb.db.link_oids, kCommits);
    double p50 = Percentile(&us, 0.50), p99 = Percentile(&us, 0.99);
    table.AddRow({stalled ? "one subscriber stalled (30 s)" : "all healthy",
                  FmtInt(us.size()), Fmt("%.0f", p50), Fmt("%.0f", p99),
                  FmtInt(transport.callbacks_elided()),
                  FmtInt(transport.forced_resyncs())});
    g_rows.push_back({stalled ? "isolation/stalled" : "isolation/healthy", 0,
                      0, p50, p99, 0, 0});
    transport.Stop();
  }
  table.Print();
  std::printf(
      "\nexpected shape: the stalled row's p50/p99 within noise of healthy\n"
      "(callbacks to the dead client are elided, not waited on); elided > 0\n"
      "and exactly one forced resync queued for the stalled subscriber.\n\n");
}

// --- Part 2: admission control under offered-load sweep --------------------

struct SweepResult {
  double goodput_ops = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t client_rejections = 0;
  uint64_t server_rejections = 0;
  size_t peak_inflight = 0;
};

SweepResult RunSweep(bool admission, size_t capacity, int threads,
                     int window_ms) {
  Testbed tb = MakeTestbed({}, {});
  TransportServerOptions topts;
  topts.max_inflight = admission ? capacity : 0;
  topts.max_request_queue = admission ? 64 : 0;
  topts.overload_retry_after_ms = 2;
  TransportServer transport(&tb.dep().server(), &tb.dep().dlm(),
                            &tb.dep().bus(), &tb.dep().meter(), topts);
  SweepResult res;
  if (!transport.Start().ok()) return res;

  std::vector<std::unique_ptr<RemoteDatabaseClient>> clients;
  for (int t = 0; t < threads; ++t) {
    clients.push_back(RemoteDatabaseClient::Connect("127.0.0.1",
                                                    transport.port(),
                                                    10 + t)
                          .value());
  }

  std::mutex mu;
  std::vector<int64_t> latencies;
  uint64_t ok_ops = 0;
  std::atomic<bool> stop{false};
  std::atomic<size_t> peak_inflight{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RemoteDatabaseClient* client = clients[t].get();
      Oid oid = tb.db.link_oids[t % tb.db.link_oids.size()];
      std::vector<int64_t> local;
      uint64_t local_ok = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto start = Clock::now();
        Status st = UpdateUtilization(client, oid, (local_ok % 9 + 1) / 10.0);
        if (st.ok()) {
          local.push_back(ElapsedUs(start));
          ++local_ok;
        } else if (st.IsOverloaded()) {
          // Cooperate: honor the server's retry-after hint.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(client->retry_after_hint_ms()));
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
      ok_ops += local_ok;
    });
  }

  // Sample the server's resident request state while the load runs: with
  // admission on it must never exceed the cap (bounded memory); without it
  // it tracks the offered concurrency.
  auto start = Clock::now();
  while (ElapsedUs(start) < window_ms * 1000) {
    size_t now = transport.inflight();
    size_t prev = peak_inflight.load();
    while (now > prev && !peak_inflight.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  double elapsed_s = ElapsedUs(start) / 1e6;

  res.goodput_ops = ok_ops / elapsed_s;
  res.p50_us = Percentile(&latencies, 0.50);
  res.p99_us = Percentile(&latencies, 0.99);
  for (auto& client : clients) {
    res.client_rejections += client->overload_rejections();
  }
  res.server_rejections = transport.overload_rejections();
  res.peak_inflight = peak_inflight.load();
  transport.Stop();
  return res;
}

void RunAdmissionSweep() {
  std::printf("--- goodput and p99 vs offered load ---------------------\n");
  const size_t kCapacity = 4;
  const int kWindowMs = 400;
  Table table({"admission", "offered", "threads", "goodput ops/s", "p50 us",
               "p99 us", "rejections", "peak inflight"});

  for (bool admission : {false, true}) {
    for (int mult : {1, 2, 4}) {  // 0.5x, 1x, 2x capacity
      int threads = static_cast<int>(kCapacity) * mult / 2;
      SweepResult r = RunSweep(admission, kCapacity, threads, kWindowMs);
      std::string offered = Fmt("%.1fx", mult / 2.0);
      table.AddRow({admission ? "on (cap 4)" : "off", offered,
                    FmtInt(threads), Fmt("%.0f", r.goodput_ops),
                    Fmt("%.0f", r.p50_us), Fmt("%.0f", r.p99_us),
                    FmtInt(r.server_rejections), FmtInt(r.peak_inflight)});
      g_rows.push_back({admission ? "admission/on" : "admission/off",
                        mult / 2.0, r.goodput_ops, r.p50_us, r.p99_us,
                        r.server_rejections, r.peak_inflight});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: goodput comparable in both columns (shed requests\n"
      "are cheap reader-thread rejections, not lost capacity); with\n"
      "admission on, 2x load sheds with Overloaded and peak inflight stays\n"
      "near the cap (completion ops of already-admitted transactions may\n"
      "briefly exceed it; new work is turned away) — resident queue memory\n"
      "is bounded; with it off, peak inflight tracks offered concurrency.\n");
}

void WriteJson(const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("FAIL: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"exp_overload\",\n  \"rows\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"offered_x\": %.2f, "
                 "\"goodput_ops\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"rejections\": %llu, \"peak_inflight\": %llu}%s\n",
                 r.scenario.c_str(), r.offered_x, r.goodput_ops, r.p50_us,
                 r.p99_us, static_cast<unsigned long long>(r.rejections),
                 static_cast<unsigned long long>(r.peak_inflight),
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", g_rows.size(), path);
}

void Run(const char* json_path) {
  Banner("O1", "overload protection over loopback TCP",
         "not in the paper — DESIGN.md §9: slow subscribers are isolated, "
         "excess load is shed with Overloaded, queue memory stays bounded");
  RunIsolation();
  RunAdmissionSweep();
  if (json_path) WriteJson(json_path);
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  idba::bench::Run(json_path);
  return 0;
}
