// D1 — Group commit: durable-commit throughput vs concurrent committers.
//
// The paper's interactive workloads commit constantly (every attribute
// tweak is a transaction), so the WAL force is the storage bottleneck the
// moment several agents update at once. This experiment measures the
// group-commit path (leader/follower fsync batching, DESIGN.md §12)
// against a serial-fsync baseline (commits serialized under a global
// mutex — exactly one fsync per commit, the pre-group-commit behaviour),
// sweeping 1 -> 64 closed-loop committers over a disk whose sync barrier
// costs ~300 us (an NVMe-class fsync; MemDisk's instant sync would make
// batching invisible).
//
// Reported per config: commits/s, p50/p99 commit latency, fsyncs per
// commit. The headline claim: at 16 committers, group commit sustains
// >= 4x the baseline throughput while issuing ~1 fsync per *batch*
// (fsyncs/commit << 1).
//
// Usage: exp_durability [--json PATH] [--sync-us N] [--ms-per-run N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_store.h"
#include "storage/wal.h"
#include "txn/txn_manager.h"

namespace idba {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

/// MemDisk whose sync barrier takes ~`sync_us` (modelling a real fsync).
class SlowSyncDisk : public Disk {
 public:
  SlowSyncDisk(Disk* base, int64_t sync_us) : base_(base), sync_us_(sync_us) {}
  Status ReadPage(PageId id, PageData* out) override {
    return base_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const PageData& data) override {
    return base_->WritePage(id, data);
  }
  Status Sync() override {
    if (sync_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sync_us_));
    }
    Status st = base_->Sync();
    if (st.ok()) syncs_.Add();
    return st;
  }
  Status Truncate() override { return base_->Truncate(); }
  PageId PageCount() const override { return base_->PageCount(); }

 private:
  Disk* base_;
  int64_t sync_us_;
};

double Percentile(std::vector<int64_t>* us, double p) {
  if (us->empty()) return 0;
  std::sort(us->begin(), us->end());
  size_t idx = static_cast<size_t>(p * (us->size() - 1));
  return static_cast<double>((*us)[idx]);
}

struct Row {
  std::string mode;
  int committers = 0;
  double commits_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double fsyncs_per_commit = 0;
};

/// Runs `committers` closed-loop insert+commit threads for `ms_per_run`.
/// In baseline mode a global mutex serializes the whole commit path, so
/// every commit pays its own fsync — no coalescing possible.
Row RunConfig(int committers, bool baseline, int64_t sync_us,
              int ms_per_run) {
  MemDisk data_disk, wal_base;
  SlowSyncDisk wal_disk(&wal_base, sync_us);
  BufferPool pool(&data_disk, {.frame_count = 256});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  std::mutex serial_mu;  // baseline: one committer at a time
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::vector<std::vector<int64_t>> latencies(committers);
  std::vector<std::thread> threads;
  threads.reserve(committers);
  for (int t = 0; t < committers; ++t) {
    threads.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto start = Clock::now();
        TxnId txn = mgr.Begin();
        DatabaseObject obj(mgr.AllocateOid(), 1, 1);
        obj.Set(0, Value(int64_t(t)));
        Status st;
        {
          std::unique_lock<std::mutex> lk(serial_mu, std::defer_lock);
          if (baseline) lk.lock();
          st = mgr.Insert(txn, std::move(obj));
          if (st.ok()) st = mgr.Commit(txn).status();
        }
        if (!st.ok()) continue;
        commits.fetch_add(1, std::memory_order_relaxed);
        latencies[t].push_back(std::chrono::duration_cast<
                                   std::chrono::microseconds>(Clock::now() -
                                                              start)
                                   .count());
      }
    });
  }
  auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(ms_per_run));
  stop.store(true);
  for (auto& th : threads) th.join();
  double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<int64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  Row row;
  row.mode = baseline ? "serial" : "group";
  row.committers = committers;
  row.commits_per_s = commits.load() / secs;
  row.p50_us = Percentile(&all, 0.50);
  row.p99_us = Percentile(&all, 0.99);
  row.fsyncs_per_commit =
      commits.load() ? static_cast<double>(wal.fsyncs()) / commits.load() : 0;
  return row;
}

void WriteJson(const char* path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "[");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "%s{\"mode\":\"%s\",\"committers\":%d,"
                 "\"commits_per_s\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
                 "\"fsyncs_per_commit\":%.4f}",
                 i ? "," : "", r.mode.c_str(), r.committers, r.commits_per_s,
                 r.p50_us, r.p99_us, r.fsyncs_per_commit);
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

void Run(const char* json_path, int64_t sync_us, int ms_per_run) {
  const int sweep[] = {1, 2, 4, 8, 16, 32, 64};
  std::vector<Row> rows;
  std::printf("D1: durable commit throughput (sync barrier = %lld us, "
              "%d ms per config)\n\n",
              static_cast<long long>(sync_us), ms_per_run);
  std::printf("%-8s %10s %12s %10s %10s %14s\n", "mode", "committers",
              "commits/s", "p50_us", "p99_us", "fsyncs/commit");
  for (int n : sweep) {
    for (bool baseline : {true, false}) {
      Row row = RunConfig(n, baseline, sync_us, ms_per_run);
      std::printf("%-8s %10d %12.0f %10.0f %10.0f %14.3f\n", row.mode.c_str(),
                  row.committers, row.commits_per_s, row.p50_us, row.p99_us,
                  row.fsyncs_per_commit);
      rows.push_back(std::move(row));
    }
  }
  // Headline: group commit vs serial fsync at 16 committers.
  double serial16 = 0, group16 = 0;
  for (const Row& r : rows) {
    if (r.committers == 16) {
      (r.mode == "serial" ? serial16 : group16) = r.commits_per_s;
    }
  }
  if (serial16 > 0) {
    std::printf("\ngroup/serial speedup at 16 committers: %.1fx\n",
                group16 / serial16);
  }
  if (json_path) WriteJson(json_path, rows);
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  long sync_us = 300;
  long ms_per_run = 300;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--sync-us") == 0) sync_us = std::atol(argv[i + 1]);
    if (std::strcmp(argv[i], "--ms-per-run") == 0) {
      ms_per_run = std::atol(argv[i + 1]);
    }
  }
  idba::bench::Run(json_path, sync_us, static_cast<int>(ms_per_run));
  return 0;
}
