// E5 — Early notify vs post-commit notify: update conflicts and aborts
// (paper §3.3).
//
// Paper: under the early notify protocol "displays could then graphically
// mark (e.g. turn red) the object being updated, deterring users from
// modifying objects already being updated. As a result update conflicts and
// therefore transaction aborts can be significantly decreased."
//
// Concurrent operators hammer a small hot set of links; with early notify
// they honor "being updated" marks and back off.

#include <thread>

#include "bench/exp_common.h"
#include "nms/operators.h"

namespace idba {
namespace bench {
namespace {

struct Totals {
  uint64_t attempts = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t skips = 0;
};

Totals RunConfig(NotifyProtocol protocol, bool honor_marks, int operators,
                 double zipf_theta) {
  DeploymentOptions dopts;
  dopts.dlm.protocol = protocol;
  NmsConfig net;
  net.num_nodes = 12;
  Testbed tb = MakeTestbed(dopts, net);

  std::vector<std::unique_ptr<OperatorSession>> ops;
  for (int i = 0; i < operators; ++i) {
    OperatorOptions oo;
    oo.seed = 500 + i;
    oo.update_probability = 0.9;
    oo.zipf_theta = zipf_theta;
    oo.view_size = 8;  // everyone watches the same hot links
    oo.honor_update_marks = honor_marks;
    oo.links_per_update = 2;  // multi-link edits can deadlock
    oo.edit_time_ms = 1;      // user holds X locks while editing
    ops.push_back(
        OperatorSession::Create(&tb.dep(), 100 + i, &tb.db, &tb.dcs, oo)
            .value());
  }
  std::vector<std::thread> threads;
  for (auto& op : ops) {
    threads.emplace_back([&op] {
      for (int i = 0; i < 120; ++i) (void)op->StepOnce();
    });
  }
  for (auto& t : threads) t.join();
  Totals totals;
  for (auto& op : ops) {
    totals.attempts += op->updates_attempted();
    totals.commits += op->updates_committed();
    totals.aborts += op->updates_aborted();
    totals.skips += op->marked_skips();
  }
  return totals;
}

void Run() {
  Banner("E5", "early notify vs post-commit: conflicts and aborts",
         "early notify marks objects being updated, significantly decreasing "
         "update conflicts and transaction aborts");
  Table table({"protocol", "operators", "zipf", "attempts", "commits",
               "aborts", "abort %", "mark-skips"});
  for (int operators : {2, 4, 8}) {
    for (double theta : {0.8, 1.4}) {
      for (bool early : {false, true}) {
        Totals t = RunConfig(early ? NotifyProtocol::kEarlyNotify
                                   : NotifyProtocol::kPostCommit,
                             /*honor_marks=*/early, operators, theta);
        double abort_pct =
            t.attempts ? 100.0 * t.aborts / static_cast<double>(t.attempts) : 0;
        table.AddRow({early ? "early-notify" : "post-commit",
                      FmtInt(operators), Fmt("%.1f", theta),
                      FmtInt(t.attempts), FmtInt(t.commits), FmtInt(t.aborts),
                      Fmt("%.1f", abort_pct), FmtInt(t.skips)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: early-notify abort rate well below post-commit at\n"
      "the same contention (operators back off marked objects instead of\n"
      "colliding); the gap widens with more operators and hotter skew.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
