// E11 — Concurrent-user scalability (extension of §4.3's 4-user test).
//
// The paper tested "up to 4 concurrent users" and noted that was too small
// a scale to separate effects. Two parts:
//
//   1. The paper's workload at 2-16 threaded operators — throughput, abort
//      rate and notification traffic; display-lock handling is never the
//      bottleneck and displays stay exact at every scale.
//
//   2. A transport fan-out sweep: 100 → 5000 concurrent wire-v2 subscriber
//      connections, each holding one display lock on a hot object, against
//      the event-driven server (epoll reactor + worker pool). The old
//      3-threads-per-connection transport could not be measured at this
//      scale — 5000 connections would have needed ~15000 server threads;
//      the reactor serves them with a handful. Each update's NOTIFY body is
//      serialized exactly once (fanout encode/reuse counters prove it) and
//      fanned out to every subscriber via shared-buffer writev.
//
// Flags: --max-subscribers N caps part 2's sweep (CI smoke uses 500);
//        --fanout-only skips part 1.

#include <chrono>
#include <cstring>

#include "bench/exp_common.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"
#include "nms/workload.h"
#include "obs/rpc_stats.h"

namespace idba {
namespace bench {
namespace {

void RunRow(int operators, NotifyProtocol protocol, Table* table) {
  WorkloadConfig config;
  config.network.num_nodes = 32;
  config.deployment.dlm.protocol = protocol;
  config.operators = operators;
  config.operator_options.update_probability = 0.5;
  config.operator_options.view_size = 16;
  config.operator_options.honor_update_marks =
      protocol == NotifyProtocol::kEarlyNotify;
  config.operator_options.links_per_update = 2;
  config.steps_per_operator = 120;
  config.threaded = true;
  config.monitor_steps_per_round = 1;

  auto runner = WorkloadRunner::Create(config).value();
  auto start = std::chrono::steady_clock::now();
  auto report = runner->Run().value();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double actions_per_s =
      (report.monitor_actions + report.updates_attempted) / seconds;
  table->AddRow(
      {protocol == NotifyProtocol::kEarlyNotify ? "early-notify" : "post-commit",
       FmtInt(operators), Fmt("%.0f", actions_per_s),
       FmtInt(report.updates_committed), Fmt("%.1f%%", report.abort_rate() * 100),
       FmtInt(report.deployment_stats.update_notifications),
       FmtInt(report.refreshes), FmtInt(report.stale_display_objects)});
}

void RunOperators() {
  Banner("E11a", "concurrent-user scalability (extension)",
         "the paper tested only 4 users; scaling the same workload shows "
         "display-lock handling is never the bottleneck and displays stay "
         "exact at every scale");
  Table table({"protocol", "operators", "actions/s", "commits", "abort %",
               "notifications", "refreshes", "stale"});
  for (NotifyProtocol protocol :
       {NotifyProtocol::kPostCommit, NotifyProtocol::kEarlyNotify}) {
    for (int operators : {2, 4, 8, 16}) {
      RunRow(operators, protocol, &table);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: aggregate action throughput grows with operators\n"
      "(real host parallelism permitting); post-commit abort rates climb\n"
      "with contention while early-notify stays near zero; the stale column\n"
      "is 0 at EVERY scale — consistency does not degrade with users.\n");
}

// --- part 2: transport fan-out sweep ---------------------------------------

/// Raw wire-v2 subscriber: Hello + one display lock on `hot`, then the
/// socket just accumulates NOTIFY frames until drained.
bool Subscribe(Socket* sock, std::mutex* write_mu, uint64_t id, Oid hot) {
  {
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    enc.PutU8(static_cast<uint8_t>(wire::Method::kHello));
    enc.PutI64(0);
    enc.PutU64(id);
    enc.PutU8(0);  // kAvoidance
    enc.PutU8(wire::kWireVersion);
    if (!sock->WriteFrame(*write_mu, wire::FrameType::kRequest, 1, payload)
             .ok()) {
      return false;
    }
    wire::FrameHeader header;
    std::vector<uint8_t> reply;
    if (!sock->ReadFrame(&header, &reply).ok()) return false;
  }
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU8(static_cast<uint8_t>(wire::Method::kDlmLock));
  enc.PutI64(0);
  enc.PutI64(0);  // sent_at
  enc.PutU64(id);
  enc.PutU64(hot.value);
  if (!sock->WriteFrame(*write_mu, wire::FrameType::kRequest, 2, payload)
           .ok()) {
    return false;
  }
  wire::FrameHeader header;
  std::vector<uint8_t> reply;
  return sock->ReadFrame(&header, &reply).ok();
}

void RunFanoutRow(int subscribers, int commits, Table* table) {
  DeploymentOptions dep_opts;
  auto deployment = std::make_unique<Deployment>(dep_opts);
  NmsConfig net_config;
  net_config.num_nodes = 8;
  net_config.sites = 1;
  net_config.buildings_per_site = 1;
  net_config.racks_per_building = 1;
  net_config.devices_per_rack = 1;
  NmsDatabase db = PopulateNms(&deployment->server(), net_config).value();
  TransportServer transport(&deployment->server(), &deployment->dlm(),
                            &deployment->bus(), &deployment->meter());
  if (!transport.Start().ok()) {
    std::printf("  !! transport failed to start\n");
    return;
  }
  Oid hot = db.link_oids[0];

  std::mutex write_mu;
  std::vector<Socket> subs;
  subs.reserve(subscribers);
  auto connect_start = std::chrono::steady_clock::now();
  for (int i = 0; i < subscribers; ++i) {
    Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport.port());
    if (!raw.ok() ||
        !Subscribe(&raw.value(), &write_mu, 10000 + i, hot)) {
      std::printf("  !! subscriber %d failed (fd limit? see ulimit -n)\n", i);
      return;
    }
    subs.push_back(std::move(raw).value());
  }
  double connect_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    connect_start)
          .count();

  auto writer = RemoteDatabaseClient::Connect("127.0.0.1", transport.port(),
                                              999)
                    .value();
  const uint64_t encodes_before = transport.fanout_encodes();
  const uint64_t reuses_before = transport.fanout_reuses();
  auto notify_start = std::chrono::steady_clock::now();
  for (int c = 0; c < commits; ++c) {
    Status st = UpdateUtilization(writer.get(), hot, 0.10 + 0.01 * c);
    if (!st.ok()) {
      std::printf("  !! commit failed: %s\n", st.ToString().c_str());
      return;
    }
  }
  // Drain every subscriber: commits × subscribers NOTIFY frames total.
  uint64_t received = 0;
  for (Socket& sock : subs) {
    (void)sock.SetRecvTimeout(30000);
    for (int c = 0; c < commits; ++c) {
      wire::FrameHeader header;
      std::vector<uint8_t> frame;
      if (!sock.ReadFrame(&header, &frame).ok()) break;
      if (header.type == wire::FrameType::kNotify) ++received;
    }
  }
  double notify_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    notify_start)
          .count();

  const uint64_t encodes = transport.fanout_encodes() - encodes_before;
  const uint64_t reuses = transport.fanout_reuses() - reuses_before;
  const uint64_t expected = uint64_t(subscribers) * commits;
  table->AddRow({FmtInt(subscribers), FmtInt(transport.io_threads()),
                 FmtInt(transport.worker_threads()),
                 Fmt("%.2fs", connect_s),
                 FmtInt(received) + "/" + FmtInt(expected),
                 Fmt("%.0f", received / notify_s), FmtInt(encodes),
                 FmtInt(reuses)});
}

void RunFanout(int max_subscribers) {
  Banner("E11b", "NOTIFY fan-out connection sweep",
         "the event-driven transport (epoll reactor + worker pool) carries "
         "thousands of concurrent subscribers; each update's NOTIFY body is "
         "serialized once and reused for every other subscriber");
  Table table({"subscribers", "io_thr", "workers", "connect", "delivered",
               "notify/s", "encodes", "reuses"});
  for (int subscribers : {100, 500, 1000, 2500, 5000}) {
    if (subscribers > max_subscribers) break;
    RunFanoutRow(subscribers, /*commits=*/5, &table);
  }
  table.Print();
  // Server-side per-opcode latency split for the subscriber-facing calls
  // (global across the sweep; bounded tails show admission + strand
  // scheduling keep per-request work constant as connections grow).
  obs::RpcPartHistograms& lock = obs::GlobalRpcStats().HandleFor(
      static_cast<int>(wire::Method::kDlmLock), "DlmLock");
  obs::RpcPartHistograms& hello = obs::GlobalRpcStats().HandleFor(
      static_cast<int>(wire::Method::kHello), "Hello");
  std::printf(
      "\nper-opcode server p99 across the sweep: Hello %.0f us, DlmLock %.0f "
      "us\n",
      hello.total_us->Percentile(99), lock.total_us->Percentile(99));
  std::printf(
      "expected shape: delivered == subscribers x commits at every scale;\n"
      "encodes == commits and reuses == commits x (subscribers-1) — the\n"
      "single-serialization invariant; notify/s grows with subscribers.\n"
      "(the former 3-threads-per-connection transport would have needed\n"
      "~15000 server threads for the 5000-subscriber row)\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main(int argc, char** argv) {
  int max_subscribers = 5000;
  bool fanout_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-subscribers") == 0 && i + 1 < argc) {
      max_subscribers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fanout-only") == 0) {
      fanout_only = true;
    }
  }
  if (!fanout_only) idba::bench::RunOperators();
  idba::bench::RunFanout(max_subscribers);
  return 0;
}
