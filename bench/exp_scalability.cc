// E11 — Concurrent-user scalability (extension of §4.3's 4-user test).
//
// The paper tested "up to 4 concurrent users" and noted that was too small
// a scale to separate effects. This experiment runs the same workload at
// 2-16 operators (threaded) and reports throughput, abort rate and
// notification traffic — checking that the display-lock machinery itself
// never becomes the bottleneck and that displays stay exact at every scale.

#include <chrono>

#include "bench/exp_common.h"
#include "nms/workload.h"

namespace idba {
namespace bench {
namespace {

void RunRow(int operators, NotifyProtocol protocol, Table* table) {
  WorkloadConfig config;
  config.network.num_nodes = 32;
  config.deployment.dlm.protocol = protocol;
  config.operators = operators;
  config.operator_options.update_probability = 0.5;
  config.operator_options.view_size = 16;
  config.operator_options.honor_update_marks =
      protocol == NotifyProtocol::kEarlyNotify;
  config.operator_options.links_per_update = 2;
  config.steps_per_operator = 120;
  config.threaded = true;
  config.monitor_steps_per_round = 1;

  auto runner = WorkloadRunner::Create(config).value();
  auto start = std::chrono::steady_clock::now();
  auto report = runner->Run().value();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double actions_per_s =
      (report.monitor_actions + report.updates_attempted) / seconds;
  table->AddRow(
      {protocol == NotifyProtocol::kEarlyNotify ? "early-notify" : "post-commit",
       FmtInt(operators), Fmt("%.0f", actions_per_s),
       FmtInt(report.updates_committed), Fmt("%.1f%%", report.abort_rate() * 100),
       FmtInt(report.deployment_stats.update_notifications),
       FmtInt(report.refreshes), FmtInt(report.stale_display_objects)});
}

void Run() {
  Banner("E11", "concurrent-user scalability (extension)",
         "the paper tested only 4 users; scaling the same workload shows "
         "display-lock handling is never the bottleneck and displays stay "
         "exact at every scale");
  Table table({"protocol", "operators", "actions/s", "commits", "abort %",
               "notifications", "refreshes", "stale"});
  for (NotifyProtocol protocol :
       {NotifyProtocol::kPostCommit, NotifyProtocol::kEarlyNotify}) {
    for (int operators : {2, 4, 8, 16}) {
      RunRow(operators, protocol, &table);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: aggregate action throughput grows with operators\n"
      "(real host parallelism permitting); post-commit abort rates climb\n"
      "with contention while early-notify stays near zero; the stale column\n"
      "is 0 at EVERY scale — consistency does not degrade with users.\n");
}

}  // namespace
}  // namespace bench
}  // namespace idba

int main() {
  idba::bench::Run();
  return 0;
}
