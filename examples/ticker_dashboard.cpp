// ticker_dashboard: a second application domain on the same framework —
// a trading floor dashboard. Quotes stream into the database; each trader's
// display shows price cells (color-flash derivation) and a multi-source
// portfolio summary (derived from all the positions' quotes), all kept
// exact through display locks. Demonstrates that nothing in src/core is
// specific to network management.

#include <cstdio>

#include "client/txn_retry.h"
#include "common/rng.h"
#include "core/session.h"

using namespace idba;

namespace {

struct TickerDb {
  ClassId quote_cls = 0;
  ClassId position_cls = 0;
  std::vector<Oid> quotes;     // one per symbol
  std::vector<Oid> positions;  // trader 1's portfolio
  DisplayClassId price_cell = 0;
  DisplayClassId portfolio_summary = 0;
};

const char* kSymbols[] = {"IBM", "DEC", "SUNW", "MSFT", "ORCL", "SGI"};

TickerDb Setup(Deployment& deployment) {
  TickerDb db;
  SchemaCatalog& cat = deployment.server().schema();
  // Database schema: market data + positions, zero GUI state.
  db.quote_cls = cat.DefineClass("Quote").value();
  (void)cat.AddAttribute(db.quote_cls, "Symbol", ValueType::kString);
  (void)cat.AddAttribute(db.quote_cls, "Last", ValueType::kDouble, Value(100.0));
  (void)cat.AddAttribute(db.quote_cls, "PrevClose", ValueType::kDouble, Value(100.0));
  (void)cat.AddAttribute(db.quote_cls, "Bid", ValueType::kDouble);
  (void)cat.AddAttribute(db.quote_cls, "Ask", ValueType::kDouble);
  (void)cat.AddAttribute(db.quote_cls, "Volume", ValueType::kInt, Value(int64_t(0)));
  db.position_cls = cat.DefineClass("Position").value();
  (void)cat.AddAttribute(db.position_cls, "Symbol", ValueType::kString);
  (void)cat.AddAttribute(db.position_cls, "QuoteRef", ValueType::kOid);
  (void)cat.AddAttribute(db.position_cls, "Shares", ValueType::kInt);
  (void)cat.AddAttribute(db.position_cls, "CostBasis", ValueType::kDouble);

  // Display schema (external, per §3.1): a flashing price cell...
  DisplayClassDef cell("PriceCell", db.quote_cls);
  cell.Project("Symbol", "Symbol")
      .Project("Last", "Last")
      .Derive("ChangePct",
              [&cat](const std::vector<DatabaseObject>& srcs) {
                double last = srcs[0].GetByName(cat, "Last").value().AsNumber();
                double prev =
                    srcs[0].GetByName(cat, "PrevClose").value().AsNumber();
                return Value(prev > 0 ? (last - prev) / prev * 100 : 0.0);
              })
      .Derive("Flash",
              [&cat](const std::vector<DatabaseObject>& srcs) {
                double last = srcs[0].GetByName(cat, "Last").value().AsNumber();
                double prev =
                    srcs[0].GetByName(cat, "PrevClose").value().AsNumber();
                return Value(std::string(last > prev   ? "up"
                                         : last < prev ? "down"
                                                       : "flat"));
              })
      .Gui("Row", Value(int64_t(0)));
  db.price_cell =
      deployment.display_schema().Define(std::move(cell), cat).value();

  // ...and a portfolio summary over MANY database objects (positions and
  // their quotes interleaved: position_0, quote_0, position_1, quote_1...).
  DisplayClassDef summary("PortfolioSummary", db.position_cls);
  summary
      .Derive("MarketValue",
              [&cat](const std::vector<DatabaseObject>& srcs) {
                double total = 0;
                for (size_t i = 0; i + 1 < srcs.size(); i += 2) {
                  double shares =
                      srcs[i].GetByName(cat, "Shares").value().AsNumber();
                  double last =
                      srcs[i + 1].GetByName(cat, "Last").value().AsNumber();
                  total += shares * last;
                }
                return Value(total);
              })
      .Derive("UnrealizedPnl",
              [&cat](const std::vector<DatabaseObject>& srcs) {
                double pnl = 0;
                for (size_t i = 0; i + 1 < srcs.size(); i += 2) {
                  double shares =
                      srcs[i].GetByName(cat, "Shares").value().AsNumber();
                  double basis =
                      srcs[i].GetByName(cat, "CostBasis").value().AsNumber();
                  double last =
                      srcs[i + 1].GetByName(cat, "Last").value().AsNumber();
                  pnl += shares * (last - basis);
                }
                return Value(pnl);
              })
      .Gui("Collapsed", Value(false));
  db.portfolio_summary =
      deployment.display_schema().Define(std::move(summary), cat).value();

  // Seed market data + a portfolio.
  auto loader = deployment.NewSession(99);
  ClientApi& client = loader->client();
  Rng rng(5);
  TxnId t = client.Begin();
  for (const char* symbol : kSymbols) {
    Oid oid = client.AllocateOid();
    DatabaseObject quote(oid, db.quote_cls, 6);
    quote.Set(0, Value(symbol));
    double px = 20 + rng.NextDouble() * 180;
    quote.Set(1, Value(px));
    quote.Set(2, Value(px));
    quote.Set(3, Value(px - 0.125));
    quote.Set(4, Value(px + 0.125));
    quote.Set(5, Value(int64_t(0)));
    (void)client.Insert(t, std::move(quote));
    db.quotes.push_back(oid);
  }
  for (int i = 0; i < 3; ++i) {
    Oid oid = client.AllocateOid();
    DatabaseObject pos(oid, db.position_cls, 4);
    pos.Set(0, Value(kSymbols[i]));
    pos.Set(1, Value(db.quotes[i]));
    pos.Set(2, Value(int64_t(100 * (i + 1))));
    pos.Set(3, Value(50.0 + 20 * i));
    (void)client.Insert(t, std::move(pos));
    db.positions.push_back(oid);
  }
  (void)client.Commit(t);
  return db;
}

void RenderBoard(ActiveView* board, ActiveView* portfolio) {
  std::printf("%-6s %10s %8s %s\n", "sym", "last", "chg%", "flash");
  for (DisplayObject* dob : board->display_objects()) {
    std::printf("%-6s %10.2f %+7.2f%% %s\n",
                dob->Get("Symbol").value().AsString().c_str(),
                dob->Get("Last").value().AsNumber(),
                dob->Get("ChangePct").value().AsNumber(),
                dob->Get("Flash").value().AsString().c_str());
  }
  for (DisplayObject* dob : portfolio->display_objects()) {
    std::printf("portfolio: market value %.2f, unrealized P&L %+.2f\n",
                dob->Get("MarketValue").value().AsNumber(),
                dob->Get("UnrealizedPnl").value().AsNumber());
  }
}

}  // namespace

int main() {
  Deployment deployment;
  TickerDb db = Setup(deployment);
  const SchemaCatalog& cat = deployment.server().schema();

  // The trader's display: all price cells + one portfolio summary whose
  // OID list interleaves positions and their quotes.
  auto trader = deployment.NewSession(100);
  ActiveView* board = trader->CreateView("board");
  for (Oid quote : db.quotes) {
    (void)board->Materialize(deployment.display_schema().Find(db.price_cell),
                             {quote});
  }
  ActiveView* portfolio = trader->CreateView("portfolio");
  std::vector<Oid> sources;
  for (size_t i = 0; i < db.positions.size(); ++i) {
    sources.push_back(db.positions[i]);
    sources.push_back(db.quotes[i]);
  }
  (void)portfolio->Materialize(
      deployment.display_schema().Find(db.portfolio_summary), sources);

  std::printf("== opening board ==\n");
  RenderBoard(board, portfolio);

  // The market data feed: a writer client streaming ticks.
  auto feed = deployment.NewSession(50);
  Rng rng(77);
  int handled = 0;
  for (int tick = 0; tick < 30; ++tick) {
    Oid quote = db.quotes[rng.NextBelow(db.quotes.size())];
    auto result = RunTransaction(&feed->client(), [&](ClientApi& c, TxnId t) {
      IDBA_ASSIGN_OR_RETURN(DatabaseObject q, c.Read(t, quote));
      double last = q.GetByName(cat, "Last").value().AsNumber();
      double px = std::max(1.0, last * (1 + (rng.NextDouble() - 0.5) * 0.04));
      IDBA_RETURN_NOT_OK(q.SetByName(cat, "Last", Value(px)));
      IDBA_RETURN_NOT_OK(q.SetByName(
          cat, "Volume",
          q.GetByName(cat, "Volume").value().AsInt() + int64_t(100)));
      return c.Write(t, std::move(q));
    });
    (void)result;
    handled += trader->PumpOnce();  // the trader's listener keeps pace
  }

  std::printf("\n== after 30 ticks (%d notifications, board refreshed %llu "
              "times, portfolio %llu) ==\n",
              handled, static_cast<unsigned long long>(board->refreshes()),
              static_cast<unsigned long long>(portfolio->refreshes()));
  RenderBoard(board, portfolio);
  std::printf("\npropagation: %.0f virtual ms mean | stale objects: %zu\n",
              board->propagation_ms().mean(),
              board->CountStaleObjects() + portfolio->CountStaleObjects());
  return 0;
}
