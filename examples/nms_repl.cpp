// nms_repl: an interactive operator console over the full stack — the
// closest thing to the paper's prototype UI that a terminal allows.
// Type commands to open query-scoped live views, update links, run the
// monitor, and watch notifications keep every open view exact.
//
// Run interactively, pipe a script in, or run with no input to execute the
// built-in demo script.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/monitor.h"
#include "viz/color.h"

using namespace idba;

namespace {

struct Repl {
  Deployment deployment;
  NmsDatabase db;
  NmsDisplayClasses dcs;
  std::unique_ptr<InteractiveSession> session;
  std::unique_ptr<InteractiveSession> monitor_session;
  std::unique_ptr<MonitorProcess> monitor;

  Repl() {
    NmsConfig config;
    config.num_nodes = 10;
    config.avg_degree = 3.0;
    db = PopulateNms(&deployment.server(), config).value();
    dcs = RegisterNmsDisplayClasses(&deployment.display_schema(),
                                    deployment.server().schema(), db.schema)
              .value();
    session = deployment.NewSession(100);
    monitor_session = deployment.NewSession(50);
    monitor = std::make_unique<MonitorProcess>(
        &monitor_session->client(), &db,
        MonitorOptions{.updates_per_step = 2, .walk_step = 0.3});
  }

  void Help() {
    std::printf(
        "commands:\n"
        "  open <name> [min_util]   open a live view of links (>= min_util)\n"
        "  close <name>             close a view (releases display locks)\n"
        "  show <name>              render a view\n"
        "  views                    list open views\n"
        "  links                    list all links with current utilization\n"
        "  set <oid> <util>         commit an update to a link\n"
        "  monitor <steps>          run the monitoring process\n"
        "  stats                    deployment statistics\n"
        "  demo                     run the built-in demo script\n"
        "  quit\n");
  }

  void Show(const std::string& name) {
    ActiveView* view = session->FindView(name);
    if (view == nullptr) {
      std::printf("no view named '%s'\n", name.c_str());
      return;
    }
    session->PumpOnce();
    std::printf("view '%s' (%zu elements, %llu refreshes, %zu stale):\n",
                name.c_str(), view->size(),
                static_cast<unsigned long long>(view->refreshes()),
                view->CountStaleObjects());
    for (DisplayObject* dob : view->display_objects()) {
      double util = dob->Get("Utilization").value().AsNumber();
      std::printf("  oid:%-4llu %-5s %5.2f %s%s\n",
                  static_cast<unsigned long long>(dob->sources()[0].value),
                  dob->Get("Color").value().AsString().c_str(), util,
                  std::string(static_cast<int>(util * 24), '#').c_str(),
                  dob->marked_in_update() ? " [being updated]" : "");
    }
  }

  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "open") {
      std::string name;
      double min_util = 0.0;
      in >> name >> min_util;
      if (name.empty()) {
        std::printf("usage: open <name> [min_util]\n");
        return true;
      }
      ActiveView* view = session->CreateView(name);
      ObjectQuery q;
      q.cls = db.schema.link;
      if (min_util > 0) {
        q.conjuncts.push_back({"Utilization", CompareOp::kGe, Value(min_util)});
      }
      auto dobs = view->PopulateFromQuery(
          deployment.display_schema().Find(dcs.color_coded_link), q);
      if (dobs.ok()) {
        std::printf("opened '%s' with %zu links (display-locked)\n",
                    name.c_str(), dobs.value().size());
      } else {
        std::printf("error: %s\n", dobs.status().ToString().c_str());
      }
    } else if (cmd == "close") {
      std::string name;
      in >> name;
      Status st = session->CloseView(name);
      std::printf("%s\n", st.ok() ? "closed" : st.ToString().c_str());
    } else if (cmd == "show") {
      std::string name;
      in >> name;
      Show(name);
    } else if (cmd == "views") {
      for (ActiveView* view : session->views()) {
        std::printf("  %s (%zu elements)\n", view->name().c_str(), view->size());
      }
    } else if (cmd == "links") {
      const SchemaCatalog& cat = deployment.server().schema();
      for (Oid oid : db.link_oids) {
        auto link = deployment.server().heap().Read(oid);
        if (!link.ok()) continue;
        double util =
            link.value().GetByName(cat, "Utilization").value().AsNumber();
        std::printf("  oid:%-4llu util=%.2f (%s)\n",
                    static_cast<unsigned long long>(oid.value), util,
                    UtilizationColorName(util).c_str());
      }
    } else if (cmd == "set") {
      uint64_t oid = 0;
      double util = 0;
      in >> oid >> util;
      const SchemaCatalog& cat = deployment.server().schema();
      ClientApi& client = session->client();
      TxnId t = client.Begin();
      auto obj = client.Read(t, Oid(oid));
      if (!obj.ok()) {
        (void)client.Abort(t);
        std::printf("error: %s\n", obj.status().ToString().c_str());
        return true;
      }
      DatabaseObject link = std::move(obj).value();
      (void)link.SetByName(cat, "Utilization", Value(util));
      (void)client.Write(t, std::move(link));
      auto commit = client.Commit(t);
      std::printf("%s\n", commit.ok() ? "committed" : commit.status().ToString().c_str());
      session->PumpOnce();
    } else if (cmd == "monitor") {
      int steps = 1;
      in >> steps;
      for (int i = 0; i < steps; ++i) (void)monitor->StepOnce();
      int handled = session->PumpOnce();
      std::printf("%d monitor steps, %d notifications handled\n", steps, handled);
    } else if (cmd == "stats") {
      std::printf(
          "server: %llu commits, %llu aborts | DLM: %zu locked objects, %llu "
          "notifications | client cache: %zu objs %zu B | display cache: %zu "
          "objs %zu B\n",
          static_cast<unsigned long long>(deployment.server().commits()),
          static_cast<unsigned long long>(deployment.server().aborts()),
          deployment.dlm().locked_object_count(),
          static_cast<unsigned long long>(deployment.dlm().update_notifications()),
          session->client().cache().entry_count(),
          session->client().cache().bytes_used(),
          session->display_cache().object_count(),
          session->display_cache().bytes_used());
    } else if (cmd == "demo") {
      for (const char* step :
           {"open all", "show all", "monitor 10", "show all", "open hot 0.7",
            "show hot", "stats", "close hot", "close all", "stats"}) {
        std::printf("repl> %s\n", step);
        Execute(step);
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }
};

}  // namespace

int main() {
  Repl repl;
  std::printf("idba nms console — %zu nodes, %zu links. Type 'help'.\n",
              repl.db.node_oids.size(), repl.db.link_oids.size());
  std::string line;
  bool any_input = false;
  while (std::getline(std::cin, line)) {
    any_input = true;
    if (!repl.Execute(line)) break;
  }
  if (!any_input) {
    std::printf("(no input — running the demo script)\n");
    repl.Execute("demo");
  }
  return 0;
}
