// Quickstart: the paper's figure-1 scenario end to end.
//
// Defines a Link database class, the ColorCodedLink / WidthCodedLink
// display classes over it, opens two client sessions (a viewer and an
// operator), and shows a committed update propagating to the viewer's
// display objects through display locks + post-commit notification.

#include <cstdio>

#include "core/session.h"
#include "viz/color.h"

using namespace idba;

int main() {
  // --- 1. Deployment: server + DLM agent + notification bus -------------
  Deployment deployment;
  SchemaCatalog& catalog = deployment.server().schema();

  // --- 2. Database schema: pure real-world modelling, zero GUI state ----
  ClassId node_cls = catalog.DefineClass("NetworkNode").value();
  (void)catalog.AddAttribute(node_cls, "Name", ValueType::kString);
  ClassId link_cls = catalog.DefineClass("Link").value();
  (void)catalog.AddAttribute(link_cls, "Name", ValueType::kString);
  (void)catalog.AddAttribute(link_cls, "From", ValueType::kOid);
  (void)catalog.AddAttribute(link_cls, "To", ValueType::kOid);
  (void)catalog.AddAttribute(link_cls, "Utilization", ValueType::kDouble,
                             Value(0.0));
  (void)catalog.AddAttribute(link_cls, "CapacityMbps", ValueType::kDouble,
                             Value(10.0));

  // --- 3. Display schema (external to the database!) — figure 1 ---------
  DisplaySchema& dschema = deployment.display_schema();
  DisplayClassDef color_def("ColorCodedLink", link_cls);
  color_def.Project("From", "From")
      .Project("To", "To")
      .Project("Utilization", "Utilization")
      .Derive("Color",
              [&catalog](const std::vector<DatabaseObject>& srcs) {
                double u = srcs[0].GetByName(catalog, "Utilization")
                               .value()
                               .AsNumber();
                return Value(UtilizationColorName(u));
              })
      .Gui("X1", Value(0.0))
      .Gui("Y1", Value(0.0))
      .Gui("X2", Value(0.0))
      .Gui("Y2", Value(0.0));
  DisplayClassId color_dc = dschema.Define(std::move(color_def), catalog).value();

  DisplayClassDef width_def("WidthCodedLink", link_cls);
  width_def.Project("Utilization", "Utilization")
      .Derive("Width",
              [&catalog](const std::vector<DatabaseObject>& srcs) {
                double u = srcs[0].GetByName(catalog, "Utilization")
                               .value()
                               .AsNumber();
                return Value(UtilizationWidth(u));
              })
      .Gui("X1", Value(0.0))
      .Gui("Y1", Value(0.0));
  DisplayClassId width_dc = dschema.Define(std::move(width_def), catalog).value();

  // --- 4. Populate a tiny database --------------------------------------
  auto op_session = deployment.NewSession(101);  // the updating operator
  DatabaseClient& op = op_session->client();
  TxnId setup = op.Begin();
  Oid n1 = op.AllocateOid(), n2 = op.AllocateOid(), l1 = op.AllocateOid();
  DatabaseObject node1(n1, node_cls, 1);
  node1.Set(0, Value("gateway"));
  DatabaseObject node2(n2, node_cls, 1);
  node2.Set(0, Value("backbone"));
  DatabaseObject link(l1, link_cls, 5);
  link.Set(0, Value("uplink-1"));
  link.Set(1, Value(n1));
  link.Set(2, Value(n2));
  link.Set(3, Value(0.12));
  link.Set(4, Value(100.0));
  (void)op.Insert(setup, node1);
  (void)op.Insert(setup, node2);
  (void)op.Insert(setup, link);
  (void)op.Commit(setup);

  // --- 5. Viewer session: an active view over the link ------------------
  auto viewer = deployment.NewSession(100);
  ActiveView* color_view = viewer->CreateView("color-coded");
  ActiveView* width_view = viewer->CreateView("width-coded");
  DisplayObject* color_line =
      color_view->Materialize(dschema.Find(color_dc), {l1}).value();
  DisplayObject* width_line =
      width_view->Materialize(dschema.Find(width_dc), {l1}).value();
  (void)color_line->SetGui("X1", Value(3.0));  // user drags the element
  (void)color_line->SetGui("Y1", Value(7.0));

  std::printf("before update:\n  %s\n  %s\n",
              color_line->ToString().c_str(), width_line->ToString().c_str());

  // --- 6. The operator commits an update --------------------------------
  TxnId txn = op.Begin();
  DatabaseObject fresh = op.Read(txn, l1).value();
  (void)fresh.SetByName(catalog, "Utilization", Value(0.93));
  (void)op.Write(txn, std::move(fresh));
  (void)op.Commit(txn);

  // --- 7. Notification propagates; the display refreshes ----------------
  int handled = viewer->PumpOnce();
  std::printf(
      "\nafter update (%d notification handled, both displays refreshed "
      "from ONE message thanks to the DLC):\n  %s\n  %s\n",
      handled, color_line->ToString().c_str(), width_line->ToString().c_str());

  std::printf("\npropagation latency (calibrated 1996 virtual time): %.0f ms\n",
              color_view->propagation_ms().mean());
  std::printf("display locks held at DLM: %zu object(s)\n",
              deployment.dlm().locked_object_count());
  std::printf(
      "memory: db object %zu B in client DB cache vs display object %zu B in "
      "display cache\n",
      op.ReadCurrent(l1).value().MemoryBytes(), color_line->MemoryBytes());
  return 0;
}
