// Quickstart: the paper's figure-1 scenario end to end.
//
// Defines a Link database class, the ColorCodedLink / WidthCodedLink
// display classes over it, opens two client sessions (a viewer and an
// operator), and shows a committed update propagating to the viewer's
// display objects through display locks + post-commit notification.
//
// The scenario runs on either backend:
//
//   ./quickstart                          # in-process deployment
//   ./idba_serve --port 7450 &            # then, in another process:
//   ./quickstart --connect 127.0.0.1:7450 # same scenario over TCP
//
// --trace FILE additionally records every client API call as a trace and
// writes a Chrome trace_event JSON on exit (chrome://tracing / Perfetto):
// each RPC decomposes into client serialize / network / server queue /
// server execute / client deserialize child spans.
//
// Both paths drive the identical application code — only the backend
// wiring in main() differs, which is the whole point of the ClientApi /
// DisplayLockService abstraction.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "core/session.h"
#include "net/remote_client.h"
#include "obs/trace.h"
#include "viz/color.h"

using namespace idba;

namespace {

struct DbSchema {
  ClassId node_cls = 0;
  ClassId link_cls = 0;
};

// --- Database schema: pure real-world modelling, zero GUI state -----------
// Issued through the client API so it works identically against an
// in-process server or a remote one (where DDL is an RPC, replayed into
// the client's local catalog copy). A long-lived server may already hold
// the classes from a previous run — reuse them.
Result<ClassId> DefineOrFind(ClientApi& op, const std::string& name) {
  Result<ClassId> r = op.DefineClass(name);
  if (r.ok()) return r;
  if (const ClassDef* def = op.schema().FindByName(name)) return def->id();
  return r;
}

DbSchema DefineDbSchema(ClientApi& op) {
  DbSchema s;
  s.node_cls = DefineOrFind(op, "NetworkNode").value();
  (void)op.AddAttribute(s.node_cls, "Name", ValueType::kString);
  s.link_cls = DefineOrFind(op, "Link").value();
  (void)op.AddAttribute(s.link_cls, "Name", ValueType::kString);
  (void)op.AddAttribute(s.link_cls, "From", ValueType::kOid);
  (void)op.AddAttribute(s.link_cls, "To", ValueType::kOid);
  (void)op.AddAttribute(s.link_cls, "Utilization", ValueType::kDouble,
                        Value(0.0));
  (void)op.AddAttribute(s.link_cls, "CapacityMbps", ValueType::kDouble,
                        Value(10.0));
  return s;
}

// --- Populate a tiny database ---------------------------------------------
Oid Populate(ClientApi& op, const DbSchema& s) {
  TxnId setup = op.Begin();
  Oid n1 = op.AllocateOid(), n2 = op.AllocateOid(), l1 = op.AllocateOid();
  DatabaseObject node1(n1, s.node_cls, 1);
  node1.Set(0, Value("gateway"));
  DatabaseObject node2(n2, s.node_cls, 1);
  node2.Set(0, Value("backbone"));
  DatabaseObject link(l1, s.link_cls, 5);
  link.Set(0, Value("uplink-1"));
  link.Set(1, Value(n1));
  link.Set(2, Value(n2));
  link.Set(3, Value(0.12));
  link.Set(4, Value(100.0));
  (void)op.Insert(setup, node1);
  (void)op.Insert(setup, node2);
  (void)op.Insert(setup, link);
  (void)op.Commit(setup);
  return l1;
}

// --- Display schema (external to the database!) — figure 1 ----------------
// `catalog` must outlive the schema: the derivation lambdas resolve
// attributes through it on every refresh.
struct DisplayIds {
  DisplayClassId color_dc = 0;
  DisplayClassId width_dc = 0;
};

DisplayIds DefineDisplaySchema(DisplaySchema* dschema,
                               const SchemaCatalog& catalog,
                               ClassId link_cls) {
  DisplayIds ids;
  DisplayClassDef color_def("ColorCodedLink", link_cls);
  color_def.Project("From", "From")
      .Project("To", "To")
      .Project("Utilization", "Utilization")
      .Derive("Color",
              [&catalog](const std::vector<DatabaseObject>& srcs) {
                double u = srcs[0].GetByName(catalog, "Utilization")
                               .value()
                               .AsNumber();
                return Value(UtilizationColorName(u));
              })
      .Gui("X1", Value(0.0))
      .Gui("Y1", Value(0.0))
      .Gui("X2", Value(0.0))
      .Gui("Y2", Value(0.0));
  ids.color_dc = dschema->Define(std::move(color_def), catalog).value();

  DisplayClassDef width_def("WidthCodedLink", link_cls);
  width_def.Project("Utilization", "Utilization")
      .Derive("Width",
              [&catalog](const std::vector<DatabaseObject>& srcs) {
                double u = srcs[0].GetByName(catalog, "Utilization")
                               .value()
                               .AsNumber();
                return Value(UtilizationWidth(u));
              })
      .Gui("X1", Value(0.0))
      .Gui("Y1", Value(0.0));
  ids.width_dc = dschema->Define(std::move(width_def), catalog).value();
  return ids;
}

// --- The figure-1 interaction, backend-agnostic ---------------------------
void RunScenario(ClientApi& op, InteractiveSession& viewer,
                 const DisplaySchema& dschema, const DisplayIds& ids,
                 Oid l1) {
  ActiveView* color_view = viewer.CreateView("color-coded");
  ActiveView* width_view = viewer.CreateView("width-coded");
  DisplayObject* color_line =
      color_view->Materialize(dschema.Find(ids.color_dc), {l1}).value();
  DisplayObject* width_line =
      width_view->Materialize(dschema.Find(ids.width_dc), {l1}).value();
  (void)color_line->SetGui("X1", Value(3.0));  // user drags the element
  (void)color_line->SetGui("Y1", Value(7.0));

  std::printf("before update:\n  %s\n  %s\n",
              color_line->ToString().c_str(), width_line->ToString().c_str());

  // The operator commits an update.
  TxnId txn = op.Begin();
  DatabaseObject fresh = op.Read(txn, l1).value();
  (void)fresh.SetByName(op.schema(), "Utilization", Value(0.93));
  (void)op.Write(txn, std::move(fresh));
  (void)op.Commit(txn);

  // Notification propagates; the display refreshes. Over TCP the NOTIFY
  // frame arrives asynchronously, so give it a moment to land.
  for (int i = 0; i < 500 && viewer.client().inbox().pending() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  int handled = viewer.PumpOnce();
  std::printf(
      "\nafter update (%d notification handled, both displays refreshed "
      "from ONE message thanks to the DLC):\n  %s\n  %s\n",
      handled, color_line->ToString().c_str(), width_line->ToString().c_str());

  std::printf("\npropagation latency (calibrated 1996 virtual time): %.0f ms\n",
              color_view->propagation_ms().mean());
  std::printf(
      "memory: db object %zu B in client DB cache vs display object %zu B in "
      "display cache\n",
      op.ReadCurrent(l1).value().MemoryBytes(), color_line->MemoryBytes());
}

}  // namespace

int main(int argc, char** argv) {
  const char* connect = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--connect host:port] [--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace_path != nullptr) {
    obs::SetTraceSampleEvery(1);
    obs::SetTraceSampling(true);
  }
  // Write the recorded spans however the scenario exits.
  struct TraceDump {
    const char* path;
    ~TraceDump() {
      if (path == nullptr) return;
      std::FILE* f = std::fopen(path, "w");
      if (f == nullptr) return;
      std::string json = obs::GlobalRecorder().DumpChromeTrace();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote %zu trace bytes to %s\n", json.size(), path);
    }
  } dump{trace_path};

  if (connect == nullptr) {
    // --- In-process backend: server + DLM agent + bus in this process ----
    Deployment deployment;
    auto op_session = deployment.NewSession(101);  // the updating operator
    ClientApi& op = op_session->client();

    DbSchema schema = DefineDbSchema(op);
    Oid l1 = Populate(op, schema);

    auto viewer = deployment.NewSession(100);
    DisplaySchema dschema;
    DisplayIds ids =
        DefineDisplaySchema(&dschema, op.schema(), schema.link_cls);
    RunScenario(op, *viewer, dschema, ids, l1);
    std::printf("display locks held at DLM: %zu object(s)\n",
                deployment.dlm().locked_object_count());
    return 0;
  }

  // --- TCP backend: clients connect to an idba_serve process -------------
  const char* colon = std::strrchr(connect, ':');
  if (colon == nullptr) {
    std::fprintf(stderr, "--connect expects host:port\n");
    return 2;
  }
  std::string host(connect, colon - connect);
  uint16_t port = static_cast<uint16_t>(std::atoi(colon + 1));

  auto op_or = RemoteDatabaseClient::Connect(host, port, 101);
  if (!op_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 op_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<RemoteDatabaseClient> op = std::move(op_or).value();

  DbSchema schema = DefineDbSchema(*op);
  Oid l1 = Populate(*op, schema);

  // The viewer connects after the DDL above: the schema catalog is
  // snapshotted at Hello.
  auto viewer_or = RemoteDatabaseClient::Connect(host, port, 100);
  if (!viewer_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 viewer_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<RemoteDatabaseClient> viewer_client =
      std::move(viewer_or).value();
  RemoteDatabaseClient* raw = viewer_client.get();
  // The remote client is both the ClientApi and the DisplayLockService;
  // notifications arrive through its own inbox, so no bus is needed.
  InteractiveSession viewer(std::move(viewer_client), raw, /*bus=*/nullptr);

  DisplaySchema dschema;
  DisplayIds ids = DefineDisplaySchema(
      &dschema, viewer.client().schema(), schema.link_cls);
  RunScenario(*op, viewer, dschema, ids, l1);
  std::printf("wire traffic: operator %llu B out / %llu B in, viewer %llu B "
              "out / %llu B in\n",
              static_cast<unsigned long long>(op->bytes_sent()),
              static_cast<unsigned long long>(op->bytes_received()),
              static_cast<unsigned long long>(raw->bytes_sent()),
              static_cast<unsigned long long>(raw->bytes_received()));
  return 0;
}
