// collab_edit: two operators editing the same database objects under the
// early-notify protocol (paper §3.3) — the display marks objects "being
// updated" while another user holds the exclusive lock, and resolves the
// mark on commit or abort.

#include <cstdio>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

using namespace idba;

namespace {

void ShowView(const char* who, ActiveView* view) {
  std::printf("%s sees:\n", who);
  for (DisplayObject* dob : view->display_objects()) {
    std::printf("  link oid:%llu  util=%.2f color=%s%s\n",
                static_cast<unsigned long long>(dob->sources()[0].value),
                dob->Get("Utilization").value().AsNumber(),
                dob->Get("Color").value().AsString().c_str(),
                dob->marked_in_update() ? "  << being updated by another user"
                                        : "");
  }
}

}  // namespace

int main() {
  DeploymentOptions dopts;
  dopts.dlm.protocol = NotifyProtocol::kEarlyNotify;
  Deployment deployment(dopts);
  NmsConfig config;
  config.num_nodes = 4;
  config.sites = 1;
  config.buildings_per_site = 1;
  config.racks_per_building = 1;
  config.devices_per_rack = 1;
  NmsDatabase db = PopulateNms(&deployment.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&deployment.display_schema(),
                                deployment.server().schema(), db.schema)
          .value();
  const SchemaCatalog& catalog = deployment.server().schema();
  const DisplayClassDef* dc =
      deployment.display_schema().Find(dcs.color_coded_link);

  // Alice and Bob both display the same two links.
  auto alice = deployment.NewSession(100);
  auto bob = deployment.NewSession(101);
  ActiveView* alice_view = alice->CreateView("alice");
  ActiveView* bob_view = bob->CreateView("bob");
  for (int i = 0; i < 2; ++i) {
    (void)alice_view->Materialize(dc, {db.link_oids[i]});
    (void)bob_view->Materialize(dc, {db.link_oids[i]});
  }

  std::printf("== initial state ==\n");
  ShowView("alice", alice_view);
  ShowView("bob", bob_view);

  // --- Alice starts editing link 0 (X lock -> intent notification) ------
  std::printf("\n== alice opens the configuration dialog for link %llu ==\n",
              static_cast<unsigned long long>(db.link_oids[0].value));
  TxnId alice_txn = alice->client().Begin();
  DatabaseObject link = alice->client().Read(alice_txn, db.link_oids[0]).value();
  (void)link.SetByName(catalog, "Utilization", Value(0.85));
  (void)alice->client().Write(alice_txn, std::move(link));  // X lock here

  bob->PumpOnce();
  ShowView("bob", bob_view);
  std::printf("bob's GUI deters him from editing the marked link (mark=%s)\n",
              bob_view->IsSourceMarked(db.link_oids[0]) ? "yes" : "no");

  // --- Alice commits: bob gets the resolution + new value ---------------
  std::printf("\n== alice commits ==\n");
  (void)alice->client().Commit(alice_txn);
  bob->PumpOnce();
  alice->PumpOnce();
  ShowView("bob", bob_view);

  // --- Bob starts an edit and aborts: marks roll back everywhere --------
  std::printf("\n== bob starts editing link %llu, then cancels ==\n",
              static_cast<unsigned long long>(db.link_oids[1].value));
  TxnId bob_txn = bob->client().Begin();
  DatabaseObject link2 = bob->client().Read(bob_txn, db.link_oids[1]).value();
  (void)link2.SetByName(catalog, "Utilization", Value(0.01));
  (void)bob->client().Write(bob_txn, std::move(link2));
  alice->PumpOnce();
  ShowView("alice", alice_view);
  (void)bob->client().Abort(bob_txn);
  alice->PumpOnce();
  std::printf("after bob cancels:\n");
  ShowView("alice", alice_view);

  std::printf(
      "\nDLM: %llu intent notifications, %llu update notifications sent\n",
      static_cast<unsigned long long>(deployment.dlm().intent_notifications()),
      static_cast<unsigned long long>(deployment.dlm().update_notifications()));
  return 0;
}
