// treemap_explorer: the paper's two hierarchy visualizations (§4) —
// Tree-Map and PDQ Tree-browser — over the hardware containment hierarchy,
// with a live update refreshing the affected tile through display locks.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/monitor.h"
#include "viz/ascii_canvas.h"
#include "viz/pdq_tree.h"
#include "viz/treemap.h"

using namespace idba;

namespace {

// Builds the TreemapNode / PdqNode hierarchy from the database.
template <typename NodeT>
NodeT BuildHierarchy(Deployment& deployment, Oid oid,
                     const std::function<void(NodeT&, const DatabaseObject&)>& fill) {
  const SchemaCatalog& catalog = deployment.server().schema();
  DatabaseObject obj = deployment.server().heap().Read(oid).value();
  NodeT node;
  node.label = obj.GetByName(catalog, "Name").value().AsString();
  node.tag = oid.value;
  fill(node, obj);
  auto children = obj.GetByName(catalog, "Children");
  if (children.ok() && children.value().type() == ValueType::kOidList) {
    for (Oid child : children.value().AsOidList()) {
      node.children.push_back(BuildHierarchy<NodeT>(deployment, child, fill));
    }
  }
  return node;
}

void RenderTreemap(Deployment& deployment, const NmsDatabase& db,
                   TreemapAlgorithm algorithm, const char* title) {
  const SchemaCatalog& catalog = deployment.server().schema();
  std::function<void(TreemapNode&, const DatabaseObject&)> fill =
      [&](TreemapNode& node, const DatabaseObject& obj) {
        node.weight = obj.GetByName(catalog, "Capacity").value().AsNumber();
      };
  TreemapNode root =
      BuildHierarchy<TreemapNode>(deployment, db.hardware_root, fill);
  TreemapOptions opts;
  opts.algorithm = algorithm;
  auto rects = LayoutTreemap(root, Rect{0, 0, 76, 22}, opts).value();
  AsciiCanvas canvas(78, 23);
  for (const auto& r : rects) {
    if (r.depth > 4) continue;  // show down to the device level
    canvas.Box(r.rect, '+');
    if (r.depth <= 1 && r.rect.w > 8) {
      canvas.Text(static_cast<int>(r.rect.x) + 1,
                  static_cast<int>(r.rect.y) + 1, r.label.substr(0, 8));
    }
  }
  std::printf("%s (%zu rectangles laid out, devices and above shown)\n%s\n",
              title, rects.size(), canvas.ToString().c_str());
}

}  // namespace

int main() {
  Deployment deployment;
  NmsConfig config;
  config.num_nodes = 8;
  config.sites = 2;
  config.buildings_per_site = 2;
  config.racks_per_building = 2;
  config.devices_per_rack = 3;
  NmsDatabase db = PopulateNms(&deployment.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&deployment.display_schema(),
                                deployment.server().schema(), db.schema)
          .value();
  const SchemaCatalog& catalog = deployment.server().schema();

  std::printf("treemap_explorer — hardware hierarchy of %zu components\n\n",
              db.all_hardware_oids.size());

  // --- Tree-Map, both algorithms ----------------------------------------
  RenderTreemap(deployment, db, TreemapAlgorithm::kSliceAndDice,
                "Tree-Map (slice-and-dice, Johnson & Shneiderman 1991)");
  RenderTreemap(deployment, db, TreemapAlgorithm::kSquarified,
                "Tree-Map (squarified extension)");

  // --- PDQ Tree-browser with dynamic-query pruning -----------------------
  std::function<void(PdqNode&, const DatabaseObject&)> fill =
      [&](PdqNode& node, const DatabaseObject& obj) {
        node.attributes["Utilization"] =
            obj.GetByName(catalog, "Utilization").value().AsNumber();
        node.attributes["Status"] =
            obj.GetByName(catalog, "Status").value().AsNumber();
      };
  PdqNode root = BuildHierarchy<PdqNode>(deployment, db.hardware_root, fill);
  // Dynamic queries prune at a chosen level (here: devices are level 4 of
  // root/site/building/rack/device/card/port).
  for (double threshold : {1.0, 0.6, 0.3}) {
    std::vector<DynamicQuery> queries = {
        {/*level=*/4, "Utilization", 0.0, threshold}};
    auto layout = LayoutPdqTree(root, queries).value();
    std::printf(
        "PDQ browser, device-level dynamic query Utilization <= %.1f: %zu "
        "visible, %zu pruned\n",
        threshold, layout.visible_count, layout.pruned_count);
  }
  {
    // Render the pruned browser (levels 0-3) as an indented tree with the
    // layout's computed row positions.
    std::vector<DynamicQuery> queries = {{4, "Utilization", 0.0, 0.3}};
    auto layout = LayoutPdqTree(root, queries).value();
    std::printf("\nPDQ browser after pruning (levels 0-3, sorted by row):\n");
    std::vector<const PdqLayoutNode*> shown;
    for (const auto& n : layout.nodes) {
      if (n.level <= 3) shown.push_back(&n);
    }
    std::sort(shown.begin(), shown.end(),
              [](const PdqLayoutNode* a, const PdqLayoutNode* b) {
                return a->position.y < b->position.y;
              });
    for (size_t i = 0; i < shown.size() && i < 24; ++i) {
      std::printf("%*s%s\n", shown[i]->level * 4, "", shown[i]->label.c_str());
    }
    if (shown.size() > 24) std::printf("  ... %zu more rows\n", shown.size() - 24);
  }

  // --- A live update refreshing a display-locked tile --------------------
  auto viewer = deployment.NewSession(100);
  ActiveView* tiles = viewer->CreateView("tiles");
  const DisplayClassDef* tile_dc =
      deployment.display_schema().Find(dcs.hardware_tile);
  Oid device = db.device_oids[0];
  DisplayObject* tile = tiles->Materialize(tile_dc, {device}).value();
  std::printf("tile before update: %s\n", tile->ToString().c_str());

  auto op_session = deployment.NewSession(101);
  ClientApi& op = op_session->client();
  TxnId txn = op.Begin();
  DatabaseObject dev = op.Read(txn, device).value();
  (void)dev.SetByName(catalog, "Utilization", Value(0.97));
  (void)op.Write(txn, std::move(dev));
  (void)op.Commit(txn);
  viewer->PumpOnce();
  std::printf("tile after update : %s\n", tile->ToString().c_str());
  std::printf("(refreshed via display lock notification, %.0f virtual ms "
              "after commit)\n",
              tiles->propagation_ms().mean());
  return 0;
}
