// query_dashboard: dynamic queries over active views — the GUI pattern the
// paper's related-work section points at (object views / virtual classes)
// combined with display locks. A "hot links" dashboard is populated from a
// server-side predicate query; as utilizations drift, the operator
// re-runs the query to re-scope the view, while everything currently shown
// stays live through notifications. Also demonstrates force-directed
// topology layout and shortest-path display objects.

#include <cstdio>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/monitor.h"
#include "nms/paths.h"
#include "viz/graph_layout.h"

using namespace idba;

namespace {

void ShowDashboard(ActiveView* view) {
  std::printf("hot-links dashboard (%zu entries):\n", view->size());
  for (DisplayObject* dob : view->display_objects()) {
    double util = dob->Get("Utilization").value().AsNumber();
    std::printf("  oid:%-4llu util=%.2f %-5s %s\n",
                static_cast<unsigned long long>(dob->sources()[0].value), util,
                dob->Get("Color").value().AsString().c_str(),
                std::string(static_cast<int>(util * 20), '#').c_str());
  }
}

}  // namespace

int main() {
  Deployment deployment;
  NmsConfig config;
  config.num_nodes = 12;
  config.avg_degree = 3.0;
  NmsDatabase db = PopulateNms(&deployment.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&deployment.display_schema(),
                                deployment.server().schema(), db.schema)
          .value();
  const DisplayClassDef* link_dc =
      deployment.display_schema().Find(dcs.color_coded_link);

  auto session = deployment.NewSession(100);
  auto monitor_session = deployment.NewSession(50);
  MonitorProcess monitor(&monitor_session->client(), &db,
                         MonitorOptions{.updates_per_step = 4, .walk_step = 0.4});

  // --- 1. Query-scoped view: links with utilization >= 0.6 --------------
  ObjectQuery hot;
  hot.cls = db.schema.link;
  hot.conjuncts = {{"Utilization", CompareOp::kGe, Value(0.6)}};

  ActiveView* dashboard = session->CreateView("hot-links");
  (void)dashboard->PopulateFromQuery(link_dc, hot);
  std::printf("== initial query: Utilization >= 0.6 ==\n");
  ShowDashboard(dashboard);
  std::printf("(one batched display-lock message for the whole view: %llu "
              "DLM lock requests)\n\n",
              static_cast<unsigned long long>(deployment.dlm().lock_requests()));

  // --- 2. Live updates refresh shown entries ----------------------------
  for (int i = 0; i < 12; ++i) (void)monitor.StepOnce();
  session->PumpOnce();
  std::printf("== after %llu monitor updates (shown entries refreshed "
              "in place, %llu refreshes) ==\n",
              static_cast<unsigned long long>(monitor.updates_committed()),
              static_cast<unsigned long long>(dashboard->refreshes()));
  ShowDashboard(dashboard);

  // --- 3. Re-scope: close and re-run the query --------------------------
  (void)session->CloseView("hot-links");
  dashboard = session->CreateView("hot-links");
  (void)dashboard->PopulateFromQuery(link_dc, hot);
  std::printf("\n== re-ran the query: view re-scoped to the CURRENT hot set ==\n");
  ShowDashboard(dashboard);

  // --- 4. A path summary over the live topology -------------------------
  TopologyIndex topo = TopologyIndex::Build(&deployment.server(), db).value();
  auto path = topo.ShortestPath(db.node_oids[0], db.node_oids[5]);
  if (path.ok() && !path.value().empty()) {
    ActiveView* paths = session->CreateView("paths");
    auto dob = paths->Materialize(
        deployment.display_schema().Find(dcs.path_summary), path.value());
    if (dob.ok()) {
      std::printf("\npath node0 -> node5: %llu hops, max util %.2f (%s)\n",
                  static_cast<unsigned long long>(
                      dob.value()->Get("HopCount").value().AsInt()),
                  dob.value()->Get("MaxUtilization").value().AsNumber(),
                  dob.value()->Get("Color").value().AsString().c_str());
    }
  }

  // --- 5. Force-directed topology layout --------------------------------
  std::vector<GraphEdge> edges;
  for (const auto& e : topo.edges()) edges.push_back({e.a, e.b});
  auto layout = LayoutGraph(topo.node_count(), edges, Rect{0, 0, 72, 20});
  if (layout.ok()) {
    std::printf("\nforce-directed layout quality: mean edge length %.1f, "
                "min node distance %.1f (in a 72x20 canvas)\n",
                MeanEdgeLength(layout.value(), edges),
                MinNodeDistance(layout.value()));
  }
  return 0;
}
