// nms_console: the paper's §4 scenario as a runnable console application.
//
// A network-management deployment with four concurrent operators (threads)
// performing monitoring and updating functions, plus a monitor process
// continuously updating link utilizations. One operator's display is
// rendered to the terminal as ASCII frames: a color-coded link table and a
// line-drawn topology view, both kept consistent via display locks.

#include <chrono>
#include <cstdio>
#include <thread>

#include "nms/monitor.h"
#include "nms/operators.h"
#include "viz/ascii_canvas.h"
#include "viz/color.h"

using namespace idba;

namespace {

void RenderLinkTable(ActiveView* view, const SchemaCatalog& catalog) {
  std::printf("%-6s %-22s %-12s %-7s %s\n", "oid", "link", "utilization",
              "color", "bar");
  for (DisplayObject* dob : view->display_objects()) {
    double util = dob->Get("Utilization").value().AsNumber();
    std::string color = dob->Get("Color").value().AsString();
    int bar = static_cast<int>(util * 24);
    std::string bar_s(bar, '#');
    std::string marked = dob->marked_in_update() ? " [being updated]" : "";
    std::printf("%-6llu %-22s %-12.2f %-7s %-24s%s\n",
                static_cast<unsigned long long>(dob->sources()[0].value),
                ("link-" + std::to_string(dob->id())).c_str(), util,
                color.c_str(), bar_s.c_str(), marked.c_str());
  }
  (void)catalog;
}

void RenderTopology(Deployment& deployment, const NmsDatabase& db,
                    ActiveView* view) {
  const SchemaCatalog& catalog = deployment.server().schema();
  AsciiCanvas canvas(72, 18);
  // Nodes on a circle.
  std::vector<Point> positions(db.node_oids.size());
  for (size_t i = 0; i < db.node_oids.size(); ++i) {
    double angle = 2 * 3.14159265 * i / db.node_oids.size();
    positions[i] = Point{36 + 30 * std::cos(angle), 9 + 7.5 * std::sin(angle)};
  }
  auto node_index = [&](Oid oid) -> size_t {
    for (size_t i = 0; i < db.node_oids.size(); ++i) {
      if (db.node_oids[i] == oid) return i;
    }
    return 0;
  };
  // Links drawn with utilization coding: '.' low, '+' medium, '#' high.
  for (DisplayObject* dob : view->display_objects()) {
    Oid from = dob->Get("From").value().AsOid();
    Oid to = dob->Get("To").value().AsOid();
    double util = dob->Get("Utilization").value().AsNumber();
    char ch = util < 1.0 / 3 ? '.' : (util < 2.0 / 3 ? '+' : '#');
    canvas.Line(positions[node_index(from)], positions[node_index(to)], ch);
  }
  for (size_t i = 0; i < db.node_oids.size(); ++i) {
    auto node = deployment.server().heap().Read(db.node_oids[i]);
    std::string name = node.ok()
                           ? node.value().GetByName(catalog, "Name").value().AsString()
                           : "?";
    canvas.Put(static_cast<int>(positions[i].x), static_cast<int>(positions[i].y), 'O');
  }
  std::printf("%s", canvas.ToString().c_str());
  std::printf("legend: O node, '.' <33%% util, '+' <66%%, '#' high\n");
}

}  // namespace

int main() {
  DeploymentOptions dopts;
  dopts.dlm.protocol = NotifyProtocol::kEarlyNotify;
  Deployment deployment(dopts);
  NmsConfig config;
  config.num_nodes = 10;
  config.avg_degree = 3.0;
  NmsDatabase db = PopulateNms(&deployment.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&deployment.display_schema(),
                                deployment.server().schema(), db.schema)
          .value();

  std::printf("nms_console — %zu nodes, %zu links, %zu hardware components\n\n",
              db.node_oids.size(), db.link_oids.size(),
              db.all_hardware_oids.size());

  // Four concurrent operators (paper §4.3) on their own threads.
  std::vector<std::unique_ptr<OperatorSession>> operators;
  for (int i = 0; i < 4; ++i) {
    OperatorOptions oo;
    oo.seed = 42 + i;
    oo.update_probability = 0.25;
    oo.view_size = 12;
    oo.honor_update_marks = true;
    operators.push_back(
        OperatorSession::Create(&deployment, 100 + i, &db, &dcs, oo).value());
  }
  // The continuously-updating monitoring process.
  auto monitor_session = deployment.NewSession(50);
  MonitorOptions mo;
  mo.interval_ms = 15;
  mo.updates_per_step = 1;
  MonitorProcess monitor(&monitor_session->client(), &db, mo);
  monitor.Start();

  std::vector<std::thread> threads;
  std::atomic<bool> running{true};
  for (auto& op : operators) {
    threads.emplace_back([&op, &running] {
      while (running.load()) {
        (void)op->StepOnce();
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }

  ActiveView* console_view = operators[0]->view();
  const SchemaCatalog& catalog = deployment.server().schema();
  for (int frame = 1; frame <= 3; ++frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    std::printf("---- frame %d (operator 1's display) ----\n", frame);
    RenderLinkTable(console_view, catalog);
    std::printf("\n");
    RenderTopology(deployment, db, console_view);
    std::printf("\n");
  }

  running = false;
  for (auto& t : threads) t.join();
  monitor.Stop();

  std::printf("---- session statistics ----\n");
  std::printf("monitor: %llu update txns committed, %llu aborted\n",
              static_cast<unsigned long long>(monitor.updates_committed()),
              static_cast<unsigned long long>(monitor.aborts()));
  for (size_t i = 0; i < operators.size(); ++i) {
    auto& op = *operators[i];
    std::printf(
        "operator %zu: %llu monitor actions, %llu updates committed, %llu "
        "aborted, %llu mark-skips, %llu display refreshes, propagation mean "
        "%.0f ms\n",
        i + 1, static_cast<unsigned long long>(op.monitor_actions()),
        static_cast<unsigned long long>(op.updates_committed()),
        static_cast<unsigned long long>(op.updates_aborted()),
        static_cast<unsigned long long>(op.marked_skips()),
        static_cast<unsigned long long>(op.view()->refreshes()),
        op.view()->propagation_ms().mean());
  }
  std::printf("DLM: %llu lock requests, %llu update notifications, %llu intents\n",
              static_cast<unsigned long long>(deployment.dlm().lock_requests()),
              static_cast<unsigned long long>(deployment.dlm().update_notifications()),
              static_cast<unsigned long long>(deployment.dlm().intent_notifications()));
  return 0;
}
