// Avoidance-based client cache consistency (read-one/write-all).
//
// The server tracks which clients hold cached copies of which objects.
// Cached copies are treated as read-locked across transaction boundaries
// (Franklin's callback-locking family, which the paper names as the
// appropriate substrate for display consistency): before an update commit
// completes, every remote copy is called back (invalidated), so a client
// cache read never observes stale data and costs no server round trip.
//
// Callbacks execute as direct calls into the registered handler (the
// client's cache); the returned callback count lets the commit path charge
// the corresponding virtual message costs.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "objectmodel/oid.h"

namespace idba {

/// Identifies a client runtime (also used as its lock-owner id for D locks
/// and as its endpoint id for notifications).
using ClientId = uint64_t;

/// Implemented by the client-side object cache.
class CacheCallbackHandler {
 public:
  virtual ~CacheCallbackHandler() = default;
  /// The server committed version `new_version` of `oid`; the client must
  /// drop or invalidate its cached copy before this returns.
  virtual void InvalidateCached(Oid oid, uint64_t new_version) = 0;
};

/// Thread-safe registry of cached-copy locations.
class CallbackManager {
 public:
  void RegisterClient(ClientId client, CacheCallbackHandler* handler);
  void UnregisterClient(ClientId client);

  /// Records that `client` now holds a copy of `oid` (fetch reply).
  void NoteCached(ClientId client, Oid oid);
  /// Records that `client` dropped its copy (eviction notice).
  void NoteDropped(ClientId client, Oid oid);

  /// Invalidates all copies of `oid` except the writer's.
  /// Returns the number of callbacks issued (= messages in a real system;
  /// each implies a callback + ack round trip).
  int OnCommittedUpdate(ClientId writer, Oid oid, uint64_t new_version);

  /// Clients currently holding a copy of `oid`.
  std::vector<ClientId> CopyHolders(Oid oid) const;

  /// Registered-copy count per client (the server's view of each client's
  /// object-cache population), sorted by client id. For the CACHES RPC.
  std::map<ClientId, size_t> CopyCountsByClient() const;

  uint64_t callbacks_issued() const { return callbacks_.Get(); }

 private:
  mutable std::mutex mu_;
  std::unordered_map<ClientId, CacheCallbackHandler*> handlers_;
  std::unordered_map<Oid, std::unordered_set<ClientId>> copies_;
  std::unordered_map<ClientId, std::unordered_set<Oid>> by_client_;
  Counter callbacks_;
};

}  // namespace idba
