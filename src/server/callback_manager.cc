#include "server/callback_manager.h"

#include "obs/trace.h"

namespace idba {

void CallbackManager::RegisterClient(ClientId client, CacheCallbackHandler* handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[client] = handler;
}

void CallbackManager::UnregisterClient(ClientId client) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(client);
  auto it = by_client_.find(client);
  if (it != by_client_.end()) {
    for (const Oid& oid : it->second) {
      auto cit = copies_.find(oid);
      if (cit != copies_.end()) {
        cit->second.erase(client);
        if (cit->second.empty()) copies_.erase(cit);
      }
    }
    by_client_.erase(it);
  }
}

void CallbackManager::NoteCached(ClientId client, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  copies_[oid].insert(client);
  by_client_[client].insert(oid);
}

void CallbackManager::NoteDropped(ClientId client, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto cit = copies_.find(oid);
  if (cit != copies_.end()) {
    cit->second.erase(client);
    if (cit->second.empty()) copies_.erase(cit);
  }
  auto bit = by_client_.find(client);
  if (bit != by_client_.end()) bit->second.erase(oid);
}

int CallbackManager::OnCommittedUpdate(ClientId writer, Oid oid,
                                       uint64_t new_version) {
  // Snapshot targets under the lock, call back outside it: a handler may
  // re-enter (e.g. report a drop).
  std::vector<std::pair<ClientId, CacheCallbackHandler*>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto cit = copies_.find(oid);
    if (cit == copies_.end()) return 0;
    for (ClientId c : cit->second) {
      if (c == writer) continue;
      auto hit = handlers_.find(c);
      if (hit != handlers_.end()) targets.emplace_back(c, hit->second);
    }
    // Called-back copies are dropped from the registry: the clients no
    // longer hold valid copies.
    for (const auto& [c, h] : targets) {
      cit->second.erase(c);
      auto bit = by_client_.find(c);
      if (bit != by_client_.end()) bit->second.erase(oid);
    }
    if (cit->second.empty()) copies_.erase(cit);
  }
  if (!targets.empty()) {
    // Blocks until every holder acks (invalidate-before-commit), so this
    // span is the commit's callback-wait time.
    IDBA_TRACE_SPAN("server.callback_fanout");
    for (const auto& [c, h] : targets) {
      h->InvalidateCached(oid, new_version);
      callbacks_.Add();
    }
  }
  return static_cast<int>(targets.size());
}

std::vector<ClientId> CallbackManager::CopyHolders(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClientId> out;
  auto it = copies_.find(oid);
  if (it == copies_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::map<ClientId, size_t> CallbackManager::CopyCountsByClient() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<ClientId, size_t> out;
  for (const auto& [client, oids] : by_client_) out[client] = oids.size();
  return out;
}

}  // namespace idba
