// idba_serve: standalone database server process.
//
// Hosts one deployment (DatabaseServer + Display Lock Manager + shared
// notification bus / RPC meter) behind the TCP wire protocol so client
// applications (examples, NMS workload, tests) can run out-of-process:
//
//   ./idba_serve --port 7450
//   ./quickstart --connect 127.0.0.1:7450    # in another process
//
// Flags:
//   --port N          listen port (default 0 = ephemeral; the bound port is
//                     printed on stdout either way)
//   --bind ADDR       numeric IPv4 address to bind (default 127.0.0.1;
//                     "0.0.0.0" serves non-local clients)
//   --idle-timeout N  drop connections silent for N ms (default 0 = never;
//                     only safe when clients heartbeat faster than this)
//   --eager           DLM ships new object images inside notifications
//   --early-notify    DLM sends update-intention notices at X-lock time
//   --integrated      integrated DLM deployment (server-side D locks)
//
// The process runs until SIGINT/SIGTERM, then checkpoints and exits.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <semaphore.h>

#include "core/session.h"
#include "net/tcp_server.h"

namespace {

sem_t g_stop_sem;

void HandleStop(int) { sem_post(&g_stop_sem); }

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::string bind_host = "127.0.0.1";
  long idle_timeout_ms = 0;
  idba::DeploymentOptions dep_opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      bind_host = argv[++i];
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0 && i + 1 < argc) {
      idle_timeout_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--eager") == 0) {
      dep_opts.dlm.eager_shipping = true;
    } else if (std::strcmp(argv[i], "--early-notify") == 0) {
      dep_opts.dlm.protocol = idba::NotifyProtocol::kEarlyNotify;
    } else if (std::strcmp(argv[i], "--integrated") == 0) {
      dep_opts.dlm.integrated = true;
      dep_opts.server.integrated_display_locks = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--bind ADDR] [--idle-timeout MS] "
                   "[--eager] [--early-notify] [--integrated]\n",
                   argv[0]);
      return 2;
    }
  }

  idba::Deployment deployment(dep_opts);
  idba::TransportServerOptions transport_opts;
  transport_opts.port = port;
  transport_opts.bind_host = bind_host;
  transport_opts.idle_timeout_ms = idle_timeout_ms;
  idba::TransportServer transport(&deployment.server(), &deployment.dlm(),
                                  &deployment.bus(), &deployment.meter(),
                                  transport_opts);
  idba::Status st = transport.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "idba_serve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("idba_serve listening on %s:%u\n", bind_host.c_str(),
              transport.port());
  std::fflush(stdout);

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
  }

  std::printf("idba_serve: shutting down (%llu requests, %llu bytes in, "
              "%llu bytes out)\n",
              static_cast<unsigned long long>(transport.requests_served()),
              static_cast<unsigned long long>(transport.bytes_received()),
              static_cast<unsigned long long>(transport.bytes_sent()));
  transport.Stop();
  st = deployment.server().Checkpoint();
  if (!st.ok()) {
    std::fprintf(stderr, "idba_serve: checkpoint failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
