// idba_serve: standalone database server process.
//
// Hosts one deployment (DatabaseServer + Display Lock Manager + shared
// notification bus / RPC meter) behind the TCP wire protocol so client
// applications (examples, NMS workload, tests) can run out-of-process:
//
//   ./idba_serve --port 7450
//   ./quickstart --connect 127.0.0.1:7450    # in another process
//
// Flags:
//   --port N          listen port (default 0 = ephemeral; the bound port is
//                     printed on stdout either way)
//   --bind ADDR       numeric IPv4 address to bind (default 127.0.0.1;
//                     "0.0.0.0" serves non-local clients)
//   --idle-timeout N  drop connections silent for N ms (default 0 = never;
//                     only safe when clients heartbeat faster than this)
//   --eager           DLM ships new object images inside notifications
//   --early-notify    DLM sends update-intention notices at X-lock time
//   --integrated      integrated DLM deployment (server-side D locks)
//   --trace [N]       record server-side trace spans (sample 1-in-N roots,
//                     default every root); dump via the TRACE_DUMP RPC
//   --slow-rpc-ms N   log + ring-buffer RPCs slower than N ms (default 250,
//                     0 disables)
//   --metrics-interval SECS
//                     print a STATS JSON document to stdout every SECS
//                     seconds (one document per line); also sets the
//                     time-series snapshot cadence (default 5 s without it)
//   --prom-port N     serve Prometheus text exposition on
//                     http://<bind>:N/metrics (0 = ephemeral, printed on
//                     stdout; omit the flag for no HTTP endpoint)
//   --max-queue N     per-connection request-queue bound; beyond it the
//                     reader rejects REQUESTs with Status::Overloaded and
//                     a retry-after hint (default 256, 0 = unbounded)
//   --max-inflight N  server-wide cap on admitted-but-unfinished requests
//                     (default 1024, 0 = unlimited)
//   --io-threads N    epoll reactor threads (default 0 = auto: half the
//                     cores, clamped to [1, 8]); echoed in STATS
//   --worker-threads N
//                     request-execution pool size (default 0 = auto:
//                     max(cores, 4)); echoed in STATS
//   --slow-subscriber-policy coalesce|resync|disconnect
//                     escalation for clients that cannot drain their
//                     NOTIFY stream (default resync; see DESIGN.md §9)
//   --wal-group-commit-us N
//                     group-commit window: the WAL flush leader lingers up
//                     to N microseconds for more committers before paying
//                     the fsync (default 0 = sync immediately; batching
//                     then comes only from fsync backpressure). Trades a
//                     bounded bump in commit latency for fewer fsyncs —
//                     see DESIGN.md §12
//   --profile-hz N    start the sampling profiler at N Hz on boot (it can
//                     also be started per-run via `idba_stat --profile` /
//                     the PROFILE admin RPC); dump folded stacks the same
//                     way (DESIGN.md §13)
//   --watchdog-ms N   stall-watchdog threshold: a loop/worker thread stuck
//                     in one dispatch longer than N ms is reported with its
//                     stack and a flight dump (default 1000, 0 disables)
//   --flight-dump PATH
//                     where crash/stall flight-recorder dumps are written
//                     (default idba_flight.<pid>.dump in the cwd)
//   --audit off|track|strict
//                     online consistency auditor (DESIGN.md §15): track
//                     records violations of the monotonicity / visibility
//                     / coherence invariants into consistency.* metrics
//                     and the AUDIT admin RPC; strict additionally aborts
//                     with a flight dump on the first violation (chaos
//                     harness / CI smoke). Default off
//   --staleness-slo-ms N
//                     per-view staleness SLO: a commit touching a
//                     display-locked object must be reflected by the
//                     subscriber's view within N virtual milliseconds
//                     (default 100; 0 disables the visibility deadline)
//   --data-dir PATH   durable mode: heap pages and WAL live in PATH
//                     (data.idb / wal.idb, created on first boot). Boot
//                     replays the WAL — committed transactions survive a
//                     crash, replay is bounded by WAL-since-last-checkpoint.
//                     Without the flag everything is in-memory (default)
//   --checkpoint-interval-ms N
//                     run an online fuzzy checkpoint every N ms (0 =
//                     no time trigger). Transactions keep committing
//                     throughout; each checkpoint truncates the WAL up to
//                     its fence so recovery stays bounded — DESIGN.md §14
//   --checkpoint-wal-bytes N
//                     also checkpoint whenever the WAL has grown N bytes
//                     since the last one (0 = no byte trigger)
//
// The process runs until SIGINT/SIGTERM, then checkpoints and exits.
// SIGPIPE is ignored process-wide (peers closing mid-write surface as
// EPIPE); SIGSEGV/SIGBUS/SIGABRT write a flight dump before re-raising.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <semaphore.h>
#include <unistd.h>

#include "core/session.h"
#include "net/tcp_server.h"
#include "server/checkpointer.h"
#include "server/durable.h"
#include "obs/audit.h"
#include "obs/flight.h"
#include "obs/profiler.h"
#include "obs/prom_http.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace {

sem_t g_stop_sem;

void HandleStop(int) { sem_post(&g_stop_sem); }

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::string bind_host = "127.0.0.1";
  long idle_timeout_ms = 0;
  long metrics_interval_s = 0;
  long prom_port = -1;  // -1 = no HTTP endpoint
  long slow_rpc_ms = 250;
  bool trace = false;
  long trace_every = 1;
  long max_queue = -1;     // -1 = keep the TransportServerOptions default
  long max_inflight = -1;
  long io_threads = 0;      // 0 = auto-size from hardware_concurrency
  long worker_threads = 0;
  long profile_hz = 0;      // 0 = profiler idle until the PROFILE RPC
  long watchdog_ms = 1000;  // 0 = watchdog off
  std::string audit_mode_text = "off";
  long staleness_slo_ms = 100;  // visibility SLO window (virtual ms)
  std::string flight_dump_path;
  std::string slow_subscriber_policy;
  std::string data_dir;
  long checkpoint_interval_ms = 0;
  long long checkpoint_wal_bytes = 0;
  idba::DeploymentOptions dep_opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      bind_host = argv[++i];
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0 && i + 1 < argc) {
      idle_timeout_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--eager") == 0) {
      dep_opts.dlm.eager_shipping = true;
    } else if (std::strcmp(argv[i], "--early-notify") == 0) {
      dep_opts.dlm.protocol = idba::NotifyProtocol::kEarlyNotify;
    } else if (std::strcmp(argv[i], "--integrated") == 0) {
      dep_opts.dlm.integrated = true;
      dep_opts.server.integrated_display_locks = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
      // Optional 1-in-N sample rate; bare --trace records every root.
      if (i + 1 < argc && std::atol(argv[i + 1]) > 0) {
        trace_every = std::atol(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--slow-rpc-ms") == 0 && i + 1 < argc) {
      slow_rpc_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 && i + 1 < argc) {
      metrics_interval_s = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--prom-port") == 0 && i + 1 < argc) {
      prom_port = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      max_queue = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      max_inflight = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--io-threads") == 0 && i + 1 < argc) {
      io_threads = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--worker-threads") == 0 && i + 1 < argc) {
      worker_threads = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      profile_hz = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0 && i + 1 < argc) {
      watchdog_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--flight-dump") == 0 && i + 1 < argc) {
      flight_dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-interval-ms") == 0 &&
               i + 1 < argc) {
      checkpoint_interval_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--checkpoint-wal-bytes") == 0 &&
               i + 1 < argc) {
      checkpoint_wal_bytes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--wal-group-commit-us") == 0 &&
               i + 1 < argc) {
      dep_opts.server.txn.group_commit_window_us = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--slow-subscriber-policy") == 0 &&
               i + 1 < argc) {
      slow_subscriber_policy = argv[++i];
      if (slow_subscriber_policy != "coalesce" &&
          slow_subscriber_policy != "resync" &&
          slow_subscriber_policy != "disconnect") {
        std::fprintf(stderr,
                     "--slow-subscriber-policy must be coalesce, resync or "
                     "disconnect (got \"%s\")\n",
                     slow_subscriber_policy.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--audit") == 0 && i + 1 < argc) {
      audit_mode_text = argv[++i];
    } else if (std::strncmp(argv[i], "--audit=", 8) == 0) {
      audit_mode_text = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--staleness-slo-ms") == 0 &&
               i + 1 < argc) {
      staleness_slo_ms = std::atol(argv[++i]);
    } else if (std::strncmp(argv[i], "--staleness-slo-ms=", 19) == 0) {
      staleness_slo_ms = std::atol(argv[i] + 19);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--bind ADDR] [--idle-timeout MS] "
                   "[--eager] [--early-notify] [--integrated] [--trace [N]] "
                   "[--slow-rpc-ms N] [--metrics-interval SECS] "
                   "[--prom-port N] [--max-queue N] [--max-inflight N] "
                   "[--io-threads N] [--worker-threads N] "
                   "[--wal-group-commit-us N] [--profile-hz N] "
                   "[--watchdog-ms N] [--flight-dump PATH] "
                   "[--data-dir PATH] [--checkpoint-interval-ms N] "
                   "[--checkpoint-wal-bytes N] "
                   "[--slow-subscriber-policy coalesce|resync|disconnect] "
                   "[--audit off|track|strict] [--staleness-slo-ms N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace) {
    idba::obs::SetTraceSampleEvery(static_cast<uint32_t>(trace_every));
    idba::obs::SetTraceSampling(true);
  }
  // Touch the auditor unconditionally so its consistency.* series exist in
  // the registry (and therefore in Prometheus output) even in off mode.
  idba::obs::ConsistencyAuditor& auditor = idba::obs::GlobalAuditor();
  idba::obs::AuditMode audit_mode = idba::obs::AuditMode::kOff;
  if (!idba::obs::ParseAuditMode(audit_mode_text, &audit_mode)) {
    std::fprintf(stderr, "--audit must be off, track or strict (got \"%s\")\n",
                 audit_mode_text.c_str());
    return 2;
  }
  auditor.set_staleness_slo_us(staleness_slo_ms * idba::kVMillisecond);
  auditor.SetMode(audit_mode);

  // Crash evidence: fatal signals dump the flight rings + raw profiler
  // samples before re-raising. SIGPIPE is ignored here as well as in
  // TransportServer::Start so even pre-Start writes can't kill the process.
  if (flight_dump_path.empty()) {
    flight_dump_path =
        "idba_flight." + std::to_string(::getpid()) + ".dump";
  }
  idba::obs::InstallCrashHandler(flight_dump_path);
  std::signal(SIGPIPE, SIG_IGN);

  // Durable mode builds the deployment pieces around a file-backed
  // DurableDatabase (Deployment owns its server by value over MemDisks, so
  // it cannot host one); in-memory mode keeps using Deployment.
  std::unique_ptr<idba::Deployment> deployment;
  std::unique_ptr<idba::DurableDatabase> durable;
  std::unique_ptr<idba::NotificationBus> durable_bus;
  std::unique_ptr<idba::RpcMeter> durable_meter;
  std::unique_ptr<idba::DisplayLockManager> durable_dlm;
  idba::DatabaseServer* server = nullptr;
  idba::NotificationBus* bus = nullptr;
  idba::RpcMeter* meter = nullptr;
  idba::DisplayLockManager* dlm = nullptr;
  if (!data_dir.empty()) {
    auto opened = idba::DurableDatabase::Open(data_dir, dep_opts.server);
    if (!opened.ok()) {
      std::fprintf(stderr, "idba_serve: open %s: %s\n", data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(opened).value();
    server = &durable->server();
    durable_bus =
        std::make_unique<idba::NotificationBus>(idba::CostModel(dep_opts.cost));
    durable_meter =
        std::make_unique<idba::RpcMeter>(idba::CostModel(dep_opts.cost));
    durable_dlm = std::make_unique<idba::DisplayLockManager>(
        server, durable_bus.get(), dep_opts.dlm);
    bus = durable_bus.get();
    meter = durable_meter.get();
    dlm = durable_dlm.get();
    const idba::RecoveryStats& rs = durable->recovery_stats();
    std::printf(
        "idba_serve recovered %s (records_scanned=%zu committed_txns=%zu "
        "redone_writes=%zu)\n",
        data_dir.c_str(), rs.records_scanned, rs.committed_txns,
        rs.redone_writes);
    std::fflush(stdout);
  } else {
    deployment = std::make_unique<idba::Deployment>(dep_opts);
    server = &deployment->server();
    bus = &deployment->bus();
    meter = &deployment->meter();
    dlm = &deployment->dlm();
  }

  idba::Checkpointer checkpointer(
      server,
      idba::CheckpointerOptions{
          .interval_ms = checkpoint_interval_ms,
          .wal_bytes = static_cast<uint64_t>(
              checkpoint_wal_bytes > 0 ? checkpoint_wal_bytes : 0)});

  idba::TransportServerOptions transport_opts;
  transport_opts.port = port;
  transport_opts.bind_host = bind_host;
  transport_opts.idle_timeout_ms = idle_timeout_ms;
  transport_opts.slow_rpc_threshold_ms = slow_rpc_ms;
  if (max_queue >= 0) {
    transport_opts.max_request_queue = static_cast<size_t>(max_queue);
  }
  if (max_inflight >= 0) {
    transport_opts.max_inflight = static_cast<size_t>(max_inflight);
  }
  if (io_threads > 0) {
    transport_opts.io_threads = static_cast<int>(io_threads);
  }
  if (worker_threads > 0) {
    transport_opts.worker_threads = static_cast<int>(worker_threads);
  }
  if (slow_subscriber_policy == "coalesce") {
    transport_opts.slow_subscriber_policy =
        idba::SlowSubscriberPolicy::kCoalesce;
  } else if (slow_subscriber_policy == "disconnect") {
    transport_opts.slow_subscriber_policy =
        idba::SlowSubscriberPolicy::kDisconnect;
  }  // "resync" (and unset) keep the default
  idba::TransportServer transport(server, dlm, bus, meter, transport_opts);
  transport.set_checkpointer(&checkpointer);
  checkpointer.Start();
  idba::Status st = transport.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "idba_serve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "idba_serve listening on %s:%u (io_threads=%d worker_threads=%d "
      "wal_group_commit_us=%lld)\n",
      bind_host.c_str(), transport.port(), transport.io_threads(),
      transport.worker_threads(),
      static_cast<long long>(dep_opts.server.txn.group_commit_window_us));
  std::fflush(stdout);

  idba::obs::Watchdog watchdog(idba::obs::WatchdogOptions{
      .threshold_ms = watchdog_ms, .flight_dump_path = flight_dump_path});
  if (watchdog_ms > 0) watchdog.Start();
  if (profile_hz > 0) {
    idba::obs::GlobalProfiler().Start(static_cast<int>(profile_hz));
    std::printf("idba_serve profiler sampling at %ld Hz\n", profile_hz);
    std::fflush(stdout);
  }

  idba::obs::PromHttpServer prom_server;
  if (prom_port >= 0) {
    st = prom_server.Start(static_cast<uint16_t>(prom_port), bind_host);
    if (!st.ok()) {
      std::fprintf(stderr, "idba_serve: %s\n", st.ToString().c_str());
      transport.Stop();
      return 1;
    }
    std::printf("idba_serve prometheus on http://%s:%u/metrics\n",
                bind_host.c_str(), prom_server.port());
    std::fflush(stdout);
  }

  // One thread drives both periodic jobs: the time-series ring always ticks
  // (METRICS format 2 and idba_top trends need windows even when nothing is
  // printed), and the STATS JSON line prints only when asked.
  const long tick_interval_s = metrics_interval_s > 0 ? metrics_interval_s : 5;
  std::atomic<bool> dump_stop{false};
  std::thread dump_thread([&] {
    // Sleep in short slices so shutdown is not delayed a full interval.
    int64_t elapsed_ms = 0;
    while (!dump_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      elapsed_ms += 50;
      if (elapsed_ms < tick_interval_s * 1000) continue;
      elapsed_ms = 0;
      idba::obs::GlobalTimeSeries().Tick();
      if (metrics_interval_s > 0) {
        std::string json = transport.StatsJson();
        std::printf("%s\n", json.c_str());
        std::fflush(stdout);
      }
    }
  });

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
  }

  if (dump_thread.joinable()) {
    dump_stop.store(true, std::memory_order_relaxed);
    dump_thread.join();
  }
  idba::obs::GlobalProfiler().Stop();
  watchdog.Stop();
  prom_server.Stop();

  std::printf("idba_serve: shutting down (%llu requests, %llu bytes in, "
              "%llu bytes out)\n",
              static_cast<unsigned long long>(transport.requests_served()),
              static_cast<unsigned long long>(transport.bytes_received()),
              static_cast<unsigned long long>(transport.bytes_sent()));
  transport.Stop();
  checkpointer.Stop();
  st = server->Checkpoint();
  if (!st.ok()) {
    std::fprintf(stderr, "idba_serve: checkpoint failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
