#include "server/database_server.h"

#include "obs/trace.h"

namespace idba {

namespace {
// Integrated display locks are owned by clients, not transactions; shift
// client ids into a disjoint owner-id space.
constexpr LockOwnerId kDisplayOwnerBase = 1ULL << 62;
LockOwnerId DisplayOwner(ClientId client) { return kDisplayOwnerBase + client; }
}  // namespace

DatabaseServer::DatabaseServer(DatabaseServerOptions opts)
    : opts_(opts),
      owned_data_disk_(std::make_unique<MemDisk>()),
      owned_wal_disk_(std::make_unique<MemDisk>()) {
  pool_ = std::make_unique<BufferPool>(owned_data_disk_.get(), opts.buffer_pool);
  heap_ = std::move(HeapStore::Open(pool_.get(), 0).value());
  wal_ = std::make_unique<Wal>(owned_wal_disk_.get());
  txn_mgr_ = std::make_unique<TxnManager>(heap_.get(), wal_.get(), opts.txn);
  WireHooks();
}

DatabaseServer::DatabaseServer(Disk* data_disk, Disk* wal_disk,
                               PageId data_page_count, DatabaseServerOptions opts)
    : opts_(opts) {
  pool_ = std::make_unique<BufferPool>(data_disk, opts.buffer_pool);
  heap_ = std::move(HeapStore::Open(pool_.get(), data_page_count).value());
  wal_ = std::make_unique<Wal>(wal_disk);
  txn_mgr_ = std::make_unique<TxnManager>(heap_.get(), wal_.get(), opts.txn);
  WireHooks();
}

DatabaseServer::~DatabaseServer() = default;

void DatabaseServer::WireHooks() {
  txn_mgr_->set_commit_hook([this](const CommitResult& result) {
    ClientId writer = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txn_client_.find(result.txn);
      if (it != txn_client_.end()) writer = it->second;
    }
    // ROWA: call back every remote cached copy before the commit returns.
    int cb = 0;
    for (const DatabaseObject& obj : result.updated) {
      cb += callbacks_.OnCommittedUpdate(writer, obj.oid(), obj.version());
    }
    for (Oid oid : result.erased) {
      cb += callbacks_.OnCommittedUpdate(writer, oid, /*new_version=*/~0ULL);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      commit_callbacks_[result.txn] = cb;
    }
    std::vector<CommitObserver> observers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      observers = commit_observers_;
    }
    for (const auto& obs : observers) obs(writer, result);
  });
  txn_mgr_->set_abort_hook([this](TxnId txn) {
    ClientId writer = 0;
    std::vector<AbortObserver> observers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txn_client_.find(txn);
      if (it != txn_client_.end()) writer = it->second;
      observers = abort_observers_;
    }
    for (const auto& obs : observers) obs(writer, txn);
  });
  txn_mgr_->set_xlock_hook([this](TxnId txn, Oid oid) {
    ClientId writer = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txn_client_.find(txn);
      if (it != txn_client_.end()) writer = it->second;
    }
    std::vector<IntentObserver> observers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      observers = intent_observers_;
    }
    for (const auto& obs : observers) obs(writer, txn, oid);
  });
}

void DatabaseServer::ConnectClient(ClientId client,
                                   CacheCallbackHandler* cache_handler) {
  callbacks_.RegisterClient(client, cache_handler);
}

void DatabaseServer::DisconnectClient(ClientId client) {
  callbacks_.UnregisterClient(client);
  lock_manager().ReleaseAll(DisplayOwner(client));
}

TxnId DatabaseServer::Begin(ClientId client) {
  TxnId txn = txn_mgr_->Begin();
  std::lock_guard<std::mutex> lock(mu_);
  txn_client_[txn] = client;
  return txn;
}

Result<CommitResult> DatabaseServer::Commit(ClientId client, TxnId txn,
                                            ServerCallInfo* info) {
  (void)client;
  // Covers WAL flush, heap apply, callback fan-out and commit observers
  // (the hooks run inside TxnManager::Commit on this thread).
  IDBA_TRACE_SPAN("server.commit");
  auto result = txn_mgr_->Commit(txn);
  int callbacks = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_client_.erase(txn);
    auto it = commit_callbacks_.find(txn);
    if (it != commit_callbacks_.end()) {
      callbacks = it->second;
      commit_callbacks_.erase(it);
    }
  }
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes();
    // The commit reply carries the new images back to the writer so its own
    // cache stays current (write-all includes the writer).
    int64_t resp = RequestHeaderBytes();
    if (result.ok()) {
      info->page_misses = result.value().page_misses;
      for (const DatabaseObject& obj : result.value().updated) {
        resp += static_cast<int64_t>(obj.WireBytes());
      }
    }
    info->response_bytes = resp;
    info->callbacks = callbacks;
  }
  return result;
}

Status DatabaseServer::Abort(ClientId client, TxnId txn, ServerCallInfo* info) {
  (void)client;
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes();
    info->response_bytes = RequestHeaderBytes();
  }
  Status st = txn_mgr_->Abort(txn);
  std::lock_guard<std::mutex> lock(mu_);
  txn_client_.erase(txn);
  return st;
}

Result<DatabaseObject> DatabaseServer::Fetch(ClientId client, TxnId txn, Oid oid,
                                             ServerCallInfo* info) {
  IoStats io;
  auto obj = txn_mgr_->Get(txn, oid, &io);
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes() + 8;
    info->response_bytes =
        RequestHeaderBytes() +
        (obj.ok() ? static_cast<int64_t>(obj.value().WireBytes()) : 0);
    info->page_misses = io.page_misses;
  }
  if (obj.ok()) callbacks_.NoteCached(client, oid);
  return obj;
}

Status DatabaseServer::LockForRead(ClientId client, TxnId txn, Oid oid,
                                   ServerCallInfo* info) {
  (void)client;
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes() + 8;
    info->response_bytes = RequestHeaderBytes();
  }
  return txn_mgr_->LockRead(txn, oid);
}

Result<DatabaseObject> DatabaseServer::FetchCurrent(ClientId client, Oid oid,
                                                    ServerCallInfo* info,
                                                    bool register_copy) {
  IoStats io;
  auto obj = heap_->Read(oid, &io);
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes() + 8;
    info->response_bytes =
        RequestHeaderBytes() +
        (obj.ok() ? static_cast<int64_t>(obj.value().WireBytes()) : 0);
    info->page_misses = io.page_misses;
  }
  if (obj.ok() && register_copy) callbacks_.NoteCached(client, oid);
  return obj;
}

Result<CommitResult> DatabaseServer::CommitValidated(
    ClientId client, TxnId txn,
    const std::vector<std::pair<Oid, uint64_t>>& read_set,
    ServerCallInfo* info) {
  IoStats io;
  Status validation = txn_mgr_->ValidateReads(txn, read_set, &io);
  if (!validation.ok()) {
    (void)Abort(client, txn, nullptr);
    if (info != nullptr) {
      info->request_bytes =
          RequestHeaderBytes() + 16 * static_cast<int64_t>(read_set.size());
      info->response_bytes = RequestHeaderBytes();
      info->page_misses = io.page_misses;
    }
    return validation;
  }
  ServerCallInfo commit_info;
  auto result = Commit(client, txn, &commit_info);
  if (info != nullptr) {
    *info = commit_info;
    info->request_bytes += 16 * static_cast<int64_t>(read_set.size());
    info->page_misses += io.page_misses;
  }
  return result;
}

Status DatabaseServer::Put(ClientId client, TxnId txn, DatabaseObject obj,
                           ServerCallInfo* info) {
  (void)client;
  if (info != nullptr) {
    info->request_bytes =
        RequestHeaderBytes() + static_cast<int64_t>(obj.WireBytes());
    info->response_bytes = RequestHeaderBytes();
  }
  return txn_mgr_->Put(txn, std::move(obj));
}

Status DatabaseServer::Insert(ClientId client, TxnId txn, DatabaseObject obj,
                              ServerCallInfo* info) {
  (void)client;
  if (info != nullptr) {
    info->request_bytes =
        RequestHeaderBytes() + static_cast<int64_t>(obj.WireBytes());
    info->response_bytes = RequestHeaderBytes();
  }
  return txn_mgr_->Insert(txn, std::move(obj));
}

Status DatabaseServer::Erase(ClientId client, TxnId txn, Oid oid,
                             ServerCallInfo* info) {
  (void)client;
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes() + 8;
    info->response_bytes = RequestHeaderBytes();
  }
  return txn_mgr_->Erase(txn, oid);
}

Result<std::vector<DatabaseObject>> DatabaseServer::ScanClass(
    ClientId client, ClassId cls, bool include_subclasses, ServerCallInfo* info) {
  std::vector<ClassId> classes;
  if (include_subclasses) {
    for (ClassId c = 1; c <= schema_.class_count(); ++c) {
      if (schema_.IsA(c, cls)) classes.push_back(c);
    }
  } else {
    classes.push_back(cls);
  }
  std::vector<DatabaseObject> out;
  IoStats io;
  int64_t bytes = 0;
  for (ClassId c : classes) {
    IDBA_ASSIGN_OR_RETURN(std::vector<Oid> oids, heap_->ScanClass(c));
    for (Oid oid : oids) {
      IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, heap_->Read(oid, &io));
      bytes += static_cast<int64_t>(obj.WireBytes());
      callbacks_.NoteCached(client, oid);
      out.push_back(std::move(obj));
    }
  }
  if (info != nullptr) {
    info->request_bytes = RequestHeaderBytes() + 8;
    info->response_bytes = RequestHeaderBytes() + bytes;
    info->page_misses = io.page_misses;
  }
  return out;
}

Result<std::vector<DatabaseObject>> DatabaseServer::ExecuteQuery(
    ClientId client, const ObjectQuery& query, ServerCallInfo* info) {
  std::vector<ClassId> classes;
  if (query.include_subclasses) {
    for (ClassId c = 1; c <= schema_.class_count(); ++c) {
      if (schema_.IsA(c, query.cls)) classes.push_back(c);
    }
  } else {
    classes.push_back(query.cls);
  }
  std::vector<DatabaseObject> out;
  IoStats io;
  int64_t bytes = 0;
  for (ClassId c : classes) {
    IDBA_ASSIGN_OR_RETURN(std::vector<Oid> oids, heap_->ScanClass(c));
    for (Oid oid : oids) {
      IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, heap_->Read(oid, &io));
      if (!query.Matches(schema_, obj)) continue;
      bytes += static_cast<int64_t>(obj.WireBytes());
      callbacks_.NoteCached(client, oid);
      out.push_back(std::move(obj));
    }
  }
  if (info != nullptr) {
    info->request_bytes =
        RequestHeaderBytes() + static_cast<int64_t>(query.WireBytes());
    info->response_bytes = RequestHeaderBytes() + bytes;
    info->page_misses = io.page_misses;
  }
  return out;
}

void DatabaseServer::NoteEvicted(ClientId client, Oid oid) {
  callbacks_.NoteDropped(client, oid);
}

void DatabaseServer::AddCommitObserver(CommitObserver obs) {
  std::lock_guard<std::mutex> lock(mu_);
  commit_observers_.push_back(std::move(obs));
}

void DatabaseServer::AddIntentObserver(IntentObserver obs) {
  std::lock_guard<std::mutex> lock(mu_);
  intent_observers_.push_back(std::move(obs));
}

void DatabaseServer::AddAbortObserver(AbortObserver obs) {
  std::lock_guard<std::mutex> lock(mu_);
  abort_observers_.push_back(std::move(obs));
}

Status DatabaseServer::DisplayLock(ClientId client, Oid oid) {
  if (!opts_.integrated_display_locks) {
    return Status::NotSupported("server built without integrated display locks");
  }
  return lock_manager().Lock(DisplayOwner(client), oid, LockMode::kD);
}

Status DatabaseServer::DisplayUnlock(ClientId client, Oid oid) {
  if (!opts_.integrated_display_locks) {
    return Status::NotSupported("server built without integrated display locks");
  }
  return lock_manager().Unlock(DisplayOwner(client), oid);
}

Status DatabaseServer::Checkpoint() {
  // Force the log, then every data page, then truncate the log: a crash at
  // any intermediate point recovers correctly (redo is idempotent), and
  // after the truncation the log no longer grows without bound.
  IDBA_RETURN_NOT_OK(wal_->Flush());
  IDBA_RETURN_NOT_OK(pool_->FlushAll());
  return wal_->Reset();
}

Status DatabaseServer::FuzzyCheckpoint(CheckpointStats* stats) {
  // 1. Fence: B separates fully-applied commits (LSN <= B, whose effects
  //    the sweep below will capture) from commits whose records survive
  //    the truncation. Appends only — commits stall for microseconds.
  IDBA_ASSIGN_OR_RETURN(Lsn fence, txn_mgr_->AppendCheckpointBegin());
  if (stats != nullptr) stats->fence_lsn = fence;

  // 2. The fence record (and with it every commit <= B) must be durable
  //    before any page carrying those commits' effects is written — the
  //    WAL rule, and it also keeps the truncation below the durable
  //    horizon.
  IDBA_RETURN_NOT_OK(wal_->WaitDurable(fence));

  // 3. Sweep dirty pages while transactions keep running. Pages dirtied
  //    after the snapshot belong to post-fence commits: their records
  //    survive the truncation, so losing or keeping those page writes is
  //    equally correct (redo is version-idempotent).
  uint64_t pages = 0;
  IDBA_RETURN_NOT_OK(pool_->FlushDirtyForCheckpoint(&pages));
  if (stats != nullptr) stats->pages_written = pages;

  // 4. Durable end marker carrying the begin LSN: recovery can tell a
  //    completed checkpoint from an interrupted one (informational — the
  //    truncation horizon in the WAL header is what recovery trusts).
  WalRecord end;
  end.type = WalRecordType::kCheckpointEnd;
  end.txn = fence;
  IDBA_ASSIGN_OR_RETURN(Lsn end_lsn, wal_->Append(std::move(end)));
  IDBA_RETURN_NOT_OK(wal_->WaitDurable(end_lsn));

  // 5. Drop everything at or below the fence.
  Wal::TruncateStats tstats;
  IDBA_RETURN_NOT_OK(wal_->TruncateUpTo(fence, &tstats));
  if (stats != nullptr) {
    stats->wal_pages_written = tstats.pages_written;
    stats->bytes_truncated = tstats.bytes_truncated;
  }
  return Status::OK();
}

}  // namespace idba
