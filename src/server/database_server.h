// The database server: storage + transactions + client cache consistency,
// with hooks for the Display Lock Manager.
//
// Clients call these methods directly (the in-process stand-in for RPC);
// each call reports its request/response byte sizes and physical page
// misses in a ServerCallInfo so the client runtime can charge virtual
// network/disk/CPU latency through RpcMeter.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vtime.h"
#include "objectmodel/object.h"
#include "objectmodel/query.h"
#include "objectmodel/schema.h"
#include "server/callback_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/heap_store.h"
#include "storage/wal.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace idba {

struct DatabaseServerOptions {
  BufferPoolOptions buffer_pool;
  TxnManagerOptions txn;
  /// When true, the server-side lock manager also records display locks
  /// (the "integrated" deployment of §4.1); when false, display locking
  /// lives exclusively in the DLM agent. E3 compares the two.
  bool integrated_display_locks = false;
};

/// Virtual cost ingredients of one server call.
struct ServerCallInfo {
  int64_t request_bytes = 0;
  int64_t response_bytes = 0;
  int page_misses = 0;
  /// Cache-consistency callbacks triggered by this call (each one is a
  /// server->client round trip in a real deployment).
  int callbacks = 0;
};

/// Observers of committed updates / update intentions. The DLM subscribes
/// to drive the paper's notification protocols.
using CommitObserver = std::function<void(ClientId writer, const CommitResult&)>;
using IntentObserver = std::function<void(ClientId writer, TxnId txn, Oid oid)>;
using AbortObserver = std::function<void(ClientId writer, TxnId txn)>;

/// Thread-safe database server over in-memory (metered) disks or files.
class DatabaseServer {
 public:
  /// Creates a server over fresh MemDisks.
  explicit DatabaseServer(DatabaseServerOptions opts = {});

  /// Creates a server over caller-owned disks (restart/recovery flows).
  DatabaseServer(Disk* data_disk, Disk* wal_disk, PageId data_page_count,
                 DatabaseServerOptions opts);
  ~DatabaseServer();

  // --- Schema (setup phase; not transactional) ------------------------
  SchemaCatalog& schema() { return schema_; }
  const SchemaCatalog& schema() const { return schema_; }

  // --- Client lifecycle ------------------------------------------------
  void ConnectClient(ClientId client, CacheCallbackHandler* cache_handler);
  void DisconnectClient(ClientId client);

  // --- Transactions ----------------------------------------------------
  TxnId Begin(ClientId client);
  Result<CommitResult> Commit(ClientId client, TxnId txn, ServerCallInfo* info);
  Status Abort(ClientId client, TxnId txn, ServerCallInfo* info);

  /// Reads one object under an S lock; registers the client as a copy
  /// holder (it will cache the reply).
  Result<DatabaseObject> Fetch(ClientId client, TxnId txn, Oid oid,
                               ServerCallInfo* info);

  /// Lock-only round trip: grants the transaction an S lock so a cached
  /// copy may be used inside an update transaction (no data travels).
  /// Lock caching is not implemented, so this costs a (small) message —
  /// see DatabaseClient::Read.
  Status LockForRead(ClientId client, TxnId txn, Oid oid, ServerCallInfo* info);

  /// Fetches the current committed image without transactional locking
  /// (degree-0 read used when (re)building displays; consistency is then
  /// maintained by display locks + notifications, per §3.3).
  /// `register_copy` = false for detection-based clients, whose cached
  /// copies the server deliberately does not track (§3.3: "detection-based
  /// protocols allow stale data to reside in a client's main memory").
  Result<DatabaseObject> FetchCurrent(ClientId client, Oid oid,
                                      ServerCallInfo* info,
                                      bool register_copy = true);

  /// Detection-mode commit: validates the client's optimistic read set
  /// (S locks + version checks) before committing; aborts the transaction
  /// and returns Aborted on any stale read.
  Result<CommitResult> CommitValidated(
      ClientId client, TxnId txn,
      const std::vector<std::pair<Oid, uint64_t>>& read_set,
      ServerCallInfo* info);

  Status Put(ClientId client, TxnId txn, DatabaseObject obj, ServerCallInfo* info);
  Status Insert(ClientId client, TxnId txn, DatabaseObject obj, ServerCallInfo* info);
  Status Erase(ClientId client, TxnId txn, Oid oid, ServerCallInfo* info);

  /// All objects of `cls` (optionally including subclasses), degree-0.
  Result<std::vector<DatabaseObject>> ScanClass(ClientId client, ClassId cls,
                                                bool include_subclasses,
                                                ServerCallInfo* info);

  /// Server-side predicate query (degree-0): only matching objects travel
  /// to the client and enter its cache.
  Result<std::vector<DatabaseObject>> ExecuteQuery(ClientId client,
                                                   const ObjectQuery& query,
                                                   ServerCallInfo* info);

  /// Client evicted its cached copy (usually piggybacked, hence free).
  void NoteEvicted(ClientId client, Oid oid);

  Oid AllocateOid() { return txn_mgr_->AllocateOid(); }

  // --- DLM integration --------------------------------------------------
  void AddCommitObserver(CommitObserver obs);
  void AddIntentObserver(IntentObserver obs);
  void AddAbortObserver(AbortObserver obs);

  /// Integrated-mode display lock entry points (§4.1 "extending the
  /// server"): requires opts.integrated_display_locks.
  Status DisplayLock(ClientId client, Oid oid);
  Status DisplayUnlock(ClientId client, Oid oid);

  // --- Introspection ----------------------------------------------------
  TxnManager& txn_manager() { return *txn_mgr_; }
  LockManager& lock_manager() { return txn_mgr_->lock_manager(); }
  CallbackManager& callback_manager() { return callbacks_; }
  BufferPool& buffer_pool() { return *pool_; }
  HeapStore& heap() { return *heap_; }
  Wal& wal() { return *wal_; }
  VirtualClock& cpu_clock() { return cpu_clock_; }

  /// Flushes everything to its disks (orderly shutdown).
  Status Checkpoint();

  /// What one online checkpoint did (for STATS and the checkpointer log).
  struct CheckpointStats {
    Lsn fence_lsn = 0;            ///< checkpoint-begin LSN (truncation bound)
    uint64_t pages_written = 0;   ///< dirty data pages swept to disk
    uint64_t wal_pages_written = 0;
    uint64_t bytes_truncated = 0;  ///< WAL bytes dropped
  };

  /// Online fuzzy checkpoint: transactions keep committing throughout.
  /// Fences via TxnManager::AppendCheckpointBegin (LSN B), waits for B to
  /// be durable, sweeps dirty pages to the data disk, appends+forces a
  /// checkpoint-end record, then truncates the WAL up to B — bounding
  /// recovery replay by WAL-since-last-checkpoint.
  Status FuzzyCheckpoint(CheckpointStats* stats = nullptr);

  uint64_t commits() const { return txn_mgr_->commits(); }
  uint64_t aborts() const { return txn_mgr_->aborts(); }

 private:
  void WireHooks();
  static int64_t RequestHeaderBytes() { return 32; }

  DatabaseServerOptions opts_;
  std::unique_ptr<Disk> owned_data_disk_;
  std::unique_ptr<Disk> owned_wal_disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapStore> heap_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<TxnManager> txn_mgr_;
  SchemaCatalog schema_;
  CallbackManager callbacks_;
  VirtualClock cpu_clock_;

  std::mutex mu_;
  std::unordered_map<TxnId, ClientId> txn_client_;
  std::unordered_map<TxnId, int> commit_callbacks_;
  std::vector<CommitObserver> commit_observers_;
  std::vector<IntentObserver> intent_observers_;
  std::vector<AbortObserver> abort_observers_;
};

}  // namespace idba
