#include "server/checkpointer.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/health.h"
#include "obs/trace.h"

namespace idba {

Checkpointer::Checkpointer(DatabaseServer* server, CheckpointerOptions opts)
    : server_(server), opts_(opts) {
  MetricsRegistry& reg = GlobalMetrics();
  duration_us_ = reg.GetHistogram("wal.checkpoint.duration_us");
  pages_written_ = reg.GetHistogram("wal.checkpoint.pages_written");
  bytes_truncated_ = reg.GetCounter("wal.checkpoint.bytes_truncated");
  checkpoints_total_ = reg.GetCounter("wal.checkpoints_total");
  failures_total_ = reg.GetCounter("wal.checkpoint.failures_total");
}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Start() {
  if (opts_.interval_ms <= 0 && opts_.wal_bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Run(); });
}

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

Status Checkpointer::TriggerNow() { return RunOnce(); }

Checkpointer::Stats Checkpointer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Checkpointer::Run() {
  obs::RegisterThisThread("checkpointer");
  // With only the byte trigger enabled, poll it at 100 ms; the time
  // trigger wakes exactly on its interval.
  const int64_t sleep_ms =
      opts_.interval_ms > 0 ? opts_.interval_ms
                            : std::max<int64_t>(100, opts_.interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, std::chrono::milliseconds(sleep_ms),
                   [&] { return stop_; });
      if (stop_) return;
    }
    bool due = opts_.interval_ms > 0;
    if (!due && opts_.wal_bytes > 0) {
      due = server_->wal().bytes_since_truncate() >= opts_.wal_bytes;
    }
    if (!due) continue;
    Status st = RunOnce();
    if (!st.ok()) {
      IDBA_LOG_WARN("checkpointer", "checkpoint failed: " + st.ToString());
    }
  }
}

Status Checkpointer::RunOnce() {
  std::lock_guard<std::mutex> serial(run_mu_);
  const int64_t t0 = obs::NowUs();
  DatabaseServer::CheckpointStats cs;
  Status st = server_->FuzzyCheckpoint(&cs);
  const int64_t dur = obs::NowUs() - t0;
  std::lock_guard<std::mutex> lock(mu_);
  if (!st.ok()) {
    ++stats_.failures;
    failures_total_->Add();
    return st;
  }
  ++stats_.checkpoints;
  stats_.last_fence_lsn = cs.fence_lsn;
  stats_.last_checkpoint_us = obs::NowUs();
  stats_.last_pages_written = cs.pages_written;
  stats_.last_bytes_truncated = cs.bytes_truncated;
  checkpoints_total_->Add();
  duration_us_->Record(static_cast<double>(dur));
  pages_written_->Record(static_cast<double>(cs.pages_written));
  bytes_truncated_->Add(cs.bytes_truncated);
  return Status::OK();
}

}  // namespace idba
