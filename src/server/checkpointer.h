// Background checkpointer: periodically runs DatabaseServer::FuzzyCheckpoint
// so recovery replay stays bounded by WAL-since-last-checkpoint while
// transactions keep committing. Two triggers, either optional: a time
// interval and a WAL-bytes-appended threshold (whichever fires first).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "server/database_server.h"

namespace idba {

struct CheckpointerOptions {
  /// Checkpoint every this many milliseconds (0 = no time trigger).
  int64_t interval_ms = 0;
  /// Checkpoint when the WAL has grown this many bytes since the last one
  /// (0 = no byte trigger; checked every ~100 ms while enabled).
  uint64_t wal_bytes = 0;
};

/// Owns the checkpoint thread. Thread-safe.
class Checkpointer {
 public:
  Checkpointer(DatabaseServer* server, CheckpointerOptions opts);
  ~Checkpointer();

  /// Starts the background thread (no-op when both triggers are 0).
  void Start();
  void Stop();

  /// Runs one checkpoint synchronously (tests, orderly shutdown).
  /// Serialized against the background thread.
  Status TriggerNow();

  struct Stats {
    uint64_t checkpoints = 0;
    uint64_t failures = 0;
    Lsn last_fence_lsn = 0;
    int64_t last_checkpoint_us = 0;  ///< obs::NowUs() at last success (0 = never)
    uint64_t last_pages_written = 0;
    uint64_t last_bytes_truncated = 0;
  };
  Stats stats() const;

 private:
  void Run();
  Status RunOnce();

  DatabaseServer* server_;
  CheckpointerOptions opts_;

  std::mutex run_mu_;  ///< serializes RunOnce between thread and TriggerNow

  mutable std::mutex mu_;  ///< guards stats_ + stop signaling
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  Stats stats_;
  std::thread thread_;

  Histogram* duration_us_;      // wal.checkpoint.duration_us
  Histogram* pages_written_;    // wal.checkpoint.pages_written
  Counter* bytes_truncated_;    // wal.checkpoint.bytes_truncated
  Counter* checkpoints_total_;  // wal.checkpoints_total
  Counter* failures_total_;     // wal.checkpoint.failures_total
};

}  // namespace idba
