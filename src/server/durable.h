// Durable (file-backed) server deployment: opens a database directory,
// replays the WAL into the heap, and serves. Orderly shutdown checkpoints;
// a crash (process death without Close) is recovered on the next Open —
// committed transactions survive, uncommitted ones vanish.

#pragma once

#include <memory>
#include <string>

#include "server/database_server.h"
#include "txn/recovery.h"

namespace idba {

/// A DatabaseServer plus the FileDisks backing it.
class DurableDatabase {
 public:
  /// Opens (creating if empty) the database stored in `dir`, which holds
  /// `data.idb` (heap pages) and `wal.idb` (log pages). Runs recovery.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& dir, DatabaseServerOptions opts = {});

  DatabaseServer& server() { return *server_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Checkpoints everything to disk (orderly shutdown). Safe to call
  /// repeatedly; the destructor does NOT checkpoint (so tests can simulate
  /// crashes by simply destroying the object).
  Status Checkpoint();

 private:
  DurableDatabase() = default;
  std::unique_ptr<FileDisk> data_disk_;
  std::unique_ptr<FileDisk> wal_disk_;
  std::unique_ptr<DatabaseServer> server_;
  RecoveryStats recovery_stats_;
};

}  // namespace idba
