#include "server/durable.h"

#include <sys/stat.h>

namespace idba {

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, DatabaseServerOptions opts) {
  ::mkdir(dir.c_str(), 0755);  // best effort; Open below reports failures
  auto db = std::unique_ptr<DurableDatabase>(new DurableDatabase());
  IDBA_ASSIGN_OR_RETURN(db->data_disk_, FileDisk::Open(dir + "/data.idb"));
  IDBA_ASSIGN_OR_RETURN(db->wal_disk_, FileDisk::Open(dir + "/wal.idb"));
  // Every data page is a heap page (the heap allocates from 0 upward).
  PageId data_pages = db->data_disk_->PageCount();
  db->server_ = std::make_unique<DatabaseServer>(
      db->data_disk_.get(), db->wal_disk_.get(), data_pages, opts);
  IDBA_ASSIGN_OR_RETURN(db->recovery_stats_,
                        RecoverFromWal(db->wal_disk_.get(), &db->server_->heap()));
  // Replay may have materialised objects the TxnManager constructor could
  // not see (it scans the heap before recovery runs); without this, fresh
  // allocations would collide with recovered oids.
  db->server_->txn_manager().ReseedOidCounter();
  return db;
}

Status DurableDatabase::Checkpoint() { return server_->Checkpoint(); }

}  // namespace idba
