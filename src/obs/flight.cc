#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "obs/health.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace idba {
namespace obs {

namespace {

/// All-atomic event slot: dumps may read concurrently with the owning
/// thread's writes (relaxed atomics are data-race-free and, being lock-free
/// on every supported target, async-signal-safe).
struct FlightSlot {
  std::atomic<int64_t> t_us{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint8_t> type{0};
};

struct FlightRing {
  std::atomic<uint64_t> owner_tid{0};  ///< resets the ring on slot reuse
  std::atomic<uint32_t> next{0};
  FlightSlot ev[kFlightRingEvents];
};

/// Statically allocated (the crash handler must not touch the heap).
FlightRing g_rings[kMaxThreadSlots];

char g_crash_path[512] = {0};
std::atomic<bool> g_crash_installed{false};

// --- async-signal-safe formatting ---------------------------------------

void WriteAll(int fd, const char* s, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, s, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    s += w;
    n -= static_cast<size_t>(w);
  }
}

void WStr(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

void WU64(int fd, uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteAll(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

void WI64(int fd, int64_t v) {
  if (v < 0) {
    WStr(fd, "-");
    WU64(fd, static_cast<uint64_t>(-v));
  } else {
    WU64(fd, static_cast<uint64_t>(v));
  }
}

void CrashHandler(int sig, siginfo_t*, void*) {
  // Re-arm the default disposition first: a fault inside this handler then
  // terminates instead of recursing.
  ::signal(sig, SIG_DFL);
  int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    WStr(fd, "flightdump v1 signal=");
    WU64(fd, static_cast<uint64_t>(sig));
    WStr(fd, " now_us=");
    WI64(fd, NowUs());
    WStr(fd, "\n");
    FlightDumpToFd(fd);
    ProfilerDumpRawToFd(fd);
    WStr(fd, "end\n");
    ::close(fd);
    WStr(2, "idba: fatal signal, flight dump written to ");
    WStr(2, g_crash_path);
    WStr(2, "\n");
  }
  ::raise(sig);
}

}  // namespace

const char* FlightTypeName(FlightType type) {
  switch (type) {
    case FlightType::kNone: return "?";
    case FlightType::kFrameIn: return "frame.in";
    case FlightType::kFrameOut: return "frame.out";
    case FlightType::kStrandSchedule: return "strand.sched";
    case FlightType::kStrandRun: return "strand.run";
    case FlightType::kOverload: return "overload";
    case FlightType::kResync: return "resync";
    case FlightType::kWalAppend: return "wal.append";
    case FlightType::kWalFlushBegin: return "wal.flush_begin";
    case FlightType::kWalFlushEnd: return "wal.flush_end";
    case FlightType::kWalFlushFail: return "wal.flush_fail";
    case FlightType::kLockWait: return "lock.wait";
    case FlightType::kStall: return "stall";
    case FlightType::kAuditViolation: return "audit.violation";
  }
  return "?";
}

void FlightRecord(FlightType type, uint64_t a, uint64_t b) {
  const int slot = EnsureThisThreadSlot();
  if (slot < 0) return;
  FlightRing& ring = g_rings[slot];
  const uint64_t tid = ThisThreadId();
  if (ring.owner_tid.load(std::memory_order_relaxed) != tid) {
    // Slot reuse: events of the previous owner would be misattributed.
    ring.next.store(0, std::memory_order_relaxed);
    for (FlightSlot& e : ring.ev) {
      e.type.store(0, std::memory_order_relaxed);
    }
    ring.owner_tid.store(tid, std::memory_order_relaxed);
  }
  const uint32_t idx =
      ring.next.fetch_add(1, std::memory_order_relaxed) % kFlightRingEvents;
  FlightSlot& e = ring.ev[idx];
  e.type.store(0, std::memory_order_relaxed);  // mark torn while writing
  e.t_us.store(NowUs(), std::memory_order_relaxed);
  e.a.store(a, std::memory_order_relaxed);
  e.b.store(b, std::memory_order_relaxed);
  e.type.store(static_cast<uint8_t>(type), std::memory_order_release);
}

void InstallCrashHandler(const std::string& path) {
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  struct sigaction sa{};
  sa.sa_sigaction = &CrashHandler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGBUS, SIGABRT}) {
    (void)::sigaction(sig, &sa, nullptr);
  }
  g_crash_installed.store(true, std::memory_order_release);
}

void FlightDumpToFd(int fd) {
  for (int i = 0; i < kMaxThreadSlots; ++i) {
    FlightRing& ring = g_rings[i];
    const uint32_t next = ring.next.load(std::memory_order_acquire);
    if (ring.owner_tid.load(std::memory_order_relaxed) == 0 || next == 0) {
      continue;
    }
    WStr(fd, "thread slot=");
    WU64(fd, static_cast<uint64_t>(i));
    ThreadSlot* s = SlotAt(i);
    if (s != nullptr) {
      WStr(fd, " role=");
      // Signal context: the role buffer is read without the registry lock.
      // It is NUL-terminated at all times; a concurrent re-claim can at
      // worst garble the label of this one header line.
      WStr(fd, s->role[0] != '\0' ? s->role : "unnamed");
      WStr(fd, " tid=");
      WU64(fd, ring.owner_tid.load(std::memory_order_relaxed));
      WStr(fd, " epoch=");
      WU64(fd, s->epoch.load(std::memory_order_relaxed));
      WStr(fd, " working=");
      WU64(fd, s->working.load(std::memory_order_relaxed) ? 1 : 0);
    }
    WStr(fd, "\n");
    // Oldest-first: the ring wraps at kFlightRingEvents.
    const uint32_t count =
        next < kFlightRingEvents ? next : kFlightRingEvents;
    const uint32_t start = next - count;
    for (uint32_t k = 0; k < count; ++k) {
      const FlightSlot& e = ring.ev[(start + k) % kFlightRingEvents];
      const uint8_t type = e.type.load(std::memory_order_acquire);
      if (type == 0) continue;  // unwritten or torn mid-write
      WStr(fd, "event t_us=");
      WI64(fd, e.t_us.load(std::memory_order_relaxed));
      WStr(fd, " type=");
      WStr(fd, FlightTypeName(static_cast<FlightType>(type)));
      WStr(fd, " a=");
      WU64(fd, e.a.load(std::memory_order_relaxed));
      WStr(fd, " b=");
      WU64(fd, e.b.load(std::memory_order_relaxed));
      WStr(fd, "\n");
    }
  }
}

std::string FlightDumpString() {
  // Ordinary context: source live roles through the registry lock (the
  // direct role reads in FlightDumpToFd are reserved for signal context).
  std::string role_by_slot[kMaxThreadSlots];
  for (const ThreadSnapshot& snap : SnapshotThreads()) {
    role_by_slot[snap.slot] = snap.role;
  }
  std::string out = "flightdump v1 now_us=" + std::to_string(NowUs()) + "\n";
  for (int i = 0; i < kMaxThreadSlots; ++i) {
    FlightRing& ring = g_rings[i];
    const uint32_t next = ring.next.load(std::memory_order_acquire);
    const uint64_t tid = ring.owner_tid.load(std::memory_order_relaxed);
    if (tid == 0 || next == 0) continue;
    const std::string& role = role_by_slot[i];
    out += "thread slot=" + std::to_string(i) + " role=" +
           (role.empty() ? "exited" : role) + " tid=" + std::to_string(tid) +
           "\n";
    const uint32_t count =
        next < kFlightRingEvents ? next : kFlightRingEvents;
    const uint32_t start = next - count;
    for (uint32_t k = 0; k < count; ++k) {
      const FlightSlot& e = ring.ev[(start + k) % kFlightRingEvents];
      const uint8_t type = e.type.load(std::memory_order_acquire);
      if (type == 0) continue;
      out += "event t_us=" +
             std::to_string(e.t_us.load(std::memory_order_relaxed)) +
             " type=" + FlightTypeName(static_cast<FlightType>(type)) +
             " a=" + std::to_string(e.a.load(std::memory_order_relaxed)) +
             " b=" + std::to_string(e.b.load(std::memory_order_relaxed)) +
             "\n";
    }
  }
  out += "end\n";
  return out;
}

bool FlightDumpToFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string dump = FlightDumpString();
  const bool ok = std::fwrite(dump.data(), 1, dump.size(), f) == dump.size();
  std::fclose(f);
  return ok;
}

}  // namespace obs
}  // namespace idba
