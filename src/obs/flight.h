// Flight recorder: per-thread lock-free rings of recent structured events,
// dumped on demand (FLIGHT admin RPC), on a watchdog stall, or — the reason
// it exists — async-signal-safely from a SIGSEGV/SIGABRT handler, so a
// crashed idba_serve leaves the last ~hundred events of every thread plus
// the profiler's raw samples behind as evidence (DESIGN.md §13).
//
// Event taxonomy (a/b are type-specific small integers, never pointers):
//   frame.in          a=client id (0 pre-Hello)  b=frame type
//   frame.out         a=client id               b=frame type
//   strand.sched      a=client id               b=queue depth
//   strand.run        a=client id               b=dispatch lag (µs)
//   overload          a=client id               b=1 request shed / 2 oneway
//                                                 shed / 3 inbox overflow
//   resync            a=client id               b=notifications dropped
//   wal.append        a=lsn                     b=entry bytes
//   wal.flush_begin   a=batch records           b=target lsn
//   wal.flush_end     a=target lsn              b=flush µs
//   wal.flush_fail    a=target lsn              b=flush µs
//   lock.wait         a=oid                     b=waited µs
//   stall             a=stalled slot id         b=stalled ms
//   audit.violation   a=oid                     b=invariant (0 monotonicity
//                                                 / 1 visibility
//                                                 / 2 coherence)
//
// Recording is wait-free for the owning thread: one relaxed index bump and
// four relaxed atomic stores into a statically allocated ring (no
// allocation anywhere on the path, which is also what makes the crash-time
// dump safe). Rings are single-writer (the owning thread) / multi-reader
// (dumps), and a dump may catch an event mid-write — the parser treats an
// implausible type byte as a torn slot, never as corruption.

#pragma once

#include <cstdint>
#include <string>

namespace idba {
namespace obs {

enum class FlightType : uint8_t {
  kNone = 0,  ///< unwritten / torn slot
  kFrameIn = 1,
  kFrameOut = 2,
  kStrandSchedule = 3,
  kStrandRun = 4,
  kOverload = 5,
  kResync = 6,
  kWalAppend = 7,
  kWalFlushBegin = 8,
  kWalFlushEnd = 9,
  kWalFlushFail = 10,
  kLockWait = 11,
  kStall = 12,
  kAuditViolation = 13,
};

/// Stable text name ("frame.in", "wal.flush_end", ...); "?" for torn slots.
const char* FlightTypeName(FlightType type);

/// Events retained per thread before the ring wraps.
inline constexpr int kFlightRingEvents = 128;

/// Appends one event to the calling thread's ring (lazily claiming a
/// health slot for unnamed threads; silently dropped if the table is full).
void FlightRecord(FlightType type, uint64_t a = 0, uint64_t b = 0);

/// Installs SIGSEGV / SIGBUS / SIGABRT handlers that write the flight dump
/// (plus the profiler's raw samples, if it holds any) to `path` and then
/// re-raise with the default disposition. The path is copied into static
/// storage; call once at process startup.
void InstallCrashHandler(const std::string& path);

/// Async-signal-safe: writes the dump of every thread's ring to `fd` using
/// only write(2) and stack formatting. Used by the crash handler; callable
/// from tests.
void FlightDumpToFd(int fd);

/// The same dump as a string (FLIGHT admin RPC / watchdog stall reports).
std::string FlightDumpString();

/// Ordinary-context convenience: FlightDumpString() to a file. Returns
/// false when the file cannot be written.
bool FlightDumpToFile(const std::string& path);

}  // namespace obs
}  // namespace idba
