#include "obs/audit.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/flight.h"

namespace idba {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const char* AuditModeName(AuditMode mode) {
  switch (mode) {
    case AuditMode::kOff: return "off";
    case AuditMode::kTrack: return "track";
    case AuditMode::kStrict: return "strict";
  }
  return "off";
}

bool ParseAuditMode(std::string_view text, AuditMode* out) {
  if (text == "off") {
    *out = AuditMode::kOff;
  } else if (text == "track") {
    *out = AuditMode::kTrack;
  } else if (text == "strict") {
    *out = AuditMode::kStrict;
  } else {
    return false;
  }
  return true;
}

const char* AuditInvariantName(AuditInvariant inv) {
  switch (inv) {
    case AuditInvariant::kMonotonicity: return "monotonicity";
    case AuditInvariant::kVisibility: return "visibility";
    case AuditInvariant::kCoherence: return "coherence";
  }
  return "?";
}

ConsistencyAuditor::ConsistencyAuditor() {
  MetricsRegistry& reg = GlobalMetrics();
  checks_ = reg.GetCounter("consistency.checks");
  violations_ = reg.GetCounter("consistency.violations");
  monotonicity_violations_ =
      reg.GetCounter("consistency.monotonicity.violations");
  visibility_violations_ = reg.GetCounter("consistency.visibility.violations");
  coherence_violations_ = reg.GetCounter("consistency.coherence.violations");
  slo_violations_ = reg.GetCounter("consistency.slo.violations");
  obligations_settled_ = reg.GetCounter("consistency.obligations.settled");
  staleness_ = reg.GetHistogram("display.staleness_slo_us");
}

void ConsistencyAuditor::SetMode(AuditMode mode) {
  mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ConsistencyAuditor::Report(AuditViolation v) {
  violations_->Add();
  switch (v.invariant) {
    case AuditInvariant::kMonotonicity: monotonicity_violations_->Add(); break;
    case AuditInvariant::kVisibility: visibility_violations_->Add(); break;
    case AuditInvariant::kCoherence: coherence_violations_->Add(); break;
  }
  FlightRecord(FlightType::kAuditViolation, v.oid,
               static_cast<uint64_t>(v.invariant));
  IDBA_LOG_FIELDS(LogLevel::kError, "audit", "consistency violation",
                  {{"invariant", AuditInvariantName(v.invariant)},
                   {"subscriber", std::to_string(v.subscriber)},
                   {"oid", std::to_string(v.oid)},
                   {"observed", std::to_string(v.observed)},
                   {"expected", std::to_string(v.expected)},
                   {"trace", std::to_string(v.trace_id)},
                   {"detail", v.detail}});
  const bool strict = mode() == AuditMode::kStrict;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (ring_.size() >= kViolationRing) {
      ring_.erase(ring_.begin());
      ++ring_dropped_;
    }
    ring_.push_back(std::move(v));
  }
  if (strict) {
    // The installed crash handler (idba_serve --flight-dump, chaos harness)
    // turns this abort into a flight dump whose last event is the
    // audit.violation recorded above.
    std::fflush(nullptr);
    std::abort();
  }
}

void ConsistencyAuditor::CheckWatermark(
    std::unordered_map<uint64_t, int64_t>* map, uint64_t subscriber,
    uint64_t oid, int64_t commit_vtime, uint64_t trace_id, const char* stream,
    std::vector<AuditViolation>* out) {
  auto [it, inserted] = map->emplace(oid, commit_vtime);
  if (inserted) return;
  if (commit_vtime < it->second) {
    AuditViolation v;
    v.invariant = AuditInvariant::kMonotonicity;
    v.subscriber = subscriber;
    v.oid = oid;
    v.observed = commit_vtime;
    v.expected = it->second;
    v.trace_id = trace_id;
    v.detail = std::string(stream) + " commit vtime regressed";
    out->push_back(std::move(v));
    return;  // keep the high watermark
  }
  it->second = commit_vtime;
}

void ConsistencyAuditor::SweepLocked(uint64_t subscriber, SubscriberState* st,
                                     int64_t local_vtime,
                                     std::vector<AuditViolation>* out) {
  for (auto it = st->pending.begin(); it != st->pending.end();) {
    if (it->second.deadline < local_vtime) {
      AuditViolation v;
      v.invariant = AuditInvariant::kVisibility;
      v.subscriber = subscriber;
      v.oid = it->first;
      v.observed = local_vtime;
      v.expected = it->second.deadline;
      v.trace_id = it->second.trace_id;
      v.detail = "commit not reflected within staleness SLO";
      out->push_back(std::move(v));
      slo_violations_->Add();
      it = st->pending.erase(it);
    } else {
      ++it;
    }
  }
}

void ConsistencyAuditor::OnNotifyReceived(uint64_t subscriber,
                                          const uint64_t* oids, size_t n,
                                          int64_t commit_vtime,
                                          uint64_t trace_id) {
  if (!enabled()) return;
  checks_->Add();
  std::vector<AuditViolation> found;
  {
    Stripe& stripe = StripeFor(subscriber);
    std::lock_guard<std::mutex> lock(stripe.mu);
    SubscriberState& st = stripe.subs[subscriber];
    for (size_t i = 0; i < n; ++i) {
      CheckWatermark(&st.observed_watermark, subscriber, oids[i], commit_vtime,
                     trace_id, "observed", &found);
    }
  }
  for (auto& v : found) Report(std::move(v));
}

void ConsistencyAuditor::OnNotifyDispatched(uint64_t subscriber,
                                            const uint64_t* oids, size_t n,
                                            int64_t commit_vtime,
                                            int64_t local_vtime,
                                            uint64_t trace_id) {
  if (!enabled()) return;
  checks_->Add();
  const int64_t slo = staleness_slo_us();
  std::vector<AuditViolation> found;
  {
    Stripe& stripe = StripeFor(subscriber);
    std::lock_guard<std::mutex> lock(stripe.mu);
    SubscriberState& st = stripe.subs[subscriber];
    SweepLocked(subscriber, &st, local_vtime, &found);
    for (size_t i = 0; i < n; ++i) {
      CheckWatermark(&st.observed_watermark, subscriber, oids[i], commit_vtime,
                     trace_id, "dispatched", &found);
      if (slo > 0) {
        auto [it, inserted] = st.pending.emplace(
            oids[i], Obligation{commit_vtime, local_vtime + slo, trace_id});
        if (!inserted) {
          // Earlier commit already pending: keep its (earlier) deadline and
          // commit vtime — the refresh that settles it shows current state,
          // which covers this newer commit too.
          (void)it;
        }
      }
    }
  }
  for (auto& v : found) Report(std::move(v));
}

void ConsistencyAuditor::OnVersionCommitted(uint64_t subscriber, uint64_t oid,
                                            uint64_t version) {
  if (!enabled()) return;
  checks_->Add();
  Stripe& stripe = StripeFor(subscriber);
  std::lock_guard<std::mutex> lock(stripe.mu);
  uint64_t& floor = stripe.subs[subscriber].version_floor[oid];
  if (version > floor) floor = version;
}

void ConsistencyAuditor::OnViewRefresh(uint64_t subscriber, uint64_t oid,
                                       uint64_t version, int64_t local_vtime) {
  if (!enabled()) return;
  checks_->Add();
  const int64_t slo = staleness_slo_us();
  std::vector<AuditViolation> found;
  {
    Stripe& stripe = StripeFor(subscriber);
    std::lock_guard<std::mutex> lock(stripe.mu);
    SubscriberState& st = stripe.subs[subscriber];
    auto ob = st.pending.find(oid);
    if (ob != st.pending.end()) {
      // Histogram: end-to-end staleness (commit vtime -> displayed), the
      // paper-level metric. It includes the virtual wire and queueing
      // delay, so it has a cost-model floor (~message_base) no client can
      // beat — which is why the SLO *deadline* is anchored at dispatch
      // (when this client learned of the commit), not at the commit.
      staleness_->Record(
          static_cast<double>(local_vtime - ob->second.commit_vtime));
      obligations_settled_->Add();
      if (slo > 0 && local_vtime > ob->second.deadline) {
        // A late settle is an SLO *miss*, not a correctness violation: the
        // refresh that settles may merge the server's clock (a refetch
        // round trip, a Lamport catch-up after the subscriber idled), so
        // blaming it would abort strict mode on healthy-but-slow paths.
        // Only an obligation that EXPIRES unsettled — the commit was never
        // reflected — is a visibility violation (SweepLocked).
        slo_violations_->Add();
      }
      st.pending.erase(ob);
    }
    uint64_t& floor = st.version_floor[oid];
    if (version < floor) {
      AuditViolation v;
      v.invariant = AuditInvariant::kCoherence;
      v.subscriber = subscriber;
      v.oid = oid;
      v.observed = static_cast<int64_t>(version);
      v.expected = static_cast<int64_t>(floor);
      v.detail = "refresh displayed a version older than a known commit";
      found.push_back(std::move(v));
    } else {
      floor = version;
    }
  }
  for (auto& v : found) Report(std::move(v));
}

void ConsistencyAuditor::OnResync(uint64_t subscriber) {
  if (!enabled()) return;
  Stripe& stripe = StripeFor(subscriber);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.subs.find(subscriber);
  if (it == stripe.subs.end()) return;
  // Shed notifications void their obligations; the resync refetch shows
  // current state. Watermarks and floors stay: same server, same clocks.
  it->second.pending.clear();
}

void ConsistencyAuditor::OnSessionReset(uint64_t subscriber) {
  if (!enabled()) return;
  Stripe& stripe = StripeFor(subscriber);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.subs.erase(subscriber);
}

void ConsistencyAuditor::OnNotifySent(uint64_t subscriber,
                                      const uint64_t* oids, size_t n,
                                      int64_t commit_vtime,
                                      uint64_t trace_id) {
  if (!enabled()) return;
  checks_->Add();
  std::vector<AuditViolation> found;
  {
    Stripe& stripe = StripeFor(subscriber);
    std::lock_guard<std::mutex> lock(stripe.mu);
    SubscriberState& st = stripe.subs[subscriber];
    for (size_t i = 0; i < n; ++i) {
      CheckWatermark(&st.sent_watermark, subscriber, oids[i], commit_vtime,
                     trace_id, "sent", &found);
    }
  }
  for (auto& v : found) Report(std::move(v));
}

void ConsistencyAuditor::CheckNow(int64_t local_vtime) {
  if (!enabled()) return;
  std::vector<AuditViolation> found;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto& [sub, st] : stripe.subs) {
      SweepLocked(sub, &st, local_vtime, &found);
    }
  }
  for (auto& v : found) Report(std::move(v));
}

std::vector<AuditViolation> ConsistencyAuditor::Violations() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_;
}

size_t ConsistencyAuditor::pending_obligations() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [sub, st] : stripe.subs) total += st.pending.size();
  }
  return total;
}

std::string ConsistencyAuditor::ReportJson() const {
  std::string out = "{";
  out += "\"mode\":\"" + std::string(AuditModeName(mode())) + "\"";
  out += ",\"staleness_slo_us\":" + std::to_string(staleness_slo_us());
  out += ",\"checks_total\":" + std::to_string(checks_->Get());
  out += ",\"violations_total\":" + std::to_string(violations_->Get());
  out += ",\"monotonicity_violations\":" +
         std::to_string(monotonicity_violations_->Get());
  out += ",\"visibility_violations\":" +
         std::to_string(visibility_violations_->Get());
  out += ",\"coherence_violations\":" +
         std::to_string(coherence_violations_->Get());
  out += ",\"slo_violations\":" + std::to_string(slo_violations_->Get());
  out += ",\"obligations_settled\":" +
         std::to_string(obligations_settled_->Get());
  out += ",\"pending_obligations\":" + std::to_string(pending_obligations());
  HistogramSnapshot lag = staleness_->Snapshot();
  out += ",\"staleness_us\":{\"count\":" + std::to_string(lag.count);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"mean\":%.1f,\"p95\":%.1f,\"max\":%.1f}",
                lag.mean, lag.p95, lag.max);
  out += buf;
  std::lock_guard<std::mutex> lock(ring_mu_);
  out += ",\"violations_dropped\":" + std::to_string(ring_dropped_);
  out += ",\"violations\":[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    const AuditViolation& v = ring_[i];
    if (i > 0) out += ",";
    out += "{\"invariant\":\"" +
           std::string(AuditInvariantName(v.invariant)) + "\"";
    out += ",\"subscriber\":" + std::to_string(v.subscriber);
    out += ",\"oid\":" + std::to_string(v.oid);
    out += ",\"observed\":" + std::to_string(v.observed);
    out += ",\"expected\":" + std::to_string(v.expected);
    out += ",\"trace_id\":" + std::to_string(v.trace_id);
    out += ",\"detail\":\"" + JsonEscape(v.detail) + "\"}";
  }
  out += "]}";
  return out;
}

void ConsistencyAuditor::ResetForTest() {
  SetMode(AuditMode::kOff);
  set_staleness_slo_us(0);
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.subs.clear();
  }
  checks_->Reset();
  violations_->Reset();
  monotonicity_violations_->Reset();
  visibility_violations_->Reset();
  coherence_violations_->Reset();
  slo_violations_->Reset();
  obligations_settled_->Reset();
  staleness_->Reset();
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.clear();
  ring_dropped_ = 0;
}

ConsistencyAuditor& GlobalAuditor() {
  static ConsistencyAuditor* auditor = new ConsistencyAuditor();
  return *auditor;
}

}  // namespace obs
}  // namespace idba
