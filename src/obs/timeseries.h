// Time-series view of a MetricsRegistry: periodic whole-registry snapshots
// with per-window deltas and rates.
//
// Cumulative counters and histograms answer "how much since the process
// started"; operators and dashboards need "how much per second, right now,
// and which way is it trending". A MetricsTimeSeries snapshots the whole
// registry on each Tick() (driven by idba_serve's --metrics-interval
// thread), computes counter deltas, per-window histogram count/sum deltas
// and per-window percentiles (from bucket-count deltas — the only way to
// get a p99 of *this* window out of a cumulative histogram), and retains
// the last `retain` windows in a ring. The METRICS admin RPC (format 2)
// serves the ring as JSON; idba_top computes the same deltas client-side
// from successive Prometheus scrapes, so the two always agree on method.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace idba {
namespace obs {

/// One retained window: absolute values plus deltas vs the previous tick.
struct MetricsWindow {
  int64_t at_us = 0;        ///< obs::NowUs() at the tick
  int64_t interval_us = 0;  ///< gap to the previous tick (0 on the first)
  std::map<std::string, uint64_t> counters;        ///< absolute
  std::map<std::string, uint64_t> counter_deltas;  ///< this window only
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;  ///< cumulative

  /// Per-window histogram activity, reconstructed from bucket deltas.
  struct HistDelta {
    uint64_t count = 0;  ///< records in this window
    double sum = 0;
    double p50 = 0;  ///< of this window's records (bucket-interpolated)
    double p99 = 0;
  };
  std::map<std::string, HistDelta> histogram_deltas;
};

/// Per-window percentile from two cumulative bucket-count arrays (current
/// minus previous). Exposed for idba_top, which performs the identical
/// computation on parsed Prometheus buckets.
double PercentileOfDeltas(const std::vector<uint64_t>& cur,
                          const std::vector<uint64_t>& prev, double q);

/// Thread-safe ring of MetricsWindow snapshots over one registry.
class MetricsTimeSeries {
 public:
  explicit MetricsTimeSeries(MetricsRegistry* reg, size_t retain = 120);

  /// Snapshots the registry now and appends a window (dropping the oldest
  /// beyond the retention bound). Returns a copy of the new window.
  MetricsWindow Tick();

  /// Retained windows, oldest first.
  std::vector<MetricsWindow> Windows() const;
  size_t window_count() const;
  size_t retain() const { return retain_; }
  void Clear();

  /// {"retain":N,"windows":[{"at_us":..,"interval_us":..,
  ///   "counter_deltas":{..},"gauges":{..},"histogram_deltas":{..}},...]}
  /// Only metrics active in a window appear in its delta maps (the absolute
  /// state is one STATS call away); `last_n` = 0 dumps the whole ring.
  std::string DumpJson(size_t last_n = 0) const;

 private:
  MetricsRegistry* reg_;
  size_t retain_;

  mutable std::mutex mu_;
  std::deque<MetricsWindow> windows_;
  // Previous-tick state the deltas are computed against.
  std::map<std::string, uint64_t> prev_counters_;
  std::map<std::string, std::vector<uint64_t>> prev_buckets_;
  std::map<std::string, HistogramSnapshot> prev_hists_;
  int64_t prev_at_us_ = 0;
  bool have_prev_ = false;
};

/// The process-wide series over GlobalMetrics, ticked by idba_serve's
/// metrics thread and served by the METRICS admin RPC.
MetricsTimeSeries& GlobalTimeSeries();

}  // namespace obs
}  // namespace idba
