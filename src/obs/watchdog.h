// Stall watchdog (DESIGN.md §13). Reactor loops and workers stamp a
// per-thread epoch (obs/health.h HealthEpochBump) each iteration/dispatch
// and mark themselves `working` while executing dispatched work. The
// watchdog thread polls those stamps: a thread that stays `working` with a
// frozen epoch past the threshold is stalled — the watchdog logs WARN with
// the thread's symbolized stack, bumps health.stalls_total (and the
// per-role health.stalls.<role> counter), records a `stall` flight event,
// and writes a flight dump for post-mortem, once per stall episode (the
// report re-arms when the epoch moves again).
//
// Threads blocked in epoll_wait / the run-queue wait are idle, not stalled:
// they clear `working` first, so the watchdog never flags them.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/health.h"

namespace idba {

class Counter;

namespace obs {

struct WatchdogOptions {
  /// A working thread whose epoch is frozen this long is stalled.
  int64_t threshold_ms = 1000;
  /// Poll period; 0 derives threshold_ms / 4 (detection therefore lands
  /// between 1x and ~1.5x threshold, comfortably under the 2x bound the
  /// watchdog test asserts).
  int64_t poll_ms = 0;
  /// When non-empty, each stall also writes a flight dump here.
  std::string flight_dump_path;
  /// Test/installer hook, called after the standard reporting.
  std::function<void(const ThreadSnapshot&, const std::string& stack)>
      on_stall;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions opts = {});
  ~Watchdog();

  void Start();
  void Stop();
  bool running() const;

  /// Stall episodes reported since Start().
  uint64_t stalls() const;

 private:
  void Main();

  WatchdogOptions opts_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> stalls_{0};
  Counter* stalls_total_;
};

}  // namespace obs
}  // namespace idba
