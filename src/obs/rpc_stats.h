// Per-opcode RPC latency decomposition.
//
// For each wire method the client records where a call's wall time went:
//
//   rpc.<method>.serialize_us    encode request payload
//   rpc.<method>.network_us      send -> response received, minus the
//                                server-reported queue + execute time
//   rpc.<method>.queue_us        server-side wait reader -> worker
//   rpc.<method>.execute_us      server-side ExecuteMethod
//   rpc.<method>.deserialize_us  decode response payload
//   rpc.<method>.total_us        end-to-end at the caller
//
// Server-side parts arrive in the response frame's TraceInfo (wire v2);
// against a v1 server queue/execute are unknown and network_us absorbs
// them. Histograms live in GlobalMetrics; this table exists so the per-call
// hot path costs an array index, not six registry map lookups.

#pragma once

#include <cstdint>

#include "common/metrics.h"

namespace idba {
namespace obs {

/// Cached histogram pointers for one method.
struct RpcPartHistograms {
  Histogram* serialize_us = nullptr;
  Histogram* network_us = nullptr;
  Histogram* queue_us = nullptr;
  Histogram* execute_us = nullptr;
  Histogram* deserialize_us = nullptr;
  Histogram* total_us = nullptr;
};

/// Lazily-built table of RpcPartHistograms indexed by wire method id.
class RpcStats {
 public:
  static constexpr int kMaxMethods = 64;

  /// Histograms for `method` (registered in GlobalMetrics on first use as
  /// rpc.<name>.<part>_us). `name` must be the stable method name; out of
  /// range ids share a single "other" slot.
  RpcPartHistograms& HandleFor(int method, const char* name);

 private:
  std::mutex mu_;  ///< guards slot initialization only
  std::atomic<RpcPartHistograms*> slots_[kMaxMethods + 1] = {};
};

/// Process-wide table used by the remote client (and anything else that
/// wants per-method decomposition).
RpcStats& GlobalRpcStats();

}  // namespace obs
}  // namespace idba
