// Prometheus text exposition (format 0.0.4) of a MetricsRegistry.
//
// Every registered metric is rendered under the `idba_` namespace with its
// dotted name sanitized to Prometheus rules (`cache.object.hits` becomes
// `idba_cache_object_hits_total`):
//
//   counters    -> `# TYPE idba_x_total counter` + one sample, `_total` suffix
//   gauges      -> `# TYPE idba_x gauge` + one sample
//   histograms  -> `# TYPE idba_x histogram` + cumulative `_bucket{le="..."}`
//                  series (trailing all-zero buckets elided, `+Inf` always
//                  present and equal to `_count`), `_sum`, `_count`
//
// HELP lines carry the original dotted metric name so a dashboard can be
// cross-referenced against DESIGN.md's metric taxonomy. Served by the
// METRICS admin RPC and idba_serve's `--prom-port` HTTP endpoint; consumed
// by idba_top and `idba_stat --watch`, which both parse this format rather
// than scraping human output.

#pragma once

#include <string>
#include <string_view>

#include "common/metrics.h"

namespace idba {
namespace obs {

/// Maps an arbitrary metric name onto the Prometheus name charset
/// [a-zA-Z0-9_:] (invalid characters become '_'; a leading digit gets a
/// '_' prefix). Does not add the `idba_` namespace.
std::string PromSanitizeName(std::string_view name);

/// Escapes a HELP line: backslash and newline.
std::string PromEscapeHelp(std::string_view text);

/// Escapes a label value: backslash, newline and double quote.
std::string PromEscapeLabel(std::string_view text);

/// Renders every counter, gauge and histogram in `reg`.
std::string PromExport(const MetricsRegistry& reg);

}  // namespace obs
}  // namespace idba
