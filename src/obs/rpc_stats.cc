#include "obs/rpc_stats.h"

#include <string>

namespace idba {
namespace obs {

RpcPartHistograms& RpcStats::HandleFor(int method, const char* name) {
  int slot = (method >= 0 && method < kMaxMethods) ? method : kMaxMethods;
  RpcPartHistograms* h = slots_[slot].load(std::memory_order_acquire);
  if (h) return *h;

  std::lock_guard<std::mutex> lock(mu_);
  h = slots_[slot].load(std::memory_order_relaxed);
  if (h) return *h;

  auto* fresh = new RpcPartHistograms();  // leaked with the process, like the registry
  MetricsRegistry& reg = GlobalMetrics();
  std::string base = "rpc.";
  base += (slot == kMaxMethods) ? "other" : name;
  base += '.';
  fresh->serialize_us = reg.GetHistogram(base + "serialize_us");
  fresh->network_us = reg.GetHistogram(base + "network_us");
  fresh->queue_us = reg.GetHistogram(base + "queue_us");
  fresh->execute_us = reg.GetHistogram(base + "execute_us");
  fresh->deserialize_us = reg.GetHistogram(base + "deserialize_us");
  fresh->total_us = reg.GetHistogram(base + "total_us");
  slots_[slot].store(fresh, std::memory_order_release);
  return *fresh;
}

RpcStats& GlobalRpcStats() {
  static RpcStats* stats = new RpcStats();
  return *stats;
}

}  // namespace obs
}  // namespace idba
