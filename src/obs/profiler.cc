#include "obs/profiler.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/trace.h"

namespace idba {
namespace obs {

namespace {

constexpr int kProfMaxFrames = 32;
constexpr int kMaxRawSamples = 8192;

/// One captured stack. Plain fields are written by the single sampler
/// thread under g_ring_mu (which DumpFolded also takes); `seq` additionally
/// guards the lock-free crash-time reader — 0 while unwritten or mid-write,
/// then the 1-based capture ordinal.
struct RawSample {
  std::atomic<uint32_t> seq{0};
  int slot = -1;
  uint64_t tid = 0;
  char role[kThreadRoleLen] = {0};
  int n = 0;
  int64_t t_us = 0;
  void* frames[kProfMaxFrames];
};

/// Static so the crash handler can dump raw samples without the heap.
RawSample g_samples[kMaxRawSamples];

std::mutex g_ctl_mu;   ///< Start/Stop and the sampler thread object
std::mutex g_ring_mu;  ///< sample writes vs DumpFolded reads
std::thread g_thread;
std::atomic<bool> g_running{false};
std::atomic<bool> g_stop{false};
std::atomic<int> g_hz{0};
std::atomic<uint64_t> g_count{0};    ///< total captures (ring wraps)
std::atomic<uint64_t> g_dropped{0};  ///< ticks whose capture failed

// Async-signal-safe writers for ProfilerDumpRawToFd (the crash path cannot
// share the locked std::string renderers).

void WriteAll(int fd, const char* s, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, s, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    s += w;
    n -= static_cast<size_t>(w);
  }
}

void WStr(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

void WU64(int fd, uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteAll(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

void WHex(int fd, uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    const int d = static_cast<int>(v & 0xf);
    *--p = static_cast<char>(d < 10 ? '0' + d : 'a' + d - 10);
    v >>= 4;
  } while (v != 0);
  *--p = 'x';
  *--p = '0';
  WriteAll(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

/// True for frames of the capture machinery itself, which every sample
/// would otherwise lead with.
bool IsMachineryFrame(const std::string& sym) {
  return sym.find("CaptureSignalHandler") != std::string::npos ||
         sym.find("__restore_rt") != std::string::npos ||
         sym.compare(0, 9, "backtrace") == 0;
}

}  // namespace

bool Profiler::Start(int hz) {
  hz = std::clamp(hz, 1, 1000);
  std::lock_guard<std::mutex> ctl(g_ctl_mu);
  if (g_running.load(std::memory_order_relaxed)) return false;
  {
    std::lock_guard<std::mutex> ring(g_ring_mu);
    for (RawSample& s : g_samples) {
      s.seq.store(0, std::memory_order_relaxed);
    }
    g_count.store(0, std::memory_order_relaxed);
    g_dropped.store(0, std::memory_order_relaxed);
  }
  g_stop.store(false, std::memory_order_relaxed);
  g_hz.store(hz, std::memory_order_relaxed);
  g_running.store(true, std::memory_order_release);
  g_thread = std::thread([this, hz] { SamplerMain(hz); });
  return true;
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> ctl(g_ctl_mu);
  if (!g_running.load(std::memory_order_relaxed)) return;
  g_stop.store(true, std::memory_order_release);
  g_thread.join();
  g_running.store(false, std::memory_order_release);
}

bool Profiler::running() const {
  return g_running.load(std::memory_order_acquire);
}

int Profiler::hz() const { return g_hz.load(std::memory_order_relaxed); }

uint64_t Profiler::samples() const {
  return g_count.load(std::memory_order_relaxed);
}

uint64_t Profiler::dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

void Profiler::SamplerMain(int hz) {
  RegisterThisThread("profiler", /*samplable=*/false);
  const int64_t interval_ns = 1'000'000'000LL / hz;
  // Capture timeout well under one tick; generous lower bound because
  // sanitizer builds deliver the signal only at interception points.
  const int64_t capture_timeout_us =
      std::max<int64_t>(2'000, std::min<int64_t>(interval_ns / 2'000, 5'000));
  timespec next{};
  ::clock_gettime(CLOCK_MONOTONIC, &next);
  size_t rr = 0;
  while (!g_stop.load(std::memory_order_acquire)) {
    next.tv_nsec += interval_ns;
    while (next.tv_nsec >= 1'000'000'000LL) {
      next.tv_nsec -= 1'000'000'000LL;
      next.tv_sec += 1;
    }
    while (::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &next, nullptr) ==
           EINTR) {
    }
    if (g_stop.load(std::memory_order_acquire)) break;

    // One directed sample per tick, round-robin over the samplable threads:
    // total signal rate == hz regardless of thread count.
    std::vector<ThreadSnapshot> threads = SnapshotThreads();
    threads.erase(std::remove_if(threads.begin(), threads.end(),
                                 [](const ThreadSnapshot& t) {
                                   return !t.samplable;
                                 }),
                  threads.end());
    if (threads.empty()) continue;
    const ThreadSnapshot& target = threads[rr++ % threads.size()];

    void* frames[kProfMaxFrames];
    const int n =
        CaptureRawStack(target.slot, frames, kProfMaxFrames, capture_timeout_us);
    if (n <= 0) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::lock_guard<std::mutex> ring(g_ring_mu);
    const uint64_t count = g_count.load(std::memory_order_relaxed);
    RawSample& s = g_samples[count % kMaxRawSamples];
    s.seq.store(0, std::memory_order_release);  // mark torn for crash reader
    s.slot = target.slot;
    s.tid = target.tid;
    std::snprintf(s.role, sizeof(s.role), "%s", target.role.c_str());
    s.n = n;
    s.t_us = NowUs();
    std::memcpy(s.frames, frames, static_cast<size_t>(n) * sizeof(void*));
    s.seq.store(static_cast<uint32_t>(count % kMaxRawSamples) + 1,
                std::memory_order_release);
    g_count.store(count + 1, std::memory_order_relaxed);
  }
  UnregisterThisThread();
}

std::string Profiler::DumpFolded() {
  std::lock_guard<std::mutex> ring(g_ring_mu);
  const uint64_t total = g_count.load(std::memory_order_relaxed);
  const uint64_t have =
      std::min<uint64_t>(total, static_cast<uint64_t>(kMaxRawSamples));
  std::map<std::string, uint64_t> folded;
  std::map<void*, std::string> symcache;
  for (uint64_t i = total - have; i < total; ++i) {
    const RawSample& s = g_samples[i % kMaxRawSamples];
    if (s.seq.load(std::memory_order_acquire) == 0 || s.n <= 0) continue;
    std::string key = s.role;
    // backtrace() is leaf-first; folded stacks are outer-first.
    for (int f = s.n - 1; f >= 0; --f) {
      auto it = symcache.find(s.frames[f]);
      if (it == symcache.end()) {
        it = symcache.emplace(s.frames[f], SymbolizeAddr(s.frames[f])).first;
      }
      if (IsMachineryFrame(it->second)) continue;
      key += ';';
      key += it->second;
    }
    folded[key]++;
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::StatusLine() {
  std::string out = "profiler ";
  out += running() ? "running hz=" + std::to_string(hz()) : "stopped";
  out += " samples=" + std::to_string(samples());
  out += " dropped=" + std::to_string(dropped());
  return out;
}

Profiler& GlobalProfiler() {
  static Profiler* p = new Profiler();
  return *p;
}

void ProfilerDumpRawToFd(int fd) {
  for (int i = 0; i < kMaxRawSamples; ++i) {
    const RawSample& s = g_samples[i];
    // seq is the only synchronization here (crash context): skip slots a
    // dying sampler left mid-write.
    if (s.seq.load(std::memory_order_acquire) !=
        static_cast<uint32_t>(i) + 1) {
      continue;
    }
    WStr(fd, "sample slot=");
    WU64(fd, static_cast<uint64_t>(s.slot));
    WStr(fd, " role=");
    WStr(fd, s.role[0] != '\0' ? s.role : "unnamed");
    WStr(fd, " t_us=");
    WU64(fd, static_cast<uint64_t>(s.t_us < 0 ? 0 : s.t_us));
    WStr(fd, " frames=");
    const int n = s.n < kProfMaxFrames ? s.n : kProfMaxFrames;
    for (int f = 0; f < n; ++f) {
      if (f > 0) WStr(fd, ",");
      WHex(fd, reinterpret_cast<uint64_t>(s.frames[f]));
    }
    WStr(fd, "\n");
  }
}

}  // namespace obs
}  // namespace idba
