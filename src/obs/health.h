// Thread-health registry: the shared substrate of the runtime-health layer
// (DESIGN.md §13). Long-lived threads register themselves under a role
// ("io-loop-0", "worker-3", "acceptor", ...) into a fixed table of slots;
// the profiler round-robins the registered threads for SIGPROF stack
// samples, the watchdog checks that each working thread's epoch keeps
// advancing, and the flight recorder keys its per-thread event rings off
// the same slot ids.
//
// Registration contract:
//   - RegisterThisThread(role) claims a slot for the calling thread and is
//     what makes it *samplable*: the profiler/watchdog may pthread_kill it
//     a capture signal. The slot is released automatically at thread exit
//     (thread_local destructor) or explicitly via UnregisterThisThread —
//     both happen while the thread is still joinable, so a pthread_kill
//     under the registry lock can never hit a dead thread.
//   - EnsureThisThreadSlot() lazily claims a non-samplable slot (role
//     "thread-<tid>") so short-lived threads can still record flight
//     events without ever being a signal target.
//   - Epoch/working stamps are single relaxed atomics: cheap enough for
//     every reactor iteration and worker dispatch.
//
// Everything here sits below net/ in the link graph: no net/ includes, the
// transport integrates by calling these hooks.

#pragma once

#include <atomic>
#include <cstdint>
#include <pthread.h>
#include <string>
#include <vector>

namespace idba {
namespace obs {

inline constexpr int kMaxThreadSlots = 128;
inline constexpr int kThreadRoleLen = 32;
inline constexpr int kMaxStackFrames = 48;

struct ThreadSlot {
  /// Slot lifecycle: `used` claims the storage (under the registry lock),
  /// `live` publishes it to scanners. Cleared in the reverse order.
  std::atomic<bool> used{false};
  std::atomic<bool> live{false};
  /// True when the thread registered with an explicit role and may be
  /// signal-sampled (profiler ticks, watchdog stack capture).
  std::atomic<bool> samplable{false};
  char role[kThreadRoleLen] = {0};  ///< written before `live`, stable after
  pthread_t pthread{};              ///< valid while `live`
  uint64_t tid = 0;                 ///< small sequential id (== log/trace tid)
  /// Bumped once per reactor iteration / worker dispatch. Frozen epoch +
  /// working == stall.
  std::atomic<uint64_t> epoch{0};
  /// True while the thread is executing dispatched work (not blocked in
  /// epoll_wait / the run-queue wait, which are legitimate idle states).
  std::atomic<bool> working{false};
  /// Transient role overlay ("flush-leader" while a committer runs the WAL
  /// group-commit I/O). MUST point at a string literal: the profiler's
  /// signal handler reads it with no lifetime protection.
  std::atomic<const char*> phase{nullptr};
};

/// Claims a slot for the calling thread (re-registering just renames it).
/// Returns the slot id, or -1 when the table is full (health features then
/// silently skip this thread). `samplable` threads may receive capture
/// signals — every long-lived subsystem thread wants true.
int RegisterThisThread(const std::string& role, bool samplable = true);
/// Releases the calling thread's slot (idempotent; also runs automatically
/// at thread exit).
void UnregisterThisThread();
/// Slot id of the calling thread, -1 when unregistered.
int ThisThreadSlotId();
/// Like ThisThreadSlotId but lazily registers a non-samplable
/// "thread-<tid>" slot, for flight events from unnamed threads.
int EnsureThisThreadSlot();
/// Direct slot access (id from the functions above; never out of range
/// checks are the caller's problem — returns nullptr when out of range).
ThreadSlot* SlotAt(int id);

/// Health heartbeat: bump the calling thread's epoch (no-op unregistered).
void HealthEpochBump();
/// Marks the calling thread busy/idle for the watchdog (no-op unregistered).
void SetThreadWorking(bool working);

/// RAII role overlay for transient duties (e.g. the WAL flush leader).
/// `phase` must be a string literal (see ThreadSlot::phase).
class ScopedThreadPhase {
 public:
  explicit ScopedThreadPhase(const char* phase);
  ~ScopedThreadPhase();
  ScopedThreadPhase(const ScopedThreadPhase&) = delete;
  ScopedThreadPhase& operator=(const ScopedThreadPhase&) = delete;

 private:
  ThreadSlot* slot_ = nullptr;
  const char* prev_ = nullptr;
};

/// Point-in-time view of one live slot, for watchdog/profiler scans.
struct ThreadSnapshot {
  int slot = -1;
  std::string role;
  uint64_t tid = 0;
  uint64_t epoch = 0;
  bool working = false;
  bool samplable = false;
};
std::vector<ThreadSnapshot> SnapshotThreads();

/// One-shot remote stack capture: signals the (samplable, live) thread in
/// `slot` and copies its raw backtrace into `frames`. Returns the frame
/// count, or 0 on a dead slot / timeout (the sample is simply missed).
/// Serialized internally; the target cannot unregister mid-signal (the
/// registry lock covers the liveness check + pthread_kill).
int CaptureRawStack(int slot, void** frames, int max_frames,
                    int64_t timeout_us);

/// Best-effort symbolization of one return address: "Sym+0x1f" when the
/// dynamic symbol table resolves it (link with ENABLE_EXPORTS for that),
/// else the raw hex address.
std::string SymbolizeAddr(void* addr);
/// Multi-line symbolized stack of the thread in `slot` ("  #0 ...\n"...).
/// Returns "<no stack>" when the capture fails.
std::string CaptureSymbolizedStack(int slot);

}  // namespace obs
}  // namespace idba
