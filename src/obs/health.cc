#include "obs/health.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <time.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "obs/trace.h"

namespace idba {
namespace obs {

namespace {

/// The signal both remote-capture users (profiler tick, watchdog stall
/// stack) ride on. SIGPROF keeps the classic profiling semantics and is
/// otherwise unused in the process.
constexpr int kCaptureSignal = SIGPROF;

struct Registry {
  std::mutex mu;  ///< guards slot claim/release and capture signalling
  ThreadSlot slots[kMaxThreadSlots];
};

// Leaked on purpose: threads may unregister (TLS destructors) after static
// destruction has begun in the main thread.
Registry& G() {
  static Registry* r = new Registry();
  return *r;
}

thread_local int t_slot = -1;

/// Thread-exit hook: destroying this releases the slot while the thread is
/// still alive, which is what keeps pthread_kill on live slots safe.
struct SlotReleaser {
  ~SlotReleaser() { UnregisterThisThread(); }
};
thread_local SlotReleaser t_releaser;

int ClaimSlot(const std::string& role, bool samplable) {
  // Force the releaser's construction so its destructor runs at exit.
  (void)&t_releaser;
  Registry& reg = G();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (t_slot >= 0) {
    // Re-register: rename in place (role updates are rare and racy reads of
    // a half-written role are cosmetic only — readers get a valid string
    // either way because the buffer stays NUL-terminated).
    ThreadSlot& s = reg.slots[t_slot];
    std::snprintf(s.role, sizeof(s.role), "%s", role.c_str());
    s.samplable.store(samplable, std::memory_order_relaxed);
    return t_slot;
  }
  for (int i = 0; i < kMaxThreadSlots; ++i) {
    ThreadSlot& s = reg.slots[i];
    if (s.used.load(std::memory_order_relaxed)) continue;
    s.used.store(true, std::memory_order_relaxed);
    std::snprintf(s.role, sizeof(s.role), "%s", role.c_str());
    s.pthread = pthread_self();
    s.tid = ThisThreadId();
    s.epoch.store(0, std::memory_order_relaxed);
    s.working.store(false, std::memory_order_relaxed);
    s.phase.store(nullptr, std::memory_order_relaxed);
    s.samplable.store(samplable, std::memory_order_relaxed);
    s.live.store(true, std::memory_order_release);
    t_slot = i;
    return i;
  }
  return -1;  // table full: this thread just goes unobserved
}

// --- Remote stack capture ------------------------------------------------
//
// Protocol: the requester (under g_capture.mu) publishes a request token,
// pthread_kill()s the target while holding the registry lock (so the target
// cannot exit first), then spin-waits for the handler's ack. The handler
// runs on the target thread: backtrace() into the static frame buffer, then
// store the token as the ack. A handler that fires after the requester
// timed out acks a stale token and is ignored; the worst case of that race
// is one garbled sample, never a crash.

struct CaptureState {
  std::mutex mu;  ///< one capture at a time
  std::atomic<uint64_t> token{0};
  std::atomic<uint64_t> done{0};
  std::atomic<int> nframes{0};
  void* frames[kMaxStackFrames];
  uint64_t next_token = 0;  ///< guarded by mu
};

CaptureState& Cap() {
  static CaptureState* c = new CaptureState();
  return *c;
}

void CaptureSignalHandler(int, siginfo_t*, void*) {
  CaptureState& cap = Cap();
  const uint64_t token = cap.token.load(std::memory_order_acquire);
  if (token == 0) return;  // spurious / stale signal
  // backtrace() is not formally async-signal-safe, but after the warm-up
  // call in EnsureCaptureHandler (which forces libgcc's lazy init outside
  // signal context) it performs no allocation — the same contract every
  // in-process sampling profiler relies on.
  int n = ::backtrace(cap.frames, kMaxStackFrames);
  cap.nframes.store(n, std::memory_order_relaxed);
  cap.done.store(token, std::memory_order_release);
}

void EnsureCaptureHandler() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Warm up backtrace's lazy unwinder initialization in normal context.
    void* warm[4];
    (void)::backtrace(warm, 4);
    struct sigaction sa{};
    sa.sa_sigaction = &CaptureSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    (void)::sigaction(kCaptureSignal, &sa, nullptr);
  });
}

}  // namespace

int RegisterThisThread(const std::string& role, bool samplable) {
  return ClaimSlot(role, samplable);
}

void UnregisterThisThread() {
  if (t_slot < 0) return;
  Registry& reg = G();
  std::lock_guard<std::mutex> lock(reg.mu);
  ThreadSlot& s = reg.slots[t_slot];
  s.live.store(false, std::memory_order_release);
  s.samplable.store(false, std::memory_order_relaxed);
  s.working.store(false, std::memory_order_relaxed);
  s.phase.store(nullptr, std::memory_order_relaxed);
  s.used.store(false, std::memory_order_release);
  t_slot = -1;
}

int ThisThreadSlotId() { return t_slot; }

int EnsureThisThreadSlot() {
  if (t_slot >= 0) return t_slot;
  return ClaimSlot("thread-" + std::to_string(ThisThreadId()),
                   /*samplable=*/false);
}

ThreadSlot* SlotAt(int id) {
  if (id < 0 || id >= kMaxThreadSlots) return nullptr;
  return &G().slots[id];
}

void HealthEpochBump() {
  if (t_slot < 0) return;
  G().slots[t_slot].epoch.fetch_add(1, std::memory_order_relaxed);
}

void SetThreadWorking(bool working) {
  if (t_slot < 0) return;
  G().slots[t_slot].working.store(working, std::memory_order_relaxed);
}

ScopedThreadPhase::ScopedThreadPhase(const char* phase) {
  if (t_slot < 0) return;
  slot_ = &G().slots[t_slot];
  prev_ = slot_->phase.exchange(phase, std::memory_order_relaxed);
}

ScopedThreadPhase::~ScopedThreadPhase() {
  if (slot_ != nullptr) slot_->phase.store(prev_, std::memory_order_relaxed);
}

std::vector<ThreadSnapshot> SnapshotThreads() {
  std::vector<ThreadSnapshot> out;
  Registry& reg = G();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (int i = 0; i < kMaxThreadSlots; ++i) {
    ThreadSlot& s = reg.slots[i];
    if (!s.live.load(std::memory_order_acquire)) continue;
    ThreadSnapshot snap;
    snap.slot = i;
    snap.role = s.role;
    const char* phase = s.phase.load(std::memory_order_relaxed);
    if (phase != nullptr) snap.role += std::string("/") + phase;
    snap.tid = s.tid;
    snap.epoch = s.epoch.load(std::memory_order_relaxed);
    snap.working = s.working.load(std::memory_order_relaxed);
    snap.samplable = s.samplable.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  return out;
}

int CaptureRawStack(int slot, void** frames, int max_frames,
                    int64_t timeout_us) {
  EnsureCaptureHandler();
  CaptureState& cap = Cap();
  std::lock_guard<std::mutex> capture_lock(cap.mu);
  const uint64_t token = ++cap.next_token;
  cap.done.store(0, std::memory_order_relaxed);
  cap.token.store(token, std::memory_order_release);
  {
    Registry& reg = G();
    std::lock_guard<std::mutex> lock(reg.mu);
    ThreadSlot* s = SlotAt(slot);
    if (s == nullptr || !s->live.load(std::memory_order_acquire) ||
        !s->samplable.load(std::memory_order_relaxed)) {
      cap.token.store(0, std::memory_order_release);
      return 0;
    }
    if (pthread_kill(s->pthread, kCaptureSignal) != 0) {
      cap.token.store(0, std::memory_order_release);
      return 0;
    }
  }
  const int64_t deadline = NowUs() + timeout_us;
  while (cap.done.load(std::memory_order_acquire) != token) {
    if (NowUs() > deadline) {
      cap.token.store(0, std::memory_order_release);
      return 0;  // missed sample; a late handler acks a stale token
    }
    timespec ts{0, 20'000};  // 20 µs
    ::nanosleep(&ts, nullptr);
  }
  cap.token.store(0, std::memory_order_release);
  int n = cap.nframes.load(std::memory_order_relaxed);
  if (n > max_frames) n = max_frames;
  std::memcpy(frames, cap.frames, static_cast<size_t>(n) * sizeof(void*));
  return n;
}

std::string SymbolizeAddr(void* addr) {
  Dl_info info{};
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    std::string name = info.dli_sname;
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) name = demangled;
    std::free(demangled);
    char off[32];
    std::snprintf(off, sizeof(off), "+0x%zx",
                  reinterpret_cast<uintptr_t>(addr) -
                      reinterpret_cast<uintptr_t>(info.dli_saddr));
    return name + off;
  }
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%zx", reinterpret_cast<uintptr_t>(addr));
  return hex;
}

std::string CaptureSymbolizedStack(int slot) {
  void* frames[kMaxStackFrames];
  // Generous timeout: under TSan, async signal delivery is deferred to the
  // target's next interception point.
  const int n = CaptureRawStack(slot, frames, kMaxStackFrames,
                                /*timeout_us=*/250'000);
  if (n <= 0) return "<no stack>";
  std::string out;
  for (int i = 0; i < n; ++i) {
    std::string sym = SymbolizeAddr(frames[i]);
    // Drop the capture machinery's own frames (handler + trampoline).
    if (sym.find("CaptureSignalHandler") != std::string::npos ||
        sym.find("__restore_rt") != std::string::npos ||
        sym.compare(0, 9, "backtrace") == 0) {
      continue;
    }
    char head[16];
    std::snprintf(head, sizeof(head), "  #%d ", i);
    out += head;
    out += sym;
    out += "\n";
  }
  if (out.empty()) out = "<no stack>";
  return out;
}

}  // namespace obs
}  // namespace idba
