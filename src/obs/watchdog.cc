#include "obs/watchdog.h"

#include <time.h>

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace idba {
namespace obs {

namespace {

/// What the watchdog last saw of one slot.
struct Seen {
  uint64_t tid = 0;
  uint64_t epoch = 0;
  int64_t frozen_since_us = 0;  ///< first poll that saw this epoch working
  bool reported = false;        ///< one report per stall episode
};

}  // namespace

Watchdog::Watchdog(WatchdogOptions opts)
    : opts_(std::move(opts)),
      stalls_total_(GlobalMetrics().GetCounter("health.stalls_total")) {
  opts_.threshold_ms = std::max<int64_t>(opts_.threshold_ms, 10);
  if (opts_.poll_ms <= 0) {
    opts_.poll_ms = std::max<int64_t>(opts_.threshold_ms / 4, 5);
  }
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Main(); });
}

void Watchdog::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  running_.store(false, std::memory_order_release);
}

bool Watchdog::running() const {
  return running_.load(std::memory_order_acquire);
}

uint64_t Watchdog::stalls() const {
  return stalls_.load(std::memory_order_relaxed);
}

void Watchdog::Main() {
  RegisterThisThread("watchdog", /*samplable=*/false);
  Seen seen[kMaxThreadSlots];
  const timespec poll{opts_.poll_ms / 1000,
                      (opts_.poll_ms % 1000) * 1'000'000};
  while (!stop_.load(std::memory_order_acquire)) {
    timespec left = poll;
    while (::nanosleep(&left, &left) != 0 && errno == EINTR) {
    }
    if (stop_.load(std::memory_order_acquire)) break;

    const int64_t now = NowUs();
    for (const ThreadSnapshot& t : SnapshotThreads()) {
      Seen& s = seen[t.slot];
      if (!t.working) {
        // Idle (blocked in epoll_wait / run-queue wait) is legitimate.
        s.tid = t.tid;
        s.epoch = t.epoch;
        s.frozen_since_us = 0;
        s.reported = false;
        continue;
      }
      if (s.tid != t.tid || s.epoch != t.epoch || s.frozen_since_us == 0) {
        // Progress (or a new occupant of the slot): re-arm.
        s.tid = t.tid;
        s.epoch = t.epoch;
        s.frozen_since_us = now;
        s.reported = false;
        continue;
      }
      const int64_t frozen_ms = (now - s.frozen_since_us) / 1000;
      if (s.reported || frozen_ms < opts_.threshold_ms) continue;
      s.reported = true;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      stalls_total_->Add();
      GlobalMetrics().GetCounter("health.stalls." + t.role)->Add();
      FlightRecord(FlightType::kStall, static_cast<uint64_t>(t.slot),
                   static_cast<uint64_t>(frozen_ms));
      const std::string stack = CaptureSymbolizedStack(t.slot);
      IDBA_LOG_FIELDS(LogLevel::kWarn, "watchdog",
                      "thread stalled (working, epoch frozen); stack:\n" +
                          stack,
                      {{"role", t.role},
                       {"tid", std::to_string(t.tid)},
                       {"slot", std::to_string(t.slot)},
                       {"frozen_ms", std::to_string(frozen_ms)},
                       {"epoch", std::to_string(t.epoch)}});
      if (!opts_.flight_dump_path.empty()) {
        if (FlightDumpToFile(opts_.flight_dump_path)) {
          IDBA_LOG_FIELDS(LogLevel::kWarn, "watchdog",
                          "flight dump written",
                          {{"path", opts_.flight_dump_path}});
        }
      }
      if (opts_.on_stall) opts_.on_stall(t, stack);
    }
  }
  UnregisterThisThread();
}

}  // namespace obs
}  // namespace idba
