#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace idba {
namespace obs {

double PercentileOfDeltas(const std::vector<uint64_t>& cur,
                          const std::vector<uint64_t>& prev, double q) {
  const size_t n = cur.size();
  uint64_t total = 0;
  for (size_t b = 0; b < n; ++b) {
    const uint64_t p = b < prev.size() ? prev[b] : 0;
    total += cur[b] - p;
  }
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < n; ++b) {
    const uint64_t p = b < prev.size() ? prev[b] : 0;
    seen += cur[b] - p;
    if (static_cast<double>(seen) >= target) {
      // Midpoint interpolation, mirroring Histogram::PercentileOf (without
      // the observed min/max clamp — a window has no exact min/max).
      const double lo = b == 0 ? 0 : Histogram::BucketUpperBound(b - 1);
      const double hi = Histogram::BucketUpperBound(b);
      return (lo + hi) / 2.0;
    }
  }
  return Histogram::BucketUpperBound(static_cast<int>(n) - 1);
}

MetricsTimeSeries::MetricsTimeSeries(MetricsRegistry* reg, size_t retain)
    : reg_(reg), retain_(std::max<size_t>(retain, 1)) {}

MetricsWindow MetricsTimeSeries::Tick() {
  // Snapshot the registry outside our own lock (registry access has its own
  // synchronization; concurrent Tick() calls serialize below).
  MetricsWindow w;
  w.at_us = NowUs();
  w.counters = reg_->CounterSnapshot();
  w.gauges = reg_->GaugeSnapshot();
  std::map<std::string, std::vector<uint64_t>> buckets;
  std::map<std::string, double> sums;
  for (const auto& [name, hist] : reg_->HistogramHandles()) {
    // One merge per histogram: snapshot and buckets from the same object,
    // buckets first so count can only be >= the bucket total (never a
    // negative delta next tick).
    buckets[name] = hist->BucketCounts();
    w.histograms[name] = hist->Snapshot();
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (have_prev_) {
    w.interval_us = w.at_us - prev_at_us_;
    for (const auto& [name, value] : w.counters) {
      auto it = prev_counters_.find(name);
      const uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
      // A ResetAll() between ticks makes cumulative values go backwards;
      // treat the new value as the whole delta rather than underflowing.
      w.counter_deltas[name] = value >= prev ? value - prev : value;
    }
    for (const auto& [name, cur] : buckets) {
      auto pit = prev_buckets_.find(name);
      static const std::vector<uint64_t> kEmpty;
      const std::vector<uint64_t>& prev =
          pit == prev_buckets_.end() ? kEmpty : pit->second;
      const HistogramSnapshot& snap = w.histograms[name];
      auto hit = prev_hists_.find(name);
      const HistogramSnapshot prev_snap =
          hit == prev_hists_.end() ? HistogramSnapshot{} : hit->second;
      MetricsWindow::HistDelta d;
      d.count = snap.count >= prev_snap.count ? snap.count - prev_snap.count
                                              : snap.count;
      d.sum = snap.sum >= prev_snap.sum ? snap.sum - prev_snap.sum : snap.sum;
      if (d.count > 0) {
        d.p50 = PercentileOfDeltas(cur, prev, 0.5);
        d.p99 = PercentileOfDeltas(cur, prev, 0.99);
      }
      w.histogram_deltas[name] = d;
    }
  } else {
    // First tick: everything observed so far counts as the first window.
    w.counter_deltas = w.counters;
    for (const auto& [name, snap] : w.histograms) {
      MetricsWindow::HistDelta d;
      d.count = snap.count;
      d.sum = snap.sum;
      d.p50 = snap.p50;
      d.p99 = snap.p99;
      w.histogram_deltas[name] = d;
    }
  }
  prev_counters_ = w.counters;
  prev_buckets_ = std::move(buckets);
  prev_hists_ = w.histograms;
  prev_at_us_ = w.at_us;
  have_prev_ = true;

  windows_.push_back(w);
  while (windows_.size() > retain_) windows_.pop_front();
  return w;
}

std::vector<MetricsWindow> MetricsTimeSeries::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {windows_.begin(), windows_.end()};
}

size_t MetricsTimeSeries::window_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.size();
}

void MetricsTimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
  prev_counters_.clear();
  prev_buckets_.clear();
  prev_hists_.clear();
  have_prev_ = false;
  prev_at_us_ = 0;
}

std::string MetricsTimeSeries::DumpJson(size_t last_n) const {
  std::vector<MetricsWindow> windows = Windows();
  size_t begin = 0;
  if (last_n > 0 && windows.size() > last_n) begin = windows.size() - last_n;
  std::string out = "{\"retain\":" + std::to_string(retain_) + ",\"windows\":[";
  char buf[192];
  for (size_t i = begin; i < windows.size(); ++i) {
    const MetricsWindow& w = windows[i];
    if (i != begin) out += ',';
    out += "{\"at_us\":" + std::to_string(w.at_us) +
           ",\"interval_us\":" + std::to_string(w.interval_us);
    out += ",\"counter_deltas\":{";
    bool first = true;
    for (const auto& [name, d] : w.counter_deltas) {
      if (d == 0) continue;  // absolute state is one STATS call away
      if (!first) out += ',';
      first = false;
      out += '"' + name + "\":" + std::to_string(d);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : w.gauges) {
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", name.c_str(), v);
      out += buf;
    }
    out += "},\"histogram_deltas\":{";
    first = true;
    for (const auto& [name, d] : w.histogram_deltas) {
      if (d.count == 0) continue;
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "\"%s\":{\"count\":%llu,\"sum\":%.3f,\"p50\":%.3f,"
                    "\"p99\":%.3f}",
                    name.c_str(), static_cast<unsigned long long>(d.count),
                    d.sum, d.p50, d.p99);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

MetricsTimeSeries& GlobalTimeSeries() {
  static MetricsTimeSeries* series =
      new MetricsTimeSeries(&GlobalMetrics(), /*retain=*/120);
  return *series;
}

}  // namespace obs
}  // namespace idba
