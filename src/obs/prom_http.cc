#include "obs/prom_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/prom_export.h"

namespace idba {
namespace obs {

namespace {

/// Writes all of `data`, tolerating short writes and EINTR.
bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const char* status_line, const char* content_type,
                  const std::string& body) {
  std::string head = std::string("HTTP/1.1 ") + status_line + "\r\n" +
                     "Content-Type: " + content_type + "\r\n" +
                     "Content-Length: " + std::to_string(body.size()) + "\r\n" +
                     "Connection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, body.data(), body.size());
  }
}

}  // namespace

PromHttpServer::PromHttpServer(MetricsRegistry* reg)
    : reg_(reg != nullptr ? reg : &GlobalMetrics()) {}

PromHttpServer::~PromHttpServer() { Stop(); }

Status PromHttpServer::Start(uint16_t port, const std::string& bind_host) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("prom http socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("prom http bind address: " + bind_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    Status st = Status::IOError("prom http bind/listen: " +
                                std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
  acceptor_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void PromHttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  // Detached handlers hold reg_; wait them out before the caller can
  // destroy us.
  std::unique_lock<std::mutex> lk(handlers_mu_);
  handlers_cv_.wait(lk, [this] { return active_handlers_ == 0; });
}

void PromHttpServer::Serve() {
  // Bounds concurrent detached handlers; beyond this the acceptor handles
  // the connection inline, trading scrape latency for a thread-count cap.
  constexpr int kMaxHandlers = 32;
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener closed underneath us
    }
    bool spawn = false;
    {
      std::lock_guard<std::mutex> lk(handlers_mu_);
      if (active_handlers_ < kMaxHandlers) {
        ++active_handlers_;
        spawn = true;
      }
    }
    if (!spawn) {
      HandleConnection(fd);
      ::close(fd);
      continue;
    }
    std::thread([this, fd] { Dispatch(fd); }).detach();
  }
}

void PromHttpServer::Dispatch(int fd) {
  HandleConnection(fd);
  ::close(fd);
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    --active_handlers_;
  }
  handlers_cv_.notify_all();
}

void PromHttpServer::HandleConnection(int fd) {
  // A scraper that dribbles its request or refuses to read the response
  // cannot pin a handler (or, in the inline fallback, the acceptor).
  timeval tv{};
  tv.tv_sec = 5;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  // Read until the end of the headers (or a sanity cap).
  char buf[4096];
  size_t used = 0;
  while (used < sizeof(buf) - 1) {
    ssize_t n = ::recv(fd, buf + used, sizeof(buf) - 1 - used, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    used += static_cast<size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[used] = '\0';
  // Request line: METHOD SP PATH SP VERSION.
  char method[8] = {0};
  char path[1024] = {0};
  if (std::sscanf(buf, "%7s %1023s", method, path) != 2) return;
  if (std::strcmp(method, "GET") != 0) {
    SendResponse(fd, "405 Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  if (std::strcmp(path, "/metrics") == 0 || std::strcmp(path, "/") == 0) {
    scrapes_.Add();
    SendResponse(fd, "200 OK",
                 "text/plain; version=0.0.4; charset=utf-8",
                 PromExport(*reg_));
    return;
  }
  SendResponse(fd, "404 Not Found", "text/plain", "try /metrics\n");
}

}  // namespace obs
}  // namespace idba
