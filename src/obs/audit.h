// Online consistency auditor: a shadow verifier that rides the virtual-time
// envelopes the display stack already carries and continuously asserts the
// cache-coherence contract the paper claims (and Transactional Panorama
// names): per subscriber and per OID,
//
//   monotonicity  observed commit virtual times never regress. Sound
//                 because commit hooks fire while X-locks are held, so
//                 per-OID notify order equals commit order, and inbox
//                 coalescing max-merges commit_vtime. A regression means a
//                 reordered / replayed / stale notification reached a
//                 display.
//   visibility    every committed update to a display-locked object is
//                 reflected by a view refresh within the configured
//                 bounded-staleness window (the per-view staleness SLO,
//                 measured in *virtual* microseconds so results are
//                 host-speed independent like every other paper metric).
//                 The SLO deadline is anchored at notification DISPATCH —
//                 the moment this client learned of the commit — because
//                 the commit -> arrival leg has a cost-model floor
//                 (message_base plus wire bytes) no client can influence.
//                 The display.staleness_slo_us histogram still records the
//                 full commit -> displayed virtual lag, wire leg included.
//                 A refresh that settles AFTER its deadline is an SLO miss
//                 (consistency.slo.violations), not a correctness
//                 violation: settling proves the commit was reflected, and
//                 the settle time can include a Lamport catch-up merged
//                 from the server clock that no client controls. Only an
//                 obligation that EXPIRES unsettled — the commit was never
//                 reflected at all — is recorded (and aborts strict mode)
//                 as a visibility violation.
//   coherence     a view refresh never shows an object version older than
//                 one this subscriber already learned was committed (via a
//                 CALLBACK invalidation or an eagerly shipped image) — the
//                 observable symptom of mixing two committed snapshots in
//                 one refresh.
//
// The auditor is process-wide (GlobalAuditor()): a client process audits
// the notify/refresh stream its own views observe; a server process audits
// the DLM fan-out it sends. Hooks take plain integers (client id, raw oid,
// vtime, version, trace id) so this layer depends only on idba_common and
// stays usable from net/core/server without a dependency cycle.
//
// Modes: kOff (hooks cost one relaxed load), kTrack (count + record
// violations, export consistency.* metrics), kStrict (additionally
// abort() on the first violation — the crash handler then writes the
// flight dump, which carries the audit.violation event; chaos harness and
// CI smoke run this mode).
//
// Two distinct reset semantics, easy to conflate and wrong if swapped:
//  - OnResync(subscriber): the server (or a bounded inbox) shed this
//    subscriber's stream and a full refetch is coming. Same server, same
//    virtual clocks: watermarks and version floors REMAIN (monotonicity
//    must hold across the coalesce -> resync ladder); only pending
//    visibility obligations are dropped (their notifications were shed).
//  - OnSessionReset(subscriber): the client reconnected; the server may
//    have restarted with fresh (lower) virtual clocks and re-seeded
//    versions. Everything known about the subscriber is discarded —
//    watermarks must be reset, not replayed.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"

namespace idba {
namespace obs {

enum class AuditMode : int {
  kOff = 0,    ///< hooks disabled (one relaxed atomic load)
  kTrack = 1,  ///< record + count violations, keep serving
  kStrict = 2, ///< abort() on first violation (flight dump via crash handler)
};

/// "off" / "track" / "strict".
const char* AuditModeName(AuditMode mode);
/// Parses the --audit flag value; false on unknown text.
bool ParseAuditMode(std::string_view text, AuditMode* out);

enum class AuditInvariant : int {
  kMonotonicity = 0,
  kVisibility = 1,
  kCoherence = 2,
};

const char* AuditInvariantName(AuditInvariant inv);

/// One detected violation. `observed`/`expected` are invariant-specific:
/// vtimes for monotonicity/visibility, versions for coherence.
struct AuditViolation {
  AuditInvariant invariant = AuditInvariant::kMonotonicity;
  uint64_t subscriber = 0;
  uint64_t oid = 0;
  int64_t observed = 0;
  int64_t expected = 0;
  /// Trace id of the offending notification's commit (0 = untraced), so a
  /// violation joins the writer's spans in TRACE_DUMP output.
  uint64_t trace_id = 0;
  std::string detail;
};

class ConsistencyAuditor {
 public:
  ConsistencyAuditor();

  void SetMode(AuditMode mode);
  AuditMode mode() const {
    return static_cast<AuditMode>(mode_.load(std::memory_order_relaxed));
  }
  bool enabled() const {
    return mode_.load(std::memory_order_relaxed) !=
           static_cast<int>(AuditMode::kOff);
  }

  /// Bounded-staleness window in VIRTUAL microseconds (<= 0 disables the
  /// visibility deadline; monotonicity/coherence still checked).
  void set_staleness_slo_us(int64_t slo_us) {
    slo_us_.store(slo_us, std::memory_order_relaxed);
  }
  int64_t staleness_slo_us() const {
    return slo_us_.load(std::memory_order_relaxed);
  }

  // --- Hooks (all no-ops when mode == kOff) -------------------------------

  /// A committed update notification reached the subscriber's transport
  /// (reader thread / in-process inbox). Checks per-OID commit-vtime
  /// monotonicity only; creates no visibility obligation (a raw client
  /// with no display pump never refreshes).
  void OnNotifyReceived(uint64_t subscriber, const uint64_t* oids, size_t n,
                        int64_t commit_vtime, uint64_t trace_id);

  /// The DLC dispatched a committed update notification to local displays.
  /// `oids` are the display-locked objects the views will refresh: checks
  /// monotonicity and opens a visibility obligation per OID (deadline =
  /// local_vtime + SLO window).
  void OnNotifyDispatched(uint64_t subscriber, const uint64_t* oids, size_t n,
                          int64_t commit_vtime, int64_t local_vtime,
                          uint64_t trace_id);

  /// Subscriber learned `version` of `oid` is committed (CALLBACK
  /// invalidation or eagerly shipped image): raises the coherence floor.
  void OnVersionCommitted(uint64_t subscriber, uint64_t oid, uint64_t version);

  /// A view refresh displayed `version` of `oid` at `local_vtime`: settles
  /// the OID's visibility obligation (recording display.staleness_slo_us;
  /// a settle past the deadline only bumps consistency.slo.violations) and
  /// checks the displayed version against the coherence floor.
  void OnViewRefresh(uint64_t subscriber, uint64_t oid, uint64_t version,
                     int64_t local_vtime);

  /// Overload resync (same server): drop pending obligations, KEEP
  /// watermarks and floors — vtimes stay monotonic across the ladder.
  void OnResync(uint64_t subscriber);

  /// Reconnect (server may have restarted): forget everything about the
  /// subscriber — watermarks, floors, obligations.
  void OnSessionReset(uint64_t subscriber);

  /// Server-side (DLM fan-out): a committed update notification was sent
  /// to `subscriber`. Same per-OID monotonicity contract on the sender.
  void OnNotifySent(uint64_t subscriber, const uint64_t* oids, size_t n,
                    int64_t commit_vtime, uint64_t trace_id);

  /// Sweeps all pending visibility obligations against `local_vtime`,
  /// flagging any whose deadline passed without a settling refresh. The
  /// hooks sweep lazily per subscriber; call this for a full check (tests,
  /// AUDIT RPC, shutdown).
  void CheckNow(int64_t local_vtime);

  // --- Introspection ------------------------------------------------------

  uint64_t violations_total() const { return violations_->Get(); }
  uint64_t checks_total() const { return checks_->Get(); }
  /// Copy of the retained violation ring (most recent kViolationRing).
  std::vector<AuditViolation> Violations() const;
  size_t pending_obligations() const;
  /// One JSON object: mode, SLO, counters, pending obligations, and the
  /// violation ring. Served by the AUDIT admin RPC.
  std::string ReportJson() const;

  /// Drops all per-subscriber state and the violation ring, resets mode to
  /// kOff and the SLO to 0, and zeroes the consistency.* counters. Tests
  /// only.
  void ResetForTest();

  static constexpr size_t kViolationRing = 64;

 private:
  struct Obligation {
    int64_t commit_vtime = 0;  ///< earliest unsettled commit
    int64_t deadline = 0;      ///< local vtime by which a refresh must land
    uint64_t trace_id = 0;
  };

  struct SubscriberState {
    /// Max committed vtime observed (notify receive/dispatch) per OID.
    std::unordered_map<uint64_t, int64_t> observed_watermark;
    /// Max committed vtime sent (DLM fan-out) per OID.
    std::unordered_map<uint64_t, int64_t> sent_watermark;
    /// Highest version known committed per OID (coherence floor).
    std::unordered_map<uint64_t, uint64_t> version_floor;
    /// Open visibility obligations per OID.
    std::unordered_map<uint64_t, Obligation> pending;
  };

  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, SubscriberState> subs;
  };
  static constexpr int kStripes = 8;

  Stripe& StripeFor(uint64_t subscriber) {
    return stripes_[subscriber % kStripes];
  }

  /// Records (and in strict mode, dies on) one violation. Called with the
  /// subscriber's stripe mutex NOT held (it takes ring_mu_).
  void Report(AuditViolation v);

  /// Checks `commit_vtime` against `(*map)[oid]` and advances it;
  /// appends a violation to `out` on regression.
  void CheckWatermark(std::unordered_map<uint64_t, int64_t>* map,
                      uint64_t subscriber, uint64_t oid, int64_t commit_vtime,
                      uint64_t trace_id, const char* stream,
                      std::vector<AuditViolation>* out);

  /// Expires obligations with deadline < local_vtime (stripe mu held).
  void SweepLocked(uint64_t subscriber, SubscriberState* st,
                   int64_t local_vtime, std::vector<AuditViolation>* out);

  std::atomic<int> mode_{static_cast<int>(AuditMode::kOff)};
  std::atomic<int64_t> slo_us_{0};

  Stripe stripes_[kStripes];

  mutable std::mutex ring_mu_;
  std::vector<AuditViolation> ring_;  ///< bounded at kViolationRing
  uint64_t ring_dropped_ = 0;

  // Registry counters, cached at construction (constructing the auditor
  // eagerly registers the consistency.* series, so Prometheus exports them
  // even before the first check runs).
  Counter* checks_;
  Counter* violations_;
  Counter* monotonicity_violations_;
  Counter* visibility_violations_;
  Counter* coherence_violations_;
  Counter* slo_violations_;
  Counter* obligations_settled_;
  Histogram* staleness_;
};

/// The process-wide auditor every hook records into. idba_serve --audit and
/// test fixtures set its mode; the AUDIT admin RPC serves its report.
ConsistencyAuditor& GlobalAuditor();

}  // namespace obs
}  // namespace idba
