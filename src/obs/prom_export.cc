#include "obs/prom_export.h"

#include <cstdio>

namespace idba {
namespace obs {

namespace {

bool ValidPromChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// %g keeps integral bounds (1, 2, 1024) free of trailing zeros while still
/// rendering the fractional sqrt(2) bounds distinctly.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string PromSanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (ValidPromChar(c, out.empty())) {
      out += c;
    } else if (out.empty() && c >= '0' && c <= '9') {
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PromEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromEscapeLabel(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromExport(const MetricsRegistry& reg) {
  std::string out;
  for (const auto& [name, value] : reg.CounterSnapshot()) {
    const std::string prom = "idba_" + PromSanitizeName(name) + "_total";
    out += "# HELP " + prom + " counter " + PromEscapeHelp(name) + "\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : reg.GaugeSnapshot()) {
    const std::string prom = "idba_" + PromSanitizeName(name);
    out += "# HELP " + prom + " gauge " + PromEscapeHelp(name) + "\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, hist] : reg.HistogramHandles()) {
    const std::string prom = "idba_" + PromSanitizeName(name);
    out += "# HELP " + prom + " histogram " + PromEscapeHelp(name) + "\n";
    out += "# TYPE " + prom + " histogram\n";
    // One consistent merge: buckets, then count/sum derived from them, so
    // the +Inf bucket always equals _count even under concurrent Record().
    const std::vector<uint64_t> counts = hist->BucketCounts();
    int last_nonzero = -1;
    uint64_t total = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      total += counts[b];
      if (counts[b] != 0) last_nonzero = b;
    }
    uint64_t cumulative = 0;
    for (int b = 0; b <= last_nonzero; ++b) {
      cumulative += counts[b];
      out += prom + "_bucket{le=\"" +
             FormatDouble(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
    out += prom + "_sum " + FormatDouble(hist->sum()) + "\n";
    out += prom + "_count " + std::to_string(total) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace idba
