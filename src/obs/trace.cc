#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace idba {
namespace obs {

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Mixes the pid into ids so traces from a client process and a server
// process on the same machine never collide.
uint64_t IdSalt() {
  static const uint64_t salt =
      (static_cast<uint64_t>(::getpid()) << 40) ^ 0x9e3779b97f4a7c15ull;
  return salt;
}

std::atomic<uint64_t> g_next_id{1};
std::atomic<bool> g_sampling{false};
std::atomic<uint32_t> g_sample_every{1};
std::atomic<uint64_t> g_sample_tick{0};

thread_local TraceContext t_current;

// SplitMix64 finisher: spreads the sequential counter so ids do not look
// consecutive across processes sharing a salt-free low range.
uint64_t MixId(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x ? x : 1;  // 0 means "no trace"
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendChromeEvent(std::string& out, const SpanRecord& r, int pid) {
  char buf[256];
  out += "{\"name\":\"";
  AppendJsonEscaped(out, r.name);
  out += "\",\"ph\":\"X\",\"cat\":\"idba\"";
  std::snprintf(buf, sizeof(buf),
                ",\"ts\":%lld,\"dur\":%lld,\"pid\":%d,\"tid\":%llu",
                static_cast<long long>(r.start_us),
                static_cast<long long>(r.dur_us), pid,
                static_cast<unsigned long long>(r.tid));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"args\":{\"trace_id\":\"%llx\",\"span_id\":\"%llx\","
                "\"parent_id\":\"%llx\"",
                static_cast<unsigned long long>(r.trace_id),
                static_cast<unsigned long long>(r.span_id),
                static_cast<unsigned long long>(r.parent_id));
  out += buf;
  if (!r.note.empty()) {
    out += ",\"note\":\"";
    AppendJsonEscaped(out, r.note);
    out += '"';
  }
  out += "}}";
}

}  // namespace

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

uint64_t NewTraceId() {
  return MixId(IdSalt() ^ g_next_id.fetch_add(1, std::memory_order_relaxed));
}

uint64_t NewSpanId() {
  return MixId(IdSalt() + (g_next_id.fetch_add(1, std::memory_order_relaxed) << 1));
}

void SetTraceSampling(bool enabled) {
  g_sampling.store(enabled, std::memory_order_relaxed);
}

bool TraceSamplingEnabled() {
  return g_sampling.load(std::memory_order_relaxed);
}

void SetTraceSampleEvery(uint32_t n) {
  g_sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

bool SampleRoot() {
  if (!g_sampling.load(std::memory_order_relaxed)) return false;
  uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  return g_sample_tick.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

TraceContext CurrentContext() { return t_current; }

ScopedContext::ScopedContext(TraceContext ctx) : prev_(t_current) {
  t_current = ctx;
}

ScopedContext::~ScopedContext() { t_current = prev_; }

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, kStripes)) {
  const size_t per = capacity_ / kStripes;
  for (Stripe& s : stripes_) s.ring.resize(per);
}

void TraceRecorder::Record(SpanRecord span) {
  Stripe& s = stripes_[ThisThreadId() % kStripes];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.used == s.ring.size()) dropped_.fetch_add(1, std::memory_order_relaxed);
  s.ring[s.next] = std::move(span);
  s.next = (s.next + 1) % s.ring.size();
  s.used = std::min(s.used + 1, s.ring.size());
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    const size_t n = s.ring.size();
    // Oldest-first within the stripe: start at next-used (mod n).
    for (size_t i = 0; i < s.used; ++i) {
      out.push_back(s.ring[(s.next + n - s.used + i) % n]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::string TraceRecorder::DumpChromeTrace() const {
  const int pid = static_cast<int>(::getpid());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : Snapshot()) {
    if (!first) out += ',';
    first = false;
    AppendChromeEvent(out, r, pid);
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::DumpJsonl() const {
  const int pid = static_cast<int>(::getpid());
  std::string out;
  for (const SpanRecord& r : Snapshot()) {
    AppendChromeEvent(out, r, pid);
    out += '\n';
  }
  return out;
}

void TraceRecorder::Clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.next = 0;
    s.used = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

TraceRecorder& GlobalRecorder() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

Span::Span(SpanRecord rec, TraceContext prev, bool restore)
    : rec_(std::move(rec)), prev_(prev), restore_(restore) {}

Span::Span(Span&& other) noexcept
    : rec_(std::move(other.rec_)), prev_(other.prev_), restore_(other.restore_) {
  other.rec_.trace_id = 0;
  other.restore_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    rec_ = std::move(other.rec_);
    prev_ = other.prev_;
    restore_ = other.restore_;
    other.rec_.trace_id = 0;
    other.restore_ = false;
  }
  return *this;
}

Span Span::Start(const char* name) {
  TraceContext cur = t_current;
  if (!cur.valid()) return Span();
  return StartChildOf(cur, name);
}

Span Span::StartChildOf(TraceContext parent, const char* name) {
  if (!parent.valid()) return Span();
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.span_id = NewSpanId();
  rec.parent_id = parent.span_id;
  rec.start_us = NowUs();
  rec.tid = ThisThreadId();
  rec.name = name;
  TraceContext prev = t_current;
  t_current = {rec.trace_id, rec.span_id};
  return Span(std::move(rec), prev, /*restore=*/true);
}

Span Span::StartRoot(const char* name, bool force) {
  if (!force && !SampleRoot()) return Span();
  SpanRecord rec;
  rec.trace_id = NewTraceId();
  rec.span_id = NewSpanId();
  rec.parent_id = 0;
  rec.start_us = NowUs();
  rec.tid = ThisThreadId();
  rec.name = name;
  TraceContext prev = t_current;
  t_current = {rec.trace_id, rec.span_id};
  return Span(std::move(rec), prev, /*restore=*/true);
}

void Span::Note(const std::string& note) {
  if (!active()) return;
  if (!rec_.note.empty()) rec_.note += ' ';
  rec_.note += note;
}

void Span::End() {
  if (!active()) return;
  rec_.dur_us = NowUs() - rec_.start_us;
  if (restore_) t_current = prev_;
  GlobalRecorder().Record(std::move(rec_));
  rec_.trace_id = 0;
  restore_ = false;
}

}  // namespace obs
}  // namespace idba
