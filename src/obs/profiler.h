// In-process sampling profiler (DESIGN.md §13). A dedicated sampler thread
// wakes `hz` times a second and directs a SIGPROF capture at one registered
// samplable thread per tick, round-robin — wall-clock sampling, so threads
// blocked in epoll_wait, fsync, or a lock wait are profiled too, and the
// total signal rate stays `hz` no matter how many threads exist (which is
// how the ≤2% overhead budget holds). The capture signal handler records
// raw return addresses only; symbolization happens at dump time, in the
// requesting thread, in normal context.
//
// Samples land in a statically allocated ring so the crash handler can dump
// the raw addresses without touching the heap (ProfilerDumpRawToFd).
// DumpFolded() renders flamegraph-compatible folded stacks, each line
// prefixed with the sampled thread's role:
//   io-loop-0;epoll_wait+0x5a 41
//   worker-2;ExecuteMethod+0x1f2;Wal::Append+0x88 7

#pragma once

#include <cstdint>
#include <string>

namespace idba {
namespace obs {

class Profiler {
 public:
  /// Starts sampling at `hz` (clamped to [1, 1000]), clearing any previous
  /// samples. Returns false if already running.
  bool Start(int hz);
  /// Stops the sampler thread and joins it. Idempotent.
  void Stop();
  bool running() const;
  int hz() const;

  /// Folded-stacks text of everything sampled so far ("role;outer;...;leaf
  /// count\n"). Callable while running; aggregates a consistent prefix of
  /// the ring.
  std::string DumpFolded();

  /// One-line status for the PROFILE admin RPC / idba_stat:
  /// "profiler running hz=99 samples=412 dropped=3".
  std::string StatusLine();

  uint64_t samples() const;  ///< captures that returned >= 1 frame
  uint64_t dropped() const;  ///< ticks whose capture timed out or overflowed

 private:
  void SamplerMain(int hz);
};

/// Process-wide instance (all control surfaces share it).
Profiler& GlobalProfiler();

/// Async-signal-safe: writes the raw (unsymbolized) sample ring to `fd` as
/// "sample slot=N role=R t_us=T frames=0x...,0x..." lines. Used by the
/// crash handler to preserve profiler evidence alongside the flight dump.
void ProfilerDumpRawToFd(int fd);

}  // namespace obs
}  // namespace idba
