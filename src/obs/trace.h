// Distributed trace spans for the client/server stack.
//
// A TraceContext (trace_id, span_id) is allocated at a client API call and
// travels in REQUEST/NOTIFY/CALLBACK wire frames (net/wire.h TraceInfo,
// flagged by the traced bit of the frame-type byte, wire v2). Each side
// opens child spans around its own stages — client serialize / network /
// reply deserialize, server queue wait / lock acquisition / storage I/O /
// commit / callback fan-out — and records them into a lock-striped
// in-memory ring buffer exportable as Chrome trace_event JSON (load in
// chrome://tracing or https://ui.perfetto.dev) or as JSONL.
//
// Span timing is wall-clock microseconds since process start (steady
// clock). The process id disambiguates multi-process traces; thread ids are
// the same small sequential ids the logger prints, so log lines and trace
// events correlate.
//
// Propagation inside a process is a thread-local current context:
// Span::Start() opens a child of the current span and installs itself as
// current for its lifetime, so nested instrumentation (commit -> WAL flush
// -> page write) forms a tree without threading arguments through every
// signature. When no trace is active, Span::Start() costs one thread-local
// load and a branch — that is the "compiled in, sampling off" hot path the
// acceptance bound holds to < 3% on bench_transport.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace idba {
namespace obs {

/// Identity of a trace and one span within it. trace_id == 0 means "not
/// traced" everywhere.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// One finished span.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  int64_t start_us = 0;  ///< microseconds since process start
  int64_t dur_us = 0;
  uint64_t tid = 0;      ///< ThisThreadId() of the recording thread
  std::string name;      ///< span taxonomy name, e.g. "server.execute"
  std::string note;      ///< optional free-form annotation (method, oid, ...)
};

/// Microseconds since process start (steady clock).
int64_t NowUs();

/// Fresh globally-unlikely-to-collide ids (pid-salted counter).
uint64_t NewTraceId();
uint64_t NewSpanId();

// --- Sampling --------------------------------------------------------------

/// Enables/disables starting NEW root traces in this process. Child spans
/// of contexts that arrive over the wire are always recorded (the sampling
/// decision is the root's).
void SetTraceSampling(bool enabled);
bool TraceSamplingEnabled();

/// Record one root trace out of every `n` sampling opportunities (1 = all).
void SetTraceSampleEvery(uint32_t n);

/// True if a new root trace should start now: sampling enabled and this is
/// the n-th opportunity. Advances the opportunity counter.
bool SampleRoot();

// --- Current context (thread-local) ---------------------------------------

TraceContext CurrentContext();

/// Installs `ctx` as the thread's current trace context for the scope
/// (e.g. a server worker adopting the context a REQUEST frame carried).
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext prev_;
};

// --- Recorder --------------------------------------------------------------

/// Lock-striped in-memory ring buffer of finished spans. Each stripe has
/// its own mutex and ring; threads map to stripes by id, so concurrent
/// span recording on different threads rarely contends. When a stripe
/// fills, its oldest spans are overwritten (ring semantics).
class TraceRecorder {
 public:
  static constexpr int kStripes = 8;

  explicit TraceRecorder(size_t capacity = 16384);

  void Record(SpanRecord span);

  /// All retained spans, ordered by start time.
  std::vector<SpanRecord> Snapshot() const;

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  std::string DumpChromeTrace() const;
  /// One JSON object per line (jq-friendly).
  std::string DumpJsonl() const;

  void Clear();
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<SpanRecord> ring;  ///< capacity_/kStripes slots
    size_t next = 0;               ///< next write position
    size_t used = 0;               ///< filled slots (<= ring.size())
  };

  size_t capacity_;
  Stripe stripes_[kStripes];
  std::atomic<uint64_t> dropped_{0};  ///< spans overwritten before export
};

/// The process-wide recorder all Span instrumentation writes to. Exported
/// by the TRACE_DUMP admin RPC and idba_serve's periodic dumps.
TraceRecorder& GlobalRecorder();

// --- RAII span -------------------------------------------------------------

/// An open span. Inactive spans (no trace in scope) are no-ops. An active
/// span installs its context as the thread-local current context until
/// End()/destruction, so spans opened below it become its children.
class Span {
 public:
  Span() = default;
  ~Span() { End(); }

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Child of the thread's current context; inactive if there is none.
  static Span Start(const char* name);
  /// Child of an explicit parent (cross-thread/wire handoff).
  static Span StartChildOf(TraceContext parent, const char* name);
  /// New root span (new trace); inactive unless SampleRoot() fires.
  /// `force` starts it regardless of the sampling switch.
  static Span StartRoot(const char* name, bool force = false);

  bool active() const { return rec_.trace_id != 0; }
  TraceContext context() const { return {rec_.trace_id, rec_.span_id}; }

  /// Attaches a short annotation (ignored when inactive).
  void Note(const std::string& note);

  /// Records the span and restores the previous current context.
  /// Idempotent.
  void End();

 private:
  Span(SpanRecord rec, TraceContext prev, bool restore);

  SpanRecord rec_;          ///< trace_id == 0 => inactive
  TraceContext prev_;       ///< context to restore at End()
  bool restore_ = false;    ///< whether this span changed the TLS context
};

}  // namespace obs
}  // namespace idba

// Convenience: open a span named `name` for the rest of the enclosing
// scope, as a child of the thread's current trace (no-op when untraced).
#define IDBA_TRACE_CONCAT2(a, b) a##b
#define IDBA_TRACE_CONCAT(a, b) IDBA_TRACE_CONCAT2(a, b)
#define IDBA_TRACE_SPAN(name)                       \
  ::idba::obs::Span IDBA_TRACE_CONCAT(_idba_span_, __LINE__) = \
      ::idba::obs::Span::Start(name)
