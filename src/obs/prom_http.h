// Minimal HTTP/1.1 GET endpoint serving Prometheus text exposition.
//
// One acceptor thread, one request per connection, ~no parsing beyond the
// request line: exactly what a scrape loop (or `curl :PORT/metrics`) needs
// and nothing more. Each accepted connection is handled on a short-lived
// detached thread so a slow or stalled reader cannot block the acceptor
// (and thus other scrapers); when too many handlers are already in flight
// the acceptor falls back to handling the connection inline, which bounds
// thread creation under a connect flood. Stop() waits for in-flight
// handlers to drain. Deliberately independent of net/socket.h — obs sits
// below the transport layer in the link graph, so this speaks raw POSIX
// sockets. Not an application ingress: bind it to loopback (the default)
// or front it with real infrastructure, same advice as the admin RPCs.
//
//   GET /metrics  -> 200 text/plain; version=0.0.4 with PromExport output
//   anything else -> 404

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"

namespace idba {
namespace obs {

class PromHttpServer {
 public:
  /// Serves `reg` (defaults to GlobalMetrics()).
  explicit PromHttpServer(MetricsRegistry* reg = nullptr);
  ~PromHttpServer();

  PromHttpServer(const PromHttpServer&) = delete;
  PromHttpServer& operator=(const PromHttpServer&) = delete;

  /// Binds and starts the acceptor thread. Port 0 picks an ephemeral port
  /// (see port()).
  Status Start(uint16_t port, const std::string& bind_host = "127.0.0.1");
  /// Closes the listener and joins the acceptor. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  uint64_t scrapes_served() const { return scrapes_.Get(); }

 private:
  void Serve();
  void HandleConnection(int fd);
  void Dispatch(int fd);

  MetricsRegistry* reg_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  Counter scrapes_;

  // Detached-handler accounting: Stop() blocks until active_handlers_ == 0
  // so handler threads never outlive the server (they touch reg_).
  std::mutex handlers_mu_;
  std::condition_variable handlers_cv_;
  int active_handlers_ = 0;
};

}  // namespace obs
}  // namespace idba
