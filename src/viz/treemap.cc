#include "viz/treemap.h"

#include <algorithm>
#include <cmath>

namespace idba {

double TreemapNode::TotalWeight() const {
  if (is_leaf()) return weight;
  double sum = 0;
  for (const auto& c : children) sum += c.TotalWeight();
  return sum;
}

namespace {

void EmitNode(const TreemapNode& node, const Rect& rect, int depth,
              std::vector<TreemapRect>* out) {
  out->push_back(TreemapRect{rect, node.label, node.tag, depth, node.is_leaf(),
                             node.TotalWeight()});
}

// --- Slice-and-dice (Johnson & Shneiderman 1991) ------------------------

void SliceAndDice(const TreemapNode& node, Rect rect, int depth, double inset,
                  std::vector<TreemapRect>* out) {
  EmitNode(node, rect, depth, out);
  if (node.is_leaf()) return;
  Rect inner = rect.Inset(inset);
  double total = node.TotalWeight();
  if (total <= 0 || inner.w <= 0 || inner.h <= 0) return;
  const bool horizontal = (depth % 2) == 0;  // split along x at even depths
  double offset = 0;
  for (const auto& child : node.children) {
    double frac = child.TotalWeight() / total;
    Rect r;
    if (horizontal) {
      r = Rect{inner.x + offset, inner.y, inner.w * frac, inner.h};
      offset += inner.w * frac;
    } else {
      r = Rect{inner.x, inner.y + offset, inner.w, inner.h * frac};
      offset += inner.h * frac;
    }
    SliceAndDice(child, r, depth + 1, inset, out);
  }
}

// --- Squarified (Bruls, Huizing, van Wijk) -------------------------------

double WorstAspect(const std::vector<double>& row, double side, double scale) {
  // `scale` converts weight to area. Row is laid along `side`.
  double sum = 0;
  double min_w = row[0], max_w = row[0];
  for (double w : row) {
    sum += w;
    min_w = std::min(min_w, w);
    max_w = std::max(max_w, w);
  }
  double sum_area = sum * scale;
  double s2 = side * side;
  return std::max(s2 * max_w * scale / (sum_area * sum_area),
                  sum_area * sum_area / (s2 * min_w * scale));
}

void LayRow(const std::vector<const TreemapNode*>& row, Rect* free, double scale,
            int depth, double inset, std::vector<TreemapRect>* out,
            std::vector<std::pair<const TreemapNode*, Rect>>* recurse);

void Squarify(const TreemapNode& node, Rect rect, int depth, double inset,
              std::vector<TreemapRect>* out) {
  EmitNode(node, rect, depth, out);
  if (node.is_leaf()) return;
  Rect inner = rect.Inset(inset);
  double total = node.TotalWeight();
  if (total <= 0 || inner.w <= 0 || inner.h <= 0) return;
  double scale = inner.area() / total;

  // Children sorted by decreasing weight, zero-weight skipped.
  std::vector<const TreemapNode*> kids;
  for (const auto& c : node.children) {
    if (c.TotalWeight() > 0) kids.push_back(&c);
  }
  std::sort(kids.begin(), kids.end(), [](const TreemapNode* a, const TreemapNode* b) {
    return a->TotalWeight() > b->TotalWeight();
  });

  Rect free = inner;
  std::vector<const TreemapNode*> row;
  std::vector<double> row_weights;
  std::vector<std::pair<const TreemapNode*, Rect>> recurse;
  size_t i = 0;
  while (i < kids.size()) {
    double side = std::min(free.w, free.h);
    row.push_back(kids[i]);
    row_weights.push_back(kids[i]->TotalWeight());
    if (row.size() > 1) {
      std::vector<double> without(row_weights.begin(), row_weights.end() - 1);
      if (side > 0 && WorstAspect(without, side, scale) <
                          WorstAspect(row_weights, side, scale)) {
        // Adding worsened the row: lay the previous row, retry this child.
        row.pop_back();
        row_weights.pop_back();
        LayRow(row, &free, scale, depth, inset, out, &recurse);
        row.clear();
        row_weights.clear();
        continue;
      }
    }
    ++i;
  }
  if (!row.empty()) LayRow(row, &free, scale, depth, inset, out, &recurse);
  for (auto& [child, r] : recurse) Squarify(*child, r, depth + 1, inset, out);
}

void LayRow(const std::vector<const TreemapNode*>& row, Rect* free, double scale,
            int depth, double inset, std::vector<TreemapRect>* out,
            std::vector<std::pair<const TreemapNode*, Rect>>* recurse) {
  (void)depth;
  (void)inset;
  (void)out;
  double row_weight = 0;
  for (const auto* n : row) row_weight += n->TotalWeight();
  double row_area = row_weight * scale;
  const bool along_height = free->w >= free->h;  // row occupies a vertical strip
  if (along_height) {
    double strip_w = free->h > 0 ? row_area / free->h : 0;
    double y = free->y;
    for (const auto* n : row) {
      double h = row_weight > 0 ? free->h * (n->TotalWeight() / row_weight) : 0;
      recurse->emplace_back(n, Rect{free->x, y, strip_w, h});
      y += h;
    }
    free->x += strip_w;
    free->w = std::max(0.0, free->w - strip_w);
  } else {
    double strip_h = free->w > 0 ? row_area / free->w : 0;
    double x = free->x;
    for (const auto* n : row) {
      double w = row_weight > 0 ? free->w * (n->TotalWeight() / row_weight) : 0;
      recurse->emplace_back(n, Rect{x, free->y, w, strip_h});
      x += w;
    }
    free->y += strip_h;
    free->h = std::max(0.0, free->h - strip_h);
  }
}

}  // namespace

Result<std::vector<TreemapRect>> LayoutTreemap(const TreemapNode& root,
                                               const Rect& bounds,
                                               const TreemapOptions& opts) {
  if (bounds.w <= 0 || bounds.h <= 0) {
    return Status::InvalidArgument("treemap bounds must have positive area");
  }
  if (root.TotalWeight() <= 0) {
    return Status::InvalidArgument("treemap root has no weight");
  }
  std::vector<TreemapRect> out;
  switch (opts.algorithm) {
    case TreemapAlgorithm::kSliceAndDice:
      SliceAndDice(root, bounds, 0, opts.nesting_inset, &out);
      break;
    case TreemapAlgorithm::kSquarified:
      Squarify(root, bounds, 0, opts.nesting_inset, &out);
      break;
  }
  return out;
}

}  // namespace idba
