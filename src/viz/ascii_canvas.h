// Character-cell canvas for the examples: renders layout output (treemap
// rectangles, PDQ trees, link tables) as text frames. Stands in for the
// paper's X11 displays — the data paths being measured are identical.

#pragma once

#include <string>
#include <vector>

#include "viz/geometry.h"

namespace idba {

class AsciiCanvas {
 public:
  AsciiCanvas(int width, int height, char fill = ' ');

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear(char fill = ' ');
  void Put(int x, int y, char c);
  char At(int x, int y) const;
  void Text(int x, int y, const std::string& s);
  void HLine(int x0, int x1, int y, char c = '-');
  void VLine(int x, int y0, int y1, char c = '|');
  /// Box with corners '+', optionally filled.
  void Box(const Rect& r, char border = '+', char fill = '\0');
  /// Draws a straight line between two points (Bresenham).
  void Line(Point a, Point b, char c = '*');

  std::string ToString() const;

 private:
  bool In(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  int width_;
  int height_;
  std::vector<std::string> rows_;
};

}  // namespace idba
