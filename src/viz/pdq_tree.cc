#include "viz/pdq_tree.h"

namespace idba {

size_t PdqNode::TotalCount() const {
  size_t n = 1;
  for (const auto& c : children) n += c.TotalCount();
  return n;
}

namespace {

bool PassesQueries(const PdqNode& node, int level,
                   const std::vector<DynamicQuery>& queries) {
  for (const auto& q : queries) {
    if (q.level != DynamicQuery::kAllLevels && q.level != level) continue;
    if (!q.Matches(node)) return false;
  }
  return true;
}

struct LayoutState {
  const std::vector<DynamicQuery>* queries;
  const PdqOptions* opts;
  PdqLayout* out;
  double next_row = 0;
};

// Returns the y coordinate of the laid-out node, or a negative value if the
// node was pruned entirely (no emission).
double LayoutRec(const PdqNode& node, int level, int parent_index,
                 LayoutState* st) {
  if (!PassesQueries(node, level, *st->queries)) {
    st->out->pruned_count += node.TotalCount();
    return -1;
  }
  // Reserve our slot now (pre-order), fill y after children are known.
  size_t my_index = st->out->nodes.size();
  st->out->nodes.push_back(PdqLayoutNode{});
  PdqLayoutNode& me = st->out->nodes[my_index];
  me.label = node.label;
  me.tag = node.tag;
  me.level = level;
  me.parent_index = parent_index;

  double child_y_sum = 0;
  int surviving_children = 0;
  size_t pruned_here = 0;
  for (const auto& c : node.children) {
    size_t before = st->out->pruned_count;
    double cy = LayoutRec(c, level + 1, static_cast<int>(my_index), st);
    if (cy >= 0) {
      child_y_sum += cy;
      ++surviving_children;
    } else {
      pruned_here += st->out->pruned_count - before;
    }
  }

  double y;
  if (surviving_children > 0) {
    y = child_y_sum / surviving_children;  // centered over children
  } else {
    y = st->next_row;
    st->next_row += st->opts->row_spacing;
  }
  // (Re-fetch: children may have reallocated the vector.)
  PdqLayoutNode& me2 = st->out->nodes[my_index];
  me2.position = Point{level * st->opts->level_spacing, y};
  me2.pruned_descendants = pruned_here;
  bool all_children_pruned = !node.is_leaf() && surviving_children == 0;
  if (all_children_pruned && !st->opts->keep_stubs) {
    // Caller asked not to keep context stubs, but the node itself passed
    // its queries; it stays visible as a plain leaf.
  }
  me2.visible = true;
  st->out->visible_count += 1;
  return y;
}

}  // namespace

Result<PdqLayout> LayoutPdqTree(const PdqNode& root,
                                const std::vector<DynamicQuery>& queries,
                                const PdqOptions& opts) {
  for (const auto& q : queries) {
    if (q.min > q.max) {
      return Status::InvalidArgument("dynamic query with min > max on " +
                                     q.attribute);
    }
  }
  PdqLayout out;
  LayoutState st{&queries, &opts, &out, 0};
  double y = LayoutRec(root, 0, -1, &st);
  if (y < 0) {
    // Root itself pruned: empty layout.
    out.nodes.clear();
    out.visible_count = 0;
  }
  out.height = st.next_row;
  return out;
}

}  // namespace idba
