// PDQ Tree-browser (Kumar, Plaisant & Shneiderman, ISR TR 95-53): browsing
// hierarchical data with multi-level dynamic queries and pruning — the
// second visualization of the paper's prototype (§4).
//
// The browser lays a tree out left-to-right by level; per-level dynamic
// query predicates (attribute range filters) prune nodes; pruned subtrees
// collapse, and ancestors with every child pruned can optionally remain as
// stubs so the user keeps context.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "viz/geometry.h"

namespace idba {

/// Input node for the PDQ browser.
struct PdqNode {
  std::string label;
  uint64_t tag = 0;
  /// Named attributes the dynamic queries filter on.
  std::map<std::string, double> attributes;
  std::vector<PdqNode> children;

  bool is_leaf() const { return children.empty(); }
  size_t TotalCount() const;
};

/// One dynamic query: a closed range on an attribute, applied at one tree
/// level (or every level when level == kAllLevels).
struct DynamicQuery {
  static constexpr int kAllLevels = -1;
  int level = kAllLevels;
  std::string attribute;
  double min = 0;
  double max = 0;

  bool Matches(const PdqNode& node) const {
    auto it = node.attributes.find(attribute);
    if (it == node.attributes.end()) return true;  // unfiltered attribute
    return it->second >= min && it->second <= max;
  }
};

/// A laid-out, possibly pruned node.
struct PdqLayoutNode {
  Point position;        ///< x = level * level_spacing, y = row slot
  std::string label;
  uint64_t tag = 0;
  int level = 0;
  bool visible = true;   ///< false only for stubs
  size_t pruned_descendants = 0;  ///< subtree size removed under this node
  int parent_index = -1;          ///< index into the layout vector
};

struct PdqOptions {
  double level_spacing = 12.0;
  double row_spacing = 2.0;
  /// Keep a stub marker on nodes whose entire subtree was pruned away.
  bool keep_stubs = true;
};

/// Result of a layout pass.
struct PdqLayout {
  std::vector<PdqLayoutNode> nodes;  ///< pre-order
  size_t visible_count = 0;
  size_t pruned_count = 0;
  double height = 0;  ///< total rows used * row_spacing
};

/// Applies the queries to `root` and lays out the surviving tree.
/// A node is pruned when any query at its level rejects it; pruning a node
/// prunes its whole subtree (the PDQ browser's pruning semantics).
Result<PdqLayout> LayoutPdqTree(const PdqNode& root,
                                const std::vector<DynamicQuery>& queries,
                                const PdqOptions& opts = {});

}  // namespace idba
