#include "viz/graph_layout.h"

#include <algorithm>
#include <cmath>

namespace idba {

Result<std::vector<Point>> LayoutGraph(size_t node_count,
                                       const std::vector<GraphEdge>& edges,
                                       const Rect& bounds,
                                       const GraphLayoutOptions& opts) {
  if (bounds.w <= 0 || bounds.h <= 0) {
    return Status::InvalidArgument("graph layout bounds must have positive area");
  }
  for (const GraphEdge& e : edges) {
    if (e.a >= node_count || e.b >= node_count) {
      return Status::InvalidArgument("edge references node out of range");
    }
  }
  std::vector<Point> pos(node_count);
  if (node_count == 0) return pos;

  // Initial placement: circle inscribed in the bounds, with tiny seeded
  // jitter to break symmetry for the force phase.
  Rng rng(opts.seed);
  const double cx = bounds.x + bounds.w / 2, cy = bounds.y + bounds.h / 2;
  const double rx = bounds.w * 0.42, ry = bounds.h * 0.42;
  for (size_t i = 0; i < node_count; ++i) {
    double angle = 2 * M_PI * static_cast<double>(i) / static_cast<double>(node_count);
    pos[i] = Point{cx + rx * std::cos(angle) + (rng.NextDouble() - 0.5),
                   cy + ry * std::sin(angle) + (rng.NextDouble() - 0.5)};
  }
  if (opts.iterations <= 0 || node_count == 1) return pos;

  // Fruchterman-Reingold: k = sqrt(area / n); repulsion k^2/d, attraction
  // d^2/k along edges; temperature cools linearly.
  const double k = std::sqrt(bounds.area() / static_cast<double>(node_count));
  double temperature = std::min(bounds.w, bounds.h) / 8;
  std::vector<Point> disp(node_count);
  for (int iter = 0; iter < opts.iterations; ++iter) {
    for (auto& d : disp) d = Point{0, 0};
    // Repulsive forces between every pair.
    for (size_t i = 0; i < node_count; ++i) {
      for (size_t j = i + 1; j < node_count; ++j) {
        double dx = pos[i].x - pos[j].x;
        double dy = pos[i].y - pos[j].y;
        double dist = std::max(1e-6, std::hypot(dx, dy));
        double force = k * k / dist;
        disp[i].x += dx / dist * force;
        disp[i].y += dy / dist * force;
        disp[j].x -= dx / dist * force;
        disp[j].y -= dy / dist * force;
      }
    }
    // Attractive forces along edges.
    for (const GraphEdge& e : edges) {
      double dx = pos[e.a].x - pos[e.b].x;
      double dy = pos[e.a].y - pos[e.b].y;
      double dist = std::max(1e-6, std::hypot(dx, dy));
      double force = dist * dist / k;
      disp[e.a].x -= dx / dist * force;
      disp[e.a].y -= dy / dist * force;
      disp[e.b].x += dx / dist * force;
      disp[e.b].y += dy / dist * force;
    }
    // Apply displacements, capped by temperature, clamped to bounds.
    for (size_t i = 0; i < node_count; ++i) {
      double len = std::max(1e-6, std::hypot(disp[i].x, disp[i].y));
      double step = std::min(len, temperature);
      pos[i].x += disp[i].x / len * step;
      pos[i].y += disp[i].y / len * step;
      pos[i].x = std::clamp(pos[i].x, bounds.x, bounds.right());
      pos[i].y = std::clamp(pos[i].y, bounds.y, bounds.bottom());
    }
    temperature *= 1.0 - 1.0 / (opts.iterations + 1.0);
  }
  return pos;
}

double MeanEdgeLength(const std::vector<Point>& positions,
                      const std::vector<GraphEdge>& edges) {
  if (edges.empty()) return 0;
  double sum = 0;
  for (const GraphEdge& e : edges) {
    sum += std::hypot(positions[e.a].x - positions[e.b].x,
                      positions[e.a].y - positions[e.b].y);
  }
  return sum / static_cast<double>(edges.size());
}

double MinNodeDistance(const std::vector<Point>& positions) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < positions.size(); ++i) {
    for (size_t j = i + 1; j < positions.size(); ++j) {
      best = std::min(best, std::hypot(positions[i].x - positions[j].x,
                                       positions[i].y - positions[j].y));
    }
  }
  return positions.size() < 2 ? 0 : best;
}

}  // namespace idba
