// Tree-Map layout (Johnson & Shneiderman, IEEE Visualization 1991) — the
// space-filling hierarchy visualization the paper's prototype uses for
// hardware hierarchies (§4). Implements the original slice-and-dice
// algorithm plus the squarified variant (Bruls et al.) as an extension.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "viz/geometry.h"

namespace idba {

/// Input hierarchy. Leaf weights drive area; interior weights are ignored
/// (recomputed as the sum of descendants).
struct TreemapNode {
  std::string label;
  double weight = 0;   ///< leaf size (e.g. device capacity)
  uint64_t tag = 0;    ///< caller payload (e.g. OID)
  std::vector<TreemapNode> children;

  bool is_leaf() const { return children.empty(); }
  /// Sum of leaf weights underneath (own weight for leaves).
  double TotalWeight() const;
};

/// One laid-out rectangle.
struct TreemapRect {
  Rect rect;
  std::string label;
  uint64_t tag = 0;
  int depth = 0;
  bool leaf = false;
  double weight = 0;
};

enum class TreemapAlgorithm {
  kSliceAndDice,  ///< the 1991 original: alternate split axis per level
  kSquarified,    ///< Bruls et al.: aspect-ratio-optimized rows
};

struct TreemapOptions {
  TreemapAlgorithm algorithm = TreemapAlgorithm::kSliceAndDice;
  /// Border drawn around interior nodes ("nesting offset" of the paper's
  /// tree-map reference), in layout units.
  double nesting_inset = 0.0;
};

/// Lays out `root` inside `bounds`. Returns rectangles in pre-order
/// (parents before children). Areas of leaves are proportional to their
/// weights (within the space lost to nesting insets).
Result<std::vector<TreemapRect>> LayoutTreemap(const TreemapNode& root,
                                               const Rect& bounds,
                                               const TreemapOptions& opts = {});

}  // namespace idba
