// Minimal 2D geometry for headless layout computation.

#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

namespace idba {

struct Point {
  double x = 0;
  double y = 0;
};

struct Rect {
  double x = 0;
  double y = 0;
  double w = 0;
  double h = 0;

  double area() const { return w * h; }
  double right() const { return x + w; }
  double bottom() const { return y + h; }
  bool Contains(const Point& p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }
  bool Intersects(const Rect& o) const {
    return x < o.right() && o.x < right() && y < o.bottom() && o.y < bottom();
  }
  /// Shrinks by `m` on every side (clamped at zero size).
  Rect Inset(double m) const {
    return Rect{x + m, y + m, std::max(0.0, w - 2 * m), std::max(0.0, h - 2 * m)};
  }
  std::string ToString() const;
};

inline std::string Rect::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.1f,%.1f %sx%s]", x, y,
                std::to_string(w).c_str(), std::to_string(h).c_str());
  return buf;
}

}  // namespace idba
