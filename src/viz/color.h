// Color and width coding of link utilization (paper §2.1: "red, pink and
// white lines could represent links with high, moderate and low utilization
// respectively"; "the line width is proportional to the link utilization").

#pragma once

#include <cstdint>
#include <string>

namespace idba {

struct Rgb {
  uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb&) const = default;
  std::string ToHex() const;
};

/// Piecewise white -> pink -> red ramp over utilization in [0, 1].
Rgb UtilizationColor(double utilization);

/// The paper's categorical coding: "white" (<1/3), "pink" (<2/3), "red".
std::string UtilizationColorName(double utilization);

/// Width coding: line width proportional to utilization, in [min_w, max_w].
double UtilizationWidth(double utilization, double min_w = 1.0,
                        double max_w = 9.0);

}  // namespace idba
