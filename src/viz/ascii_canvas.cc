#include "viz/ascii_canvas.h"

#include <cmath>
#include <cstdlib>

namespace idba {

AsciiCanvas::AsciiCanvas(int width, int height, char fill)
    : width_(width), height_(height),
      rows_(height, std::string(static_cast<size_t>(width), fill)) {}

void AsciiCanvas::Clear(char fill) {
  for (auto& row : rows_) row.assign(static_cast<size_t>(width_), fill);
}

void AsciiCanvas::Put(int x, int y, char c) {
  if (In(x, y)) rows_[y][x] = c;
}

char AsciiCanvas::At(int x, int y) const {
  return In(x, y) ? rows_[y][x] : '\0';
}

void AsciiCanvas::Text(int x, int y, const std::string& s) {
  for (size_t i = 0; i < s.size(); ++i) Put(x + static_cast<int>(i), y, s[i]);
}

void AsciiCanvas::HLine(int x0, int x1, int y, char c) {
  if (x0 > x1) std::swap(x0, x1);
  for (int x = x0; x <= x1; ++x) Put(x, y, c);
}

void AsciiCanvas::VLine(int x, int y0, int y1, char c) {
  if (y0 > y1) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) Put(x, y, c);
}

void AsciiCanvas::Box(const Rect& r, char border, char fill) {
  int x0 = static_cast<int>(std::lround(r.x));
  int y0 = static_cast<int>(std::lround(r.y));
  int x1 = static_cast<int>(std::lround(r.right())) - 1;
  int y1 = static_cast<int>(std::lround(r.bottom())) - 1;
  if (x1 < x0) x1 = x0;
  if (y1 < y0) y1 = y0;
  if (fill != '\0') {
    for (int y = y0 + 1; y < y1; ++y) {
      for (int x = x0 + 1; x < x1; ++x) Put(x, y, fill);
    }
  }
  HLine(x0, x1, y0, '-');
  HLine(x0, x1, y1, '-');
  VLine(x0, y0, y1, '|');
  VLine(x1, y0, y1, '|');
  Put(x0, y0, border);
  Put(x1, y0, border);
  Put(x0, y1, border);
  Put(x1, y1, border);
}

void AsciiCanvas::Line(Point a, Point b, char c) {
  int x0 = static_cast<int>(std::lround(a.x));
  int y0 = static_cast<int>(std::lround(a.y));
  int x1 = static_cast<int>(std::lround(b.x));
  int y1 = static_cast<int>(std::lround(b.y));
  int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    Put(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

std::string AsciiCanvas::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(width_ + 1) * height_);
  for (const auto& row : rows_) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace idba
