#include "viz/color.h"

#include <algorithm>
#include <cstdio>

namespace idba {

std::string Rgb::ToHex() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02X%02X%02X", r, g, b);
  return buf;
}

Rgb UtilizationColor(double utilization) {
  double u = std::clamp(utilization, 0.0, 1.0);
  if (u < 0.5) {
    // white (255,255,255) -> pink (255,150,180)
    double t = u / 0.5;
    return Rgb{255, static_cast<uint8_t>(255 - t * 105),
               static_cast<uint8_t>(255 - t * 75)};
  }
  // pink (255,150,180) -> red (220,0,0)
  double t = (u - 0.5) / 0.5;
  return Rgb{static_cast<uint8_t>(255 - t * 35),
             static_cast<uint8_t>(150 - t * 150),
             static_cast<uint8_t>(180 - t * 180)};
}

std::string UtilizationColorName(double utilization) {
  double u = std::clamp(utilization, 0.0, 1.0);
  if (u < 1.0 / 3.0) return "white";
  if (u < 2.0 / 3.0) return "pink";
  return "red";
}

double UtilizationWidth(double utilization, double min_w, double max_w) {
  double u = std::clamp(utilization, 0.0, 1.0);
  return min_w + u * (max_w - min_w);
}

}  // namespace idba
