// Node-link graph layout for the network monitoring views (§2.1: "a graph
// representing the nodes and links of a real communication network").
// Headless: computes positions that the GUI writes into display objects'
// coordinate attributes. Circular layout for determinism and a classic
// Fruchterman-Reingold force-directed refinement for nicer drawings.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "viz/geometry.h"

namespace idba {

/// An undirected edge between node indices.
struct GraphEdge {
  size_t a = 0;
  size_t b = 0;
};

struct GraphLayoutOptions {
  /// Iterations of force-directed refinement (0 = pure circular layout).
  int iterations = 50;
  /// Deterministic jitter seed (symmetric layouts need symmetry breaking).
  uint64_t seed = 1;
};

/// Positions `node_count` nodes inside `bounds`, starting from a circle
/// and optionally refining with Fruchterman-Reingold forces.
/// Fails if an edge references a node out of range.
Result<std::vector<Point>> LayoutGraph(size_t node_count,
                                       const std::vector<GraphEdge>& edges,
                                       const Rect& bounds,
                                       const GraphLayoutOptions& opts = {});

/// Mean edge length of a layout (quality metric used by tests).
double MeanEdgeLength(const std::vector<Point>& positions,
                      const std::vector<GraphEdge>& edges);

/// Minimum pairwise node distance (quality metric: no two nodes collapse).
double MinNodeDistance(const std::vector<Point>& positions);

}  // namespace idba
