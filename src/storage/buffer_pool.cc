#include "storage/buffer_pool.h"

#include "obs/trace.h"

namespace idba {

BufferPool::BufferPool(Disk* disk, BufferPoolOptions opts)
    : disk_(disk), opts_(opts), frames_(opts.frame_count) {
  free_list_.reserve(opts.frame_count);
  for (size_t i = opts.frame_count; i > 0; --i) free_list_.push_back(i - 1);
  // Canonical "page cache" level of the paper's memory hierarchy; the
  // registry aggregates across pools, per-instance accessors stay exact.
  MetricsRegistry& reg = GlobalMetrics();
  hits_.BindGlobal(reg.GetCounter("cache.page.hits"));
  misses_.BindGlobal(reg.GetCounter("cache.page.misses"));
  evictions_.BindGlobal(reg.GetCounter("cache.page.evictions"));
  resident_gauge_ = ScopedGauge(&reg, "cache.page.resident_frames",
                                [this] { return double(Stats().resident); });
  dirty_gauge_ = ScopedGauge(&reg, "cache.page.dirty_frames",
                             [this] { return double(Stats().dirty); });
  pinned_gauge_ = ScopedGauge(&reg, "cache.page.pinned_frames",
                              [this] { return double(Stats().pinned); });
}

BufferPool::~BufferPool() { (void)FlushAll(); }

Result<size_t> BufferPool::GetVictimLocked() {
  if (!free_list_.empty()) {
    size_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Busy("buffer pool exhausted: all frames pinned");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  evictions_.Add();
  if (f.dirty) {
    Status st = disk_->WritePage(f.page_id, f.data);
    if (!st.ok()) {
      // The victim stays resident (its data is still the only copy);
      // return it to the LRU so a later eviction can retry the write.
      lru_.push_front(idx);
      f.lru_pos = lru_.begin();
      f.in_lru = true;
      return st;
    }
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  f.valid = false;
  return idx;
}

Result<PageGuard> BufferPool::FetchPage(PageId id, bool* missed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    hits_.Add();
    if (missed != nullptr) *missed = false;
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, it->second, &f.data, id);
  }
  misses_.Add();
  if (missed != nullptr) *missed = true;
  IDBA_TRACE_SPAN("storage.read_page");
  IDBA_ASSIGN_OR_RETURN(size_t idx, GetVictimLocked());
  Frame& f = frames_[idx];
  Status st = disk_->ReadPage(id, &f.data);
  if (!st.ok()) {
    free_list_.push_back(idx);
    return st;
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.valid = true;
  f.in_lru = false;
  page_table_[id] = idx;
  return PageGuard(this, idx, &f.data, id);
}

Result<PageGuard> BufferPool::NewPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_table_.count(id)) {
    return Status::AlreadyExists("page " + std::to_string(id) + " already buffered");
  }
  IDBA_ASSIGN_OR_RETURN(size_t idx, GetVictimLocked());
  Frame& f = frames_[idx];
  f.data = PageData{};
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;  // a new page must reach disk eventually
  f.valid = true;
  f.in_lru = false;
  page_table_[id] = idx;
  return PageGuard(this, idx, &f.data, id);
}

void BufferPool::Unpin(size_t frame_index, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame_index];
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0 && f.valid) {
    lru_.push_back(frame_index);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
    if (checkpoint_waiters_ > 0) unpin_cv_.notify_all();
  }
}

Status BufferPool::FlushDirtyForCheckpoint(uint64_t* pages_written) {
  std::vector<std::pair<size_t, PageId>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < frames_.size(); ++i) {
      const Frame& f = frames_[i];
      if (f.valid && f.dirty) targets.emplace_back(i, f.page_id);
    }
  }
  for (const auto& [idx, pid] : targets) {
    std::unique_lock<std::mutex> lk(mu_);
    Frame& f = frames_[idx];
    ++checkpoint_waiters_;
    unpin_cv_.wait(lk, [&] {
      return !f.valid || f.page_id != pid || f.pin_count == 0;
    });
    --checkpoint_waiters_;
    // Evicted (its eviction already wrote it) or repurposed since the
    // snapshot, or cleaned by a concurrent FlushAll: nothing to do.
    if (!f.valid || f.page_id != pid || !f.dirty) continue;
    IDBA_RETURN_NOT_OK(disk_->WritePage(f.page_id, f.data));
    f.dirty = false;
    if (pages_written != nullptr) ++*pages_written;
  }
  return disk_->Sync();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      IDBA_RETURN_NOT_OK(disk_->WritePage(f.page_id, f.data));
      f.dirty = false;
    }
  }
  return disk_->Sync();
}

BufferPool::PoolStats BufferPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats s;
  s.frame_count = opts_.frame_count;
  for (const Frame& f : frames_) {
    if (!f.valid) continue;
    ++s.resident;
    if (f.dirty) ++s.dirty;
    if (f.pin_count > 0) ++s.pinned;
  }
  return s;
}

void BufferPool::DropAllNoFlush() {
  std::lock_guard<std::mutex> lock(mu_);
  page_table_.clear();
  lru_.clear();
  free_list_.clear();
  for (size_t i = frames_.size(); i > 0; --i) {
    frames_[i - 1] = Frame{};
    free_list_.push_back(i - 1);
  }
}

}  // namespace idba
