// Page-granular disk abstraction.
//
// Two implementations: MemDisk (the default experimental substrate — an
// in-memory page array whose access latencies are *metered* via counters and
// charged through the CostModel, replacing the paper's physical disks) and
// FileDisk (a real file, for persistence tests and durability demos).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace idba {

using PageId = uint64_t;
constexpr size_t kPageSize = 4096;

/// Bytes [0, kPageCrcSize) of every page are reserved for a CRC32C of the
/// remaining kPageSize - kPageCrcSize bytes. Disk implementations stamp it
/// on WritePage and verify it on ReadPage; page/WAL layouts above the disk
/// treat the region as opaque. An all-zero page (never written, or the
/// zero-padded tail of a file) is always accepted as valid.
constexpr size_t kPageCrcSize = 4;

/// CRC32C (Castagnoli) over `len` bytes.
uint32_t Crc32c(const uint8_t* data, size_t len);

/// Fixed-size page image.
struct PageData {
  uint8_t bytes[kPageSize] = {};
};

/// Abstract page store. Implementations are thread-safe.
class Disk {
 public:
  virtual ~Disk() = default;

  /// Reads page `id` into `*out`. Reading a never-written page yields zeros.
  /// A page whose checksum does not match returns Status::Corruption and
  /// bumps storage.page.checksum_failures_total.
  virtual Status ReadPage(PageId id, PageData* out) = 0;

  /// Writes page `id`, stamping the checksum. Grows the disk as needed.
  virtual Status WritePage(PageId id, const PageData& data) = 0;

  /// Forces all buffered writes to stable storage.
  virtual Status Sync() = 0;

  /// Discards every page (log truncation after a checkpoint).
  virtual Status Truncate() = 0;

  /// Shrinks the disk to `pages` pages (space reclamation after a WAL
  /// copy-forward truncation). Correctness never depends on the physical
  /// shrink — the WAL header/terminator govern the recovery scan — so the
  /// default is a no-op, which also keeps thin test wrappers compiling.
  virtual Status TruncateTo(PageId pages) {
    (void)pages;
    return Status::OK();
  }

  /// Number of pages ever written + 1 (i.e. one past the highest id).
  virtual PageId PageCount() const = 0;

  /// Total physical reads / writes / sync barriers since construction.
  uint64_t reads() const { return reads_.Get(); }
  uint64_t writes() const { return writes_.Get(); }
  uint64_t syncs() const { return syncs_.Get(); }

 protected:
  /// Writes the CRC32C of bytes [kPageCrcSize, kPageSize) into bytes
  /// [0, kPageCrcSize) of `page`.
  static void StampPageCrc(PageData* page);
  /// OK if the stamped checksum matches (or the page is entirely zero);
  /// Status::Corruption otherwise (counted).
  static Status VerifyPageCrc(PageId id, const PageData& page);

  Counter reads_;
  Counter writes_;
  Counter syncs_;
};

/// In-memory disk. Optionally injects read/write failures for tests.
class MemDisk : public Disk {
 public:
  MemDisk() = default;

  Status ReadPage(PageId id, PageData* out) override;
  Status WritePage(PageId id, const PageData& data) override;
  Status Sync() override;
  Status Truncate() override;
  Status TruncateTo(PageId pages) override;
  PageId PageCount() const override;

  /// When set, the next `n` reads fail with IOError (test hook).
  void InjectReadFailures(int n);
  /// When set, the next `n` writes fail with IOError (test hook).
  void InjectWriteFailures(int n);
  /// When set, the next `n` syncs fail with IOError (test hook).
  void InjectSyncFailures(int n);

  /// XORs `mask` into byte `offset` of a stored page (bit-flip corruption;
  /// subsequent reads of the page fail checksum verification).
  void CorruptPage(PageId id, size_t offset, uint8_t mask);
  /// Zeroes bytes [keep, kPageSize) of a stored page, simulating a torn
  /// write that persisted only a prefix of the sector.
  void TornWrite(PageId id, size_t keep);

  /// Deep copy of the current disk image (crash-point snapshots in
  /// recovery property tests).
  std::unique_ptr<MemDisk> Clone() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<PageData>> pages_;
  int failing_reads_ = 0;
  int failing_writes_ = 0;
  int failing_syncs_ = 0;
};

/// File-backed disk (single flat file of 4 KiB pages).
class FileDisk : public Disk {
 public:
  /// Opens (creating if necessary) the file at `path`.
  static Result<std::unique_ptr<FileDisk>> Open(const std::string& path);
  ~FileDisk() override;

  Status ReadPage(PageId id, PageData* out) override;
  Status WritePage(PageId id, const PageData& data) override;
  Status Sync() override;
  Status Truncate() override;
  Status TruncateTo(PageId pages) override;
  PageId PageCount() const override;

 private:
  FileDisk(int fd, PageId page_count) : fd_(fd), page_count_(page_count) {}
  mutable std::mutex mu_;
  int fd_;
  PageId page_count_;
};

}  // namespace idba
