#include "storage/wal.h"

#include <cstring>

#include "obs/trace.h"

namespace idba {

namespace {
constexpr size_t kWalPageHeader = 2;  // u16 used-bytes
constexpr size_t kWalPageCapacity = kPageSize - kWalPageHeader;

uint16_t PageUsed(const PageData& p) {
  return static_cast<uint16_t>(p.bytes[0] | (static_cast<uint16_t>(p.bytes[1]) << 8));
}

void SetPageUsed(PageData* p, uint16_t used) {
  p->bytes[0] = static_cast<uint8_t>(used);
  p->bytes[1] = static_cast<uint8_t>(used >> 8);
}

Status ParsePage(const PageData& page, std::vector<WalRecord>* out) {
  size_t used = PageUsed(page);
  if (used > kWalPageCapacity) {
    return Status::Corruption("WAL page used-bytes out of range");
  }
  size_t off = 0;
  const uint8_t* body = page.bytes + kWalPageHeader;
  while (off + 4 <= used) {
    uint32_t len = 0;
    std::memcpy(&len, body + off, 4);
    off += 4;
    if (len == 0 || off + len > used) {
      return Status::Corruption("WAL record overruns page");
    }
    Decoder dec(body + off, len);
    WalRecord rec;
    IDBA_RETURN_NOT_OK(WalRecord::DecodeFrom(&dec, &rec));
    out->push_back(std::move(rec));
    off += len;
  }
  return Status::OK();
}
}  // namespace

void WalRecord::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutU64(lsn);
  enc->PutU64(txn);
  enc->PutU64(oid.value);
  const bool has_image =
      type == WalRecordType::kInsert || type == WalRecordType::kUpdate;
  enc->PutU8(has_image ? 1 : 0);
  if (has_image) after.EncodeTo(enc);
}

Status WalRecord::DecodeFrom(Decoder* dec, WalRecord* out) {
  uint8_t type = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&type));
  out->type = static_cast<WalRecordType>(type);
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->lsn));
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  uint64_t oid = 0;
  IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
  out->oid = Oid(oid);
  uint8_t has_image = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&has_image));
  if (has_image != 0) {
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &out->after));
  }
  return Status::OK();
}

Wal::Wal(Disk* disk) : disk_(disk) {
  // Resume after an existing log: position past the last durable record.
  auto existing = ReadAllFromDisk(disk_);
  if (existing.ok() && !existing.value().empty()) {
    next_lsn_ = existing.value().back().lsn + 1;
    // Continue appending on a fresh page (simpler than refilling a partial
    // tail page; wastes at most one page per restart).
    next_page_ = disk_->PageCount();
  }
}

Result<Lsn> Wal::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.lsn = next_lsn_++;
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  rec.EncodeTo(&enc);
  if (payload.size() + 4 > kWalPageCapacity) {
    return Status::InvalidArgument("WAL record exceeds page capacity: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  std::vector<uint8_t> entry(4 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(entry.data(), &len, 4);
  std::memcpy(entry.data() + 4, payload.data(), payload.size());
  appended_bytes_ += entry.size();
  pending_.push_back(std::move(entry));
  return rec.lsn;
}

Status Wal::FlushLocked() {
  for (auto& entry : pending_) {
    if (cur_used_ + entry.size() > kWalPageCapacity) {
      SetPageUsed(&cur_page_, static_cast<uint16_t>(cur_used_));
      IDBA_RETURN_NOT_OK(disk_->WritePage(next_page_, cur_page_));
      ++next_page_;
      cur_page_ = PageData{};
      cur_used_ = 0;
    }
    std::memcpy(cur_page_.bytes + kWalPageHeader + cur_used_, entry.data(),
                entry.size());
    cur_used_ += entry.size();
  }
  pending_.clear();
  SetPageUsed(&cur_page_, static_cast<uint16_t>(cur_used_));
  IDBA_RETURN_NOT_OK(disk_->WritePage(next_page_, cur_page_));
  return disk_->Sync();
}

Status Wal::Flush() {
  IDBA_TRACE_SPAN("storage.wal_flush");
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Result<std::vector<WalRecord>> Wal::ReadAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalRecord> out;
  // Full pages already shipped to disk.
  for (PageId p = 0; p < next_page_; ++p) {
    PageData page;
    IDBA_RETURN_NOT_OK(disk_->ReadPage(p, &page));
    IDBA_RETURN_NOT_OK(ParsePage(page, &out));
  }
  // The in-memory tail page is authoritative for its contents.
  IDBA_RETURN_NOT_OK(ParsePage(cur_page_, &out));
  // Records appended but not yet packed into any page.
  for (const auto& entry : pending_) {
    Decoder dec(entry.data() + 4, entry.size() - 4);
    WalRecord rec;
    IDBA_RETURN_NOT_OK(WalRecord::DecodeFrom(&dec, &rec));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<WalRecord>> Wal::ReadAllFromDisk(Disk* disk) {
  std::vector<WalRecord> out;
  for (PageId p = 0; p < disk->PageCount(); ++p) {
    PageData page;
    IDBA_RETURN_NOT_OK(disk->ReadPage(p, &page));
    IDBA_RETURN_NOT_OK(ParsePage(page, &out));
  }
  return out;
}

Status Wal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  IDBA_RETURN_NOT_OK(disk_->Truncate());
  next_page_ = 0;
  cur_page_ = PageData{};
  cur_used_ = 0;
  pending_.clear();
  return Status::OK();
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

PageId Wal::DiskPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_->PageCount();
}

}  // namespace idba
