#include "storage/wal.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/trace.h"

namespace idba {

namespace {
constexpr size_t kWalPageHeader = 2;  // u16 used-bytes
constexpr size_t kWalPageCapacity = kPageSize - kWalPageHeader;

uint16_t PageUsed(const PageData& p) {
  return static_cast<uint16_t>(p.bytes[0] | (static_cast<uint16_t>(p.bytes[1]) << 8));
}

void SetPageUsed(PageData* p, uint16_t used) {
  p->bytes[0] = static_cast<uint8_t>(used);
  p->bytes[1] = static_cast<uint8_t>(used >> 8);
}

Status ParsePage(const PageData& page, std::vector<WalRecord>* out) {
  size_t used = PageUsed(page);
  if (used > kWalPageCapacity) {
    return Status::Corruption("WAL page used-bytes out of range");
  }
  size_t off = 0;
  const uint8_t* body = page.bytes + kWalPageHeader;
  while (off + 4 <= used) {
    uint32_t len = 0;
    std::memcpy(&len, body + off, 4);
    off += 4;
    if (len == 0 || off + len > used) {
      return Status::Corruption("WAL record overruns page");
    }
    Decoder dec(body + off, len);
    WalRecord rec;
    IDBA_RETURN_NOT_OK(WalRecord::DecodeFrom(&dec, &rec));
    out->push_back(std::move(rec));
    off += len;
  }
  return Status::OK();
}

size_t EncodedEntrySize(const WalRecord& rec) {
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  rec.EncodeTo(&enc);
  return 4 + payload.size();
}
}  // namespace

void WalRecord::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutU64(lsn);
  enc->PutU64(txn);
  enc->PutU64(oid.value);
  const bool has_image =
      type == WalRecordType::kInsert || type == WalRecordType::kUpdate;
  enc->PutU8(has_image ? 1 : 0);
  if (has_image) after.EncodeTo(enc);
}

Status WalRecord::DecodeFrom(Decoder* dec, WalRecord* out) {
  uint8_t type = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&type));
  out->type = static_cast<WalRecordType>(type);
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->lsn));
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  uint64_t oid = 0;
  IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
  out->oid = Oid(oid);
  uint8_t has_image = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&has_image));
  if (has_image != 0) {
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &out->after));
  }
  return Status::OK();
}

Wal::Wal(Disk* disk) : disk_(disk) {
  // Resume after an existing log: position past the last durable record and
  // restore the byte counter from the recovered log (post-restart metrics
  // would otherwise under-report everything ever appended).
  auto existing = ReadAllFromDisk(disk_);
  if (existing.ok() && !existing.value().empty()) {
    next_lsn_ = existing.value().back().lsn + 1;
    // Continue appending on a fresh page (simpler than refilling a partial
    // tail page; wastes at most one page per restart).
    next_page_ = disk_->PageCount();
    recovered_records_ = existing.value().size();
    for (const WalRecord& rec : existing.value()) {
      appended_bytes_ += EncodedEntrySize(rec);
    }
  }
  durable_lsn_ = next_lsn_ - 1;  // everything on disk is durable
  fsyncs_total_ = GlobalMetrics().GetCounter("wal.fsyncs_total");
  batch_size_ = GlobalMetrics().GetHistogram("wal.group.batch_size");
  wait_us_ = GlobalMetrics().GetHistogram("wal.group.wait_us");
  if (recovered_records_ > 0) {
    GlobalMetrics().GetCounter("wal.recovered_records")->Add(recovered_records_);
  }
}

Result<Lsn> Wal::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.lsn = next_lsn_;
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  rec.EncodeTo(&enc);
  if (payload.size() + 4 > kWalPageCapacity) {
    return Status::InvalidArgument("WAL record exceeds page capacity: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  ++next_lsn_;
  std::vector<uint8_t> entry(4 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(entry.data(), &len, 4);
  std::memcpy(entry.data() + 4, payload.data(), payload.size());
  appended_bytes_ += entry.size();
  obs::FlightRecord(obs::FlightType::kWalAppend, rec.lsn, entry.size());
  pending_.push_back(std::move(entry));
  return rec.lsn;
}

Status Wal::PackAndSync(const std::vector<std::vector<uint8_t>>& batch) {
  // Snapshot the pack state: a failed batch's entries are dropped (their
  // committers see the error and abort), so the tail must revert to its
  // pre-batch image for the next batch to pack from. Pages the failed batch
  // already wrote beyond the restored tail are garbage; ReadAllFromDisk's
  // monotonic-LSN cutoff ignores them and the next successful batch
  // overwrites them.
  const PageId saved_next_page = next_page_;
  const size_t saved_used = cur_used_;
  const PageData saved_page = cur_page_;

  Status st = Status::OK();
  for (const auto& entry : batch) {
    if (cur_used_ + entry.size() > kWalPageCapacity) {
      SetPageUsed(&cur_page_, static_cast<uint16_t>(cur_used_));
      st = disk_->WritePage(next_page_, cur_page_);
      if (!st.ok()) break;
      ++next_page_;
      cur_page_ = PageData{};
      cur_used_ = 0;
    }
    std::memcpy(cur_page_.bytes + kWalPageHeader + cur_used_, entry.data(),
                entry.size());
    cur_used_ += entry.size();
  }
  if (st.ok()) {
    SetPageUsed(&cur_page_, static_cast<uint16_t>(cur_used_));
    st = disk_->WritePage(next_page_, cur_page_);
    if (st.ok()) st = disk_->Sync();
  }
  if (!st.ok()) {
    next_page_ = saved_next_page;
    cur_used_ = saved_used;
    cur_page_ = saved_page;
    tail_dirty_ = true;  // on-disk tail may hold failed-batch bytes
    return st;
  }
  tail_dirty_ = false;
  fsyncs_local_.Add();
  fsyncs_total_->Add();
  batch_size_->Record(static_cast<double>(batch.size()));
  return Status::OK();
}

Status Wal::WaitDurable(Lsn lsn) {
  const int64_t t0 = obs::NowUs();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // A failed batch drops its records; waiters for those LSNs must see the
    // batch's error, never a later batch's success (the durable horizon
    // keeps advancing past the hole).
    for (const DroppedRange& r : dropped_) {
      if (lsn >= r.from && lsn <= r.upto) {
        Status st = r.error;
        wait_us_->Record(static_cast<double>(obs::NowUs() - t0));
        return st;
      }
    }
    if (durable_lsn_ >= lsn) {
      wait_us_->Record(static_cast<double>(obs::NowUs() - t0));
      return Status::OK();
    }
    if (!flush_in_progress_) break;
    cv_.wait(lk);
  }

  // Leader: claim the flush, optionally linger so concurrent committers
  // join this batch, then pack + sync everything appended so far. Appenders
  // are never blocked on the I/O: mu_ is dropped while it runs.
  flush_in_progress_ = true;
  const int64_t window = group_window_us_.load(std::memory_order_relaxed);
  if (window > 0) {
    lk.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(window));
    lk.lock();
  }
  const Lsn target = next_lsn_ - 1;
  std::vector<std::vector<uint8_t>> batch = std::move(pending_);
  pending_.clear();
  const bool dirty = tail_dirty_ || !batch.empty();
  lk.unlock();

  Status st = Status::OK();
  const int64_t flush_start = obs::NowUs();
  if (dirty) {
    // The leader wears the flush for observers: profiler samples during the
    // group-commit I/O carry the flush-leader tag, and the flight ring
    // brackets the batch so a crash dump shows how far the last flush got.
    obs::ScopedThreadPhase phase("flush-leader");
    obs::FlightRecord(obs::FlightType::kWalFlushBegin, batch.size(), target);
    st = PackAndSync(batch);
    const uint64_t flush_us =
        static_cast<uint64_t>(obs::NowUs() - flush_start);
    obs::FlightRecord(st.ok() ? obs::FlightType::kWalFlushEnd
                              : obs::FlightType::kWalFlushFail,
                      target, flush_us);
  }

  lk.lock();
  flush_in_progress_ = false;
  if (st.ok()) {
    durable_lsn_ = target;
  } else if (target > durable_lsn_) {
    dropped_.push_back(DroppedRange{durable_lsn_ + 1, target, st});
  }
  cv_.notify_all();
  wait_us_->Record(static_cast<double>(obs::NowUs() - t0));
  return st;
}

Status Wal::Flush() {
  IDBA_TRACE_SPAN("storage.wal_flush");
  Lsn last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = next_lsn_ - 1;
  }
  return WaitDurable(last);
}

Result<std::vector<WalRecord>> Wal::ReadAll() const {
  // Wait out any in-flight batch: while one runs, the pack state belongs to
  // the leader. Holding mu_ afterwards blocks new leaders from starting.
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !flush_in_progress_; });
  std::vector<WalRecord> out;
  // Full pages already shipped to disk (pages at >= next_page_ can only be
  // failed-batch leftovers, excluded by the bound).
  for (PageId p = 0; p < next_page_; ++p) {
    PageData page;
    IDBA_RETURN_NOT_OK(disk_->ReadPage(p, &page));
    IDBA_RETURN_NOT_OK(ParsePage(page, &out));
  }
  // The in-memory tail page is authoritative for its contents.
  IDBA_RETURN_NOT_OK(ParsePage(cur_page_, &out));
  // Records appended but not yet packed into any page.
  for (const auto& entry : pending_) {
    Decoder dec(entry.data() + 4, entry.size() - 4);
    WalRecord rec;
    IDBA_RETURN_NOT_OK(WalRecord::DecodeFrom(&dec, &rec));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<WalRecord>> Wal::ReadAllFromDisk(Disk* disk) {
  std::vector<WalRecord> out;
  for (PageId p = 0; p < disk->PageCount(); ++p) {
    PageData page;
    IDBA_RETURN_NOT_OK(disk->ReadPage(p, &page));
    std::vector<WalRecord> page_recs;
    Status st = ParsePage(page, &page_recs);
    // A torn or stale tail page (crash mid-batch) ends the log: everything
    // before it is the durable prefix, which is exactly what recovery
    // should replay.
    if (!st.ok()) return out;
    for (WalRecord& rec : page_recs) {
      // LSNs are strictly increasing in a well-formed log. A regression
      // means this page is a leftover from a failed batch that newer
      // flushes never overwrote — cut the scan there.
      if (!out.empty() && rec.lsn <= out.back().lsn) return out;
      out.push_back(std::move(rec));
    }
  }
  return out;
}

Status Wal::Reset() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !flush_in_progress_; });
  IDBA_RETURN_NOT_OK(disk_->Truncate());
  next_page_ = 0;
  cur_page_ = PageData{};
  cur_used_ = 0;
  tail_dirty_ = false;
  pending_.clear();
  durable_lsn_ = next_lsn_ - 1;
  dropped_.clear();
  return Status::OK();
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t Wal::appended_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_bytes_;
}

PageId Wal::DiskPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_->PageCount();
}

}  // namespace idba
