#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/trace.h"

namespace idba {

namespace {
// Record pages: [0..kPageCrcSize) disk checksum, then u16 used-bytes.
constexpr size_t kWalPageHeader = kPageCrcSize + 2;
constexpr size_t kWalPageCapacity = kPageSize - kWalPageHeader;
// A used-bytes value no real page can carry; a terminator page stamped
// with it fails ParsePage and fences the recovery scan.
constexpr uint16_t kTerminatorUsed = 0xFFFF;

// Header page 0: [0..kPageCrcSize) checksum, "IWAL", u16 version,
// u64 start_page, u64 truncate_below_lsn.
constexpr uint8_t kWalMagic[4] = {'I', 'W', 'A', 'L'};
constexpr uint16_t kWalVersion = 1;

uint16_t PageUsed(const PageData& p) {
  return static_cast<uint16_t>(
      p.bytes[kPageCrcSize] |
      (static_cast<uint16_t>(p.bytes[kPageCrcSize + 1]) << 8));
}

void SetPageUsed(PageData* p, uint16_t used) {
  p->bytes[kPageCrcSize] = static_cast<uint8_t>(used);
  p->bytes[kPageCrcSize + 1] = static_cast<uint8_t>(used >> 8);
}

void PutU64At(PageData* p, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p->bytes[pos + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint64_t GetU64At(const PageData& p, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p.bytes[pos + i]) << (8 * i);
  }
  return v;
}

PageData MakeHeaderPage(PageId start_page, Lsn truncate_below) {
  PageData page;
  std::memcpy(page.bytes + kPageCrcSize, kWalMagic, 4);
  page.bytes[kPageCrcSize + 4] = static_cast<uint8_t>(kWalVersion);
  page.bytes[kPageCrcSize + 5] = static_cast<uint8_t>(kWalVersion >> 8);
  PutU64At(&page, kPageCrcSize + 6, start_page);
  PutU64At(&page, kPageCrcSize + 14, truncate_below);
  return page;
}

bool IsHeaderPage(const PageData& page) {
  return std::memcmp(page.bytes + kPageCrcSize, kWalMagic, 4) == 0;
}

PageData MakeTerminatorPage() {
  PageData page;
  SetPageUsed(&page, kTerminatorUsed);
  return page;
}

Status ParsePage(const PageData& page, std::vector<WalRecord>* out) {
  size_t used = PageUsed(page);
  if (used > kWalPageCapacity) {
    return Status::Corruption("WAL page used-bytes out of range");
  }
  size_t off = 0;
  const uint8_t* body = page.bytes + kWalPageHeader;
  while (off + 4 <= used) {
    uint32_t len = 0;
    std::memcpy(&len, body + off, 4);
    off += 4;
    if (len == 0 || off + len > used) {
      return Status::Corruption("WAL record overruns page");
    }
    Decoder dec(body + off, len);
    WalRecord rec;
    IDBA_RETURN_NOT_OK(WalRecord::DecodeFrom(&dec, &rec));
    out->push_back(std::move(rec));
    off += len;
  }
  return Status::OK();
}

size_t EncodedEntrySize(const WalRecord& rec) {
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  rec.EncodeTo(&enc);
  return 4 + payload.size();
}
}  // namespace

void WalRecord::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutU64(lsn);
  enc->PutU64(txn);
  enc->PutU64(oid.value);
  const bool has_image =
      type == WalRecordType::kInsert || type == WalRecordType::kUpdate;
  enc->PutU8(has_image ? 1 : 0);
  if (has_image) after.EncodeTo(enc);
}

Status WalRecord::DecodeFrom(Decoder* dec, WalRecord* out) {
  uint8_t type = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&type));
  out->type = static_cast<WalRecordType>(type);
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->lsn));
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  uint64_t oid = 0;
  IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
  out->oid = Oid(oid);
  uint8_t has_image = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&has_image));
  if (has_image != 0) {
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &out->after));
  }
  return Status::OK();
}

Wal::Wal(Disk* disk) : disk_(disk) {
  // Resume after an existing log: position past the last durable record and
  // restore the byte counter from the recovered log (post-restart metrics
  // would otherwise under-report everything ever appended).
  if (disk_->PageCount() > 0) {
    PageData page0;
    Status st = disk_->ReadPage(0, &page0);
    if (st.ok() && IsHeaderPage(page0)) {
      start_page_ = GetU64At(page0, kPageCrcSize + 6);
      truncate_below_lsn_ = GetU64At(page0, kPageCrcSize + 14);
      header_dirty_ = false;
    } else if (st.ok()) {
      // Pre-header-layout log: records start at page 0 and there is
      // nowhere to put a header without clobbering them.
      start_page_ = 0;
      legacy_layout_ = true;
      header_dirty_ = false;
    }
    PageId resume = start_page_;
    auto existing = ReadAllFromDisk(disk_, nullptr, &resume);
    if (existing.ok() && !existing.value().empty()) {
      next_lsn_ = existing.value().back().lsn + 1;
      recovered_records_ = existing.value().size();
      for (const WalRecord& rec : existing.value()) {
        appended_bytes_ += EncodedEntrySize(rec);
      }
    } else {
      next_lsn_ = truncate_below_lsn_ + 1;
    }
    // Continue appending on a fresh page at the scan's cut point (one past
    // the last cleanly parsed page — appending at PageCount() could land
    // past a truncation terminator, invisible to recovery). Simpler than
    // refilling a partial tail page; wastes at most one page per restart.
    next_page_ = std::max(resume, start_page_);
  }
  durable_lsn_ = next_lsn_ - 1;  // everything on disk is durable
  fsyncs_total_ = GlobalMetrics().GetCounter("wal.fsyncs_total");
  batch_size_ = GlobalMetrics().GetHistogram("wal.group.batch_size");
  wait_us_ = GlobalMetrics().GetHistogram("wal.group.wait_us");
  if (recovered_records_ > 0) {
    GlobalMetrics().GetCounter("wal.recovered_records")->Add(recovered_records_);
  }
}

Result<Lsn> Wal::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.lsn = next_lsn_;
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  rec.EncodeTo(&enc);
  if (payload.size() + 4 > kWalPageCapacity) {
    return Status::InvalidArgument("WAL record exceeds page capacity: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  ++next_lsn_;
  std::vector<uint8_t> entry(4 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(entry.data(), &len, 4);
  std::memcpy(entry.data() + 4, payload.data(), payload.size());
  appended_bytes_ += entry.size();
  obs::FlightRecord(obs::FlightType::kWalAppend, rec.lsn, entry.size());
  pending_.push_back(std::move(entry));
  return rec.lsn;
}

Status Wal::PackAndSync(const std::vector<std::vector<uint8_t>>& batch) {
  // Snapshot the pack state: a failed batch's entries are dropped (their
  // committers see the error and abort), so the tail must revert to its
  // pre-batch image for the next batch to pack from. Pages the failed batch
  // already wrote beyond the restored tail are garbage; ReadAllFromDisk's
  // monotonic-LSN cutoff ignores them and the next successful batch
  // overwrites them.
  const PageId saved_next_page = next_page_;
  const size_t saved_used = cur_used_;
  const PageData saved_page = cur_page_;
  const bool saved_header_dirty = header_dirty_;

  Status st = Status::OK();
  if (header_dirty_) {
    st = disk_->WritePage(0, MakeHeaderPage(start_page_, truncate_below_lsn_));
    if (st.ok()) header_dirty_ = false;
  }
  for (const auto& entry : batch) {
    if (!st.ok()) break;
    if (cur_used_ + entry.size() > kWalPageCapacity) {
      SetPageUsed(&cur_page_, static_cast<uint16_t>(cur_used_));
      st = disk_->WritePage(next_page_, cur_page_);
      if (!st.ok()) break;
      ++next_page_;
      cur_page_ = PageData{};
      cur_used_ = 0;
    }
    std::memcpy(cur_page_.bytes + kWalPageHeader + cur_used_, entry.data(),
                entry.size());
    cur_used_ += entry.size();
  }
  if (st.ok()) {
    SetPageUsed(&cur_page_, static_cast<uint16_t>(cur_used_));
    st = disk_->WritePage(next_page_, cur_page_);
    if (st.ok()) st = disk_->Sync();
  }
  if (!st.ok()) {
    next_page_ = saved_next_page;
    cur_used_ = saved_used;
    cur_page_ = saved_page;
    header_dirty_ = saved_header_dirty;
    tail_dirty_ = true;  // on-disk tail may hold failed-batch bytes
    return st;
  }
  tail_dirty_ = false;
  fsyncs_local_.Add();
  fsyncs_total_->Add();
  batch_size_->Record(static_cast<double>(batch.size()));
  return Status::OK();
}

Status Wal::WaitDurable(Lsn lsn) {
  const int64_t t0 = obs::NowUs();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // A failed batch drops its records; waiters for those LSNs must see the
    // batch's error, never a later batch's success (the durable horizon
    // keeps advancing past the hole).
    for (const DroppedRange& r : dropped_) {
      if (lsn >= r.from && lsn <= r.upto) {
        Status st = r.error;
        wait_us_->Record(static_cast<double>(obs::NowUs() - t0));
        return st;
      }
    }
    if (durable_lsn_ >= lsn) {
      wait_us_->Record(static_cast<double>(obs::NowUs() - t0));
      return Status::OK();
    }
    if (!flush_in_progress_) break;
    cv_.wait(lk);
  }

  // Leader: claim the flush, optionally linger so concurrent committers
  // join this batch, then pack + sync everything appended so far. Appenders
  // are never blocked on the I/O: mu_ is dropped while it runs.
  flush_in_progress_ = true;
  const int64_t window = group_window_us_.load(std::memory_order_relaxed);
  if (window > 0) {
    lk.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(window));
    lk.lock();
  }
  const Lsn target = next_lsn_ - 1;
  std::vector<std::vector<uint8_t>> batch = std::move(pending_);
  pending_.clear();
  const bool dirty = tail_dirty_ || !batch.empty();
  lk.unlock();

  Status st = Status::OK();
  const int64_t flush_start = obs::NowUs();
  if (dirty) {
    // The leader wears the flush for observers: profiler samples during the
    // group-commit I/O carry the flush-leader tag, and the flight ring
    // brackets the batch so a crash dump shows how far the last flush got.
    obs::ScopedThreadPhase phase("flush-leader");
    obs::FlightRecord(obs::FlightType::kWalFlushBegin, batch.size(), target);
    st = PackAndSync(batch);
    const uint64_t flush_us =
        static_cast<uint64_t>(obs::NowUs() - flush_start);
    obs::FlightRecord(st.ok() ? obs::FlightType::kWalFlushEnd
                              : obs::FlightType::kWalFlushFail,
                      target, flush_us);
  }

  lk.lock();
  flush_in_progress_ = false;
  if (st.ok()) {
    durable_lsn_ = target;
  } else if (target > durable_lsn_) {
    dropped_.push_back(DroppedRange{durable_lsn_ + 1, target, st});
  }
  cv_.notify_all();
  wait_us_->Record(static_cast<double>(obs::NowUs() - t0));
  return st;
}

Status Wal::Flush() {
  IDBA_TRACE_SPAN("storage.wal_flush");
  Lsn last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = next_lsn_ - 1;
  }
  return WaitDurable(last);
}

Result<std::vector<WalRecord>> Wal::ReadAll() const {
  // Wait out any in-flight batch: while one runs, the pack state belongs to
  // the leader. Holding mu_ afterwards blocks new leaders from starting.
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !flush_in_progress_; });
  std::vector<WalRecord> out;
  // Full pages already shipped to disk (pages at >= next_page_ can only be
  // failed-batch leftovers, excluded by the bound).
  for (PageId p = start_page_; p < next_page_; ++p) {
    PageData page;
    IDBA_RETURN_NOT_OK(disk_->ReadPage(p, &page));
    IDBA_RETURN_NOT_OK(ParsePage(page, &out));
  }
  // The in-memory tail page is authoritative for its contents.
  IDBA_RETURN_NOT_OK(ParsePage(cur_page_, &out));
  // Records appended but not yet packed into any page.
  for (const auto& entry : pending_) {
    Decoder dec(entry.data() + 4, entry.size() - 4);
    WalRecord rec;
    IDBA_RETURN_NOT_OK(WalRecord::DecodeFrom(&dec, &rec));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<WalRecord>> Wal::ReadAllFromDisk(Disk* disk,
                                                    Lsn* truncate_below,
                                                    PageId* resume_page) {
  if (truncate_below != nullptr) *truncate_below = 0;
  if (resume_page != nullptr) *resume_page = 1;
  std::vector<WalRecord> out;
  if (disk->PageCount() == 0) return out;

  PageId start = 0;
  Lsn horizon = 0;
  {
    PageData page0;
    // Header-page corruption propagates: without the header we cannot even
    // locate the record region, unlike a bad record page which just cuts
    // the replay prefix.
    IDBA_RETURN_NOT_OK(disk->ReadPage(0, &page0));
    if (IsHeaderPage(page0)) {
      start = GetU64At(page0, kPageCrcSize + 6);
      horizon = GetU64At(page0, kPageCrcSize + 14);
    }
    // No magic: pre-header layout, scan from page 0.
  }
  if (truncate_below != nullptr) *truncate_below = horizon;
  if (resume_page != nullptr) *resume_page = start;

  for (PageId p = start; p < disk->PageCount(); ++p) {
    PageData page;
    Status read_st = disk->ReadPage(p, &page);
    if (read_st.IsCorruption()) return out;  // torn/bit-flipped page: cut
    IDBA_RETURN_NOT_OK(read_st);
    std::vector<WalRecord> page_recs;
    Status st = ParsePage(page, &page_recs);
    // A torn or stale tail page (crash mid-batch), or the terminator a
    // truncation planted, ends the log: everything before it is the
    // durable prefix, which is exactly what recovery should replay.
    if (!st.ok()) return out;
    for (WalRecord& rec : page_recs) {
      // LSNs are strictly increasing in a well-formed log. A regression
      // means this page is a leftover from a failed batch that newer
      // flushes never overwrote — cut the scan there.
      if (!out.empty() && rec.lsn <= out.back().lsn) return out;
      out.push_back(std::move(rec));
    }
    if (resume_page != nullptr) *resume_page = p + 1;
  }
  return out;
}

Status Wal::Reset() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !flush_in_progress_; });
  IDBA_RETURN_NOT_OK(disk_->Truncate());
  start_page_ = 1;
  next_page_ = 1;
  cur_page_ = PageData{};
  cur_used_ = 0;
  tail_dirty_ = false;
  header_dirty_ = true;
  legacy_layout_ = false;
  truncate_below_lsn_ = 0;
  bytes_at_truncate_ = appended_bytes_;
  pending_.clear();
  durable_lsn_ = next_lsn_ - 1;
  dropped_.clear();
  return Status::OK();
}

Status Wal::TruncateUpTo(Lsn upto, TruncateStats* stats) {
  if (stats != nullptr) *stats = TruncateStats{};

  // Claim the flush token like a group-commit leader: the pack state is
  // ours for the duration, while Append() keeps buffering into pending_.
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !flush_in_progress_; });
  if (legacy_layout_) return Status::OK();
  if (upto > durable_lsn_) {
    return Status::InvalidArgument("TruncateUpTo beyond the durable horizon");
  }
  if (upto <= truncate_below_lsn_) {
    bytes_at_truncate_ = appended_bytes_;
    return Status::OK();
  }
  flush_in_progress_ = true;
  const PageId old_start = start_page_;
  const PageId old_next = next_page_;
  lk.unlock();

  // Re-read the packed region and keep only survivors (LSN > upto). The
  // in-memory tail page is authoritative for its own contents.
  auto cleanup = [&](Status st) {
    std::lock_guard<std::mutex> relock(mu_);
    flush_in_progress_ = false;
    cv_.notify_all();
    return st;
  };
  std::vector<WalRecord> records;
  for (PageId p = old_start; p < old_next; ++p) {
    PageData page;
    Status st = disk_->ReadPage(p, &page);
    if (st.ok()) st = ParsePage(page, &records);
    if (!st.ok()) return cleanup(st);
  }
  {
    Status st = ParsePage(cur_page_, &records);
    if (!st.ok()) return cleanup(st);
  }
  uint64_t dropped_bytes = 0;
  std::vector<std::vector<uint8_t>> survivors;
  for (const WalRecord& rec : records) {
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    rec.EncodeTo(&enc);
    if (rec.lsn <= upto) {
      dropped_bytes += 4 + payload.size();
      continue;
    }
    std::vector<uint8_t> entry(4 + payload.size());
    uint32_t len = static_cast<uint32_t>(payload.size());
    std::memcpy(entry.data(), &len, 4);
    std::memcpy(entry.data() + 4, payload.data(), payload.size());
    survivors.push_back(std::move(entry));
  }

  // Pack survivors into fresh pages; the last (possibly partial, possibly
  // empty) page becomes the new in-memory tail.
  std::vector<PageData> packed(1);
  size_t used = 0;
  for (const auto& entry : survivors) {
    if (used + entry.size() > kWalPageCapacity) {
      SetPageUsed(&packed.back(), static_cast<uint16_t>(used));
      packed.emplace_back();
      used = 0;
    }
    std::memcpy(packed.back().bytes + kWalPageHeader + used, entry.data(),
                entry.size());
    used += entry.size();
  }
  SetPageUsed(&packed.back(), static_cast<uint16_t>(used));
  const PageId total = packed.size();

  // Hop 1: write the survivors PAST the live tail (which sits at old_next;
  // overwriting it before the header flip would destroy the durable log),
  // fence them with a terminator so stale pages beyond never parse, sync,
  // then flip the header. A crash on either side of the flip recovers a
  // complete log — the old one or the truncated one.
  uint64_t pages_written = 0;
  auto write_region = [&](PageId at) -> Status {
    for (PageId i = 0; i < total; ++i) {
      IDBA_RETURN_NOT_OK(disk_->WritePage(at + i, packed[i]));
      ++pages_written;
    }
    IDBA_RETURN_NOT_OK(disk_->WritePage(at + total, MakeTerminatorPage()));
    ++pages_written;
    IDBA_RETURN_NOT_OK(disk_->Sync());
    IDBA_RETURN_NOT_OK(disk_->WritePage(0, MakeHeaderPage(at, upto)));
    ++pages_written;
    return disk_->Sync();
  };
  PageId new_start = old_next + 1;
  {
    Status st = write_region(new_start);
    if (!st.ok()) {
      std::lock_guard<std::mutex> relock(mu_);
      flush_in_progress_ = false;
      tail_dirty_ = true;  // the on-disk tail region is now unknown
      cv_.notify_all();
      return st;
    }
  }
  // Hop 2: when the front of the disk has room (the region we just freed),
  // copy the survivors back there so the file can physically shrink. The
  // guard keeps hop 2's terminator from clobbering hop 1's live copy.
  if (1 + total + 1 <= new_start) {
    Status st = write_region(1);
    if (st.ok()) {
      new_start = 1;
      st = disk_->TruncateTo(1 + total + 1);
      (void)st;  // physical shrink is best-effort space reclamation
    }
    // On failure the hop-1 copy is still the live log: keep it.
    if (!st.ok()) {
      PageData page0;
      if (disk_->ReadPage(0, &page0).ok() && IsHeaderPage(page0) &&
          GetU64At(page0, kPageCrcSize + 6) == 1) {
        // Header already flipped to the (possibly incomplete) front copy:
        // rewrite it to point at the intact hop-1 region.
        Status fix = disk_->WritePage(0, MakeHeaderPage(old_next + 1, upto));
        if (fix.ok()) fix = disk_->Sync();
        if (!fix.ok()) {
          std::lock_guard<std::mutex> relock(mu_);
          flush_in_progress_ = false;
          tail_dirty_ = true;
          cv_.notify_all();
          return fix;
        }
      }
      new_start = old_next + 1;
    }
  }

  lk.lock();
  start_page_ = new_start;
  next_page_ = new_start + total - 1;  // tail page index
  cur_page_ = packed.back();
  cur_used_ = used;
  tail_dirty_ = false;
  header_dirty_ = false;
  truncate_below_lsn_ = upto;
  bytes_at_truncate_ = appended_bytes_;
  flush_in_progress_ = false;
  cv_.notify_all();
  lk.unlock();
  if (stats != nullptr) {
    stats->pages_written = pages_written;
    stats->bytes_truncated = dropped_bytes;
  }
  return Status::OK();
}

Lsn Wal::truncate_below_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncate_below_lsn_;
}

uint64_t Wal::bytes_since_truncate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_bytes_ - bytes_at_truncate_;
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t Wal::appended_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_bytes_;
}

PageId Wal::DiskPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_->PageCount();
}

}  // namespace idba
