#include "storage/heap_store.h"

#include <algorithm>

namespace idba {

HeapStore::HeapStore(BufferPool* pool) : pool_(pool) {
  page_misses_.BindGlobal(GlobalMetrics().GetCounter("storage.heap.page_misses"));
}

void HeapStore::CountMiss(IoStats* io, bool missed) const {
  if (!missed) return;
  if (io != nullptr) ++io->page_misses;
  page_misses_.Add();
}

Result<std::unique_ptr<HeapStore>> HeapStore::Open(BufferPool* pool,
                                                   PageId data_page_count) {
  auto store = std::unique_ptr<HeapStore>(new HeapStore(pool));
  for (PageId p = 0; p < data_page_count; ++p) {
    IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool->FetchPage(p));
    SlottedPage page(guard.data());
    for (const auto& [slot, bytes] : page.LiveRecords()) {
      Decoder dec(bytes.data(), bytes.size());
      DatabaseObject obj;
      IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(&dec, &obj));
      store->directory_[obj.oid()] = ObjectLocation{p, slot};
    }
    if (page.FreeSpaceAfterCompaction() >= kPageSize / 4) {
      store->pages_with_space_.push_back(p);
    }
  }
  store->next_page_ = data_page_count;
  return store;
}

Status HeapStore::Insert(const DatabaseObject& obj, IoStats* io) {
  std::lock_guard<std::mutex> lock(mu_);
  return InsertLocked(obj, io);
}

Status HeapStore::InsertLocked(const DatabaseObject& obj, IoStats* io) {
  if (directory_.count(obj.oid())) {
    return Status::AlreadyExists(obj.oid().ToString());
  }
  std::vector<uint8_t> bytes;
  Encoder enc(&bytes);
  obj.EncodeTo(&enc);
  if (bytes.size() > kPageSize - 64) {
    return Status::InvalidArgument("object too large for a page: " +
                                   std::to_string(bytes.size()) + " bytes");
  }
  // Try candidate pages with free space, newest first.
  while (!pages_with_space_.empty()) {
    PageId pid = pages_with_space_.back();
    bool missed = false;
    IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(pid, &missed));
    CountMiss(io, missed);
    SlottedPage page(guard.data());
    auto slot = page.Insert(bytes.data(), bytes.size());
    if (slot.ok()) {
      guard.MarkDirty();
      directory_[obj.oid()] = ObjectLocation{pid, slot.value()};
      if (page.FreeSpaceAfterCompaction() < kPageSize / 4) pages_with_space_.pop_back();
      return Status::OK();
    }
    pages_with_space_.pop_back();  // full; stop considering it
  }
  // Allocate a fresh page.
  PageId pid = next_page_++;
  IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage(pid));
  SlottedPage page(guard.data());
  page.Init();
  IDBA_ASSIGN_OR_RETURN(SlotId slot, page.Insert(bytes.data(), bytes.size()));
  guard.MarkDirty();
  directory_[obj.oid()] = ObjectLocation{pid, slot};
  if (page.FreeSpaceAfterCompaction() >= kPageSize / 4) pages_with_space_.push_back(pid);
  return Status::OK();
}

Result<DatabaseObject> HeapStore::Read(Oid oid, IoStats* io) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(oid);
  if (it == directory_.end()) return Status::NotFound(oid.ToString());
  bool missed = false;
  IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(it->second.page, &missed));
  CountMiss(io, missed);
  SlottedPage page(guard.data());
  IDBA_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, page.Read(it->second.slot));
  Decoder dec(bytes.data(), bytes.size());
  DatabaseObject obj;
  IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(&dec, &obj));
  return obj;
}

Status HeapStore::Update(const DatabaseObject& obj, IoStats* io) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(obj.oid());
  if (it == directory_.end()) return Status::NotFound(obj.oid().ToString());
  std::vector<uint8_t> bytes;
  Encoder enc(&bytes);
  obj.EncodeTo(&enc);
  if (bytes.size() > kPageSize - 64) {
    return Status::InvalidArgument("object too large for a page");
  }
  bool missed = false;
  IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(it->second.page, &missed));
  CountMiss(io, missed);
  SlottedPage page(guard.data());
  Status st = page.Update(it->second.slot, bytes.data(), bytes.size());
  if (st.ok()) {
    guard.MarkDirty();
    return Status::OK();
  }
  if (!st.IsBusy()) return st;
  // Doesn't fit in place: relocate to another page.
  IDBA_RETURN_NOT_OK(page.Erase(it->second.slot));
  guard.MarkDirty();
  guard.Release();
  directory_.erase(it);
  return InsertLocked(obj, io);
}

Status HeapStore::Erase(Oid oid, IoStats* io) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(oid);
  if (it == directory_.end()) return Status::NotFound(oid.ToString());
  bool missed = false;
  IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(it->second.page, &missed));
  CountMiss(io, missed);
  SlottedPage page(guard.data());
  IDBA_RETURN_NOT_OK(page.Erase(it->second.slot));
  guard.MarkDirty();
  // The page regained space; make it an insert candidate again.
  if (std::find(pages_with_space_.begin(), pages_with_space_.end(),
                it->second.page) == pages_with_space_.end() &&
      page.FreeSpaceAfterCompaction() >= kPageSize / 4) {
    pages_with_space_.push_back(it->second.page);
  }
  directory_.erase(it);
  return Status::OK();
}

bool HeapStore::Contains(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.count(oid) != 0;
}

size_t HeapStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.size();
}

PageId HeapStore::data_page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_page_;
}

Result<std::vector<Oid>> HeapStore::ScanClass(ClassId cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Oid> out;
  for (const auto& [oid, loc] : directory_) {
    IDBA_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(loc.page));
    SlottedPage page(guard.data());
    IDBA_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, page.Read(loc.slot));
    Decoder dec(bytes.data(), bytes.size());
    DatabaseObject obj;
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(&dec, &obj));
    if (obj.class_id() == cls) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> HeapStore::AllOids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Oid> out;
  out.reserve(directory_.size());
  for (const auto& [oid, loc] : directory_) out.push_back(oid);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace idba
