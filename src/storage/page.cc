#include "storage/page.h"

#include <cstring>

namespace idba {

void SlottedPage::Init() {
  std::memset(data_->bytes, 0, kHeaderSize);
  set_free_offset(static_cast<uint16_t>(kPageSize));
}

uint64_t SlottedPage::lsn() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_->bytes[kPageCrcSize + i]) << (8 * i);
  }
  return v;
}

void SlottedPage::set_lsn(uint64_t lsn) {
  for (int i = 0; i < 8; ++i) {
    data_->bytes[kPageCrcSize + i] = static_cast<uint8_t>(lsn >> (8 * i));
  }
}

uint16_t SlottedPage::slot_count() const { return GetU16At(12); }

uint16_t SlottedPage::GetU16At(size_t pos) const {
  return static_cast<uint16_t>(data_->bytes[pos] |
                               (static_cast<uint16_t>(data_->bytes[pos + 1]) << 8));
}

void SlottedPage::SetU16At(size_t pos, uint16_t v) {
  data_->bytes[pos] = static_cast<uint8_t>(v);
  data_->bytes[pos + 1] = static_cast<uint8_t>(v >> 8);
}

void SlottedPage::SetSlot(SlotId s, uint16_t off, uint16_t len) {
  SetU16At(kHeaderSize + 4 * s, off);
  SetU16At(kHeaderSize + 4 * s + 2, len);
}

size_t SlottedPage::FreeSpaceForInsert() const {
  // A fresh page reports free_offset 0 before Init; treat as uninitialized.
  size_t fo = free_offset();
  if (fo == 0) fo = kPageSize;
  size_t dir_end = kHeaderSize + 4 * (slot_count() + 1);
  if (fo <= dir_end) return 0;
  return fo - dir_end;
}

size_t SlottedPage::FreeSpaceAfterCompaction() const {
  if (free_offset() == 0) return kPageSize - kHeaderSize - 4;
  size_t live = 0;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != kTombstone) live += SlotLength(s);
  }
  size_t dir_end = kHeaderSize + 4 * (slot_count() + 1);
  if (kPageSize <= dir_end + live) return 0;
  return kPageSize - dir_end - live;
}

Result<SlotId> SlottedPage::Insert(const uint8_t* rec, size_t len) {
  if (free_offset() == 0) Init();
  // Reuse a tombstoned slot id if one exists (keeps the directory compact).
  SlotId slot = slot_count();
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == kTombstone) {
      slot = s;
      break;
    }
  }
  size_t dir_slots = (slot == slot_count()) ? slot_count() + 1 : slot_count();
  size_t dir_end = kHeaderSize + 4 * dir_slots;
  if (free_offset() < dir_end + len) {
    Compact();
    if (free_offset() < dir_end + len) {
      return Status::Busy("page full: need " + std::to_string(len) + " bytes");
    }
  }
  uint16_t off = static_cast<uint16_t>(free_offset() - len);
  std::memcpy(data_->bytes + off, rec, len);
  set_free_offset(off);
  if (slot == slot_count()) set_slot_count(static_cast<uint16_t>(slot_count() + 1));
  SetSlot(slot, off, static_cast<uint16_t>(len));
  return slot;
}

Result<std::vector<uint8_t>> SlottedPage::Read(SlotId slot) const {
  if (slot >= slot_count() || SlotOffset(slot) == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot));
  }
  uint16_t off = SlotOffset(slot);
  uint16_t len = SlotLength(slot);
  return std::vector<uint8_t>(data_->bytes + off, data_->bytes + off + len);
}

Status SlottedPage::Update(SlotId slot, const uint8_t* rec, size_t len) {
  if (slot >= slot_count() || SlotOffset(slot) == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot));
  }
  if (len <= SlotLength(slot)) {
    std::memcpy(data_->bytes + SlotOffset(slot), rec, len);
    SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(len));
    return Status::OK();
  }
  // Grow: move the record to fresh heap space (compacting if needed).
  const std::vector<uint8_t> old_bytes(
      data_->bytes + SlotOffset(slot),
      data_->bytes + SlotOffset(slot) + SlotLength(slot));
  SetSlot(slot, kTombstone, 0);  // let Compact reclaim the old copy
  size_t dir_end = kHeaderSize + 4 * slot_count();
  if (free_offset() < dir_end + len) Compact();
  if (free_offset() < dir_end + len) {
    // Does not fit even compacted: restore the old record (it occupied this
    // space before the compaction, so it is guaranteed to fit) and fail.
    uint16_t off = static_cast<uint16_t>(free_offset() - old_bytes.size());
    std::memcpy(data_->bytes + off, old_bytes.data(), old_bytes.size());
    set_free_offset(off);
    SetSlot(slot, off, static_cast<uint16_t>(old_bytes.size()));
    return Status::Busy("page full growing slot " + std::to_string(slot));
  }
  uint16_t off = static_cast<uint16_t>(free_offset() - len);
  std::memcpy(data_->bytes + off, rec, len);
  set_free_offset(off);
  SetSlot(slot, off, static_cast<uint16_t>(len));
  return Status::OK();
}

Status SlottedPage::Erase(SlotId slot) {
  if (slot >= slot_count() || SlotOffset(slot) == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot));
  }
  SetSlot(slot, kTombstone, 0);
  return Status::OK();
}

std::vector<std::pair<SlotId, std::vector<uint8_t>>> SlottedPage::LiveRecords() const {
  std::vector<std::pair<SlotId, std::vector<uint8_t>>> out;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == kTombstone) continue;
    out.emplace_back(s, std::vector<uint8_t>(
                            data_->bytes + SlotOffset(s),
                            data_->bytes + SlotOffset(s) + SlotLength(s)));
  }
  return out;
}

void SlottedPage::Compact() {
  auto live = LiveRecords();
  uint16_t off = static_cast<uint16_t>(kPageSize);
  std::vector<uint8_t> heap(kPageSize);
  std::vector<std::pair<SlotId, std::pair<uint16_t, uint16_t>>> placed;
  for (const auto& [slot, bytes] : live) {
    off = static_cast<uint16_t>(off - bytes.size());
    std::memcpy(heap.data() + off, bytes.data(), bytes.size());
    placed.emplace_back(slot, std::make_pair(off, static_cast<uint16_t>(bytes.size())));
  }
  std::memcpy(data_->bytes + off, heap.data() + off, kPageSize - off);
  set_free_offset(off);
  for (const auto& [slot, loc] : placed) SetSlot(slot, loc.first, loc.second);
}

}  // namespace idba
