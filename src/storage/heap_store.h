// Object heap store: places serialized DatabaseObjects on slotted pages via
// the buffer pool and maintains an in-memory OID -> (page, slot) directory
// (rebuilt by scanning pages on open, i.e. after a restart).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "objectmodel/object.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace idba {

/// Physical location of an object.
struct ObjectLocation {
  PageId page = 0;
  SlotId slot = 0;
};

/// Per-operation physical I/O accounting, fed into the virtual cost chain.
/// The same misses also accumulate in the registered counter
/// storage.heap.page_misses (and per-store HeapStore::page_misses()), so
/// exporters see them without threading IoStats through every call site.
struct IoStats {
  int page_misses = 0;  ///< pages that required a physical read
};

/// Thread-safe heap of objects over a buffer pool.
class HeapStore {
 public:
  /// Opens a heap over `pool`, scanning pages [0, data_page_count) to
  /// rebuild the OID directory. Pass 0 for an empty/new heap.
  static Result<std::unique_ptr<HeapStore>> Open(BufferPool* pool,
                                                 PageId data_page_count);

  /// Inserts a new object (fails with AlreadyExists on a duplicate OID).
  Status Insert(const DatabaseObject& obj, IoStats* io = nullptr);

  /// Reads the current image of `oid`.
  Result<DatabaseObject> Read(Oid oid, IoStats* io = nullptr) const;

  /// Replaces the image of an existing object (relocating it if it grew).
  Status Update(const DatabaseObject& obj, IoStats* io = nullptr);

  /// Removes the object.
  Status Erase(Oid oid, IoStats* io = nullptr);

  bool Contains(Oid oid) const;
  size_t object_count() const;
  PageId data_page_count() const;

  /// All OIDs of objects whose class equals `cls` (no inheritance walk;
  /// callers with hierarchies expand class ids first). Full scan of the
  /// directory + pages.
  Result<std::vector<Oid>> ScanClass(ClassId cls) const;

  /// Every OID in the heap.
  std::vector<Oid> AllOids() const;

  uint64_t page_misses() const { return page_misses_.Get(); }

 private:
  explicit HeapStore(BufferPool* pool);
  Status InsertLocked(const DatabaseObject& obj, IoStats* io);
  /// Charges a miss to the per-op IoStats (if any) and the counters.
  void CountMiss(IoStats* io, bool missed) const;

  BufferPool* pool_;
  mutable std::mutex mu_;
  std::unordered_map<Oid, ObjectLocation> directory_;
  // Pages with at least ~25% free space, candidates for inserts.
  std::vector<PageId> pages_with_space_;
  PageId next_page_ = 0;
  mutable MirroredCounter page_misses_;  ///< mirrors storage.heap.page_misses
};

}  // namespace idba
