#include "storage/disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

namespace idba {

Status MemDisk::ReadPage(PageId id, PageData* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failing_reads_ > 0) {
    --failing_reads_;
    return Status::IOError("injected read failure on page " + std::to_string(id));
  }
  reads_.Add();
  if (id >= pages_.size() || pages_[id] == nullptr) {
    std::memset(out->bytes, 0, kPageSize);
    return Status::OK();
  }
  *out = *pages_[id];
  return Status::OK();
}

Status MemDisk::WritePage(PageId id, const PageData& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failing_writes_ > 0) {
    --failing_writes_;
    return Status::IOError("injected write failure on page " + std::to_string(id));
  }
  writes_.Add();
  if (id >= pages_.size()) pages_.resize(id + 1);
  if (pages_[id] == nullptr) pages_[id] = std::make_unique<PageData>();
  *pages_[id] = data;
  return Status::OK();
}

Status MemDisk::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failing_syncs_ > 0) {
    --failing_syncs_;
    return Status::IOError("injected sync failure");
  }
  syncs_.Add();
  return Status::OK();
}

Status MemDisk::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
  return Status::OK();
}

PageId MemDisk::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

void MemDisk::InjectReadFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  failing_reads_ = n;
}

void MemDisk::InjectWriteFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  failing_writes_ = n;
}

void MemDisk::InjectSyncFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  failing_syncs_ = n;
}

std::unique_ptr<MemDisk> MemDisk::Clone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto copy = std::make_unique<MemDisk>();
  copy->pages_.reserve(pages_.size());
  for (const auto& page : pages_) {
    copy->pages_.push_back(page ? std::make_unique<PageData>(*page) : nullptr);
  }
  return copy;
}

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  PageId pages = static_cast<PageId>(st.st_size) / kPageSize;
  return std::unique_ptr<FileDisk>(new FileDisk(fd, pages));
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDisk::ReadPage(PageId id, PageData* out) {
  std::lock_guard<std::mutex> lock(mu_);
  reads_.Add();
  if (id >= page_count_) {
    std::memset(out->bytes, 0, kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out->bytes, kPageSize,
                      static_cast<off_t>(id * kPageSize));
  if (n < 0) return Status::IOError("pread: " + std::string(std::strerror(errno)));
  if (static_cast<size_t>(n) < kPageSize) {
    std::memset(out->bytes + n, 0, kPageSize - n);
  }
  return Status::OK();
}

Status FileDisk::WritePage(PageId id, const PageData& data) {
  std::lock_guard<std::mutex> lock(mu_);
  writes_.Add();
  ssize_t n = ::pwrite(fd_, data.bytes, kPageSize,
                       static_cast<off_t>(id * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
  }
  if (id >= page_count_) page_count_ = id + 1;
  return Status::OK();
}

Status FileDisk::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync: " + std::string(std::strerror(errno)));
  }
  syncs_.Add();
  return Status::OK();
}

Status FileDisk::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("ftruncate: " + std::string(std::strerror(errno)));
  }
  page_count_ = 0;
  return Status::OK();
}

PageId FileDisk::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

}  // namespace idba
