#include "storage/disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace idba {

namespace {

/// Byte-at-a-time CRC32C table (Castagnoli polynomial, reflected).
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

Counter* ChecksumFailures() {
  static Counter* c =
      GlobalMetrics().GetCounter("storage.page.checksum_failures_total");
  return c;
}

bool AllZero(const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t len) {
  uint32_t crc = 0xFFFFFFFFu;
#if defined(__SSE4_2__)
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    data += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --len;
  }
#else
  const uint32_t* table = Crc32cTable();
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  }
#endif
  return crc ^ 0xFFFFFFFFu;
}

void Disk::StampPageCrc(PageData* page) {
  uint32_t crc =
      Crc32c(page->bytes + kPageCrcSize, kPageSize - kPageCrcSize);
  page->bytes[0] = static_cast<uint8_t>(crc);
  page->bytes[1] = static_cast<uint8_t>(crc >> 8);
  page->bytes[2] = static_cast<uint8_t>(crc >> 16);
  page->bytes[3] = static_cast<uint8_t>(crc >> 24);
}

Status Disk::VerifyPageCrc(PageId id, const PageData& page) {
  uint32_t stored = static_cast<uint32_t>(page.bytes[0]) |
                    (static_cast<uint32_t>(page.bytes[1]) << 8) |
                    (static_cast<uint32_t>(page.bytes[2]) << 16) |
                    (static_cast<uint32_t>(page.bytes[3]) << 24);
  uint32_t actual =
      Crc32c(page.bytes + kPageCrcSize, kPageSize - kPageCrcSize);
  if (stored == actual) return Status::OK();
  // A page of pure zeros was never stamped: a fresh page or the zero-padded
  // tail of a file. Anything else is a torn or bit-flipped page.
  if (AllZero(page.bytes, kPageSize)) return Status::OK();
  ChecksumFailures()->Add();
  return Status::Corruption("page " + std::to_string(id) +
                            " checksum mismatch");
}

Status MemDisk::ReadPage(PageId id, PageData* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failing_reads_ > 0) {
    --failing_reads_;
    return Status::IOError("injected read failure on page " + std::to_string(id));
  }
  reads_.Add();
  if (id >= pages_.size() || pages_[id] == nullptr) {
    std::memset(out->bytes, 0, kPageSize);
    return Status::OK();
  }
  *out = *pages_[id];
  return VerifyPageCrc(id, *out);
}

Status MemDisk::WritePage(PageId id, const PageData& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failing_writes_ > 0) {
    --failing_writes_;
    return Status::IOError("injected write failure on page " + std::to_string(id));
  }
  writes_.Add();
  if (id >= pages_.size()) pages_.resize(id + 1);
  if (pages_[id] == nullptr) pages_[id] = std::make_unique<PageData>();
  *pages_[id] = data;
  StampPageCrc(pages_[id].get());
  return Status::OK();
}

Status MemDisk::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failing_syncs_ > 0) {
    --failing_syncs_;
    return Status::IOError("injected sync failure");
  }
  syncs_.Add();
  return Status::OK();
}

Status MemDisk::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
  return Status::OK();
}

PageId MemDisk::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

void MemDisk::InjectReadFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  failing_reads_ = n;
}

void MemDisk::InjectWriteFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  failing_writes_ = n;
}

void MemDisk::InjectSyncFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  failing_syncs_ = n;
}

void MemDisk::CorruptPage(PageId id, size_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size() || pages_[id] == nullptr || offset >= kPageSize) {
    return;
  }
  pages_[id]->bytes[offset] ^= mask;
}

void MemDisk::TornWrite(PageId id, size_t keep) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size() || pages_[id] == nullptr || keep >= kPageSize) {
    return;
  }
  std::memset(pages_[id]->bytes + keep, 0, kPageSize - keep);
}

Status MemDisk::TruncateTo(PageId pages) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pages < pages_.size()) pages_.resize(pages);
  return Status::OK();
}

std::unique_ptr<MemDisk> MemDisk::Clone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto copy = std::make_unique<MemDisk>();
  copy->pages_.reserve(pages_.size());
  for (const auto& page : pages_) {
    copy->pages_.push_back(page ? std::make_unique<PageData>(*page) : nullptr);
  }
  return copy;
}

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  PageId pages = static_cast<PageId>(st.st_size) / kPageSize;
  return std::unique_ptr<FileDisk>(new FileDisk(fd, pages));
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDisk::ReadPage(PageId id, PageData* out) {
  std::lock_guard<std::mutex> lock(mu_);
  reads_.Add();
  if (id >= page_count_) {
    std::memset(out->bytes, 0, kPageSize);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, out->bytes, kPageSize,
                      static_cast<off_t>(id * kPageSize));
  if (n < 0) return Status::IOError("pread: " + std::string(std::strerror(errno)));
  if (static_cast<size_t>(n) < kPageSize) {
    std::memset(out->bytes + n, 0, kPageSize - n);
  }
  return VerifyPageCrc(id, *out);
}

Status FileDisk::WritePage(PageId id, const PageData& data) {
  std::lock_guard<std::mutex> lock(mu_);
  writes_.Add();
  PageData stamped = data;
  StampPageCrc(&stamped);
  ssize_t n = ::pwrite(fd_, stamped.bytes, kPageSize,
                       static_cast<off_t>(id * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
  }
  if (id >= page_count_) page_count_ = id + 1;
  return Status::OK();
}

Status FileDisk::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync: " + std::string(std::strerror(errno)));
  }
  syncs_.Add();
  return Status::OK();
}

Status FileDisk::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("ftruncate: " + std::string(std::strerror(errno)));
  }
  page_count_ = 0;
  return Status::OK();
}

Status FileDisk::TruncateTo(PageId pages) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pages >= page_count_) return Status::OK();
  if (::ftruncate(fd_, static_cast<off_t>(pages * kPageSize)) != 0) {
    return Status::IOError("ftruncate: " + std::string(std::strerror(errno)));
  }
  page_count_ = pages;
  return Status::OK();
}

PageId FileDisk::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

}  // namespace idba
