// Server buffer pool: fixed number of page frames over a Disk, LRU
// replacement, pin counts, dirty tracking. This is the middle level of the
// paper's memory hierarchy (figure 2): server disk -> server main memory ->
// client main memory (-> display cache, added by this work).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/disk.h"

namespace idba {

struct BufferPoolOptions {
  size_t frame_count = 256;  ///< pool capacity in 4 KiB pages
};

/// RAII pin on a buffered page. Unpins (and marks dirty if requested) on
/// destruction. Move-only.
class PageGuard;

/// Thread-safe buffer pool.
class BufferPool {
 public:
  BufferPool(Disk* disk, BufferPoolOptions opts);
  ~BufferPool();

  /// Pins page `id`, reading it from disk on a miss. `missed`, if non-null,
  /// reports whether a physical read occurred (used by the server to charge
  /// virtual disk latency into the causal chain).
  Result<PageGuard> FetchPage(PageId id, bool* missed = nullptr);

  /// Pins a page assumed fresh (no disk read); used when allocating.
  Result<PageGuard> NewPage(PageId id);

  /// Writes all dirty unpinned+pinned frames back to disk.
  Status FlushAll();

  /// Fuzzy-checkpoint sweep: snapshots the dirty set, then writes each
  /// frame once it is unpinned (a pinned frame may be mid-mutation through
  /// its PageGuard; writing it would checkpoint a torn image). Frames
  /// dirtied after the snapshot belong to post-fence commits, which the
  /// surviving WAL covers. Transactions keep fetching and pinning pages
  /// throughout — the pool mutex is only held per-frame.
  Status FlushDirtyForCheckpoint(uint64_t* pages_written = nullptr);

  /// Drops every frame without writing (crash simulation for recovery tests).
  void DropAllNoFlush();

  uint64_t hits() const { return hits_.Get(); }
  uint64_t misses() const { return misses_.Get(); }
  uint64_t evictions() const { return evictions_.Get(); }
  size_t frame_count() const { return opts_.frame_count; }

  /// Occupancy view for the CACHES admin RPC: how many frames hold a valid
  /// page, how many of those are dirty (unwritten), how many are pinned.
  struct PoolStats {
    size_t frame_count = 0;
    size_t resident = 0;
    size_t dirty = 0;
    size_t pinned = 0;
  };
  PoolStats Stats() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = 0;
    PageData data;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && valid
    bool in_lru = false;
  };

  void Unpin(size_t frame_index, bool dirty);
  Result<size_t> GetVictimLocked();  // requires mu_

  Disk* disk_;
  BufferPoolOptions opts_;
  mutable std::mutex mu_;
  /// Signaled by Unpin when a pin count reaches zero and a checkpoint
  /// sweep is waiting to write that frame.
  std::condition_variable unpin_cv_;
  int checkpoint_waiters_ = 0;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;        // front = least recently used
  std::vector<size_t> free_list_;
  MirroredCounter hits_, misses_, evictions_;
  // Declared last: gauges unregister (and stop touching frames_) before any
  // other member is torn down.
  ScopedGauge resident_gauge_, dirty_gauge_, pinned_gauge_;
};

class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, PageData* data, PageId id)
      : pool_(pool), frame_(frame_index), data_(data), id_(id) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    data_ = o.data_;
    id_ = o.id_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return id_; }
  PageData* data() { return data_; }
  const PageData* data() const { return data_; }

  /// Marks the page dirty; it will be written back before eviction.
  void MarkDirty() { dirty_ = true; }

  /// Explicitly unpins early.
  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(frame_, dirty_);
      pool_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageData* data_ = nullptr;
  PageId id_ = 0;
  bool dirty_ = false;
};

}  // namespace idba
