// Write-ahead log.
//
// The transaction manager uses deferred updates (no-steal): a transaction's
// writes are buffered in an intention list and applied to the heap store
// only after the commit record is durable. The WAL therefore carries
// redo-only full object images; recovery replays committed transactions'
// images in log order (idempotent, since images are complete).
//
// On-disk format: the WAL owns its own Disk. Records are packed
// back-to-back into pages as [u32 length][payload]; a zero length
// terminates a page (the tail continues on the next page only when a
// record is split, which we avoid by starting oversized records on a fresh
// page — records larger than a page are rejected).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "objectmodel/object.h"
#include "storage/disk.h"

namespace idba {

using Lsn = uint64_t;
using TxnId = uint64_t;

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kInsert = 2,   ///< after image
  kUpdate = 3,   ///< after image (redo-only)
  kErase = 4,    ///< erased oid
  kCommit = 5,
  kAbort = 6,
  kCheckpoint = 7,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  Lsn lsn = 0;
  TxnId txn = 0;
  Oid oid;                   // kInsert/kUpdate/kErase
  DatabaseObject after;      // kInsert/kUpdate

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, WalRecord* out);
};

/// Append-only durable log. Thread-safe.
class Wal {
 public:
  explicit Wal(Disk* disk);

  /// Appends a record, assigning it the next LSN (returned).
  Result<Lsn> Append(WalRecord rec);

  /// Makes everything appended so far durable.
  Status Flush();

  /// Reads every record currently durable *plus* buffered ones, in order.
  Result<std::vector<WalRecord>> ReadAll() const;

  /// Scans the log from disk only — what recovery would see after a crash.
  static Result<std::vector<WalRecord>> ReadAllFromDisk(Disk* disk);

  /// Discards the entire log (LSNs keep counting). Call ONLY after every
  /// effect of logged transactions has been forced to the data disk (a
  /// checkpoint) — replaying an empty log over those pages is then a
  /// no-op, which is exactly what recovery will do.
  Status Reset();

  Lsn next_lsn() const;
  uint64_t appended_bytes() const { return appended_bytes_; }
  /// Pages the log currently occupies on its disk.
  PageId DiskPages() const;

 private:
  Status FlushLocked();

  Disk* disk_;
  mutable std::mutex mu_;
  Lsn next_lsn_ = 1;
  PageId next_page_ = 0;            // page the in-memory tail will land on
  PageData cur_page_;               // partially filled tail page
  size_t cur_used_ = 0;             // payload bytes used in cur_page_
  std::vector<std::vector<uint8_t>> pending_;  // entries not yet paged
  uint64_t appended_bytes_ = 0;
};

}  // namespace idba
