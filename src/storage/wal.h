// Write-ahead log with group commit.
//
// The transaction manager uses deferred updates (no-steal): a transaction's
// writes are buffered in an intention list and applied to the heap store
// only after the commit record is durable. The WAL therefore carries
// redo-only full object images; recovery replays committed transactions'
// images in log order (idempotent, since images are complete).
//
// Durability is a two-phase protocol: Append() assigns an LSN and buffers
// the record (lock-light — one short mutex hold, no I/O), WaitDurable(lsn)
// blocks until that LSN is covered by a sync barrier. Concurrent committers
// elect a leader: the first waiter whose LSN is not yet durable packs every
// buffered record into pages, writes them, and issues ONE disk sync for the
// whole batch, while followers sleep on a condition variable. K concurrent
// commits therefore cost ~1 fsync per batch instead of K — the group commit
// of the ROADMAP "storage engine raw speed" item, keeping WAL force time
// off the interaction-latency critical path the display cache protects.
//
// On-disk format: the WAL owns its own Disk. Page 0 is a header page
// ({magic "IWAL", version, start_page, truncate_below_lsn}); record pages
// follow from start_page. Records are packed back-to-back into pages as
// [u32 length][payload]; a zero length terminates a page (the tail
// continues on the next page only when a record is split, which we avoid
// by starting oversized records on a fresh page — records larger than a
// page are rejected). Bytes [0, kPageCrcSize) of every page belong to the
// disk-layer checksum.
//
// TruncateUpTo(B) bounds recovery by WAL-since-last-checkpoint: survivors
// (records with LSN > B) are copied forward to a fresh region, a
// deliberately invalid terminator page fences the scan, and the header is
// flipped to the new region in one page write — a crash at any point
// recovers either the old complete log or the new truncated one.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/codec.h"
#include "common/metrics.h"
#include "common/status.h"
#include "objectmodel/object.h"
#include "storage/disk.h"

namespace idba {

using Lsn = uint64_t;
using TxnId = uint64_t;

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kInsert = 2,   ///< after image
  kUpdate = 3,   ///< after image (redo-only)
  kErase = 4,    ///< erased oid
  kCommit = 5,
  kAbort = 6,
  kCheckpoint = 7,     ///< fuzzy-checkpoint begin fence (txn = 0)
  kCheckpointEnd = 8,  ///< fuzzy-checkpoint end; txn carries the begin LSN
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  Lsn lsn = 0;
  TxnId txn = 0;
  Oid oid;                   // kInsert/kUpdate/kErase
  DatabaseObject after;      // kInsert/kUpdate

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, WalRecord* out);
};

/// Append-only durable log with group commit. Thread-safe.
class Wal {
 public:
  explicit Wal(Disk* disk);

  /// Appends a record, assigning it the next LSN (returned). Buffers only;
  /// call WaitDurable (or Flush) to force it to disk.
  Result<Lsn> Append(WalRecord rec);

  /// Blocks until every record with LSN <= `lsn` is durable. Waiters
  /// coalesce: one leader packs and syncs the whole pending batch, the
  /// rest wait for the durable horizon to cover them. Returns the flush
  /// error if the batch covering `lsn` failed to reach disk.
  Status WaitDurable(Lsn lsn);

  /// Makes everything appended so far durable (== WaitDurable on the last
  /// assigned LSN). A no-op — zero writes, zero syncs — when nothing
  /// changed since the last successful flush.
  Status Flush();

  /// Reads every record currently durable *plus* buffered ones, in order.
  Result<std::vector<WalRecord>> ReadAll() const;

  /// Scans the log from disk only — what recovery would see after a crash.
  /// A checksum-failed or torn record page cuts the scan (the durable
  /// prefix before it is returned); header-page corruption propagates.
  /// `truncate_below` (optional) receives the header's truncation horizon:
  /// every record with LSN <= it was already checkpointed into the data
  /// pages before the log was truncated. `resume_page` (optional) receives
  /// the page a resumed Wal should append from: one past the last cleanly
  /// parsed record page — NOT PageCount(), which can lie past a truncation
  /// terminator where appended records would be invisible to recovery.
  static Result<std::vector<WalRecord>> ReadAllFromDisk(
      Disk* disk, Lsn* truncate_below = nullptr,
      PageId* resume_page = nullptr);

  /// Discards the entire log (LSNs keep counting). Call ONLY after every
  /// effect of logged transactions has been forced to the data disk (a
  /// checkpoint) — replaying an empty log over those pages is then a
  /// no-op, which is exactly what recovery will do.
  Status Reset();

  struct TruncateStats {
    uint64_t pages_written = 0;    ///< survivor + terminator + header writes
    uint64_t bytes_truncated = 0;  ///< log bytes dropped (records <= upto)
  };

  /// Drops every record with LSN <= `upto` after a fuzzy checkpoint made
  /// their effects durable in the data pages. Survivors are copied forward
  /// (two-hop: first past the live tail, then — when it fits — back to the
  /// front so the disk can physically shrink); appends keep running
  /// throughout. No-op on logs predating the header-page layout.
  Status TruncateUpTo(Lsn upto, TruncateStats* stats = nullptr);

  /// Truncation horizon: every record with LSN <= this has been dropped
  /// from the log (its effects live in the data pages).
  Lsn truncate_below_lsn() const;
  /// Bytes appended since the last TruncateUpTo (0 if never truncated —
  /// then it counts from construction).
  uint64_t bytes_since_truncate() const;

  /// Maximum time a group-commit leader waits, after claiming the flush,
  /// for more committers to append before paying the sync (0 = flush
  /// immediately; batching then comes only from sync backpressure).
  void set_group_commit_window_us(int64_t us) { group_window_us_.store(us); }
  int64_t group_commit_window_us() const { return group_window_us_.load(); }

  Lsn next_lsn() const;
  /// Highest LSN known durable on disk.
  Lsn durable_lsn() const;
  uint64_t appended_bytes() const;
  /// Pages the log currently occupies on its disk.
  PageId DiskPages() const;

  // --- Group-commit telemetry (per-instance; also mirrored into the
  // process-global registry as wal.* for STATS/METRICS/Prometheus) -------
  /// Disk sync barriers issued by this log.
  uint64_t fsyncs() const { return fsyncs_local_.Get(); }
  /// Flush batches that actually did I/O (fsyncs() == flush_batches()).
  uint64_t flush_batches() const { return fsyncs_local_.Get(); }
  /// Records recovered from disk when this Wal resumed an existing log.
  uint64_t recovered_records() const { return recovered_records_; }

 private:
  /// Packs `batch` (entries already length-prefixed) into pages after the
  /// current tail and syncs. Runs WITHOUT mu_ held — exclusivity comes from
  /// flush_in_progress_; only the elected leader touches the pack state.
  Status PackAndSync(const std::vector<std::vector<uint8_t>>& batch);

  Disk* disk_;

  // mu_ guards everything below plus, when flush_in_progress_ is false,
  // the pack state. While flush_in_progress_ is true the pack state is
  // owned exclusively by the leader (which holds no mutex during I/O, so
  // appenders keep running while the batch is written and synced).
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;  // durable_lsn_ advanced / flush done
  bool flush_in_progress_ = false;
  Lsn next_lsn_ = 1;
  Lsn durable_lsn_ = 0;
  std::vector<std::vector<uint8_t>> pending_;  // entries not yet paged
  uint64_t appended_bytes_ = 0;
  /// LSN ranges lost to failed batches (entries are dropped on failure so
  /// later batches never silently make them durable). One entry per failed
  /// batch; waiters inside a range get that batch's error forever.
  struct DroppedRange {
    Lsn from;
    Lsn upto;
    Status error;
  };
  std::vector<DroppedRange> dropped_;

  // Pack state (see mu_ comment for the ownership protocol).
  PageId start_page_ = 1;           // first record page (from the header)
  PageId next_page_ = 1;            // page the in-memory tail will land on
  PageData cur_page_;               // partially filled tail page
  size_t cur_used_ = 0;             // payload bytes used in cur_page_
  /// True when the on-disk tail page may differ from cur_page_ (set after
  /// a failed batch so the next flush rewrites it; never set by a clean
  /// flush, which is what makes empty Flush() calls free).
  bool tail_dirty_ = false;
  /// True until the header page has been written (fresh or Reset logs);
  /// the next PackAndSync writes it before the record pages.
  bool header_dirty_ = true;
  /// Disk predates the header-page layout (records start at page 0);
  /// TruncateUpTo is a no-op for such logs.
  bool legacy_layout_ = false;
  Lsn truncate_below_lsn_ = 0;
  uint64_t bytes_at_truncate_ = 0;  // appended_bytes_ at last TruncateUpTo

  std::atomic<int64_t> group_window_us_{0};
  uint64_t recovered_records_ = 0;

  Counter fsyncs_local_;
  Counter* fsyncs_total_;       // wal.fsyncs_total
  Histogram* batch_size_;       // wal.group.batch_size (records per batch)
  Histogram* wait_us_;          // wal.group.wait_us (WaitDurable latency)
};

}  // namespace idba
