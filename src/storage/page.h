// Slotted-page layout for variable-length records.
//
// Layout (little-endian):
//   [0..3]   reserved for the disk-layer CRC32C (see kPageCrcSize)
//   [4..11]  page LSN
//   [12..13] slot count (including tombstoned slots)
//   [14..15] free-space offset (start of the record heap, growing downward)
//   [16..]   slot directory: per slot {uint16 offset, uint16 length};
//            offset == 0xFFFF marks a tombstone
//   records grow from the end of the page toward the directory.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"

namespace idba {

using SlotId = uint16_t;

/// View over a PageData providing slotted-record operations. Does not own
/// the page bytes.
class SlottedPage {
 public:
  explicit SlottedPage(PageData* data) : data_(data) {}

  /// Zeroes the header of a fresh page.
  void Init();

  uint64_t lsn() const;
  void set_lsn(uint64_t lsn);

  uint16_t slot_count() const;

  /// Contiguous free bytes available for one new record (accounting for its
  /// new slot directory entry).
  size_t FreeSpaceForInsert() const;

  /// Free bytes a Compact() would yield for one new record — includes space
  /// currently trapped behind tombstones (used by free-space tracking).
  size_t FreeSpaceAfterCompaction() const;

  /// Inserts a record; returns its slot. Fails with Busy if it doesn't fit.
  Result<SlotId> Insert(const uint8_t* rec, size_t len);

  /// Reads record bytes at `slot` (NotFound for tombstones / bad slots).
  Result<std::vector<uint8_t>> Read(SlotId slot) const;

  /// Replaces the record at `slot`. Fails with Busy if the new version does
  /// not fit in place nor in the remaining free space.
  Status Update(SlotId slot, const uint8_t* rec, size_t len);

  /// Tombstones the record at `slot`.
  Status Erase(SlotId slot);

  /// Live (non-tombstoned) records: (slot, bytes).
  std::vector<std::pair<SlotId, std::vector<uint8_t>>> LiveRecords() const;

  /// Compacts the record heap, reclaiming space from erased/moved records.
  void Compact();

 private:
  static constexpr size_t kHeaderSize = 16;
  static constexpr uint16_t kTombstone = 0xFFFF;

  uint16_t GetU16At(size_t pos) const;
  void SetU16At(size_t pos, uint16_t v);
  uint16_t SlotOffset(SlotId s) const { return GetU16At(kHeaderSize + 4 * s); }
  uint16_t SlotLength(SlotId s) const { return GetU16At(kHeaderSize + 4 * s + 2); }
  void SetSlot(SlotId s, uint16_t off, uint16_t len);
  uint16_t free_offset() const { return GetU16At(14); }
  void set_free_offset(uint16_t v) { SetU16At(14, v); }
  void set_slot_count(uint16_t v) { SetU16At(12, v); }

  PageData* data_;
};

}  // namespace idba
