#include "core/display_schema.h"

namespace idba {

Status DisplayClassDef::Validate(const SchemaCatalog& catalog) const {
  if (catalog.Find(primary_source_) == nullptr) {
    return Status::NotFound("display class " + name_ + ": unknown source class " +
                            std::to_string(primary_source_));
  }
  for (const auto& p : projections_) {
    if (p.source_index != 0) continue;  // validated against objects at refresh
    if (!catalog.ResolveAttribute(primary_source_, p.source_attr)) {
      return Status::NotFound("display class " + name_ + ": source class has no attribute " +
                              p.source_attr);
    }
  }
  // Attribute names must be unique across projections/derivations/GUI.
  std::vector<std::string> names;
  for (const auto& p : projections_) names.push_back(p.display_name);
  for (const auto& d : derivations_) names.push_back(d.name);
  for (const auto& g : gui_attrs_) names.push_back(g.name);
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        return Status::InvalidArgument("display class " + name_ +
                                       ": duplicate attribute " + names[i]);
      }
    }
  }
  return Status::OK();
}

const std::string& DisplayClassDef::AttributeNameAt(size_t slot) const {
  if (slot < projections_.size()) return projections_[slot].display_name;
  slot -= projections_.size();
  if (slot < derivations_.size()) return derivations_[slot].name;
  return gui_attrs_[slot - derivations_.size()].name;
}

void DisplayClassDef::BuildSlotIndex() {
  slot_index_.clear();
  for (size_t i = 0; i < attribute_count(); ++i) {
    slot_index_[AttributeNameAt(i)] = i;
  }
}

Result<DisplayClassId> DisplaySchema::Define(DisplayClassDef def,
                                             const SchemaCatalog& catalog) {
  IDBA_RETURN_NOT_OK(def.Validate(catalog));
  if (FindByName(def.name()) != nullptr) {
    return Status::AlreadyExists("display class " + def.name());
  }
  auto id = static_cast<DisplayClassId>(classes_.size() + 1);
  def.id_ = id;
  def.BuildSlotIndex();
  classes_.push_back(std::make_unique<DisplayClassDef>(std::move(def)));
  return id;
}

const DisplayClassDef* DisplaySchema::Find(DisplayClassId id) const {
  if (id == 0 || id > classes_.size()) return nullptr;
  return classes_[id - 1].get();
}

const DisplayClassDef* DisplaySchema::FindByName(const std::string& name) const {
  for (const auto& c : classes_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

}  // namespace idba
