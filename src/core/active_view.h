// Active views (paper §3.1): "the collection of display objects [forms] an
// active (updatable) view of the database as opposed to a passive
// snapshot". An ActiveView materializes display objects from database
// objects, pins them in the display cache, holds display locks on every
// associated database object through the DLC, and refreshes exactly the
// affected display objects when update notifications arrive.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "core/dlc.h"
#include "core/display_cache.h"

namespace idba {

struct ActiveViewOptions {
  /// When false the view is the paper's contrasting "passive snapshot"
  /// (§3.1): display objects are materialized once, no display locks are
  /// taken, no notifications arrive, and the image silently goes stale.
  bool subscribe = true;
};

/// One display (window). Register it on a DLC, then Materialize elements.
class ActiveView : public DisplayNotificationSink {
 public:
  ActiveView(std::string name, ClientApi* client, DisplayLockClient* dlc,
             DisplayCache* cache, ActiveViewOptions opts = {});
  ~ActiveView() override;

  const std::string& name() const { return name_; }
  DisplayId display_id() const { return display_id_; }

  /// Creates one display object of `dclass` over `sources`: reads current
  /// images (through the client DB cache), materializes the DO into the
  /// display cache, and acquires display locks on every source.
  Result<DisplayObject*> Materialize(const DisplayClassDef* dclass,
                                     std::vector<Oid> sources);

  /// Materializes one DO per database object of dclass->primary_source()
  /// (the common build-a-view-from-a-class flow). Display locks for the
  /// whole view are requested in one batched DLM message.
  Result<std::vector<DisplayObject*>> PopulateFromClass(
      const DisplayClassDef* dclass, bool include_subclasses = false);

  /// Materializes one DO per object matching `query` ("all links with
  /// utilization above 0.8"). The query's class should match (or derive
  /// from) dclass->primary_source().
  Result<std::vector<DisplayObject*>> PopulateFromQuery(
      const DisplayClassDef* dclass, const ObjectQuery& query);

  /// Re-reads every source and refreshes every display object — the
  /// manual "periodic refresh" operation (§2.3's strawman, but also how a
  /// passive snapshot is brought current on demand). Returns the number of
  /// display objects refreshed.
  Result<size_t> RefreshAll();

  /// Stale display objects compared to the current database state —
  /// always 0 for a subscribed (active) view after a pump; grows silently
  /// for a passive snapshot. Compares the displayed source versions.
  size_t CountStaleObjects() const;

  bool subscribed() const { return opts_.subscribe; }

  /// Removes one element (releases its locks, evicts its DO).
  Status Dismiss(DoId id);

  /// Tears the whole view down.
  void Close();

  // --- DisplayNotificationSink -----------------------------------------
  void OnUpdateNotify(const UpdateNotifyMessage& msg, VTime local_now) override;
  void OnIntentNotify(const IntentNotifyMessage& msg, VTime local_now) override;
  /// Overload recovery: notifications were shed, so re-read everything
  /// displayed (RefreshAll) and drop "being updated" markers — their
  /// resolutions may have been among the shed messages.
  void OnResync(VTime local_now) override;

  // --- Introspection -----------------------------------------------------
  std::vector<DisplayObject*> display_objects() const;
  size_t size() const;
  /// True while an early-notify intent marks this source "being updated".
  bool IsSourceMarked(Oid source) const;

  uint64_t refreshes() const { return refreshes_.Get(); }
  uint64_t intent_marks() const { return intent_marks_.Get(); }
  uint64_t erased_sources_seen() const { return erased_seen_.Get(); }
  /// Forced full refreshes after shed notifications (overload recovery).
  uint64_t resyncs() const { return resyncs_.Get(); }
  /// Commit -> on-screen propagation latency in virtual milliseconds.
  const Histogram& propagation_ms() const { return propagation_ms_; }

 private:
  Status RefreshObject(DisplayObject* dob, const UpdateNotifyMessage& msg);

  std::string name_;
  ClientApi* client_;
  DisplayLockClient* dlc_;
  DisplayCache* cache_;
  ActiveViewOptions opts_;
  DisplayId display_id_;
  // Versions of the source images each DO was last refreshed from
  // (CountStaleObjects compares these against the server's heap).
  std::unordered_map<Oid, uint64_t> displayed_versions_;

  mutable std::mutex mu_;
  std::unordered_set<DoId> my_objects_;
  std::unordered_map<Oid, std::vector<DoId>> by_source_;
  std::unordered_set<Oid> marked_sources_;
  bool closed_ = false;

  Counter refreshes_, intent_marks_, erased_seen_, resyncs_;
  Histogram propagation_ms_;
  // Process-global vtime lag from writer commit to this view's refresh
  // (cached once; GetHistogram takes a registry lock).
  Histogram* refresh_lag_ = nullptr;
};

}  // namespace idba
