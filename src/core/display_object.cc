#include "core/display_object.h"

namespace idba {

DisplayObject::DisplayObject(DoId id, const DisplayClassDef* dclass,
                             std::vector<Oid> sources)
    : id_(id), dclass_(dclass), sources_(std::move(sources)),
      values_(dclass->attribute_count()) {
  size_t slot = dclass_->gui_slot_begin();
  for (const GuiAttribute& g : dclass_->gui_attributes()) {
    values_[slot++] = g.initial;
  }
}

Status DisplayObject::Refresh(const SchemaCatalog& catalog,
                              const std::vector<DatabaseObject>& source_images) {
  if (source_images.size() != sources_.size()) {
    return Status::InvalidArgument(
        "refresh expects " + std::to_string(sources_.size()) + " images, got " +
        std::to_string(source_images.size()));
  }
  for (size_t i = 0; i < source_images.size(); ++i) {
    if (source_images[i].oid() != sources_[i]) {
      return Status::InvalidArgument("refresh image " + std::to_string(i) +
                                     " is not " + sources_[i].ToString());
    }
  }
  const auto& projections = dclass_->projections();
  for (size_t slot = 0; slot < projections.size(); ++slot) {
    const ProjectedAttribute& p = projections[slot];
    if (p.source_index >= source_images.size()) {
      return Status::InvalidArgument("projection " + p.display_name +
                                     " names missing source index " +
                                     std::to_string(p.source_index));
    }
    IDBA_ASSIGN_OR_RETURN(
        Value v, source_images[p.source_index].GetByName(catalog, p.source_attr));
    values_[slot] = std::move(v);
  }
  const auto& derivations = dclass_->derivations();
  for (size_t i = 0; i < derivations.size(); ++i) {
    values_[projections.size() + i] = derivations[i].derive(source_images);
  }
  dirty_ = false;
  ++refresh_count_;
  return Status::OK();
}

size_t DisplayObject::MemoryBytes() const {
  size_t bytes = sizeof(DisplayObject) + sources_.capacity() * sizeof(Oid);
  for (const Value& v : values_) bytes += v.MemoryBytes();
  return bytes;
}

Result<Value> DisplayObject::Get(const std::string& name) const {
  auto slot = dclass_->FindSlot(name);
  if (!slot.has_value()) return Status::NotFound("display attribute " + name);
  return values_[*slot];
}

Status DisplayObject::SetGui(const std::string& name, Value v) {
  auto slot = dclass_->FindSlot(name);
  if (!slot.has_value() || *slot < dclass_->gui_slot_begin()) {
    return Status::InvalidArgument(name + " is not a GUI attribute of " +
                                   dclass_->name());
  }
  values_[*slot] = std::move(v);
  return Status::OK();
}

std::string DisplayObject::ToString() const {
  std::string out = dclass_->name() + "#" + std::to_string(id_) + "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += dclass_->AttributeNameAt(i) + "=" + values_[i].ToString();
  }
  return out + "}";
}

}  // namespace idba
