// Deployment-wide statistics snapshot — one call that gathers every
// counter an operator (or an experiment harness) wants to see, formatted
// the way the paper's figure-3 components are organized.

#pragma once

#include <string>

#include "core/session.h"

namespace idba {

/// A point-in-time snapshot of one deployment's counters.
struct DeploymentStats {
  // Server.
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t lock_grants = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_deadlocks = 0;
  uint64_t cache_callbacks = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  uint64_t buffer_evictions = 0;
  uint64_t heap_objects = 0;
  uint64_t data_pages = 0;
  uint64_t wal_pages = 0;
  // DLM.
  uint64_t display_locked_objects = 0;
  uint64_t display_lock_requests = 0;
  uint64_t display_unlock_requests = 0;
  uint64_t update_notifications = 0;
  uint64_t intent_notifications = 0;
  // Traffic.
  uint64_t rpc_messages = 0;
  uint64_t rpc_bytes = 0;
  uint64_t notify_messages = 0;
  uint64_t notify_bytes = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Collects a snapshot from a live deployment.
DeploymentStats CollectStats(Deployment& deployment);

/// Per-session statistics (figure 3's client side).
struct SessionStats {
  uint64_t db_cache_objects = 0;
  uint64_t db_cache_bytes = 0;
  uint64_t db_cache_hits = 0;
  uint64_t db_cache_misses = 0;
  uint64_t db_cache_invalidations = 0;
  uint64_t display_objects = 0;
  uint64_t display_cache_bytes = 0;
  uint64_t notifications_received = 0;
  uint64_t local_dispatches = 0;
  uint64_t remote_lock_requests = 0;
  uint64_t rpcs_issued = 0;

  std::string ToString() const;
};

SessionStats CollectSessionStats(InteractiveSession& session);

}  // namespace idba
