#include "core/stats_report.h"

#include <cstdio>

namespace idba {

namespace {
std::string Line(const char* label, uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-26s %llu\n", label,
                static_cast<unsigned long long>(value));
  return buf;
}
}  // namespace

DeploymentStats CollectStats(Deployment& deployment) {
  DeploymentStats s;
  DatabaseServer& server = deployment.server();
  s.commits = server.commits();
  s.aborts = server.aborts();
  s.lock_grants = server.lock_manager().grants();
  s.lock_waits = server.lock_manager().waits();
  s.lock_deadlocks = server.lock_manager().deadlocks();
  s.cache_callbacks = server.callback_manager().callbacks_issued();
  s.buffer_hits = server.buffer_pool().hits();
  s.buffer_misses = server.buffer_pool().misses();
  s.buffer_evictions = server.buffer_pool().evictions();
  s.heap_objects = server.heap().object_count();
  s.data_pages = server.heap().data_page_count();
  s.wal_pages = server.wal().DiskPages();

  DisplayLockManager& dlm = deployment.dlm();
  s.display_locked_objects = dlm.locked_object_count();
  s.display_lock_requests = dlm.lock_requests();
  s.display_unlock_requests = dlm.unlock_requests();
  s.update_notifications = dlm.update_notifications();
  s.intent_notifications = dlm.intent_notifications();

  s.rpc_messages = deployment.meter().messages();
  s.rpc_bytes = deployment.meter().bytes();
  s.notify_messages = deployment.bus().messages_sent();
  s.notify_bytes = deployment.bus().bytes_sent();
  return s;
}

std::string DeploymentStats::ToString() const {
  std::string out = "server:\n";
  out += Line("commits", commits);
  out += Line("aborts", aborts);
  out += Line("lock grants", lock_grants);
  out += Line("lock waits", lock_waits);
  out += Line("deadlocks", lock_deadlocks);
  out += Line("cache callbacks", cache_callbacks);
  out += Line("buffer hits", buffer_hits);
  out += Line("buffer misses", buffer_misses);
  out += Line("buffer evictions", buffer_evictions);
  out += Line("heap objects", heap_objects);
  out += Line("data pages", data_pages);
  out += Line("wal pages", wal_pages);
  out += "display lock manager:\n";
  out += Line("locked objects", display_locked_objects);
  out += Line("lock requests", display_lock_requests);
  out += Line("unlock requests", display_unlock_requests);
  out += Line("update notifications", update_notifications);
  out += Line("intent notifications", intent_notifications);
  out += "traffic:\n";
  out += Line("rpc messages", rpc_messages);
  out += Line("rpc bytes", rpc_bytes);
  out += Line("notify messages", notify_messages);
  out += Line("notify bytes", notify_bytes);
  return out;
}

SessionStats CollectSessionStats(InteractiveSession& session) {
  SessionStats s;
  ObjectCache& cache = session.client().cache();
  s.db_cache_objects = cache.entry_count();
  s.db_cache_bytes = cache.bytes_used();
  s.db_cache_hits = cache.hits();
  s.db_cache_misses = cache.misses();
  s.db_cache_invalidations = cache.invalidations();
  s.display_objects = session.display_cache().object_count();
  s.display_cache_bytes = session.display_cache().bytes_used();
  s.notifications_received = session.dlc().notifications_received();
  s.local_dispatches = session.dlc().local_dispatches();
  s.remote_lock_requests = session.dlc().remote_lock_requests();
  s.rpcs_issued = session.client().rpcs_issued();
  return s;
}

std::string SessionStats::ToString() const {
  std::string out = "client session:\n";
  out += Line("db cache objects", db_cache_objects);
  out += Line("db cache bytes", db_cache_bytes);
  out += Line("db cache hits", db_cache_hits);
  out += Line("db cache misses", db_cache_misses);
  out += Line("invalidations", db_cache_invalidations);
  out += Line("display objects", display_objects);
  out += Line("display cache bytes", display_cache_bytes);
  out += Line("notifications", notifications_received);
  out += Line("local dispatches", local_dispatches);
  out += Line("remote lock requests", remote_lock_requests);
  out += Line("rpcs issued", rpcs_issued);
  return out;
}

}  // namespace idba
