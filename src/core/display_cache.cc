#include "core/display_cache.h"

#include <algorithm>

namespace idba {

DisplayCache::DisplayCache(DisplayCacheOptions opts) : opts_(opts) {
  MetricsRegistry& reg = GlobalMetrics();
  hits_.BindGlobal(reg.GetCounter("cache.display.hits"));
  misses_.BindGlobal(reg.GetCounter("cache.display.misses"));
  rejections_.BindGlobal(reg.GetCounter("cache.display.rejections"));
  // Registered so the series exists; it stays at zero by design — display
  // cache entries are pinned and never evicted (paper §3.2).
  (void)reg.GetCounter("cache.display.evictions");
  objects_gauge_ = ScopedGauge(&reg, "cache.display.objects",
                               [this] { return double(object_count()); });
  bytes_gauge_ = ScopedGauge(&reg, "cache.display.bytes_used",
                             [this] { return double(bytes_used()); });
}

Result<DisplayObject*> DisplayCache::Create(const DisplayClassDef* dclass,
                                            std::vector<Oid> sources) {
  std::lock_guard<std::mutex> lock(mu_);
  auto obj = std::make_unique<DisplayObject>(next_id_, dclass, std::move(sources));
  size_t bytes = obj->MemoryBytes();
  if (opts_.capacity_bytes != 0 && bytes_used_ + bytes > opts_.capacity_bytes) {
    rejections_.Add();
    return Status::Busy("display cache over budget: " +
                        std::to_string(bytes_used_ + bytes) + " > " +
                        std::to_string(opts_.capacity_bytes));
  }
  DisplayObject* raw = obj.get();
  for (Oid src : raw->sources()) by_source_[src].push_back(next_id_);
  objects_[next_id_] = std::move(obj);
  bytes_used_ += bytes;
  ++next_id_;
  return raw;
}

DisplayObject* DisplayCache::Find(DoId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    misses_.Add();
    return nullptr;
  }
  hits_.Add();
  return it->second.get();
}

Status DisplayCache::Remove(DoId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("display object " + std::to_string(id));
  bytes_used_ -= std::min(bytes_used_, it->second->MemoryBytes());
  for (Oid src : it->second->sources()) {
    auto sit = by_source_.find(src);
    if (sit != by_source_.end()) {
      auto& v = sit->second;
      v.erase(std::remove(v.begin(), v.end(), id), v.end());
      if (v.empty()) by_source_.erase(sit);
    }
  }
  objects_.erase(it);
  return Status::OK();
}

std::vector<DisplayObject*> DisplayCache::FindBySource(Oid source) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DisplayObject*> out;
  auto it = by_source_.find(source);
  if (it == by_source_.end()) return out;
  for (DoId id : it->second) {
    auto oit = objects_.find(id);
    if (oit != objects_.end()) out.push_back(oit->second.get());
  }
  return out;
}

size_t DisplayCache::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

size_t DisplayCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

void DisplayCache::ReaccountBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_used_ = 0;
  for (const auto& [id, obj] : objects_) bytes_used_ += obj->MemoryBytes();
}

}  // namespace idba
