// Display Lock Client (paper §4.2.1).
//
// A client application often runs several displays (windows) that may
// share database objects. Rather than having every display talk to the DLM
// (which multiplies messages), the DLC is a per-client local display lock
// manager: it refcounts display-lock requests across the client's displays
// — an object is locked at the DLM only once per client — and fans
// incoming notifications out to exactly the local displays that hold locks
// on the updated objects. Experiment E6 measures the message reduction by
// flipping `hierarchical` off, which reverts to the paper's rejected
// design of one DLM client per display.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "client/database_client.h"
#include "core/dlm.h"
#include "core/notification.h"

namespace idba {

using DisplayId = uint32_t;

/// Implemented by displays (ActiveView) to receive dispatched notifications.
class DisplayNotificationSink {
 public:
  virtual ~DisplayNotificationSink() = default;
  /// `local_now` is the client's virtual clock after dispatch overhead.
  virtual void OnUpdateNotify(const UpdateNotifyMessage& msg, VTime local_now) = 0;
  virtual void OnIntentNotify(const IntentNotifyMessage& msg, VTime local_now) = 0;
  /// Notifications for this client were shed under overload: everything
  /// displayed may be stale and any "being updated" markers may never see
  /// their resolution. Implementations must refetch displayed state
  /// (ActiveView does RefreshAll) and clear intent markers. Default no-op
  /// keeps bespoke test sinks compiling.
  virtual void OnResync(VTime local_now) { (void)local_now; }
};

struct DlcOptions {
  /// True: the paper's hierarchical design. False: every display acts as
  /// its own DLM client (baseline).
  bool hierarchical = true;
};

/// One per client application. Thread-compatible; Pump runs on the
/// client's notification thread (or is called manually in tests).
///
/// Works over any ClientApi/DisplayLockService pair: in-process the service
/// is the DisplayLockManager itself; over TCP it is the
/// RemoteDatabaseClient, which forwards requests as wire frames. `bus` may
/// be null for remote deployments (it is only used by the non-hierarchical
/// E6 baseline to register per-display pseudo-endpoints).
class DisplayLockClient {
 public:
  DisplayLockClient(ClientApi* client, DisplayLockService* dlm,
                    NotificationBus* bus, DlcOptions opts = {});
  ~DisplayLockClient();

  /// Registers a display; notifications for its locked objects will be
  /// dispatched to `sink`.
  DisplayId RegisterDisplay(DisplayNotificationSink* sink);

  /// Unregisters a display, releasing all its display locks.
  void UnregisterDisplay(DisplayId display);

  Status AcquireDisplayLock(DisplayId display, Oid oid);
  Status ReleaseDisplayLock(DisplayId display, Oid oid);

  /// While batching, remote lock requests are queued and flushed as one
  /// DLM message per remote client id (a view opening over N objects costs
  /// one message, not N). Batches must not nest.
  void BeginLockBatch();
  Status EndLockBatch();

  /// Processes every queued notification; returns how many envelopes were
  /// handled. Call from the client's pump thread or tests.
  int PumpOnce();

  /// Blocks (real time) until a notification arrives or `timeout_ms`
  /// elapses, then pumps. Returns envelopes handled.
  int PumpWait(int64_t timeout_ms);

  ClientApi& client() { return *client_; }
  const CostModel& cost_model() const { return client_->cost_model(); }

  uint64_t local_lock_requests() const { return local_requests_.Get(); }
  uint64_t remote_lock_requests() const { return remote_requests_.Get(); }
  uint64_t notifications_received() const { return notifications_.Get(); }
  uint64_t local_dispatches() const { return dispatches_.Get(); }
  /// Full-view resyncs driven through this DLC: inbox overflows (bounded
  /// in-process inbox) plus server-forced RESYNC notifications.
  uint64_t resyncs() const { return resyncs_.Get(); }

  /// Test-only fault injection for the consistency auditor: swallow the
  /// next `n` committed update dispatches *after* the auditor has observed
  /// them — the displays never refresh, so the auditor's visibility
  /// obligation must expire into a violation. Never used outside tests.
  void TestSuppressUpdateDispatches(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    suppress_dispatches_ = n;
  }

 private:
  void Dispatch(const Envelope& env);
  /// Fans OnResync out to every registered display (overload recovery).
  void ResyncAllDisplays();
  ClientId RemoteIdFor(DisplayId display) const;

  ClientApi* client_;
  DisplayLockService* dlm_;
  NotificationBus* bus_;
  DlcOptions opts_;

  mutable std::mutex mu_;
  std::unordered_map<DisplayId, DisplayNotificationSink*> displays_;
  // oid -> displays holding a local display lock on it.
  std::unordered_map<Oid, std::unordered_set<DisplayId>> local_locks_;
  std::unordered_map<DisplayId, std::unordered_set<Oid>> by_display_;
  DisplayId next_display_ = 1;
  bool batching_ = false;
  // Remote lock requests deferred until EndLockBatch, per remote id.
  std::unordered_map<ClientId, std::vector<Oid>> pending_batch_;
  // Remaining update dispatches to swallow (see TestSuppressUpdateDispatches).
  int suppress_dispatches_ = 0;

  Counter local_requests_, remote_requests_, notifications_, dispatches_;
  Counter resyncs_;
};

}  // namespace idba
