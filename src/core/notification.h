// Notification protocol messages (paper §3.3).
//
// - post-commit notify: after an update commits, the DLM tells every
//   display-lock holder which objects changed; holders re-fetch and
//   refresh (the lazy 3-message path measured in §4.3), unless the DLM is
//   configured for *eager shipping*, in which case the new images ride
//   along and the fetch round trip disappears.
// - early notify: additionally, when a transaction obtains an X lock the
//   DLM sends an update-intention notice so displays can mark the object
//   "being updated"; a resolution notice follows at commit/abort.

#pragma once

#include <vector>

#include "net/message.h"
#include "objectmodel/object.h"
#include "storage/wal.h"

namespace idba {

enum class NotifyProtocol {
  kPostCommit,   ///< notify after commit only
  kEarlyNotify,  ///< + intention notices at X-lock time
};

/// DLM -> client: objects committed (or an early-notify resolution).
class UpdateNotifyMessage : public Message {
 public:
  TxnId txn = 0;
  VTime commit_vtime = 0;  ///< server virtual time of the commit
  std::vector<Oid> updated;
  std::vector<Oid> erased;
  /// Eager shipping: new images for `updated` (empty under lazy protocol).
  std::vector<DatabaseObject> images;
  /// False when this resolves an earlier intent as *aborted*.
  bool committed = true;

  std::string_view name() const override { return "UpdateNotify"; }
  size_t WireBytes() const override {
    size_t bytes = 32 + 8 * (updated.size() + erased.size());
    for (const auto& img : images) bytes += img.WireBytes();
    return bytes;
  }

  /// Wire format (what a real DLM would put on the socket; used by tests
  /// to validate WireBytes and by any out-of-process transport).
  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, UpdateNotifyMessage* out);

  /// Two committed update notifications collapse into one carrying the
  /// union of the changes with latest-version-wins images. Abort
  /// resolutions (committed == false) never merge: an early-notify display
  /// must see them to unmark "being updated".
  std::shared_ptr<const Message> CoalesceWith(
      const Message& newer) const override;

 protected:
  bool EncodeWireBody(std::vector<uint8_t>* out, uint8_t* kind) const override;
};

/// DLM -> client: a transaction intends to update these objects.
class IntentNotifyMessage : public Message {
 public:
  TxnId txn = 0;
  VTime intent_vtime = 0;
  std::vector<Oid> oids;

  std::string_view name() const override { return "IntentNotify"; }
  size_t WireBytes() const override { return 32 + 8 * oids.size(); }

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, IntentNotifyMessage* out);

  /// Two intent notices collapse into the union of their object sets (a
  /// display marks "being updated" per object; which transaction intends
  /// the update is not display-visible).
  std::shared_ptr<const Message> CoalesceWith(
      const Message& newer) const override;

 protected:
  bool EncodeWireBody(std::vector<uint8_t>* out, uint8_t* kind) const override;
};

/// DLM/transport -> client: notifications for this client were shed under
/// overload — whatever the client believes about its displayed objects is
/// stale. Receivers must refetch every displayed object (ActiveView
/// RefreshAll) and clear any "being updated" markers; clients with a
/// callback-maintained object cache must also drop it, since invalidation
/// CALLBACKs may have been elided while the client was marked stale.
class ResyncNotifyMessage : public Message {
 public:
  /// Sender's virtual clock when the resync was issued.
  VTime resync_vtime = 0;
  /// How many queued notifications were shed since the last resync
  /// (diagnostics only).
  uint64_t dropped = 0;

  std::string_view name() const override { return "ResyncNotify"; }
  size_t WireBytes() const override { return 24; }

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, ResyncNotifyMessage* out);

  /// A pending resync absorbs anything queued behind it: the refetch reads
  /// current state at processing time, so later notifications add nothing.
  std::shared_ptr<const Message> CoalesceWith(
      const Message& newer) const override;

 protected:
  bool EncodeWireBody(std::vector<uint8_t>* out, uint8_t* kind) const override;
};

}  // namespace idba
