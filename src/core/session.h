// Deployment and session wiring — figure 3 of the paper as code.
//
// A Deployment is one database server + one DLM agent + the shared
// notification bus and RPC meter. An InteractiveSession is one client
// application: its DatabaseClient (with client DB cache), its DLC, its
// display cache, and any number of ActiveViews (displays). An optional
// pump thread plays the role of the client's notification listener.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/active_view.h"
#include "core/display_schema.h"

namespace idba {

struct DeploymentOptions {
  CostModelOptions cost;
  DatabaseServerOptions server;
  DlmOptions dlm;
};

class InteractiveSession;

/// One server + one DLM + shared bus/meter. Create first, then sessions.
class Deployment {
 public:
  explicit Deployment(DeploymentOptions opts = {});

  DatabaseServer& server() { return server_; }
  NotificationBus& bus() { return bus_; }
  RpcMeter& meter() { return meter_; }
  DisplayLockManager& dlm() { return dlm_; }
  DisplaySchema& display_schema() { return display_schema_; }
  const DeploymentOptions& options() const { return opts_; }

  /// Creates a client application session with the given id (>= 100 and
  /// unique per deployment; ids also serve as endpoint + lock-owner ids).
  std::unique_ptr<InteractiveSession> NewSession(
      ClientId id, DatabaseClientOptions client_opts = {},
      DlcOptions dlc_opts = {}, DisplayCacheOptions cache_opts = {});

 private:
  DeploymentOptions opts_;
  DatabaseServer server_;
  NotificationBus bus_;
  RpcMeter meter_;
  DisplayLockManager dlm_;
  DisplaySchema display_schema_;
};

/// One client application: DB client + DLC + display cache + views.
///
/// Two flavors: deployment-backed (in-process DatabaseClient wired to the
/// deployment's server/DLM/bus) or backend-agnostic (owns any ClientApi —
/// e.g. a RemoteDatabaseClient — plus the matching DisplayLockService).
class InteractiveSession {
 public:
  InteractiveSession(Deployment* deployment, ClientId id,
                     DatabaseClientOptions client_opts, DlcOptions dlc_opts,
                     DisplayCacheOptions cache_opts);

  /// Backend-agnostic session over an already-connected client. `locks` is
  /// the display-lock request surface matching that client's backend;
  /// `bus` may be null (remote backends deliver notifications through the
  /// client's own inbox).
  InteractiveSession(std::unique_ptr<ClientApi> client,
                     DisplayLockService* locks, NotificationBus* bus,
                     DlcOptions dlc_opts = {},
                     DisplayCacheOptions cache_opts = {});
  ~InteractiveSession();

  ClientApi& client() { return *client_; }
  DisplayLockClient& dlc() { return dlc_; }
  DisplayCache& display_cache() { return display_cache_; }
  /// Only valid for deployment-backed sessions.
  Deployment& deployment() { return *deployment_; }

  /// Creates a named display (window). Owned by the session.
  ActiveView* CreateView(const std::string& name, ActiveViewOptions opts = {});
  ActiveView* FindView(const std::string& name);
  Status CloseView(const std::string& name);
  std::vector<ActiveView*> views();

  /// Handles all pending notifications on the calling thread.
  int PumpOnce() { return dlc_.PumpOnce(); }

  /// Starts/stops a background notification listener thread.
  void StartPump();
  void StopPump();

 private:
  Deployment* deployment_;
  std::unique_ptr<ClientApi> client_;
  DisplayLockClient dlc_;
  DisplayCache display_cache_;
  std::unordered_map<std::string, std::unique_ptr<ActiveView>> views_;
  std::thread pump_thread_;
  std::atomic<bool> pumping_{false};
};

}  // namespace idba
