#include "core/dlc.h"

#include <optional>

#include "obs/audit.h"
#include "obs/trace.h"

namespace idba {

DisplayLockClient::DisplayLockClient(ClientApi* client,
                                     DisplayLockService* dlm,
                                     NotificationBus* bus, DlcOptions opts)
    : client_(client), dlm_(dlm), bus_(bus), opts_(opts) {}

DisplayLockClient::~DisplayLockClient() {
  std::vector<DisplayId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, sink] : displays_) ids.push_back(id);
  }
  for (DisplayId id : ids) UnregisterDisplay(id);
}

ClientId DisplayLockClient::RemoteIdFor(DisplayId display) const {
  if (opts_.hierarchical) return client_->id();
  // Non-hierarchical baseline: each display is its own DLM client.
  return (client_->id() << 16) | display;
}

DisplayId DisplayLockClient::RegisterDisplay(DisplayNotificationSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  DisplayId id = next_display_++;
  displays_[id] = sink;
  if (!opts_.hierarchical && bus_ != nullptr) {
    // Route the pseudo-client's notifications into the same client inbox;
    // the bus still counts them as separate messages (that is the point
    // of the E6 baseline).
    bus_->Register(static_cast<EndpointId>(RemoteIdFor(id)), &client_->inbox());
  }
  return id;
}

void DisplayLockClient::UnregisterDisplay(DisplayId display) {
  std::vector<Oid> to_release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto bit = by_display_.find(display);
    if (bit != by_display_.end()) {
      to_release.assign(bit->second.begin(), bit->second.end());
    }
  }
  for (Oid oid : to_release) (void)ReleaseDisplayLock(display, oid);
  std::lock_guard<std::mutex> lock(mu_);
  if (!opts_.hierarchical && bus_ != nullptr) {
    bus_->Unregister(static_cast<EndpointId>(RemoteIdFor(display)));
  }
  displays_.erase(display);
  by_display_.erase(display);
}

Status DisplayLockClient::AcquireDisplayLock(DisplayId display, Oid oid) {
  local_requests_.Add();
  bool need_remote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!displays_.count(display)) {
      return Status::NotFound("display " + std::to_string(display));
    }
    auto& holders = local_locks_[oid];
    if (opts_.hierarchical) {
      // Lock at the DLM only on the first local holder (§4.2.1: "a
      // database object is display-locked at the DLM only once, no matter
      // how many local displays depend on it").
      need_remote = holders.empty();
    } else {
      need_remote = !by_display_[display].count(oid);
    }
    holders.insert(display);
    by_display_[display].insert(oid);
  }
  if (need_remote) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (batching_) {
        pending_batch_[RemoteIdFor(display)].push_back(oid);
        return Status::OK();
      }
    }
    remote_requests_.Add();
    return dlm_->Lock(RemoteIdFor(display), oid, client_->clock().Now());
  }
  return Status::OK();
}

void DisplayLockClient::BeginLockBatch() {
  std::lock_guard<std::mutex> lock(mu_);
  batching_ = true;
}

Status DisplayLockClient::EndLockBatch() {
  std::unordered_map<ClientId, std::vector<Oid>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batching_ = false;
    pending = std::move(pending_batch_);
    pending_batch_.clear();
  }
  for (auto& [remote, oids] : pending) {
    remote_requests_.Add();  // ONE message per remote id
    IDBA_RETURN_NOT_OK(dlm_->LockBatch(remote, oids, client_->clock().Now()));
  }
  return Status::OK();
}

Status DisplayLockClient::ReleaseDisplayLock(DisplayId display, Oid oid) {
  bool need_remote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = local_locks_.find(oid);
    if (it == local_locks_.end() || !it->second.count(display)) {
      return Status::NotFound("display holds no lock on " + oid.ToString());
    }
    it->second.erase(display);
    if (it->second.empty()) local_locks_.erase(it);
    auto bit = by_display_.find(display);
    if (bit != by_display_.end()) bit->second.erase(oid);
    need_remote = opts_.hierarchical ? (local_locks_.count(oid) == 0) : true;
  }
  if (need_remote) {
    remote_requests_.Add();
    return dlm_->Unlock(RemoteIdFor(display), oid, client_->clock().Now());
  }
  return Status::OK();
}

void DisplayLockClient::Dispatch(const Envelope& env) {
  notifications_.Add();
  // Notification envelopes carry the committing writer's trace context;
  // this span stitches the subscriber's dispatch into that trace.
  obs::Span dispatch =
      env.trace_id != 0
          ? obs::Span::StartChildOf({env.trace_id, env.trace_span},
                                    "dlc.dispatch")
          : obs::Span::Start("dlc.dispatch");
  // The client observes the message arrival and pays dispatch CPU.
  client_->clock().Observe(env.arrives_at);
  client_->clock().Advance(
      client_->cost_model().NotificationDispatchCpu());

  // Which local displays care? Hierarchical mode: every display holding a
  // local lock on any OID in the message (the DLC's fan-out role).
  // Non-hierarchical baseline: the envelope targets one specific
  // pseudo-client = one display; dispatch only to it.
  std::optional<DisplayId> only_display;
  if (!opts_.hierarchical) {
    only_display = static_cast<DisplayId>(env.to & 0xFFFF);
  }
  auto collect = [&](const std::vector<Oid>& oids,
                     std::unordered_set<DisplayId>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Oid oid : oids) {
      auto it = local_locks_.find(oid);
      if (it == local_locks_.end()) continue;
      for (DisplayId d : it->second) {
        if (only_display.has_value() && d != *only_display) continue;
        out->insert(d);
      }
    }
  };

  if (dynamic_cast<const ResyncNotifyMessage*>(env.msg.get()) != nullptr) {
    // The server (or a bounded local inbox upstream of us) shed this
    // client's notifications: every display is potentially stale.
    obs::GlobalAuditor().OnResync(client_->id());
    ResyncAllDisplays();
  } else if (const auto* update =
                 dynamic_cast<const UpdateNotifyMessage*>(env.msg.get())) {
    std::unordered_set<DisplayId> targets;
    collect(update->updated, &targets);
    collect(update->erased, &targets);
    obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
    if (auditor.enabled() && update->committed) {
      // Audit exactly the display-locked objects the views will refresh:
      // watermark the whole change set, but open visibility obligations
      // only for surviving (non-erased) objects — an erased object has no
      // image left to refresh into view.
      std::vector<uint64_t> watched, refreshable;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (Oid oid : update->updated) {
          if (local_locks_.count(oid) != 0) {
            watched.push_back(oid.value);
            refreshable.push_back(oid.value);
          }
        }
        for (Oid oid : update->erased) {
          if (local_locks_.count(oid) != 0) watched.push_back(oid.value);
        }
      }
      if (!watched.empty()) {
        for (const DatabaseObject& img : update->images) {
          auditor.OnVersionCommitted(client_->id(), img.oid().value,
                                     img.version());
        }
        auditor.OnNotifyDispatched(client_->id(), refreshable.data(),
                                   refreshable.size(), update->commit_vtime,
                                   client_->clock().Now(), env.trace_id);
        if (watched.size() > refreshable.size()) {
          auditor.OnNotifyReceived(
              client_->id(), watched.data() + refreshable.size(),
              watched.size() - refreshable.size(), update->commit_vtime,
              env.trace_id);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (suppress_dispatches_ > 0) {
        --suppress_dispatches_;
        return;
      }
    }
    for (DisplayId d : targets) {
      DisplayNotificationSink* sink = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = displays_.find(d);
        if (it != displays_.end()) sink = it->second;
      }
      if (sink != nullptr) {
        dispatches_.Add();
        sink->OnUpdateNotify(*update, client_->clock().Now());
      }
    }
  } else if (const auto* intent =
                 dynamic_cast<const IntentNotifyMessage*>(env.msg.get())) {
    std::unordered_set<DisplayId> targets;
    collect(intent->oids, &targets);
    for (DisplayId d : targets) {
      DisplayNotificationSink* sink = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = displays_.find(d);
        if (it != displays_.end()) sink = it->second;
      }
      if (sink != nullptr) {
        dispatches_.Add();
        sink->OnIntentNotify(*intent, client_->clock().Now());
      }
    }
  }
}

void DisplayLockClient::ResyncAllDisplays() {
  resyncs_.Add();
  std::vector<DisplayNotificationSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks.reserve(displays_.size());
    for (const auto& [id, sink] : displays_) sinks.push_back(sink);
  }
  for (DisplayNotificationSink* sink : sinks) {
    dispatches_.Add();
    sink->OnResync(client_->clock().Now());
  }
}

int DisplayLockClient::PumpOnce() {
  int handled = 0;
  // A bounded inbox that overflowed shed its backlog; the pump owes every
  // display a resync before processing whatever arrived after.
  if (client_->inbox().TakeOverflow()) {
    ResyncAllDisplays();
    ++handled;
  }
  while (auto env = client_->inbox().Poll()) {
    Dispatch(*env);
    ++handled;
  }
  return handled;
}

int DisplayLockClient::PumpWait(int64_t timeout_ms) {
  auto next = client_->inbox().WaitNext(timeout_ms);
  if (!next.envelope) {
    // Still honor an overflow flagged while the queue stayed empty.
    return PumpOnce();
  }
  Dispatch(*next.envelope);
  return 1 + PumpOnce();
}

}  // namespace idba
