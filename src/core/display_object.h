// Display objects (paper §3.1): instances of display classes, explicitly
// associated with the database objects they were derived from (the OID
// list of footnote 1) and kept consistent with them for their lifetime —
// turning the display into an active view rather than a passive snapshot.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/display_schema.h"

namespace idba {

/// Identifier of a display object within a client (unique per process).
using DoId = uint64_t;

class DisplayObject {
 public:
  /// Creates an instance of `dclass` associated with `sources` (their
  /// order matters: projections name a source_index). GUI attributes start
  /// at their declared initial values. Call Refresh() to materialize.
  /// `dclass` must be registered in a DisplaySchema (slot index built).
  DisplayObject(DoId id, const DisplayClassDef* dclass, std::vector<Oid> sources);

  DoId id() const { return id_; }
  const DisplayClassDef& display_class() const { return *dclass_; }
  /// The associated database objects (the paper's per-DO OID list).
  const std::vector<Oid>& sources() const { return sources_; }

  /// Recomputes projected and derived attributes from fresh images of the
  /// associated database objects (same order as sources()). GUI attributes
  /// are untouched. Clears the dirty flag.
  Status Refresh(const SchemaCatalog& catalog,
                 const std::vector<DatabaseObject>& source_images);

  /// Attribute access (projected, derived, or GUI).
  Result<Value> Get(const std::string& name) const;
  /// Only GUI attributes may be written (the database is updated through
  /// transactions, never through the display object).
  Status SetGui(const std::string& name, Value v);

  bool Has(const std::string& name) const {
    return dclass_->FindSlot(name).has_value();
  }

  /// True when an update notification affected a source but Refresh has
  /// not run yet.
  bool dirty() const { return dirty_; }
  void MarkDirty() { dirty_ = true; }

  /// Early-notify protocol: object is being updated by another user.
  bool marked_in_update() const { return marked_in_update_; }
  void SetMarkedInUpdate(bool marked) { marked_in_update_ = marked; }

  uint64_t refresh_count() const { return refresh_count_; }

  /// Approximate main-memory footprint, used for display-cache accounting
  /// (§4.3 compares this against the DB-cache footprint of the sources).
  size_t MemoryBytes() const;

  std::string ToString() const;

 private:
  DoId id_;
  const DisplayClassDef* dclass_;
  std::vector<Oid> sources_;
  // Positional slots per the class's layout (projections, derivations,
  // GUI) — names are stored once on the class, keeping instances compact
  // (the basis of §4.3's display-vs-DB cache size comparison).
  std::vector<Value> values_;
  bool dirty_ = true;  // not yet materialized
  bool marked_in_update_ = false;
  uint64_t refresh_count_ = 0;
};

}  // namespace idba
