// Display schemas (paper §3.1).
//
// A display class (DC) is defined *over* the database schema, externally to
// it: it names which database attributes a graphical element needs
// (projections), how values that exist in no database attribute are
// computed (derivations — e.g. Color from Link.Utilization), and which
// GUI-only attributes it carries (screen coordinates, selection state...).
// Display objects (display_object.h) are its instances; a DC may combine
// several database objects into one graphical element (e.g. a path's line
// derived from all its Links).

#pragma once

#include <functional>
#include <unordered_map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "objectmodel/object.h"

namespace idba {

using DisplayClassId = uint32_t;

/// Computes a display attribute from the associated database objects
/// (ordered as the display object's OID list).
using DerivationFn = std::function<Value(const std::vector<DatabaseObject>&)>;

/// Attribute copied verbatim from a source database object.
struct ProjectedAttribute {
  std::string display_name;  ///< name on the display object
  std::string source_attr;   ///< attribute on the database class
  size_t source_index = 0;   ///< which associated object to project from
};

/// Attribute computed from the associated database objects.
struct DerivedAttribute {
  std::string name;
  DerivationFn derive;
};

/// GUI-only attribute (never touches the database; owned by the display).
struct GuiAttribute {
  std::string name;
  Value initial;
};

/// A display class definition. Build with the fluent setters, then
/// register in a DisplaySchema.
class DisplayClassDef {
 public:
  DisplayClassDef(std::string name, ClassId primary_source)
      : name_(std::move(name)), primary_source_(primary_source) {}

  DisplayClassDef& Project(std::string display_name, std::string source_attr,
                           size_t source_index = 0) {
    projections_.push_back(
        {std::move(display_name), std::move(source_attr), source_index});
    return *this;
  }

  DisplayClassDef& Derive(std::string name, DerivationFn fn) {
    derivations_.push_back({std::move(name), std::move(fn)});
    return *this;
  }

  DisplayClassDef& Gui(std::string name, Value initial) {
    gui_attrs_.push_back({std::move(name), std::move(initial)});
    return *this;
  }

  const std::string& name() const { return name_; }
  ClassId primary_source() const { return primary_source_; }
  DisplayClassId id() const { return id_; }

  const std::vector<ProjectedAttribute>& projections() const { return projections_; }
  const std::vector<DerivedAttribute>& derivations() const { return derivations_; }
  const std::vector<GuiAttribute>& gui_attributes() const { return gui_attrs_; }

  /// Validates against the database schema: every projected attribute must
  /// exist on the primary source class (index-0 projections only; other
  /// indices are validated at refresh time against the actual objects).
  Status Validate(const SchemaCatalog& catalog) const;

  // Display objects store attribute values positionally; the slot layout
  // (projections, then derivations, then GUI attributes) and the
  // name->slot index live here, once per class, so instances stay compact
  // — that compactness is what §4.3's display-vs-DB cache ratio measures.

  /// Total number of display attributes.
  size_t attribute_count() const {
    return projections_.size() + derivations_.size() + gui_attrs_.size();
  }
  /// Slot of `name`, or nullopt. Valid after schema registration.
  std::optional<size_t> FindSlot(const std::string& name) const {
    auto it = slot_index_.find(name);
    if (it == slot_index_.end()) return std::nullopt;
    return it->second;
  }
  /// Slots >= this index are GUI attributes (writable via SetGui).
  size_t gui_slot_begin() const {
    return projections_.size() + derivations_.size();
  }
  /// Attribute name of `slot` (layout order).
  const std::string& AttributeNameAt(size_t slot) const;

 private:
  friend class DisplaySchema;
  void BuildSlotIndex();
  std::string name_;
  ClassId primary_source_;
  DisplayClassId id_ = 0;
  std::vector<ProjectedAttribute> projections_;
  std::vector<DerivedAttribute> derivations_;
  std::vector<GuiAttribute> gui_attrs_;
  std::unordered_map<std::string, size_t> slot_index_;
};

/// A named collection of display classes — one per interactive application
/// (paper: "for each interactive application, a proper external display
/// schema should be defined over the existing database schema").
class DisplaySchema {
 public:
  /// Registers a display class (validating it) and returns its id.
  Result<DisplayClassId> Define(DisplayClassDef def, const SchemaCatalog& catalog);

  const DisplayClassDef* Find(DisplayClassId id) const;
  const DisplayClassDef* FindByName(const std::string& name) const;
  size_t size() const { return classes_.size(); }

 private:
  std::vector<std::unique_ptr<DisplayClassDef>> classes_;
};

}  // namespace idba
