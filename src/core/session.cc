#include "core/session.h"

namespace idba {

Deployment::Deployment(DeploymentOptions opts)
    : opts_(opts),
      server_(opts.server),
      bus_(CostModel(opts.cost)),
      meter_(CostModel(opts.cost)),
      dlm_(&server_, &bus_, opts.dlm) {}

std::unique_ptr<InteractiveSession> Deployment::NewSession(
    ClientId id, DatabaseClientOptions client_opts, DlcOptions dlc_opts,
    DisplayCacheOptions cache_opts) {
  return std::make_unique<InteractiveSession>(this, id, client_opts, dlc_opts,
                                              cache_opts);
}

InteractiveSession::InteractiveSession(Deployment* deployment, ClientId id,
                                       DatabaseClientOptions client_opts,
                                       DlcOptions dlc_opts,
                                       DisplayCacheOptions cache_opts)
    : deployment_(deployment),
      client_(std::make_unique<DatabaseClient>(&deployment->server(), id,
                                               &deployment->meter(),
                                               &deployment->bus(), client_opts)),
      dlc_(client_.get(), &deployment->dlm(), &deployment->bus(), dlc_opts),
      display_cache_(cache_opts) {}

InteractiveSession::InteractiveSession(std::unique_ptr<ClientApi> client,
                                       DisplayLockService* locks,
                                       NotificationBus* bus,
                                       DlcOptions dlc_opts,
                                       DisplayCacheOptions cache_opts)
    : deployment_(nullptr),
      client_(std::move(client)),
      dlc_(client_.get(), locks, bus, dlc_opts),
      display_cache_(cache_opts) {}

InteractiveSession::~InteractiveSession() {
  StopPump();
  for (auto& [name, view] : views_) view->Close();
  views_.clear();
  if (deployment_ != nullptr) {
    deployment_->dlm().ReleaseClient(client_->id());
  }
}

ActiveView* InteractiveSession::CreateView(const std::string& name,
                                           ActiveViewOptions opts) {
  auto view = std::make_unique<ActiveView>(name, client_.get(), &dlc_,
                                           &display_cache_, opts);
  ActiveView* raw = view.get();
  views_[name] = std::move(view);
  return raw;
}

ActiveView* InteractiveSession::FindView(const std::string& name) {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

Status InteractiveSession::CloseView(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("view " + name);
  it->second->Close();
  views_.erase(it);
  return Status::OK();
}

std::vector<ActiveView*> InteractiveSession::views() {
  std::vector<ActiveView*> out;
  out.reserve(views_.size());
  for (auto& [name, view] : views_) out.push_back(view.get());
  return out;
}

void InteractiveSession::StartPump() {
  if (pumping_.exchange(true)) return;
  pump_thread_ = std::thread([this] {
    while (pumping_.load()) {
      dlc_.PumpWait(/*timeout_ms=*/20);
    }
  });
}

void InteractiveSession::StopPump() {
  if (!pumping_.exchange(false)) return;
  if (pump_thread_.joinable()) pump_thread_.join();
}

}  // namespace idba
