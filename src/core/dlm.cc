#include "core/dlm.h"

#include <algorithm>

#include "obs/audit.h"
#include "obs/trace.h"

namespace idba {

DisplayLockManager::DisplayLockManager(DatabaseServer* server,
                                       NotificationBus* bus, DlmOptions opts)
    : server_(server), bus_(bus), opts_(opts),
      staleness_(GlobalMetrics().GetHistogram("display.staleness_vtime")) {
  server_->AddCommitObserver([this](ClientId writer, const CommitResult& result) {
    OnCommit(writer, result);
  });
  if (opts_.protocol == NotifyProtocol::kEarlyNotify) {
    server_->AddIntentObserver([this](ClientId writer, TxnId txn, Oid oid) {
      OnIntent(writer, txn, oid);
    });
    server_->AddAbortObserver([this](ClientId writer, TxnId txn) {
      OnAbort(writer, txn);
    });
  }
}

Status DisplayLockManager::Lock(ClientId holder, Oid oid, VTime sent_at) {
  // One unacknowledged message: the DLM observes its arrival.
  clock_.Observe(sent_at + bus_->cost_model().MessageCost(40));
  lock_requests_.Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    holders_[oid].insert(holder);
    by_client_[holder].insert(oid);
  }
  if (opts_.integrated) {
    // Mirror into the server lock manager (mode D is compatible with
    // everything, so this can never block).
    return server_->DisplayLock(holder, oid);
  }
  return Status::OK();
}

Status DisplayLockManager::Unlock(ClientId holder, Oid oid, VTime sent_at) {
  clock_.Observe(sent_at + bus_->cost_model().MessageCost(40));
  unlock_requests_.Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = holders_.find(oid);
    if (it != holders_.end()) {
      it->second.erase(holder);
      if (it->second.empty()) holders_.erase(it);
    }
    auto cit = by_client_.find(holder);
    if (cit != by_client_.end()) cit->second.erase(oid);
  }
  if (opts_.integrated) return server_->DisplayUnlock(holder, oid);
  return Status::OK();
}

Status DisplayLockManager::LockBatch(ClientId holder,
                                     const std::vector<Oid>& oids,
                                     VTime sent_at) {
  clock_.Observe(sent_at +
                 bus_->cost_model().MessageCost(16 + 8 * static_cast<int64_t>(
                                                         oids.size())));
  lock_requests_.Add();  // one message, many oids
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Oid oid : oids) {
      holders_[oid].insert(holder);
      by_client_[holder].insert(oid);
    }
  }
  if (opts_.integrated) {
    for (Oid oid : oids) {
      IDBA_RETURN_NOT_OK(server_->DisplayLock(holder, oid));
    }
  }
  return Status::OK();
}

Status DisplayLockManager::UnlockBatch(ClientId holder,
                                       const std::vector<Oid>& oids,
                                       VTime sent_at) {
  clock_.Observe(sent_at +
                 bus_->cost_model().MessageCost(16 + 8 * static_cast<int64_t>(
                                                         oids.size())));
  unlock_requests_.Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Oid oid : oids) {
      auto it = holders_.find(oid);
      if (it != holders_.end()) {
        it->second.erase(holder);
        if (it->second.empty()) holders_.erase(it);
      }
      auto cit = by_client_.find(holder);
      if (cit != by_client_.end()) cit->second.erase(oid);
    }
  }
  if (opts_.integrated) {
    for (Oid oid : oids) (void)server_->DisplayUnlock(holder, oid);
  }
  return Status::OK();
}

Status DisplayLockManager::Reregister(ClientId holder,
                                      const std::vector<Oid>& oids) {
  reregister_requests_.Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Oid oid : oids) {
      holders_[oid].insert(holder);
      by_client_[holder].insert(oid);
    }
  }
  if (opts_.integrated) {
    for (Oid oid : oids) {
      IDBA_RETURN_NOT_OK(server_->DisplayLock(holder, oid));
    }
  }
  return Status::OK();
}

void DisplayLockManager::ReleaseClient(ClientId holder) {
  std::vector<Oid> oids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto cit = by_client_.find(holder);
    if (cit == by_client_.end()) return;
    oids.assign(cit->second.begin(), cit->second.end());
    for (const Oid& oid : oids) {
      auto it = holders_.find(oid);
      if (it != holders_.end()) {
        it->second.erase(holder);
        if (it->second.empty()) holders_.erase(it);
      }
    }
    by_client_.erase(cit);
  }
  if (opts_.integrated) {
    for (const Oid& oid : oids) (void)server_->DisplayUnlock(holder, oid);
  }
}

VTime DisplayLockManager::EventArrival(VTime server_time, int64_t report_bytes) {
  if (opts_.integrated) {
    // Commit/intent hooks run inside the server; only agent CPU applies.
    return server_time;
  }
  // Agent deployment (§4.1): the server's reply reaches the writer, which
  // then reports the event to the DLM — two extra hops on the causal path.
  const CostModel& cm = bus_->cost_model();
  update_reports_.Add();
  return server_time + cm.MessageCost(64) + cm.MessageCost(report_bytes);
}

namespace {

/// Collapses per-client notification messages with identical content onto
/// one shared instance. In the common fan-out case — many subscribers
/// displaying the same hot objects — every holder's message lists the same
/// updated/erased sets, so after this pass the whole fan-out shares ONE
/// immutable message: the transport serializes it once
/// (Message::SharedWireBody) and the same bytes reach every subscriber.
/// Content is keyed on the oid sequences; txn/vtime/committed and the
/// eager-shipped images are functions of the same commit, so equal oid
/// sequences imply equal messages. The `add` loop visits objects in commit
/// order for every client, making the sequences canonical.
void ShareIdenticalMessages(
    std::unordered_map<ClientId, std::shared_ptr<UpdateNotifyMessage>>*
        per_client) {
  if (per_client->size() < 2) return;
  std::unordered_map<std::string, std::shared_ptr<UpdateNotifyMessage>>
      by_content;
  for (auto& [client, msg] : *per_client) {
    std::string key;
    key.reserve(8 * (msg->updated.size() + msg->erased.size()) + 1);
    auto append = [&key](uint64_t v) {
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    for (Oid oid : msg->updated) append(oid.value);
    key.push_back('|');
    for (Oid oid : msg->erased) append(oid.value);
    auto [it, inserted] = by_content.emplace(std::move(key), msg);
    if (!inserted) msg = it->second;
  }
}

}  // namespace

void DisplayLockManager::OnCommit(ClientId writer, const CommitResult& result) {
  const VTime commit_time = server_->cpu_clock().Now();
  // Which display-lock holders are affected, and by which objects?
  std::unordered_map<ClientId, std::shared_ptr<UpdateNotifyMessage>> per_client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto add = [&](Oid oid, bool erased, const DatabaseObject* image) {
      auto hit = holders_.find(oid);
      if (hit == holders_.end()) return;
      for (ClientId c : hit->second) {
        auto& msg = per_client[c];
        if (!msg) {
          msg = std::make_shared<UpdateNotifyMessage>();
          msg->txn = result.txn;
          msg->commit_vtime = commit_time;
          msg->committed = true;
        }
        if (erased) {
          msg->erased.push_back(oid);
        } else {
          msg->updated.push_back(oid);
          if (opts_.eager_shipping && image != nullptr) {
            msg->images.push_back(*image);
          }
        }
      }
    };
    for (const DatabaseObject& obj : result.updated) add(obj.oid(), false, &obj);
    for (Oid oid : result.erased) add(oid, true, nullptr);
    pending_intents_.erase(result.txn);
  }
  if (per_client.empty()) return;
  ShareIdenticalMessages(&per_client);

  int64_t report_bytes = 32 + 8 * static_cast<int64_t>(result.updated.size() +
                                                       result.erased.size());
  VTime arrival = EventArrival(commit_time, report_bytes);
  clock_.Observe(arrival);
  // Runs on the committing writer's worker thread, so this span joins the
  // writer's trace (and the bus stamps each envelope with it).
  obs::Span fanout = obs::Span::Start("dlm.notify_fanout");
  fanout.Note("subscribers=" + std::to_string(per_client.size()));
  for (auto& [client, msg] : per_client) {
    // The paper's key DLC property: ONE notification per client per commit,
    // regardless of how many of that client's displays are affected.
    clock_.Advance(bus_->cost_model().NotificationDispatchCpu());
    (void)writer;  // writers holding display locks are notified too; their
                   // DLC dedups against the local commit if desired
    obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
    if (auditor.enabled()) {
      // Sender-side monotonicity: per (subscriber, OID) the fan-out must
      // emit non-decreasing commit vtimes (commit hooks run under the
      // writer's X-locks, so same-OID sends are serialized by commit
      // order — a regression here means the fan-out itself reordered).
      std::vector<uint64_t> oids;
      oids.reserve(msg->updated.size() + msg->erased.size());
      for (Oid oid : msg->updated) oids.push_back(oid.value);
      for (Oid oid : msg->erased) oids.push_back(oid.value);
      auditor.OnNotifySent(client, oids.data(), oids.size(),
                           msg->commit_vtime, obs::CurrentContext().trace_id);
    }
    (void)bus_->Send(kDlmEndpoint, static_cast<EndpointId>(client), msg,
                     clock_.Now());
    update_notifies_.Add();
    // Staleness: virtual lag from the commit to this subscriber's display
    // cache learning about it (notification arrival at the subscriber).
    VTime notify_arrival =
        clock_.Now() +
        bus_->cost_model().MessageCost(static_cast<int64_t>(msg->WireBytes()));
    staleness_->Record(static_cast<double>(notify_arrival - commit_time));
  }
}

void DisplayLockManager::OnIntent(ClientId writer, TxnId txn, Oid oid) {
  const VTime intent_time = server_->cpu_clock().Now();
  std::vector<ClientId> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = holders_.find(oid);
    if (hit == holders_.end()) return;
    for (ClientId c : hit->second) {
      if (c != writer) targets.push_back(c);  // the writer knows
    }
    if (!targets.empty()) pending_intents_[txn].push_back(oid);
  }
  if (targets.empty()) return;
  VTime arrival = EventArrival(intent_time, 40);
  clock_.Observe(arrival);
  // Every target receives identical content; share one immutable message so
  // the transport serializes the intent notice once for the whole fan-out.
  auto msg = std::make_shared<IntentNotifyMessage>();
  msg->txn = txn;
  msg->intent_vtime = intent_time;
  msg->oids = {oid};
  for (ClientId c : targets) {
    clock_.Advance(bus_->cost_model().NotificationDispatchCpu());
    (void)bus_->Send(kDlmEndpoint, static_cast<EndpointId>(c), msg, clock_.Now());
    intent_notifies_.Add();
  }
}

void DisplayLockManager::OnAbort(ClientId writer, TxnId txn) {
  (void)writer;
  std::vector<Oid> oids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_intents_.find(txn);
    if (it == pending_intents_.end()) return;
    oids = std::move(it->second);
    pending_intents_.erase(it);
  }
  // Resolve the intents as aborted: holders unmark their display objects.
  const VTime abort_time = server_->cpu_clock().Now();
  std::unordered_map<ClientId, std::shared_ptr<UpdateNotifyMessage>> per_client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Oid oid : oids) {
      auto hit = holders_.find(oid);
      if (hit == holders_.end()) continue;
      for (ClientId c : hit->second) {
        auto& msg = per_client[c];
        if (!msg) {
          msg = std::make_shared<UpdateNotifyMessage>();
          msg->txn = txn;
          msg->commit_vtime = abort_time;
          msg->committed = false;
        }
        msg->updated.push_back(oid);
      }
    }
  }
  ShareIdenticalMessages(&per_client);
  VTime arrival = EventArrival(abort_time, 40);
  clock_.Observe(arrival);
  for (auto& [client, msg] : per_client) {
    clock_.Advance(bus_->cost_model().NotificationDispatchCpu());
    (void)bus_->Send(kDlmEndpoint, static_cast<EndpointId>(client), msg,
                     clock_.Now());
    update_notifies_.Add();
  }
}

std::vector<DisplayLockManager::LockEntry> DisplayLockManager::TableSnapshot()
    const {
  std::vector<LockEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(holders_.size());
    for (const auto& [oid, clients] : holders_) {
      LockEntry e;
      e.oid = oid;
      e.holders.assign(clients.begin(), clients.end());
      std::sort(e.holders.begin(), e.holders.end());
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(), [](const LockEntry& a, const LockEntry& b) {
    return a.oid.value < b.oid.value;
  });
  return out;
}

std::map<ClientId, size_t> DisplayLockManager::HolderCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<ClientId, size_t> out;
  for (const auto& [client, oids] : by_client_) out[client] = oids.size();
  return out;
}

size_t DisplayLockManager::locked_object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return holders_.size();
}

size_t DisplayLockManager::holder_count(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = holders_.find(oid);
  return it == holders_.end() ? 0 : it->second.size();
}

}  // namespace idba
