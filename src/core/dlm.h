// Display Lock Manager (paper §4.1).
//
// The paper implemented display locking as an *agent* beside the
// commercial server ("the desired functionality had to be implemented on
// top of the existing server, at the application level"): the DLM keeps
// its own OID -> {clients} table, receives lock/unlock messages and update
// reports, and propagates notifications. This class reproduces that agent,
// with an optional *integrated* deployment (opts.integrated) in which the
// server's own lock manager records D locks and commit hooks reach the
// DLM without the two extra agent hops — the configuration §4.1 describes
// as the straightforward extension when the server can be modified.
//
// Display lock requests are not acknowledged (paper: "Display lock
// requests are not acknowledged back to the clients since they are
// expected to be satisfied") — they cost one one-way message.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "client/client_api.h"
#include "common/metrics.h"
#include "core/notification.h"
#include "net/notification_bus.h"
#include "server/database_server.h"

namespace idba {

struct DlmOptions {
  NotifyProtocol protocol = NotifyProtocol::kPostCommit;
  /// Ship new object images inside the notification (paper §4.3's "more
  /// eager approach [that] could eliminate two of the three messages").
  bool eager_shipping = false;
  /// Integrated deployment: D locks recorded in the server lock manager,
  /// commit/intent events reach the DLM without agent hops.
  bool integrated = false;
};

/// Thread-safe display lock manager. One per deployment.
class DisplayLockManager : public DisplayLockService {
 public:
  DisplayLockManager(DatabaseServer* server, NotificationBus* bus,
                     DlmOptions opts = {});

  /// Registers a display lock for `holder` on `oid`. `sent_at` is the
  /// holder's virtual clock when the (unacknowledged) request left.
  Status Lock(ClientId holder, Oid oid, VTime sent_at) override;
  Status Unlock(ClientId holder, Oid oid, VTime sent_at) override;

  /// Registers display locks on many objects with ONE request message —
  /// the natural optimization when a view materializes (a display opening
  /// over N objects would otherwise send N messages).
  Status LockBatch(ClientId holder, const std::vector<Oid>& oids,
                   VTime sent_at) override;
  Status UnlockBatch(ClientId holder, const std::vector<Oid>& oids,
                     VTime sent_at) override;

  /// Idempotent bulk re-registration: a client reconnecting to a restarted
  /// server replays the display locks it already holds, rebuilding the
  /// OID -> {clients} table the crash wiped out. Recovery traffic, not
  /// workload — no virtual-clock cost is observed and re-registering an
  /// already-held lock is a no-op.
  Status Reregister(ClientId holder, const std::vector<Oid>& oids);

  /// Releases everything a client holds (disconnect).
  void ReleaseClient(ClientId holder);

  const DlmOptions& options() const { return opts_; }
  VirtualClock& clock() { return clock_; }

  /// One row of the display-lock table, for introspection (STATS RPC,
  /// idba_stat).
  struct LockEntry {
    Oid oid;
    std::vector<ClientId> holders;
  };
  /// Point-in-time copy of the lock table, sorted by oid.
  std::vector<LockEntry> TableSnapshot() const;

  /// D-lock count per client (each is a pinned view subscription), sorted
  /// by client id. For the CACHES RPC's display-level section.
  std::map<ClientId, size_t> HolderCounts() const;

  size_t locked_object_count() const;
  size_t holder_count(Oid oid) const;
  uint64_t lock_requests() const { return lock_requests_.Get(); }
  uint64_t unlock_requests() const { return unlock_requests_.Get(); }
  uint64_t reregister_requests() const { return reregister_requests_.Get(); }
  uint64_t update_notifications() const { return update_notifies_.Get(); }
  uint64_t intent_notifications() const { return intent_notifies_.Get(); }
  uint64_t update_reports() const { return update_reports_.Get(); }

 private:
  void OnCommit(ClientId writer, const CommitResult& result);
  void OnIntent(ClientId writer, TxnId txn, Oid oid);
  void OnAbort(ClientId writer, TxnId txn);
  /// Virtual time at which an event that happened at server time `t`
  /// reaches the DLM (two agent hops in agent mode: server reply to the
  /// writer, writer's report to the DLM).
  VTime EventArrival(VTime server_time, int64_t report_bytes);

  DatabaseServer* server_;
  NotificationBus* bus_;
  DlmOptions opts_;
  VirtualClock clock_;

  mutable std::mutex mu_;
  std::unordered_map<Oid, std::unordered_set<ClientId>> holders_;
  std::unordered_map<ClientId, std::unordered_set<Oid>> by_client_;
  // Early-notify bookkeeping: intents announced per transaction, so a later
  // abort can be resolved to the same audience.
  std::unordered_map<TxnId, std::vector<Oid>> pending_intents_;

  Counter lock_requests_, unlock_requests_, reregister_requests_,
      update_notifies_, intent_notifies_, update_reports_;
  /// Virtual-time lag from a committing writer to each subscriber's
  /// notification arrival (display.staleness_vtime in GlobalMetrics);
  /// cached at construction — registry lookups stay off the commit path.
  Histogram* staleness_ = nullptr;
};

}  // namespace idba
