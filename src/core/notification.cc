#include "core/notification.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace idba {

void UpdateNotifyMessage::EncodeTo(Encoder* enc) const {
  enc->PutU64(txn);
  enc->PutI64(commit_vtime);
  enc->PutU8(committed ? 1 : 0);
  enc->PutVarint(updated.size());
  for (Oid oid : updated) enc->PutU64(oid.value);
  enc->PutVarint(erased.size());
  for (Oid oid : erased) enc->PutU64(oid.value);
  enc->PutVarint(images.size());
  for (const DatabaseObject& img : images) img.EncodeTo(enc);
}

Status UpdateNotifyMessage::DecodeFrom(Decoder* dec, UpdateNotifyMessage* out) {
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->commit_vtime));
  uint8_t committed = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&committed));
  out->committed = committed != 0;
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->updated.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->updated.emplace_back(oid);
  }
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->erased.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->erased.emplace_back(oid);
  }
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->images.clear();
  for (uint64_t i = 0; i < n; ++i) {
    DatabaseObject obj;
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &obj));
    out->images.push_back(std::move(obj));
  }
  return Status::OK();
}

std::shared_ptr<const Message> UpdateNotifyMessage::CoalesceWith(
    const Message& newer) const {
  const auto* next = dynamic_cast<const UpdateNotifyMessage*>(&newer);
  // Only committed-update pairs merge. An abort resolution must be seen
  // individually (it unmarks "being updated" without changing versions),
  // and merging across a resolution would reorder it.
  if (next == nullptr || !committed || !next->committed) return nullptr;
  auto merged = std::make_shared<UpdateNotifyMessage>(*this);
  merged->txn = next->txn;
  merged->commit_vtime = std::max(commit_vtime, next->commit_vtime);
  // Apply the newer change set over the older one: an object updated after
  // being erased is live again, and vice versa.
  std::unordered_set<Oid> updated(merged->updated.begin(),
                                  merged->updated.end());
  std::unordered_set<Oid> erased(merged->erased.begin(),
                                 merged->erased.end());
  for (Oid oid : next->updated) {
    updated.insert(oid);
    erased.erase(oid);
  }
  for (Oid oid : next->erased) {
    erased.insert(oid);
    updated.erase(oid);
  }
  merged->updated.assign(updated.begin(), updated.end());
  merged->erased.assign(erased.begin(), erased.end());
  // Eager shipping: latest image per object wins; erased objects carry no
  // image.
  std::unordered_map<Oid, DatabaseObject> images;
  for (const DatabaseObject& img : merged->images) images[img.oid()] = img;
  for (const DatabaseObject& img : next->images) images[img.oid()] = img;
  merged->images.clear();
  for (auto& [oid, img] : images) {
    if (updated.count(oid)) merged->images.push_back(std::move(img));
  }
  return merged;
}

void IntentNotifyMessage::EncodeTo(Encoder* enc) const {
  enc->PutU64(txn);
  enc->PutI64(intent_vtime);
  enc->PutVarint(oids.size());
  for (Oid oid : oids) enc->PutU64(oid.value);
}

Status IntentNotifyMessage::DecodeFrom(Decoder* dec, IntentNotifyMessage* out) {
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->intent_vtime));
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->oids.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->oids.emplace_back(oid);
  }
  return Status::OK();
}

std::shared_ptr<const Message> IntentNotifyMessage::CoalesceWith(
    const Message& newer) const {
  const auto* next = dynamic_cast<const IntentNotifyMessage*>(&newer);
  if (next == nullptr) return nullptr;
  auto merged = std::make_shared<IntentNotifyMessage>(*this);
  merged->txn = next->txn;
  merged->intent_vtime = std::max(intent_vtime, next->intent_vtime);
  std::unordered_set<Oid> oids(merged->oids.begin(), merged->oids.end());
  for (Oid oid : next->oids) {
    if (oids.insert(oid).second) merged->oids.push_back(oid);
  }
  return merged;
}

void ResyncNotifyMessage::EncodeTo(Encoder* enc) const {
  enc->PutI64(resync_vtime);
  enc->PutU64(dropped);
}

Status ResyncNotifyMessage::DecodeFrom(Decoder* dec,
                                       ResyncNotifyMessage* out) {
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->resync_vtime));
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->dropped));
  return Status::OK();
}

std::shared_ptr<const Message> ResyncNotifyMessage::CoalesceWith(
    const Message& newer) const {
  auto merged = std::make_shared<ResyncNotifyMessage>(*this);
  if (const auto* next = dynamic_cast<const ResyncNotifyMessage*>(&newer)) {
    merged->resync_vtime = std::max(resync_vtime, next->resync_vtime);
    merged->dropped += next->dropped;
  } else {
    // Any notification queued behind a pending resync is absorbed by it:
    // the resync refetches current state at processing time.
    merged->dropped += 1;
  }
  return merged;
}

// --- Shared wire bodies (Message::SharedWireBody) -------------------------
// The kind constants mirror wire::NotifyKind (1=update, 2=intent, 3=resync);
// net/tcp_server.cc static_asserts the correspondence so the values cannot
// drift apart silently.

bool UpdateNotifyMessage::EncodeWireBody(std::vector<uint8_t>* out,
                                         uint8_t* kind) const {
  Encoder enc(out);
  EncodeTo(&enc);
  *kind = 1;
  return true;
}

bool IntentNotifyMessage::EncodeWireBody(std::vector<uint8_t>* out,
                                         uint8_t* kind) const {
  Encoder enc(out);
  EncodeTo(&enc);
  *kind = 2;
  return true;
}

bool ResyncNotifyMessage::EncodeWireBody(std::vector<uint8_t>* out,
                                         uint8_t* kind) const {
  Encoder enc(out);
  EncodeTo(&enc);
  *kind = 3;
  return true;
}

}  // namespace idba
