#include "core/notification.h"

namespace idba {

void UpdateNotifyMessage::EncodeTo(Encoder* enc) const {
  enc->PutU64(txn);
  enc->PutI64(commit_vtime);
  enc->PutU8(committed ? 1 : 0);
  enc->PutVarint(updated.size());
  for (Oid oid : updated) enc->PutU64(oid.value);
  enc->PutVarint(erased.size());
  for (Oid oid : erased) enc->PutU64(oid.value);
  enc->PutVarint(images.size());
  for (const DatabaseObject& img : images) img.EncodeTo(enc);
}

Status UpdateNotifyMessage::DecodeFrom(Decoder* dec, UpdateNotifyMessage* out) {
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->commit_vtime));
  uint8_t committed = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&committed));
  out->committed = committed != 0;
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->updated.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->updated.emplace_back(oid);
  }
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->erased.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->erased.emplace_back(oid);
  }
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->images.clear();
  for (uint64_t i = 0; i < n; ++i) {
    DatabaseObject obj;
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &obj));
    out->images.push_back(std::move(obj));
  }
  return Status::OK();
}

void IntentNotifyMessage::EncodeTo(Encoder* enc) const {
  enc->PutU64(txn);
  enc->PutI64(intent_vtime);
  enc->PutVarint(oids.size());
  for (Oid oid : oids) enc->PutU64(oid.value);
}

Status IntentNotifyMessage::DecodeFrom(Decoder* dec, IntentNotifyMessage* out) {
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->intent_vtime));
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->oids.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->oids.emplace_back(oid);
  }
  return Status::OK();
}

}  // namespace idba
