// ObServer-vocabulary adapter (paper §5, related work).
//
// The paper observes that "the rich set of locks and communication modes
// offered by ObServer [Hornick & Zdonik] for cooperative transactions can
// be used to implement display locks. Non-restrictive read (NR-READ)
// locks allow a transaction to read an object without prohibiting write
// privileges to other transactions. These locks can be combined either
// with the update-notify (U-NOTIFY) communication mode which notifies lock
// holders upon updates (post-commit notify protocol), or with the
// write-notify (W-NOTIFY) communication mode which notifies lock holders
// when another transaction requests [the] object for writing (early notify
// protocol)."
//
// This header makes that equivalence executable: an ObServer-style client
// written against NR-READ + notification modes runs unchanged on top of
// the DLM/DLC stack. It is a *vocabulary* adapter — semantics are exactly
// those of display locks.

#pragma once

#include "core/dlm.h"

namespace idba {
namespace observer_compat {

/// ObServer lock types (the subset meaningful for displays).
enum class ObLockType {
  kNrRead,  ///< non-restrictive read == display lock mode D
};

/// ObServer communication modes.
enum class ObCommMode {
  kUNotify,  ///< notify on committed update  == post-commit notify
  kWNotify,  ///< notify on write-lock request == early notify (intent)
};

/// Maps an ObServer (lock, mode) pair onto the DLM configuration that
/// realizes it. kNrRead+kUNotify needs a post-commit DLM; kNrRead+kWNotify
/// needs an early-notify DLM (which also delivers the commit resolution,
/// subsuming U-NOTIFY).
inline NotifyProtocol RequiredProtocol(ObCommMode mode) {
  return mode == ObCommMode::kWNotify ? NotifyProtocol::kEarlyNotify
                                      : NotifyProtocol::kPostCommit;
}

/// True if a DLM configured with `configured` can serve a client that
/// asked for `requested` semantics.
inline bool ProtocolServes(NotifyProtocol configured, ObCommMode requested) {
  if (requested == ObCommMode::kUNotify) return true;  // both protocols notify
  return configured == NotifyProtocol::kEarlyNotify;
}

/// An ObServer-style handle: SetLock/ReleaseLock in ObServer vocabulary,
/// backed by the display lock manager.
class ObServerClient {
 public:
  ObServerClient(DisplayLockManager* dlm, ClientId client, ObCommMode mode)
      : dlm_(dlm), client_(client), mode_(mode) {}

  /// ObServer SetLock(object, NR-READ). Never blocks (display locks are
  /// compatible with everything). Fails with NotSupported if the DLM's
  /// protocol cannot deliver the requested communication mode.
  Status SetLock(Oid oid, ObLockType type, VTime now = 0) {
    if (type != ObLockType::kNrRead) {
      return Status::NotSupported("only NR-READ maps onto display locks");
    }
    if (!ProtocolServes(dlm_->options().protocol, mode_)) {
      return Status::NotSupported(
          "W-NOTIFY requires an early-notify DLM deployment");
    }
    return dlm_->Lock(client_, oid, now);
  }

  Status ReleaseLock(Oid oid, VTime now = 0) {
    return dlm_->Unlock(client_, oid, now);
  }

  ObCommMode mode() const { return mode_; }
  ClientId client() const { return client_; }

 private:
  DisplayLockManager* dlm_;
  ClientId client_;
  ObCommMode mode_;
};

}  // namespace observer_compat
}  // namespace idba
