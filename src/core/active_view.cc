#include "core/active_view.h"

#include <algorithm>

#include "obs/audit.h"
#include "obs/trace.h"

namespace idba {

ActiveView::ActiveView(std::string name, ClientApi* client,
                       DisplayLockClient* dlc, DisplayCache* cache,
                       ActiveViewOptions opts)
    : name_(std::move(name)), client_(client), dlc_(dlc), cache_(cache),
      opts_(opts),
      refresh_lag_(GlobalMetrics().GetHistogram("display.refresh_lag_vtime")) {
  display_id_ = dlc_->RegisterDisplay(this);
}

ActiveView::~ActiveView() { Close(); }

Result<DisplayObject*> ActiveView::Materialize(const DisplayClassDef* dclass,
                                               std::vector<Oid> sources) {
  // 1. Read the current images through the client database cache.
  std::vector<DatabaseObject> images;
  images.reserve(sources.size());
  for (Oid oid : sources) {
    IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, client_->ReadCurrent(oid));
    images.push_back(std::move(obj));
  }
  // 2. Create + materialize the display object in the display cache.
  IDBA_ASSIGN_OR_RETURN(DisplayObject * dob, cache_->Create(dclass, sources));
  Status st = dob->Refresh(client_->schema(), images);
  if (!st.ok()) {
    (void)cache_->Remove(dob->id());
    return st;
  }
  client_->clock().Advance(dlc_->cost_model().DisplayRefreshCpu());
  // 3. Display-lock every associated database object (paper §4.2.2:
  //    constructors request the locks) — unless this is a passive
  //    snapshot, which deliberately never subscribes.
  if (opts_.subscribe) {
    for (Oid oid : sources) {
      st = dlc_->AcquireDisplayLock(display_id_, oid);
      if (!st.ok()) {
        (void)cache_->Remove(dob->id());
        return st;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    my_objects_.insert(dob->id());
    for (size_t i = 0; i < sources.size(); ++i) {
      by_source_[sources[i]].push_back(dob->id());
      displayed_versions_[sources[i]] = images[i].version();
    }
  }
  return dob;
}

Result<std::vector<DisplayObject*>> ActiveView::PopulateFromClass(
    const DisplayClassDef* dclass, bool include_subclasses) {
  IDBA_ASSIGN_OR_RETURN(std::vector<DatabaseObject> objs,
                        client_->ScanClass(dclass->primary_source(),
                                           include_subclasses));
  std::vector<DisplayObject*> out;
  out.reserve(objs.size());
  dlc_->BeginLockBatch();  // one DLM message for the whole view
  for (const DatabaseObject& obj : objs) {
    auto dob = Materialize(dclass, {obj.oid()});
    if (!dob.ok()) {
      (void)dlc_->EndLockBatch();
      return dob.status();
    }
    out.push_back(dob.value());
  }
  IDBA_RETURN_NOT_OK(dlc_->EndLockBatch());
  return out;
}

Result<std::vector<DisplayObject*>> ActiveView::PopulateFromQuery(
    const DisplayClassDef* dclass, const ObjectQuery& query) {
  IDBA_ASSIGN_OR_RETURN(std::vector<DatabaseObject> objs,
                        client_->RunQuery(query));
  std::vector<DisplayObject*> out;
  out.reserve(objs.size());
  dlc_->BeginLockBatch();
  for (const DatabaseObject& obj : objs) {
    auto dob = Materialize(dclass, {obj.oid()});
    if (!dob.ok()) {
      (void)dlc_->EndLockBatch();
      return dob.status();
    }
    out.push_back(dob.value());
  }
  IDBA_RETURN_NOT_OK(dlc_->EndLockBatch());
  return out;
}

Result<size_t> ActiveView::RefreshAll() {
  std::vector<DoId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.assign(my_objects_.begin(), my_objects_.end());
  }
  size_t refreshed = 0;
  for (DoId id : ids) {
    DisplayObject* dob = cache_->Find(id);
    if (dob == nullptr) continue;
    std::vector<DatabaseObject> images;
    images.reserve(dob->sources().size());
    for (Oid oid : dob->sources()) {
      // Bypass the local cache: a manual refresh must observe the server's
      // current state even when no callbacks maintain this client's cache
      // (the snapshot / detection-mode scenario).
      client_->cache().Drop(oid);
      IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, client_->ReadCurrent(oid));
      images.push_back(std::move(obj));
    }
    IDBA_RETURN_NOT_OK(dob->Refresh(client_->schema(), images));
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const DatabaseObject& img : images) {
        displayed_versions_[img.oid()] = img.version();
      }
    }
    client_->clock().Advance(dlc_->cost_model().DisplayRefreshCpu());
    obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
    if (auditor.enabled()) {
      for (const DatabaseObject& img : images) {
        auditor.OnViewRefresh(client_->id(), img.oid().value, img.version(),
                              client_->clock().Now());
      }
    }
    refreshes_.Add();
    ++refreshed;
  }
  return refreshed;
}

size_t ActiveView::CountStaleObjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t stale = 0;
  for (const auto& [oid, displayed_version] : displayed_versions_) {
    auto current = client_->LatestVersion(oid);
    if (!current.ok() || current.value() != displayed_version) {
      ++stale;
    }
  }
  return stale;
}

Status ActiveView::Dismiss(DoId id) {
  DisplayObject* dob = cache_->Find(id);
  if (dob == nullptr) return Status::NotFound("display object " + std::to_string(id));
  std::vector<Oid> sources = dob->sources();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!my_objects_.count(id)) {
      return Status::NotFound("display object not in this view");
    }
    my_objects_.erase(id);
    for (Oid oid : sources) {
      auto it = by_source_.find(oid);
      if (it != by_source_.end()) {
        auto& v = it->second;
        v.erase(std::remove(v.begin(), v.end(), id), v.end());
        if (v.empty()) {
          by_source_.erase(it);
          displayed_versions_.erase(oid);
        }
      }
    }
  }
  // Destructor duties (paper §4.2.2): release display locks the view no
  // longer needs, free the DO.
  for (Oid oid : sources) {
    bool still_used;
    {
      std::lock_guard<std::mutex> lock(mu_);
      still_used = by_source_.count(oid) != 0;
    }
    if (!still_used) (void)dlc_->ReleaseDisplayLock(display_id_, oid);
  }
  return cache_->Remove(id);
}

void ActiveView::Close() {
  std::vector<DoId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    ids.assign(my_objects_.begin(), my_objects_.end());
    my_objects_.clear();
    by_source_.clear();
    displayed_versions_.clear();
  }
  for (DoId id : ids) {
    DisplayObject* dob = cache_->Find(id);
    if (dob != nullptr) (void)cache_->Remove(id);
  }
  dlc_->UnregisterDisplay(display_id_);
}

Status ActiveView::RefreshObject(DisplayObject* dob,
                                 const UpdateNotifyMessage& msg) {
  // Gather fresh images of every source. Eagerly shipped images are first
  // installed into the client DB cache (saving the fetch round trip); all
  // other sources are read through the cache (usually hits).
  for (const DatabaseObject& img : msg.images) {
    client_->cache().Put(img);
  }
  std::vector<DatabaseObject> images;
  images.reserve(dob->sources().size());
  for (Oid oid : dob->sources()) {
    auto obj = client_->ReadCurrent(oid);
    if (!obj.ok()) return obj.status();
    images.push_back(std::move(obj).value());
  }
  IDBA_RETURN_NOT_OK(dob->Refresh(client_->schema(), images));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const DatabaseObject& img : images) {
      displayed_versions_[img.oid()] = img.version();
    }
  }
  obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
  if (auditor.enabled()) {
    // Settles the per-OID visibility obligation the DLC dispatch opened and
    // checks the displayed versions against the coherence floor.
    for (const DatabaseObject& img : images) {
      auditor.OnViewRefresh(client_->id(), img.oid().value, img.version(),
                            client_->clock().Now());
    }
  }
  return Status::OK();
}

void ActiveView::OnUpdateNotify(const UpdateNotifyMessage& msg, VTime /*local_now*/) {
  // Affected display objects of *this* view.
  std::vector<DoId> affected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto add = [&](Oid oid) {
      auto it = by_source_.find(oid);
      if (it == by_source_.end()) return;
      for (DoId id : it->second) affected.push_back(id);
    };
    for (Oid oid : msg.updated) add(oid);
    for (Oid oid : msg.erased) add(oid);
    // Intent resolution: the objects are no longer "being updated".
    for (Oid oid : msg.updated) marked_sources_.erase(oid);
  }
  if (!msg.committed) {
    // Early-notify resolution of an aborted transaction: just unmark.
    for (DoId id : affected) {
      DisplayObject* dob = cache_->Find(id);
      if (dob != nullptr) dob->SetMarkedInUpdate(false);
    }
    return;
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
  if (affected.empty()) return;

  IDBA_TRACE_SPAN("view.refresh");
  if (!msg.erased.empty()) erased_seen_.Add(msg.erased.size());
  for (DoId id : affected) {
    DisplayObject* dob = cache_->Find(id);
    if (dob == nullptr) continue;
    dob->MarkDirty();
    Status st = RefreshObject(dob, msg);
    if (st.ok()) {
      dob->SetMarkedInUpdate(false);
      refreshes_.Add();
      // Redraw cost for this element.
      client_->clock().Advance(dlc_->cost_model().DisplayRefreshCpu());
    }
  }
  // Commit -> on-screen propagation latency (§4.3's headline metric). The
  // client clock has observed the notification arrival (in the DLC), any
  // re-fetch round trips, and the refresh CPU.
  propagation_ms_.Record(
      static_cast<double>(client_->clock().Now() - msg.commit_vtime) /
      kVMillisecond);
  refresh_lag_->Record(
      static_cast<double>(client_->clock().Now() - msg.commit_vtime));
}

void ActiveView::OnIntentNotify(const IntentNotifyMessage& msg, VTime /*local_now*/) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Oid oid : msg.oids) {
    auto it = by_source_.find(oid);
    if (it == by_source_.end()) continue;
    marked_sources_.insert(oid);
    for (DoId id : it->second) {
      DisplayObject* dob = cache_->Find(id);
      if (dob != nullptr) dob->SetMarkedInUpdate(true);
    }
    intent_marks_.Add();
  }
}

void ActiveView::OnResync(VTime /*local_now*/) {
  IDBA_TRACE_SPAN("view.resync");
  resyncs_.Add();
  std::vector<Oid> marked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    marked.assign(marked_sources_.begin(), marked_sources_.end());
    marked_sources_.clear();
  }
  for (Oid oid : marked) {
    auto it_objects = [&] {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = by_source_.find(oid);
      return it == by_source_.end() ? std::vector<DoId>{} : it->second;
    }();
    for (DoId id : it_objects) {
      DisplayObject* dob = cache_->Find(id);
      if (dob != nullptr) dob->SetMarkedInUpdate(false);
    }
  }
  // RefreshAll bypasses the local object cache, so it observes current
  // server state even when invalidation callbacks were elided while this
  // client was marked stale.
  (void)RefreshAll();
}

std::vector<DisplayObject*> ActiveView::display_objects() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DisplayObject*> out;
  for (DoId id : my_objects_) {
    DisplayObject* dob = cache_->Find(id);
    if (dob != nullptr) out.push_back(dob);
  }
  return out;
}

size_t ActiveView::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return my_objects_.size();
}

bool ActiveView::IsSourceMarked(Oid source) const {
  std::lock_guard<std::mutex> lock(mu_);
  return marked_sources_.count(source) != 0;
}

}  // namespace idba
