// The display cache (paper §3.2): the new topmost level of the memory
// hierarchy. Holds display objects, is *explicitly managed by the
// application* — entries are pinned for as long as they are displayed and
// are never evicted by any replacement policy, database parameter or
// concurrent workload. That explicit control is precisely what makes GUI
// interaction latency predictable (experiment E8 ablates it).

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/display_object.h"

namespace idba {

struct DisplayCacheOptions {
  /// Soft budget: Add fails with Busy beyond it, forcing the application
  /// to make an explicit decision (close a view) instead of suffering a
  /// silent eviction. 0 = unlimited.
  size_t capacity_bytes = 0;
};

/// Thread-safe pinned cache of display objects.
class DisplayCache {
 public:
  explicit DisplayCache(DisplayCacheOptions opts = {});

  /// Creates and pins a display object. Fails with Busy over budget.
  Result<DisplayObject*> Create(const DisplayClassDef* dclass,
                                std::vector<Oid> sources);

  /// Looks up by id (nullptr if absent).
  DisplayObject* Find(DoId id);

  /// Explicitly removes a display object (when its element leaves the
  /// screen). The only way space is ever reclaimed.
  Status Remove(DoId id);

  /// Display objects associated with a given database object.
  std::vector<DisplayObject*> FindBySource(Oid source) const;

  size_t object_count() const;
  size_t bytes_used() const;
  size_t capacity_bytes() const { return opts_.capacity_bytes; }

  uint64_t hits() const { return hits_.Get(); }
  uint64_t misses() const { return misses_.Get(); }
  uint64_t rejections() const { return rejections_.Get(); }

  /// Recomputes the byte account (display objects mutate in place on
  /// refresh). Cheap enough to call per refresh batch.
  void ReaccountBytes();

 private:
  DisplayCacheOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<DoId, std::unique_ptr<DisplayObject>> objects_;
  std::unordered_map<Oid, std::vector<DoId>> by_source_;
  size_t bytes_used_ = 0;
  DoId next_id_ = 1;
  // hit/miss on Find; rejection when Create fails the explicit budget.
  // There is deliberately no eviction counter to mirror: entries are pinned
  // by the application and never evicted (paper §3.2), so
  // cache.display.evictions staying at zero is itself the signal.
  MirroredCounter hits_, misses_, rejections_;
  ScopedGauge objects_gauge_, bytes_gauge_;  // declared last, torn down first
};

}  // namespace idba
