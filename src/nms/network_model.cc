#include "nms/network_model.h"

#include <algorithm>

namespace idba {

namespace {

Status AddAttrs(SchemaCatalog* catalog, ClassId cls,
                std::initializer_list<std::pair<const char*, Value>> attrs) {
  for (const auto& [name, def] : attrs) {
    ValueType t = def.type();
    IDBA_RETURN_NOT_OK(catalog->AddAttribute(cls, name, t, def));
  }
  return Status::OK();
}

}  // namespace

Result<NmsSchema> RegisterNmsSchema(SchemaCatalog* catalog) {
  NmsSchema s;

  // --- NetworkNode: a managed network element --------------------------
  IDBA_ASSIGN_OR_RETURN(s.network_node, catalog->DefineClass("NetworkNode"));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.network_node, {
      {"Name", Value(std::string())},
      {"Address", Value(std::string())},
      {"Status", Value(int64_t(1))},          // 1 = up
      {"CpuLoad", Value(0.0)},
      {"MemUsage", Value(0.0)},
      {"UptimeSeconds", Value(int64_t(0))},
      {"Vendor", Value(std::string())},
      {"Model", Value(std::string())},
      {"OsVersion", Value(std::string())},
      {"Location", Value(std::string())},
      {"Contact", Value(std::string())},
      {"SnmpCommunity", Value(std::string())},
      {"ManagementIp", Value(std::string())},
      {"Description", Value(std::string())},
      {"LastPolled", Value(int64_t(0))},
  }));

  // --- Link: wide, as real NMS link records are (paper §2.2) -----------
  IDBA_ASSIGN_OR_RETURN(s.link, catalog->DefineClass("Link"));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.link, {
      {"Name", Value(std::string())},
      {"From", Value(kNullOid)},
      {"To", Value(kNullOid)},
      {"Utilization", Value(0.0)},            // what the GUI codes by
      {"CapacityMbps", Value(10.0)},
      {"Status", Value(int64_t(1))},
      {"AdminState", Value(int64_t(1))},
      {"OperState", Value(int64_t(1))},
      {"ErrorRate", Value(0.0)},
      {"PacketsIn", Value(int64_t(0))},
      {"PacketsOut", Value(int64_t(0))},
      {"BytesIn", Value(int64_t(0))},
      {"BytesOut", Value(int64_t(0))},
      {"Discards", Value(int64_t(0))},
      {"Mtu", Value(int64_t(1500))},
      {"DelayMs", Value(0.0)},
      {"JitterMs", Value(0.0)},
      {"CostMetric", Value(int64_t(10))},
      {"Vendor", Value(std::string())},
      {"Model", Value(std::string())},
      {"SerialNumber", Value(std::string())},
      {"CircuitId", Value(std::string())},
      {"InstallDate", Value(std::string())},
      {"MaintenanceWindow", Value(std::string())},
      {"Contact", Value(std::string())},
      {"Notes", Value(std::string())},
      {"LastFlap", Value(int64_t(0))},
      {"LastPolled", Value(int64_t(0))},
  }));

  // --- Hardware containment hierarchy ----------------------------------
  IDBA_ASSIGN_OR_RETURN(s.hardware_component,
                        catalog->DefineClass("HardwareComponent"));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.hardware_component, {
      {"Name", Value(std::string())},
      {"Parent", Value(kNullOid)},
      {"Children", Value(std::vector<Oid>{})},
      {"Capacity", Value(1.0)},
      {"Status", Value(int64_t(1))},
      {"Utilization", Value(0.0)},
      {"Vendor", Value(std::string())},
      {"Model", Value(std::string())},
      {"SerialNumber", Value(std::string())},
      {"AssetTag", Value(std::string())},
      {"InstallDate", Value(std::string())},
      {"Notes", Value(std::string())},
      {"Manufacturer", Value(std::string())},
      {"FirmwareVersion", Value(std::string())},
      {"HardwareRevision", Value(std::string())},
      {"MacAddress", Value(std::string())},
      {"PowerDrawWatts", Value(0.0)},
      {"TemperatureC", Value(25.0)},
      {"WarrantyExpiry", Value(std::string())},
      {"SupportContract", Value(std::string())},
      {"LastServiced", Value(std::string())},
      {"SlotPosition", Value(int64_t(0))},
      {"WeightKg", Value(0.0)},
      {"FieldNotices", Value(std::string())},
  }));
  IDBA_ASSIGN_OR_RETURN(
      s.site, catalog->DefineClass("Site", s.hardware_component));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.site, {{"Region", Value(std::string())}}));
  IDBA_ASSIGN_OR_RETURN(
      s.building, catalog->DefineClass("Building", s.hardware_component));
  IDBA_RETURN_NOT_OK(
      AddAttrs(catalog, s.building, {{"StreetAddress", Value(std::string())}}));
  IDBA_ASSIGN_OR_RETURN(s.rack,
                        catalog->DefineClass("Rack", s.hardware_component));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.rack, {{"Slots", Value(int64_t(42))}}));
  IDBA_ASSIGN_OR_RETURN(s.device,
                        catalog->DefineClass("Device", s.hardware_component));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.device, {
      {"IpAddress", Value(std::string())},
      {"CpuLoad", Value(0.0)},
  }));
  IDBA_ASSIGN_OR_RETURN(s.card,
                        catalog->DefineClass("Card", s.hardware_component));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.card, {{"PortCount", Value(int64_t(0))}}));
  IDBA_ASSIGN_OR_RETURN(s.port,
                        catalog->DefineClass("Port", s.hardware_component));
  IDBA_RETURN_NOT_OK(AddAttrs(catalog, s.port, {{"SpeedMbps", Value(10.0)}}));

  return s;
}

DatabaseObject NewObject(const SchemaCatalog& catalog, ClassId cls, Oid oid) {
  auto attrs = catalog.AllAttributes(cls);
  DatabaseObject obj(oid, cls, attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) obj.Set(i, attrs[i]->default_value);
  return obj;
}

namespace {

/// Bulk loader context: runs inserts through transactions on the server.
class Loader {
 public:
  explicit Loader(DatabaseServer* server) : server_(server) {}

  Status Flush() {
    if (txn_ == 0) return Status::OK();
    IDBA_RETURN_NOT_OK(server_->Commit(/*client=*/0, txn_, nullptr).status());
    txn_ = 0;
    pending_ = 0;
    return Status::OK();
  }

  Status Insert(DatabaseObject obj) {
    if (txn_ == 0) txn_ = server_->Begin(/*client=*/0);
    IDBA_RETURN_NOT_OK(server_->Insert(0, txn_, std::move(obj), nullptr));
    if (++pending_ >= 128) return Flush();
    return Status::OK();
  }

 private:
  DatabaseServer* server_;
  TxnId txn_ = 0;
  int pending_ = 0;
};

std::string MakeName(const char* prefix, int i) {
  return std::string(prefix) + "-" + std::to_string(i);
}

const char* kVendors[] = {"Cisco", "Wellfleet", "Bay", "3Com", "DEC", "IBM"};
const char* kRegions[] = {"East", "West", "Central", "North", "South"};

}  // namespace

Result<NmsDatabase> PopulateNms(DatabaseServer* server, const NmsConfig& config) {
  NmsDatabase db;
  db.config = config;
  SchemaCatalog& catalog = server->schema();
  if (const ClassDef* existing = catalog.FindByName("Link"); existing == nullptr) {
    IDBA_ASSIGN_OR_RETURN(db.schema, RegisterNmsSchema(&catalog));
  } else {
    // Schema already present (repeated population): resolve ids by name.
    NmsSchema s;
    s.network_node = catalog.FindByName("NetworkNode")->id();
    s.link = catalog.FindByName("Link")->id();
    s.hardware_component = catalog.FindByName("HardwareComponent")->id();
    s.site = catalog.FindByName("Site")->id();
    s.building = catalog.FindByName("Building")->id();
    s.rack = catalog.FindByName("Rack")->id();
    s.device = catalog.FindByName("Device")->id();
    s.card = catalog.FindByName("Card")->id();
    s.port = catalog.FindByName("Port")->id();
    db.schema = s;
  }
  const NmsSchema& s = db.schema;
  Rng rng(config.seed);
  Loader loader(server);

  // --- Topology: nodes --------------------------------------------------
  for (int i = 0; i < config.num_nodes; ++i) {
    Oid oid = server->AllocateOid();
    DatabaseObject node = NewObject(catalog, s.network_node, oid);
    IDBA_RETURN_NOT_OK(node.SetByName(catalog, "Name", MakeName("node", i)));
    IDBA_RETURN_NOT_OK(node.SetByName(catalog, "Address",
                                      "10." + std::to_string(i / 250) + ".0." +
                                          std::to_string(i % 250 + 1)));
    IDBA_RETURN_NOT_OK(node.SetByName(
        catalog, "Vendor", std::string(kVendors[rng.NextBelow(6)])));
    IDBA_RETURN_NOT_OK(node.SetByName(catalog, "Model",
                                      MakeName("model", (int)rng.NextBelow(20))));
    IDBA_RETURN_NOT_OK(node.SetByName(
        catalog, "Description",
        "Managed element " + std::to_string(i) + " of the campus backbone"));
    IDBA_RETURN_NOT_OK(loader.Insert(std::move(node)));
    db.node_oids.push_back(oid);
  }

  // --- Topology: links (ring for connectivity + random chords) ---------
  auto add_link = [&](int a, int b, int idx) -> Status {
    Oid oid = server->AllocateOid();
    DatabaseObject link = NewObject(catalog, s.link, oid);
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "Name", MakeName("link", idx)));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "From", db.node_oids[a]));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "To", db.node_oids[b]));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "Utilization", rng.NextDouble()));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "CapacityMbps",
                                      rng.NextBool(0.3) ? 100.0 : 10.0));
    IDBA_RETURN_NOT_OK(link.SetByName(
        catalog, "Vendor", std::string(kVendors[rng.NextBelow(6)])));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "CircuitId",
                                      "CKT-" + std::to_string(100000 + idx)));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "SerialNumber",
                                      "SN" + std::to_string(rng.NextU64() % 1000000)));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "InstallDate", "1995-06-15"));
    IDBA_RETURN_NOT_OK(link.SetByName(
        catalog, "Notes",
        "Leased line between node " + std::to_string(a) + " and node " +
            std::to_string(b) + "; contact NOC before maintenance"));
    IDBA_RETURN_NOT_OK(loader.Insert(std::move(link)));
    db.link_oids.push_back(oid);
    return Status::OK();
  };
  int link_idx = 0;
  for (int i = 0; i < config.num_nodes; ++i) {
    IDBA_RETURN_NOT_OK(add_link(i, (i + 1) % config.num_nodes, link_idx++));
  }
  int extra = std::max(0, static_cast<int>(config.num_nodes * config.avg_degree / 2) -
                              config.num_nodes);
  for (int e = 0; e < extra; ++e) {
    int a = static_cast<int>(rng.NextBelow(config.num_nodes));
    int b = static_cast<int>(rng.NextBelow(config.num_nodes));
    if (a == b) b = (b + 1) % config.num_nodes;
    IDBA_RETURN_NOT_OK(add_link(a, b, link_idx++));
  }

  // --- Hardware hierarchy ----------------------------------------------
  struct Pending {
    Oid oid;
    std::vector<Oid> children;
  };
  std::vector<std::pair<Oid, DatabaseObject>> components;

  auto new_component = [&](ClassId cls, const std::string& name, Oid parent,
                           double capacity) {
    Oid oid = server->AllocateOid();
    DatabaseObject obj = NewObject(catalog, cls, oid);
    (void)obj.SetByName(catalog, "Name", name);
    (void)obj.SetByName(catalog, "Parent", parent);
    (void)obj.SetByName(catalog, "Capacity", capacity);
    (void)obj.SetByName(catalog, "Utilization", rng.NextDouble());
    (void)obj.SetByName(catalog, "Vendor", std::string(kVendors[rng.NextBelow(6)]));
    (void)obj.SetByName(catalog, "SerialNumber",
                        "HW" + std::to_string(rng.NextU64() % 1000000));
    (void)obj.SetByName(catalog, "FirmwareVersion",
                        "v" + std::to_string(rng.NextBelow(12)) + "." +
                            std::to_string(rng.NextBelow(10)));
    (void)obj.SetByName(catalog, "MacAddress",
                        "00:A0:" + std::to_string(10 + rng.NextBelow(89)) + ":" +
                            std::to_string(10 + rng.NextBelow(89)));
    (void)obj.SetByName(catalog, "PowerDrawWatts", 20.0 + rng.NextDouble() * 300);
    (void)obj.SetByName(catalog, "WarrantyExpiry", "1998-12-31");
    (void)obj.SetByName(catalog, "SupportContract",
                        "CON-" + std::to_string(100000 + rng.NextBelow(899999)));
    components.emplace_back(oid, std::move(obj));
    db.all_hardware_oids.push_back(oid);
    return oid;
  };
  auto attach_child = [&](Oid parent, Oid child) {
    for (auto& [oid, obj] : components) {
      if (oid == parent) {
        auto cur = obj.GetByName(catalog, "Children");
        std::vector<Oid> kids = cur.ok() && cur.value().type() == ValueType::kOidList
                                    ? cur.value().AsOidList()
                                    : std::vector<Oid>{};
        kids.push_back(child);
        (void)obj.SetByName(catalog, "Children", std::move(kids));
        return;
      }
    }
  };

  db.hardware_root =
      new_component(s.hardware_component, "network", kNullOid, 1.0);
  int dev_counter = 0;
  for (int si = 0; si < config.sites; ++si) {
    Oid site = new_component(s.site, MakeName("site", si), db.hardware_root, 1.0);
    attach_child(db.hardware_root, site);
    db.site_oids.push_back(site);
    for (auto& [oid, obj] : components) {
      if (oid == site) {
        (void)obj.SetByName(catalog, "Region",
                            std::string(kRegions[si % 5]));
      }
    }
    for (int bi = 0; bi < config.buildings_per_site; ++bi) {
      Oid building = new_component(s.building, MakeName("bldg", bi), site, 1.0);
      attach_child(site, building);
      for (int ri = 0; ri < config.racks_per_building; ++ri) {
        Oid rack = new_component(s.rack, MakeName("rack", ri), building, 1.0);
        attach_child(building, rack);
        for (int di = 0; di < config.devices_per_rack; ++di) {
          double cap = 1.0 + rng.NextBelow(8);
          Oid device =
              new_component(s.device, MakeName("dev", dev_counter++), rack, cap);
          attach_child(rack, device);
          db.device_oids.push_back(device);
          for (int ci = 0; ci < config.cards_per_device; ++ci) {
            Oid card = new_component(s.card, MakeName("card", ci), device, 1.0);
            attach_child(device, card);
            for (int pi = 0; pi < config.ports_per_card; ++pi) {
              Oid port = new_component(s.port, MakeName("port", pi), card, 0.25);
              attach_child(card, port);
            }
          }
        }
      }
    }
  }
  for (auto& [oid, obj] : components) {
    IDBA_RETURN_NOT_OK(loader.Insert(std::move(obj)));
  }
  IDBA_RETURN_NOT_OK(loader.Flush());
  return db;
}

}  // namespace idba
