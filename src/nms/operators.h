// Scripted network operators (paper §4.3: "up to 4 concurrent users
// performing simple monitoring and updating functions"). An operator owns
// an InteractiveSession with a monitoring view over some links and
// alternates between monitoring actions (inspecting display objects) and
// configuration updates (read-modify-write transactions on link
// attributes). Under the early-notify protocol an operator can be told to
// honor "being updated" marks, skipping objects another user is editing —
// the mechanism the paper credits with reducing conflicts and aborts.

#pragma once

#include <memory>

#include "common/rng.h"
#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {

struct OperatorOptions {
  uint64_t seed = 11;
  /// Probability a step is an update (vs a pure monitoring action).
  double update_probability = 0.3;
  /// Skew of link selection across operators (shared hot set drives
  /// contention).
  double zipf_theta = 0.6;
  /// Honor early-notify marks: skip objects currently flagged as being
  /// updated by someone else.
  bool honor_update_marks = false;
  /// Links shown in this operator's monitoring view (0 = all).
  size_t view_size = 0;
  /// Links touched by one configuration change. Multi-link edits acquire
  /// X locks in selection order, so concurrent edits can deadlock — the
  /// conflicts early notify is designed to avoid (§3.3).
  int links_per_update = 1;
  /// Real milliseconds the user spends editing while holding X locks
  /// (the paper's long-transaction window).
  int64_t edit_time_ms = 0;
};

/// Result of one operator step.
struct OperatorStepResult {
  bool was_update = false;
  bool committed = false;
  bool aborted = false;
  bool skipped_marked = false;  ///< early-notify: backed off a marked object
};

class OperatorSession {
 public:
  /// Builds the operator's session + monitoring view. The view holds
  /// display locks on every displayed link.
  static Result<std::unique_ptr<OperatorSession>> Create(
      Deployment* deployment, ClientId id, const NmsDatabase* db,
      const NmsDisplayClasses* dcs, OperatorOptions opts = {});

  ~OperatorSession();

  /// One user action (think time is virtual; pump before acting).
  Result<OperatorStepResult> StepOnce();

  InteractiveSession& session() { return *session_; }
  ActiveView* view() { return view_; }

  uint64_t updates_attempted() const { return attempts_.Get(); }
  uint64_t updates_committed() const { return commits_.Get(); }
  uint64_t updates_aborted() const { return aborts_.Get(); }
  uint64_t marked_skips() const { return skips_.Get(); }
  uint64_t monitor_actions() const { return monitors_.Get(); }

 private:
  OperatorSession(Deployment* deployment, const NmsDatabase* db,
                  const NmsDisplayClasses* dcs, OperatorOptions opts,
                  std::unique_ptr<InteractiveSession> session);

  Deployment* deployment_;
  const NmsDatabase* db_;
  const NmsDisplayClasses* dcs_;
  OperatorOptions opts_;
  std::unique_ptr<InteractiveSession> session_;
  ActiveView* view_ = nullptr;
  std::vector<Oid> my_links_;  ///< the links in this operator's view
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  Counter attempts_, commits_, aborts_, skips_, monitors_;
};

}  // namespace idba
