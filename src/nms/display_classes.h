// The display schema of the NMS application — figure 1 of the paper as
// code: ColorCodedLink and WidthCodedLink project the two Link attributes a
// GUI needs out of ~28, add GUI-only screen coordinates, and derive their
// Color / Width from Utilization. Additional display classes cover node
// icons, multi-source path summaries (§3.1's "combine multiple database
// objects into a single graphical element") and the Tree-Map / PDQ tiles.

#pragma once

#include "core/display_schema.h"
#include "nms/network_model.h"

namespace idba {

struct NmsDisplayClasses {
  DisplayClassId color_coded_link = 0;
  DisplayClassId width_coded_link = 0;
  DisplayClassId node_icon = 0;
  DisplayClassId path_summary = 0;   ///< multi-source: all Links of a path
  DisplayClassId hardware_tile = 0;  ///< Tree-Map rectangle data
  DisplayClassId pdq_component = 0;  ///< PDQ browser node data
};

/// Defines the standard NMS display classes over the database schema.
Result<NmsDisplayClasses> RegisterNmsDisplayClasses(DisplaySchema* schema,
                                                    const SchemaCatalog& catalog,
                                                    const NmsSchema& nms);

}  // namespace idba
