// Path finding over the managed network topology — the substrate for the
// paper's multi-source display objects (§3.1: "the path between two nodes
// in a communication network may be represented by a line connecting the
// two nodes, without showing the actual links in the path. The graphical
// element for that line can be a display object that is associated with
// all the Link database objects of the path").

#pragma once

#include <vector>

#include "nms/network_model.h"

namespace idba {

/// Adjacency index over the topology of an NmsDatabase, built once from
/// the database and reused by path queries.
class TopologyIndex {
 public:
  /// Reads every link's endpoints from the server's heap.
  static Result<TopologyIndex> Build(DatabaseServer* server,
                                     const NmsDatabase& db);

  /// Fewest-hops path between two nodes; returns the LINK OIDs along it
  /// (the display object's OID list). NotFound if disconnected.
  Result<std::vector<Oid>> ShortestPath(Oid from_node, Oid to_node) const;

  /// All link OIDs incident to a node.
  std::vector<Oid> IncidentLinks(Oid node) const;

  size_t node_count() const { return nodes_.size(); }
  size_t link_count() const { return links_.size(); }

  /// Node index lookups for layout code (index into `nodes()`).
  const std::vector<Oid>& nodes() const { return nodes_; }
  Result<size_t> NodeIndex(Oid node) const;

  /// Edges as node-index pairs, parallel to `link_oids()`.
  struct Edge {
    size_t a, b;
  };
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<Oid>& link_oids() const { return links_; }

 private:
  std::vector<Oid> nodes_;
  std::vector<Oid> links_;
  std::vector<Edge> edges_;
  // adjacency: node index -> (neighbor index, link position)
  std::vector<std::vector<std::pair<size_t, size_t>>> adjacency_;
};

}  // namespace idba
