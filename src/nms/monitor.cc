#include "nms/monitor.h"

#include <algorithm>
#include <chrono>

namespace idba {

MonitorProcess::MonitorProcess(ClientApi* client, const NmsDatabase* db,
                               MonitorOptions opts)
    : client_(client), db_(db), opts_(opts), rng_(opts.seed),
      zipf_(std::max<size_t>(db->link_oids.size(), 1), opts.zipf_theta) {}

MonitorProcess::~MonitorProcess() { Stop(); }

Result<std::vector<Oid>> MonitorProcess::StepOnce() {
  steps_.Add();
  const SchemaCatalog& catalog = client_->schema();
  TxnId txn = client_->Begin();
  std::vector<Oid> touched;
  for (int i = 0; i < opts_.updates_per_step; ++i) {
    Oid oid = db_->link_oids[zipf_.Next(rng_)];
    auto obj = client_->Read(txn, oid);
    if (!obj.ok()) {
      (void)client_->Abort(txn);
      aborts_.Add();
      return obj.status();
    }
    DatabaseObject link = std::move(obj).value();
    double u = link.GetByName(catalog, "Utilization").value_or(Value(0.0)).AsNumber();
    u += (rng_.NextDouble() * 2 - 1) * opts_.walk_step;
    u = std::clamp(u, 0.0, 1.0);
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "Utilization", u));
    if (rng_.NextBool(opts_.flap_probability)) {
      int64_t status =
          link.GetByName(catalog, "Status").value_or(Value(int64_t(1))).AsInt();
      IDBA_RETURN_NOT_OK(link.SetByName(catalog, "Status", int64_t(status == 1 ? 0 : 1)));
    }
    IDBA_RETURN_NOT_OK(
        link.SetByName(catalog, "LastPolled", static_cast<int64_t>(steps())));
    Status st = client_->Write(txn, std::move(link));
    if (!st.ok()) {
      (void)client_->Abort(txn);
      aborts_.Add();
      return st;
    }
    touched.push_back(oid);
  }
  auto commit = client_->Commit(txn);
  if (!commit.ok()) {
    aborts_.Add();
    return commit.status();
  }
  committed_.Add(touched.size());
  return touched;
}

void MonitorProcess::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    while (running_.load()) {
      (void)StepOnce();
      std::this_thread::sleep_for(std::chrono::milliseconds(opts_.interval_ms));
    }
  });
}

void MonitorProcess::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace idba
