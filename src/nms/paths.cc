#include "nms/paths.h"

#include <deque>
#include <unordered_map>

namespace idba {

Result<TopologyIndex> TopologyIndex::Build(DatabaseServer* server,
                                           const NmsDatabase& db) {
  TopologyIndex index;
  const SchemaCatalog& catalog = server->schema();
  std::unordered_map<Oid, size_t> node_index;
  index.nodes_ = db.node_oids;
  for (size_t i = 0; i < index.nodes_.size(); ++i) {
    node_index[index.nodes_[i]] = i;
  }
  index.adjacency_.resize(index.nodes_.size());
  for (Oid link_oid : db.link_oids) {
    IDBA_ASSIGN_OR_RETURN(DatabaseObject link, server->heap().Read(link_oid));
    IDBA_ASSIGN_OR_RETURN(Value from, link.GetByName(catalog, "From"));
    IDBA_ASSIGN_OR_RETURN(Value to, link.GetByName(catalog, "To"));
    auto ai = node_index.find(from.AsOid());
    auto bi = node_index.find(to.AsOid());
    if (ai == node_index.end() || bi == node_index.end()) {
      return Status::Corruption("link " + link_oid.ToString() +
                                " references unknown node");
    }
    size_t pos = index.links_.size();
    index.links_.push_back(link_oid);
    index.edges_.push_back(Edge{ai->second, bi->second});
    index.adjacency_[ai->second].emplace_back(bi->second, pos);
    index.adjacency_[bi->second].emplace_back(ai->second, pos);
  }
  return index;
}

Result<size_t> TopologyIndex::NodeIndex(Oid node) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) return i;
  }
  return Status::NotFound("node " + node.ToString());
}

Result<std::vector<Oid>> TopologyIndex::ShortestPath(Oid from_node,
                                                     Oid to_node) const {
  IDBA_ASSIGN_OR_RETURN(size_t src, NodeIndex(from_node));
  IDBA_ASSIGN_OR_RETURN(size_t dst, NodeIndex(to_node));
  if (src == dst) return std::vector<Oid>{};

  // BFS with parent-link tracking.
  std::vector<int64_t> parent_link(nodes_.size(), -1);
  std::vector<int64_t> parent_node(nodes_.size(), -1);
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<size_t> frontier = {src};
  seen[src] = true;
  while (!frontier.empty()) {
    size_t cur = frontier.front();
    frontier.pop_front();
    if (cur == dst) break;
    for (const auto& [next, link_pos] : adjacency_[cur]) {
      if (seen[next]) continue;
      seen[next] = true;
      parent_link[next] = static_cast<int64_t>(link_pos);
      parent_node[next] = static_cast<int64_t>(cur);
      frontier.push_back(next);
    }
  }
  if (!seen[dst]) {
    return Status::NotFound("no path between " + from_node.ToString() + " and " +
                            to_node.ToString());
  }
  std::vector<Oid> path;
  for (size_t cur = dst; cur != src;
       cur = static_cast<size_t>(parent_node[cur])) {
    path.push_back(links_[static_cast<size_t>(parent_link[cur])]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<Oid> TopologyIndex::IncidentLinks(Oid node) const {
  std::vector<Oid> out;
  auto idx = NodeIndex(node);
  if (!idx.ok()) return out;
  for (const auto& [next, link_pos] : adjacency_[idx.value()]) {
    (void)next;
    out.push_back(links_[link_pos]);
  }
  return out;
}

}  // namespace idba
