// The network-management database (paper §1, §4: the MANDATE-style NMS
// that motivated the work). Defines the database schema — deliberately
// free of any GUI attribute, per §2.1 — and generates synthetic managed
// networks: a node/link topology for the monitoring views and a hardware
// containment hierarchy (sites, buildings, racks, devices, cards, ports)
// for the Tree-Map / PDQ browsers.
//
// Link and node classes are wide on purpose: §4.3's observation that the
// display cache is 3-5x smaller than the DB cache rests on display objects
// projecting a handful of the many attributes a real Link carries.

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "objectmodel/schema.h"
#include "server/database_server.h"

namespace idba {

/// Class ids and key attribute names of the NMS schema.
struct NmsSchema {
  ClassId network_node = 0;
  ClassId link = 0;
  ClassId hardware_component = 0;  // base class
  ClassId site = 0;
  ClassId building = 0;
  ClassId rack = 0;
  ClassId device = 0;
  ClassId card = 0;
  ClassId port = 0;
};

/// Registers the NMS classes into `catalog`.
Result<NmsSchema> RegisterNmsSchema(SchemaCatalog* catalog);

struct NmsConfig {
  int num_nodes = 32;
  double avg_degree = 3.0;  ///< links ~= num_nodes * avg_degree / 2
  int sites = 2;
  int buildings_per_site = 2;
  int racks_per_building = 3;
  int devices_per_rack = 4;
  int cards_per_device = 2;
  int ports_per_card = 4;
  uint64_t seed = 42;
};

/// Handle onto a populated NMS database.
struct NmsDatabase {
  NmsSchema schema;
  NmsConfig config;
  std::vector<Oid> node_oids;
  std::vector<Oid> link_oids;
  Oid hardware_root;                 ///< synthetic root site container
  std::vector<Oid> site_oids;
  std::vector<Oid> device_oids;
  std::vector<Oid> all_hardware_oids;  ///< every component incl. root
};

/// Registers the schema (if `catalog` lacks it) and loads a synthetic
/// network through ordinary transactions on `server`.
Result<NmsDatabase> PopulateNms(DatabaseServer* server, const NmsConfig& config);

/// Builds a fresh DatabaseObject of `cls` with catalog defaults applied.
DatabaseObject NewObject(const SchemaCatalog& catalog, ClassId cls, Oid oid);

}  // namespace idba
