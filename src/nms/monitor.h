// The monitoring process (paper §4.3): "a separate process that was
// continuously modifying attribute values of database objects, simulating
// real-time network monitoring". Random-walks link utilizations (and
// occasionally flaps status) through ordinary update transactions.

#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "client/database_client.h"
#include "common/rng.h"
#include "nms/network_model.h"

namespace idba {

struct MonitorOptions {
  uint64_t seed = 7;
  /// Objects updated per step (one transaction per step).
  int updates_per_step = 1;
  /// Zipf skew of object selection (0 = uniform).
  double zipf_theta = 0.0;
  /// Random-walk step size on Utilization.
  double walk_step = 0.15;
  /// Probability a step also flaps a link's Status.
  double flap_probability = 0.02;
  /// Real milliseconds between steps in threaded mode.
  int64_t interval_ms = 10;
};

/// Drives updates against the links of an NmsDatabase. Use StepOnce for
/// deterministic experiments or Start/Stop for the threaded mode.
class MonitorProcess {
 public:
  MonitorProcess(ClientApi* client, const NmsDatabase* db,
                 MonitorOptions opts = {});
  ~MonitorProcess();

  /// Performs one update transaction. Returns the OIDs it updated.
  Result<std::vector<Oid>> StepOnce();

  void Start();
  void Stop();

  uint64_t steps() const { return steps_.Get(); }
  uint64_t updates_committed() const { return committed_.Get(); }
  uint64_t aborts() const { return aborts_.Get(); }

 private:
  ClientApi* client_;
  const NmsDatabase* db_;
  MonitorOptions opts_;
  Rng rng_;
  ZipfGenerator zipf_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  Counter steps_, committed_, aborts_;
};

}  // namespace idba
