#include "nms/display_classes.h"

#include <algorithm>

#include "viz/color.h"

namespace idba {

namespace {

double Utilization(const DatabaseObject& obj, const SchemaCatalog* catalog) {
  auto v = obj.GetByName(*catalog, "Utilization");
  return v.ok() ? v.value().AsNumber() : 0.0;
}

}  // namespace

Result<NmsDisplayClasses> RegisterNmsDisplayClasses(DisplaySchema* schema,
                                                    const SchemaCatalog& catalog,
                                                    const NmsSchema& nms) {
  NmsDisplayClasses out;
  const SchemaCatalog* cat = &catalog;

  // --- ColorCodedLink (figure 1, left) ----------------------------------
  {
    DisplayClassDef def("ColorCodedLink", nms.link);
    def.Project("From", "From")
        .Project("To", "To")
        .Project("Utilization", "Utilization")
        .Derive("Color",
                [cat](const std::vector<DatabaseObject>& srcs) {
                  return Value(UtilizationColorName(Utilization(srcs[0], cat)));
                })
        .Gui("X1", Value(0.0))
        .Gui("Y1", Value(0.0))
        .Gui("X2", Value(0.0))
        .Gui("Y2", Value(0.0))
        .Gui("Selected", Value(false));
    IDBA_ASSIGN_OR_RETURN(out.color_coded_link, schema->Define(std::move(def), catalog));
  }

  // --- WidthCodedLink (figure 1, right) ----------------------------------
  {
    DisplayClassDef def("WidthCodedLink", nms.link);
    def.Project("From", "From")
        .Project("To", "To")
        .Project("Utilization", "Utilization")
        .Derive("Width",
                [cat](const std::vector<DatabaseObject>& srcs) {
                  return Value(UtilizationWidth(Utilization(srcs[0], cat)));
                })
        .Gui("X1", Value(0.0))
        .Gui("Y1", Value(0.0))
        .Gui("X2", Value(0.0))
        .Gui("Y2", Value(0.0))
        .Gui("Selected", Value(false));
    IDBA_ASSIGN_OR_RETURN(out.width_coded_link, schema->Define(std::move(def), catalog));
  }

  // --- NodeIcon ----------------------------------------------------------
  {
    DisplayClassDef def("NodeIcon", nms.network_node);
    def.Project("Name", "Name")
        .Project("Status", "Status")
        .Derive("Icon",
                [cat](const std::vector<DatabaseObject>& srcs) {
                  auto st = srcs[0].GetByName(*cat, "Status");
                  int64_t up = st.ok() ? st.value().AsInt() : 0;
                  return Value(std::string(up == 1 ? "[#]" : "[!]"));
                })
        .Gui("X", Value(0.0))
        .Gui("Y", Value(0.0))
        .Gui("Selected", Value(false));
    IDBA_ASSIGN_OR_RETURN(out.node_icon, schema->Define(std::move(def), catalog));
  }

  // --- PathSummary: one line for a whole path of links (§3.1) ------------
  {
    DisplayClassDef def("PathSummary", nms.link);
    def.Derive("MaxUtilization",
               [cat](const std::vector<DatabaseObject>& srcs) {
                 double max_u = 0;
                 for (const auto& s : srcs) max_u = std::max(max_u, Utilization(s, cat));
                 return Value(max_u);
               })
        .Derive("AvgUtilization",
                [cat](const std::vector<DatabaseObject>& srcs) {
                  double sum = 0;
                  for (const auto& s : srcs) sum += Utilization(s, cat);
                  return Value(srcs.empty() ? 0.0 : sum / srcs.size());
                })
        .Derive("Color",
                [cat](const std::vector<DatabaseObject>& srcs) {
                  double max_u = 0;
                  for (const auto& s : srcs) max_u = std::max(max_u, Utilization(s, cat));
                  return Value(UtilizationColorName(max_u));
                })
        .Derive("HopCount",
                [](const std::vector<DatabaseObject>& srcs) {
                  return Value(static_cast<int64_t>(srcs.size()));
                })
        .Gui("X1", Value(0.0))
        .Gui("Y1", Value(0.0))
        .Gui("X2", Value(0.0))
        .Gui("Y2", Value(0.0));
    IDBA_ASSIGN_OR_RETURN(out.path_summary, schema->Define(std::move(def), catalog));
  }

  // --- HardwareTile: Tree-Map rectangle ----------------------------------
  {
    DisplayClassDef def("HardwareTile", nms.hardware_component);
    def.Project("Name", "Name")
        .Project("Capacity", "Capacity")
        .Project("Status", "Status")
        .Project("Utilization", "Utilization")
        .Derive("Color",
                [cat](const std::vector<DatabaseObject>& srcs) {
                  return Value(UtilizationColorName(Utilization(srcs[0], cat)));
                })
        .Gui("RectX", Value(0.0))
        .Gui("RectY", Value(0.0))
        .Gui("RectW", Value(0.0))
        .Gui("RectH", Value(0.0));
    IDBA_ASSIGN_OR_RETURN(out.hardware_tile, schema->Define(std::move(def), catalog));
  }

  // --- PdqComponent: PDQ browser node ------------------------------------
  {
    DisplayClassDef def("PdqComponent", nms.hardware_component);
    def.Project("Name", "Name")
        .Project("Parent", "Parent")
        .Project("Status", "Status")
        .Project("Utilization", "Utilization")
        .Gui("X", Value(0.0))
        .Gui("Y", Value(0.0))
        .Gui("Visible", Value(true));
    IDBA_ASSIGN_OR_RETURN(out.pdq_component, schema->Define(std::move(def), catalog));
  }

  return out;
}

}  // namespace idba
