#include "nms/workload.h"

#include <cstdio>
#include <thread>

namespace idba {

Result<std::unique_ptr<WorkloadRunner>> WorkloadRunner::Create(
    WorkloadConfig config) {
  auto runner = std::unique_ptr<WorkloadRunner>(new WorkloadRunner(config));
  DeploymentOptions dopts = config.deployment;
  dopts.server.integrated_display_locks = dopts.dlm.integrated;
  runner->deployment_ = std::make_unique<Deployment>(dopts);
  IDBA_ASSIGN_OR_RETURN(
      runner->db_, PopulateNms(&runner->deployment_->server(), config.network));
  IDBA_ASSIGN_OR_RETURN(
      runner->dcs_,
      RegisterNmsDisplayClasses(&runner->deployment_->display_schema(),
                                runner->deployment_->server().schema(),
                                runner->db_.schema));
  for (int i = 0; i < config.operators; ++i) {
    OperatorOptions oo = config.operator_options;
    oo.seed = config.seed + static_cast<uint64_t>(i) * 7919;
    IDBA_ASSIGN_OR_RETURN(
        auto op, OperatorSession::Create(runner->deployment_.get(), 100 + i,
                                         &runner->db_, &runner->dcs_, oo));
    runner->operators_.push_back(std::move(op));
  }
  if (config.monitor_steps_per_round > 0) {
    runner->monitor_session_ = runner->deployment_->NewSession(50);
    MonitorOptions mo = config.monitor_options;
    mo.seed = config.seed ^ 0xF00D;
    runner->monitor_ = std::make_unique<MonitorProcess>(
        &runner->monitor_session_->client(), &runner->db_, mo);
  }
  return runner;
}

std::vector<OperatorSession*> WorkloadRunner::operators() {
  std::vector<OperatorSession*> out;
  for (auto& op : operators_) out.push_back(op.get());
  return out;
}

Result<WorkloadReport> WorkloadRunner::Run() {
  if (ran_) return Status::InvalidArgument("workload already ran");
  ran_ = true;

  if (config_.threaded) {
    std::vector<std::thread> threads;
    for (auto& op : operators_) {
      threads.emplace_back([&, op = op.get()] {
        for (int s = 0; s < config_.steps_per_operator; ++s) {
          (void)op->StepOnce();
        }
      });
    }
    if (monitor_) {
      for (int s = 0;
           s < config_.steps_per_operator * config_.monitor_steps_per_round;
           ++s) {
        (void)monitor_->StepOnce();
      }
    }
    for (auto& t : threads) t.join();
  } else {
    for (int s = 0; s < config_.steps_per_operator; ++s) {
      if (monitor_) {
        for (int m = 0; m < config_.monitor_steps_per_round; ++m) {
          (void)monitor_->StepOnce();
        }
      }
      for (auto& op : operators_) {
        IDBA_RETURN_NOT_OK(op->StepOnce().status());
      }
    }
  }

  // Drain every session, then report.
  WorkloadReport report;
  double propagation_sum = 0;
  for (auto& op : operators_) {
    op->session().PumpOnce();
    report.monitor_actions += op->monitor_actions();
    report.updates_attempted += op->updates_attempted();
    report.updates_committed += op->updates_committed();
    report.updates_aborted += op->updates_aborted();
    report.marked_skips += op->marked_skips();
    ActiveView* view = op->view();
    report.refreshes += view->refreshes();
    report.intent_marks += view->intent_marks();
    propagation_sum += view->propagation_ms().mean();
    report.propagation_p95_ms =
        std::max(report.propagation_p95_ms, view->propagation_ms().Percentile(0.95));
    report.stale_display_objects += view->CountStaleObjects();
  }
  report.propagation_mean_ms =
      operators_.empty() ? 0 : propagation_sum / operators_.size();
  if (monitor_) report.monitor_commits = monitor_->updates_committed();
  report.deployment_stats = CollectStats(*deployment_);
  return report;
}

std::string WorkloadReport::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "ops: %llu monitor-actions, %llu/%llu updates committed (%.1f%% aborts, "
      "%llu mark-skips) | displays: %llu refreshes, %llu intent marks, "
      "propagation %.0f ms mean / %.0f ms p95, %llu stale | monitor: %llu "
      "commits",
      static_cast<unsigned long long>(monitor_actions),
      static_cast<unsigned long long>(updates_committed),
      static_cast<unsigned long long>(updates_attempted), abort_rate() * 100,
      static_cast<unsigned long long>(marked_skips),
      static_cast<unsigned long long>(refreshes),
      static_cast<unsigned long long>(intent_marks), propagation_mean_ms,
      propagation_p95_ms, static_cast<unsigned long long>(stale_display_objects),
      static_cast<unsigned long long>(monitor_commits));
  return buf;
}

}  // namespace idba
