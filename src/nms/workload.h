// Closed-loop workload runner: the §4.3 test setup (N operators + monitor
// process over one deployment) as a reusable, parameterized harness with a
// measurement report — what exp_* binaries and integration tests otherwise
// wire up by hand.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/stats_report.h"
#include "nms/monitor.h"
#include "nms/operators.h"

namespace idba {

struct WorkloadConfig {
  NmsConfig network;
  DeploymentOptions deployment;
  int operators = 4;
  OperatorOptions operator_options;
  /// Steps each operator performs.
  int steps_per_operator = 50;
  /// Monitor steps interleaved per operator round (0 disables the monitor).
  int monitor_steps_per_round = 1;
  MonitorOptions monitor_options;
  /// Run operators on concurrent threads (false = deterministic
  /// round-robin interleaving on the calling thread).
  bool threaded = false;
  uint64_t seed = 99;
};

/// Aggregated outcome of one workload run.
struct WorkloadReport {
  // Operator totals.
  uint64_t monitor_actions = 0;
  uint64_t updates_attempted = 0;
  uint64_t updates_committed = 0;
  uint64_t updates_aborted = 0;
  uint64_t marked_skips = 0;
  // Display totals.
  uint64_t refreshes = 0;
  uint64_t intent_marks = 0;
  double propagation_mean_ms = 0;
  double propagation_p95_ms = 0;
  uint64_t stale_display_objects = 0;  ///< after final drain; must be 0
  // Monitor.
  uint64_t monitor_commits = 0;
  // Deployment snapshot.
  DeploymentStats deployment_stats;

  double abort_rate() const {
    return updates_attempted
               ? static_cast<double>(updates_aborted) / updates_attempted
               : 0.0;
  }
  std::string Summary() const;
};

/// Owns a deployment + populated database + operators + monitor; runs the
/// configured workload and reports.
class WorkloadRunner {
 public:
  /// Builds the deployment, database, display classes and operators.
  static Result<std::unique_ptr<WorkloadRunner>> Create(WorkloadConfig config);

  /// Runs the configured steps (threaded or deterministic) and returns the
  /// aggregated report. Callable once.
  Result<WorkloadReport> Run();

  Deployment& deployment() { return *deployment_; }
  const NmsDatabase& database() const { return db_; }
  std::vector<OperatorSession*> operators();

 private:
  explicit WorkloadRunner(WorkloadConfig config) : config_(std::move(config)) {}

  WorkloadConfig config_;
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
  std::vector<std::unique_ptr<OperatorSession>> operators_;
  std::unique_ptr<InteractiveSession> monitor_session_;
  std::unique_ptr<MonitorProcess> monitor_;
  bool ran_ = false;
};

}  // namespace idba
