#include "nms/operators.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace idba {

Result<std::unique_ptr<OperatorSession>> OperatorSession::Create(
    Deployment* deployment, ClientId id, const NmsDatabase* db,
    const NmsDisplayClasses* dcs, OperatorOptions opts) {
  auto session = deployment->NewSession(id);
  auto op = std::unique_ptr<OperatorSession>(new OperatorSession(
      deployment, db, dcs, opts, std::move(session)));

  // Build the monitoring view: color-coded links.
  op->view_ = op->session_->CreateView("monitor-" + std::to_string(id));
  const DisplayClassDef* link_dc =
      deployment->display_schema().Find(dcs->color_coded_link);
  if (link_dc == nullptr) {
    return Status::NotFound("ColorCodedLink display class not registered");
  }
  size_t n = opts.view_size == 0
                 ? db->link_oids.size()
                 : std::min(opts.view_size, db->link_oids.size());
  for (size_t i = 0; i < n; ++i) {
    IDBA_RETURN_NOT_OK(
        op->view_->Materialize(link_dc, {db->link_oids[i]}).status());
    op->my_links_.push_back(db->link_oids[i]);
  }
  op->zipf_ = std::make_unique<ZipfGenerator>(op->my_links_.size(),
                                              opts.zipf_theta);
  return op;
}

OperatorSession::OperatorSession(Deployment* deployment, const NmsDatabase* db,
                                 const NmsDisplayClasses* dcs,
                                 OperatorOptions opts,
                                 std::unique_ptr<InteractiveSession> session)
    : deployment_(deployment), db_(db), dcs_(dcs), opts_(opts),
      session_(std::move(session)), rng_(opts.seed) {}

OperatorSession::~OperatorSession() = default;

Result<OperatorStepResult> OperatorSession::StepOnce() {
  OperatorStepResult result;
  // Process whatever notifications arrived since the last action (the
  // paper's listener would have handled them during think time).
  session_->PumpOnce();

  ClientApi& client = session_->client();
  const SchemaCatalog& catalog = client.schema();

  if (!rng_.NextBool(opts_.update_probability)) {
    // Monitoring action: inspect a displayed element (pure display-cache
    // work; this is the interaction the display cache keeps fast).
    monitors_.Add();
    auto dobs = view_->display_objects();
    if (!dobs.empty()) {
      DisplayObject* dob = dobs[rng_.NextBelow(dobs.size())];
      (void)dob->Get("Utilization");
      (void)dob->SetGui("Selected", true);
      (void)dob->SetGui("Selected", false);
    }
    return result;
  }

  // Configuration update: edit one or more of the viewed links. The X
  // lock is taken at edit START (when the user opens the configuration
  // dialog) — that is the moment the early-notify intent is broadcast.
  result.was_update = true;
  std::vector<Oid> targets;
  for (int i = 0; i < opts_.links_per_update; ++i) {
    Oid oid = my_links_[zipf_->Next(rng_)];
    bool dup = false;
    for (Oid t : targets) dup |= (t == oid);
    if (!dup) targets.push_back(oid);
  }
  if (opts_.honor_update_marks) {
    for (Oid oid : targets) {
      if (view_->IsSourceMarked(oid)) {
        // Early-notify: someone else is editing this object — back off.
        result.skipped_marked = true;
        skips_.Add();
        return result;
      }
    }
  }
  attempts_.Add();
  TxnId txn = client.Begin();
  for (size_t i = 0; i < targets.size(); ++i) {
    auto obj = client.Read(txn, targets[i]);
    if (!obj.ok()) {
      (void)client.Abort(txn);
      aborts_.Add();
      result.aborted = true;
      return result;
    }
    DatabaseObject link = std::move(obj).value();
    int64_t metric = link.GetByName(catalog, "CostMetric")
                         .value_or(Value(int64_t(10)))
                         .AsInt();
    IDBA_RETURN_NOT_OK(
        link.SetByName(catalog, "CostMetric", int64_t((metric % 100) + 1)));
    IDBA_RETURN_NOT_OK(link.SetByName(catalog, "AdminState",
                                      int64_t(rng_.NextBool(0.9) ? 1 : 0)));
    // Acquire the X lock now (sends the update intention under early
    // notify), then keep editing.
    Status st = client.Write(txn, std::move(link));
    if (!st.ok()) {
      (void)client.Abort(txn);
      aborts_.Add();
      result.aborted = true;
      return result;
    }
    if (opts_.edit_time_ms > 0 && i + 1 < targets.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts_.edit_time_ms));
    }
  }
  if (opts_.edit_time_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.edit_time_ms));
  }
  auto commit = client.Commit(txn);
  if (!commit.ok()) {
    aborts_.Add();
    result.aborted = true;
    return result;
  }
  commits_.Add();
  result.committed = true;
  return result;
}

}  // namespace idba
