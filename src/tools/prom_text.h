// Minimal parser for the Prometheus text exposition format, used by the
// operator CLIs (idba_stat --watch, idba_top) to consume the METRICS admin
// RPC. The CLIs deliberately dogfood the same bytes a scraper sees over
// --prom-port, so any exposition bug is visible interactively too.
//
// Only what the exporter emits is supported: `name value` and
// `name{le="bound"} value` sample lines plus `#`-prefixed comment lines.
// Histograms are reassembled from their `_bucket`/`_sum`/`_count` series.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace idba {
namespace tools {

/// Flat sample map keyed by the full series name including its label set,
/// verbatim as exposed (e.g. `idba_rpc_Fetch_total_us_bucket{le="512"}`).
using PromSamples = std::map<std::string, double>;

inline PromSamples ParsePromText(const std::string& text) {
  PromSamples out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol > pos && text[pos] != '#') {
      const std::string line = text.substr(pos, eol - pos);
      // The value is everything after the last space; labels may contain
      // escaped quotes but never a raw space in this exporter's output.
      size_t sp = line.rfind(' ');
      if (sp != std::string::npos && sp > 0) {
        const std::string key = line.substr(0, sp);
        char* end = nullptr;
        const std::string val = line.substr(sp + 1);
        double v = std::strtod(val.c_str(), &end);
        if (val == "+Inf") v = HUGE_VAL;
        if (end != val.c_str()) out[key] = v;
      }
    }
    pos = eol + 1;
  }
  return out;
}

/// One histogram reassembled from its exposition series. Bucket counts are
/// cumulative (as exposed); `bounds[i]` is the `le` upper bound, with the
/// final +Inf bucket always last when present.
struct PromHistogram {
  std::vector<double> bounds;
  std::vector<uint64_t> cumulative;
  uint64_t count = 0;
  double sum = 0;
  bool found = false;
};

/// Extracts histogram `base` (e.g. "idba_rpc_Fetch_total_us") from a parsed
/// sample map. Buckets arrive in ascending `le` order because the exporter
/// writes them that way and std::map orders keys; `le` values are compared
/// numerically below to be safe.
inline PromHistogram ExtractHistogram(const PromSamples& samples,
                                      const std::string& base) {
  PromHistogram h;
  const std::string bucket_prefix = base + "_bucket{le=\"";
  std::vector<std::pair<double, uint64_t>> buckets;
  for (auto it = samples.lower_bound(bucket_prefix);
       it != samples.end() && it->first.compare(0, bucket_prefix.size(),
                                                bucket_prefix) == 0;
       ++it) {
    const std::string le =
        it->first.substr(bucket_prefix.size(),
                         it->first.size() - bucket_prefix.size() - 2);
    const double bound = le == "+Inf" ? HUGE_VAL : std::atof(le.c_str());
    buckets.emplace_back(bound, static_cast<uint64_t>(it->second));
  }
  std::sort(buckets.begin(), buckets.end());
  for (const auto& [bound, cum] : buckets) {
    h.bounds.push_back(bound);
    h.cumulative.push_back(cum);
  }
  auto cnt = samples.find(base + "_count");
  auto sum = samples.find(base + "_sum");
  if (cnt != samples.end()) h.count = static_cast<uint64_t>(cnt->second);
  if (sum != samples.end()) h.sum = sum->second;
  h.found = !h.bounds.empty() || cnt != samples.end();
  return h;
}

/// Quantile (q in [0,1]) of the events recorded *between* two scrapes of
/// the same histogram: subtracts cumulative bucket counts and walks the
/// per-window distribution. Interpolates linearly inside the winning
/// bucket; the open-ended +Inf bucket reports its lower bound. Pass an
/// empty `prev` (default PromHistogram) for an all-time quantile. Returns
/// 0 when the window recorded nothing.
inline double QuantileOfDelta(const PromHistogram& cur,
                              const PromHistogram& prev, double q) {
  if (cur.bounds.empty()) return 0;
  std::vector<uint64_t> delta(cur.bounds.size(), 0);
  uint64_t total = 0;
  uint64_t prev_cum_cur = 0;
  for (size_t i = 0; i < cur.bounds.size(); ++i) {
    uint64_t cur_in_bucket = cur.cumulative[i] - prev_cum_cur;
    prev_cum_cur = cur.cumulative[i];
    uint64_t prev_in_bucket = 0;
    // Match prev's bucket by bound (the exporter omits all-zero tail
    // buckets, so the two scrapes may expose different bucket lists).
    for (size_t j = 0; j < prev.bounds.size(); ++j) {
      if (prev.bounds[j] == cur.bounds[i]) {
        prev_in_bucket = prev.cumulative[j] - (j == 0 ? 0 : prev.cumulative[j - 1]);
        break;
      }
    }
    delta[i] = cur_in_bucket >= prev_in_bucket ? cur_in_bucket - prev_in_bucket
                                               : 0;
    total += delta[i];
  }
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] == 0) continue;
    if (static_cast<double>(seen + delta[i]) >= target) {
      const double lo = i == 0 ? 0 : cur.bounds[i - 1];
      const double hi = cur.bounds[i];
      if (hi == HUGE_VAL) return lo;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(delta[i]);
      return lo + (hi - lo) * (frac < 0 ? 0 : frac > 1 ? 1 : frac);
    }
    seen += delta[i];
  }
  return cur.bounds.back() == HUGE_VAL && cur.bounds.size() > 1
             ? cur.bounds[cur.bounds.size() - 2]
             : cur.bounds.back();
}

/// Sample value or 0 when absent.
inline double SampleOr0(const PromSamples& s, const std::string& key) {
  auto it = s.find(key);
  return it == s.end() ? 0 : it->second;
}

}  // namespace tools
}  // namespace idba
