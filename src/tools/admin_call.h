// Shared admin-RPC helper for the operator CLIs (idba_stat, idba_top).
//
// Admin methods (STATS, METRICS, LOCKS, CACHES, TRACE_DUMP) are callable
// on a fresh connection without a Hello handshake and are exempt from
// admission-control shedding, so these tools can be pointed at a loaded
// production server without perturbing session state.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace idba {
namespace tools {

/// One admin RPC on `sock`: request payload is method | client_vtime |
/// method body; response is [TraceInfo] status | completion | body.
/// `seq` must be unique per in-flight request on the connection; callers
/// issuing repeated calls (watch loops) should increment it.
inline Status AdminCall(Socket& sock, wire::Method method,
                        const std::vector<uint8_t>& method_body,
                        std::string* out, uint64_t seq = 1) {
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU8(static_cast<uint8_t>(method));
  enc.PutI64(0);  // client vtime: admin calls are unmetered
  payload.insert(payload.end(), method_body.begin(), method_body.end());
  std::mutex write_mu;
  IDBA_RETURN_NOT_OK(
      sock.WriteFrame(write_mu, wire::FrameType::kRequest, seq, payload));
  wire::FrameHeader header;
  std::vector<uint8_t> resp;
  // Skip any NOTIFY/CALLBACK frames the server might interleave (none are
  // expected pre-Hello, but be robust).
  for (;;) {
    IDBA_RETURN_NOT_OK(sock.ReadFrame(&header, &resp));
    if (header.type == wire::FrameType::kResponse) break;
  }
  Decoder dec(resp.data(), resp.size());
  if (header.traced) {
    wire::TraceInfo ignored;
    IDBA_RETURN_NOT_OK(wire::DecodeTraceInfo(&dec, &ignored));
  }
  Status st;
  IDBA_RETURN_NOT_OK(wire::DecodeStatus(&dec, &st));
  IDBA_RETURN_NOT_OK(st);
  int64_t completion = 0;
  IDBA_RETURN_NOT_OK(dec.GetI64(&completion));
  return dec.GetString(out);
}

/// Splits "host:port" (port mandatory). Returns false on malformed input.
inline bool SplitHostPort(const std::string& connect, std::string* host,
                          uint16_t* port) {
  auto colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos) return false;
  *host = connect.substr(0, colon);
  *port = static_cast<uint16_t>(std::atoi(connect.c_str() + colon + 1));
  return true;
}

}  // namespace tools
}  // namespace idba
