// idba_top: refreshing terminal dashboard for a running idba_serve.
//
//   ./idba_top --connect 127.0.0.1:7450                # refresh every 2 s
//   ./idba_top --connect 127.0.0.1:7450 --interval 5
//   ./idba_top --connect 127.0.0.1:7450 --count 10     # exit after 10 frames
//   ./idba_top --connect 127.0.0.1:7450 --once         # one frame, no ANSI
//
// Each frame scrapes the METRICS admin RPC (Prometheus text — the same
// bytes a scraper sees over --prom-port) and renders per-interval deltas:
// RPC rates with per-opcode p50/p99, transport throughput, per-I/O-loop
// reactor health (wakeups/s, task-dispatch lag p99, connection count),
// cache hit rates, lock-manager activity and overload-shedding counters. The first
// frame after connect shows since-boot totals; every later frame shows the
// interval window. --once prints the totals frame and exits (used by the
// smoke test and handy for cron snapshots).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tools/admin_call.h"
#include "tools/prom_text.h"

namespace {

using idba::Encoder;
using idba::Socket;
using idba::Status;
using idba::tools::AdminCall;
using idba::tools::ExtractHistogram;
using idba::tools::ParsePromText;
using idba::tools::PromHistogram;
using idba::tools::PromSamples;
using idba::tools::QuantileOfDelta;
using idba::tools::SampleOr0;

struct RpcRow {
  std::string opcode;
  double calls = 0;
  double p50 = 0;
  double p99 = 0;
};

double DeltaOf(const PromSamples& cur, const PromSamples& prev,
               const std::string& key) {
  const double d = SampleOr0(cur, key) - SampleOr0(prev, key);
  return d > 0 ? d : 0;
}

/// Renders one frame. `prev` is empty on the first frame, which turns every
/// delta into a since-boot total (interval_s is then the sentinel 0 and
/// rates are suppressed).
void RenderFrame(const std::string& target, const PromSamples& cur,
                 const PromSamples& prev, double interval_s, int frame) {
  const bool windowed = interval_s > 0;
  std::printf("idba_top — %s    %s    frame %d\n", target.c_str(),
              windowed
                  ? ("window " + std::to_string(static_cast<long>(interval_s)) +
                     "s")
                        .c_str()
                  : "since boot",
              frame);

  // --- RPC: one row per opcode with recorded server-side latency ---------
  std::vector<RpcRow> rows;
  const std::string prefix = "idba_rpc_";
  const std::string suffix = "_total_us_count";
  for (const auto& [key, value] : cur) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    if (key.size() <= prefix.size() + suffix.size()) continue;
    if (key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string base = key.substr(0, key.size() - 6);  // strip _count
    RpcRow row;
    row.opcode = key.substr(prefix.size(),
                            key.size() - prefix.size() - suffix.size());
    const PromHistogram ch = ExtractHistogram(cur, base);
    const PromHistogram ph =
        prev.empty() ? PromHistogram{} : ExtractHistogram(prev, base);
    row.calls = static_cast<double>(ch.count) -
                static_cast<double>(ph.found ? ph.count : 0);
    if (row.calls <= 0) continue;
    row.p50 = QuantileOfDelta(ch, ph, 0.50);
    row.p99 = QuantileOfDelta(ch, ph, 0.99);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const RpcRow& a, const RpcRow& b) { return a.calls > b.calls; });
  std::printf("\nRPC %-20s %10s %10s %10s %10s\n", "opcode",
              windowed ? "req/s" : "calls", "p50 us", "p99 us", "count");
  if (rows.empty()) std::printf("    (no RPCs%s)\n", windowed ? " this window" : "");
  for (const RpcRow& r : rows) {
    std::printf("    %-20s %10.1f %10.0f %10.0f %10.0f\n", r.opcode.c_str(),
                windowed ? r.calls / interval_s : r.calls, r.p50, r.p99,
                r.calls);
  }

  // --- transport ---------------------------------------------------------
  const double div = windowed ? interval_s : 1;
  std::printf("\nTRANSPORT  req%s %.1f   notify%s %.1f   in KB%s %.1f   "
              "out KB%s %.1f   inflight %.0f\n",
              windowed ? "/s" : "", DeltaOf(cur, prev, "idba_transport_requests_total") / div,
              windowed ? "/s" : "", DeltaOf(cur, prev, "idba_transport_notifications_total") / div,
              windowed ? "/s" : "", DeltaOf(cur, prev, "idba_transport_bytes_in_total") / div / 1024.0,
              windowed ? "/s" : "", DeltaOf(cur, prev, "idba_transport_bytes_out_total") / div / 1024.0,
              SampleOr0(cur, "idba_transport_inflight"));

  // --- I/O loops ---------------------------------------------------------
  // One row per reactor loop, keyed off the per-loop series the EventLoop
  // registers when given a metric prefix (net.loop.<i>.*). Loop indices are
  // dense from 0, so stop at the first missing wakeups counter.
  {
    bool header = false;
    for (int loop = 0;; ++loop) {
      const std::string base = "idba_net_loop_" + std::to_string(loop);
      const std::string wakeups_key = base + "_wakeups_total";
      if (cur.find(wakeups_key) == cur.end()) break;
      if (!header) {
        std::printf("\nLOOPS %-6s %12s %12s %12s %8s\n", "loop",
                    windowed ? "wakeups/s" : "wakeups", "lag p50 us",
                    "lag p99 us", "conns");
        header = true;
      }
      const PromHistogram ch = ExtractHistogram(cur, base + "_lag_us");
      const PromHistogram ph = prev.empty()
                                   ? PromHistogram{}
                                   : ExtractHistogram(prev, base + "_lag_us");
      std::printf("    io-%-4d %12.1f %12.0f %12.0f %8.0f\n", loop,
                  DeltaOf(cur, prev, wakeups_key) / div,
                  QuantileOfDelta(ch, ph, 0.50), QuantileOfDelta(ch, ph, 0.99),
                  SampleOr0(cur, base + "_conns"));
    }
    if (header) {
      const PromHistogram ch = ExtractHistogram(cur, "idba_net_loop_lag_us");
      const PromHistogram ph =
          prev.empty() ? PromHistogram{}
                       : ExtractHistogram(prev, "idba_net_loop_lag_us");
      std::printf("    all task lag p50 %.0f us   p99 %.0f us   "
                  "health stalls %.0f\n",
                  QuantileOfDelta(ch, ph, 0.50), QuantileOfDelta(ch, ph, 0.99),
                  SampleOr0(cur, "idba_health_stalls_total"));
    }
  }

  // --- caches ------------------------------------------------------------
  std::printf("\nCACHE %-10s %10s %10s %8s   gauges\n", "tier",
              windowed ? "hit/s" : "hits", windowed ? "miss/s" : "misses",
              "hit%");
  const struct {
    const char* tier;
    const char* hits;
    const char* misses;
    std::string gauges;
  } tiers[] = {
      {"page", "idba_cache_page_hits_total", "idba_cache_page_misses_total",
       "resident " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_page_resident_frames"))) +
           "  dirty " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_page_dirty_frames"))) +
           "  pinned " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_page_pinned_frames")))},
      {"object", "idba_cache_object_hits_total",
       "idba_cache_object_misses_total",
       "entries " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_object_entries"))) +
           "  bytes " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_object_bytes_used")))},
      {"display", "idba_cache_display_hits_total",
       "idba_cache_display_misses_total",
       "objects " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_display_objects"))) +
           "  bytes " +
           std::to_string(static_cast<long>(
               SampleOr0(cur, "idba_cache_display_bytes_used")))},
  };
  for (const auto& t : tiers) {
    const double hits = DeltaOf(cur, prev, t.hits);
    const double misses = DeltaOf(cur, prev, t.misses);
    const double total = hits + misses;
    std::printf("    %-10s %10.1f %10.1f %7.1f%%   %s\n", t.tier, hits / div,
                misses / div, total > 0 ? 100.0 * hits / total : 0.0,
                t.gauges.c_str());
  }

  // --- locks -------------------------------------------------------------
  {
    const PromHistogram ch = ExtractHistogram(cur, "idba_txn_lock_wait_us");
    const PromHistogram ph = prev.empty()
                                 ? PromHistogram{}
                                 : ExtractHistogram(prev, "idba_txn_lock_wait_us");
    std::printf("\nLOCKS      grants%s %.1f   waits%s %.1f   wait p50 %.0f us   "
                "p99 %.0f us   deadlocks %.0f   timeouts %.0f\n",
                windowed ? "/s" : "",
                DeltaOf(cur, prev, "idba_txn_lock_grants_total") / div,
                windowed ? "/s" : "",
                DeltaOf(cur, prev, "idba_txn_lock_waits_total") / div,
                QuantileOfDelta(ch, ph, 0.50), QuantileOfDelta(ch, ph, 0.99),
                SampleOr0(cur, "idba_txn_lock_deadlocks_total"),
                SampleOr0(cur, "idba_txn_lock_timeouts_total"));
  }

  // --- overload ladder ---------------------------------------------------
  std::printf("\nOVERLOAD   rejected %.0f   oneway shed %.0f   coalesced %.0f"
              "   notify shed %.0f   overflows %.0f   forced resyncs %.0f"
              "   slow disconnects %.0f\n",
              DeltaOf(cur, prev, "idba_overload_rejections_total"),
              DeltaOf(cur, prev, "idba_overload_oneway_shed_total"),
              DeltaOf(cur, prev, "idba_overload_notify_coalesced_total"),
              DeltaOf(cur, prev, "idba_overload_notify_shed_total"),
              DeltaOf(cur, prev, "idba_overload_notify_overflows_total"),
              DeltaOf(cur, prev, "idba_overload_forced_resyncs_total"),
              DeltaOf(cur, prev, "idba_overload_slow_disconnects_total"));

  // --- consistency auditor ----------------------------------------------
  {
    const PromHistogram ch = ExtractHistogram(cur, "idba_display_staleness_slo_us");
    const PromHistogram ph =
        prev.empty() ? PromHistogram{}
                     : ExtractHistogram(prev, "idba_display_staleness_slo_us");
    std::printf("\nAUDIT      checks%s %.1f   violations %.0f (mono %.0f "
                "vis %.0f coh %.0f)   slo misses %.0f   settled%s %.1f   "
                "staleness p50 %.0f vus   p99 %.0f vus\n",
                windowed ? "/s" : "",
                DeltaOf(cur, prev, "idba_consistency_checks_total") / div,
                SampleOr0(cur, "idba_consistency_violations_total"),
                SampleOr0(cur, "idba_consistency_monotonicity_violations_total"),
                SampleOr0(cur, "idba_consistency_visibility_violations_total"),
                SampleOr0(cur, "idba_consistency_coherence_violations_total"),
                SampleOr0(cur, "idba_consistency_slo_violations_total"),
                windowed ? "/s" : "",
                DeltaOf(cur, prev, "idba_consistency_obligations_settled_total") /
                    div,
                QuantileOfDelta(ch, ph, 0.50), QuantileOfDelta(ch, ph, 0.99));
  }
  std::fflush(stdout);
}

int Fail(const Status& st, const char* what) {
  std::fprintf(stderr, "idba_top: %s: %s\n", what, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  long interval_s = 2;
  long count = 0;  // 0 = until interrupted
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_s = std::atol(argv[++i]);
      if (interval_s <= 0) interval_s = 1;
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --connect HOST:PORT [--interval SECS] "
                   "[--count N] [--once]\n",
                   argv[0]);
      return 2;
    }
  }
  std::string host;
  uint16_t port = 0;
  if (!idba::tools::SplitHostPort(connect, &host, &port)) {
    std::fprintf(stderr, "idba_top: --connect HOST:PORT is required\n");
    return 2;
  }

  auto sock = Socket::ConnectTo(host, port, /*connect_timeout_ms=*/5000);
  if (!sock.ok()) return Fail(sock.status(), "connect");
  Status st = sock.value().SetRecvTimeout(5000);
  if (!st.ok()) return Fail(st, "recv timeout");

  PromSamples prev;
  uint64_t seq = 1;
  for (long frame = 0; count == 0 || frame < count || (once && frame < 1);
       ++frame) {
    std::vector<uint8_t> body;
    Encoder enc(&body);
    enc.PutU8(0);  // METRICS format 0: Prometheus text
    std::string text;
    st = AdminCall(sock.value(), idba::wire::Method::kMetrics, body, &text,
                   seq++);
    if (!st.ok()) return Fail(st, "METRICS");
    PromSamples cur = ParsePromText(text);
    if (!once) std::printf("\x1b[H\x1b[2J");  // home + clear
    RenderFrame(connect, cur, prev,
                frame == 0 ? 0 : static_cast<double>(interval_s), frame);
    if (once || (count != 0 && frame + 1 >= count)) break;
    prev = std::move(cur);
    std::this_thread::sleep_for(std::chrono::seconds(interval_s));
  }
  return 0;
}
