// idba_stat: live introspection CLI for a running idba_serve.
//
// Speaks the raw wire protocol (no Hello handshake: STATS, METRICS, LOCKS,
// CACHES and TRACE_DUMP are admin methods callable on a fresh connection),
// so it never perturbs session state — it can be pointed at a production
// server mid-run.
//
//   ./idba_stat --connect 127.0.0.1:7450            # human-readable stats
//   ./idba_stat --connect 127.0.0.1:7450 --json     # raw MetricsRegistry
//                                    # DumpJson (counters/gauges/histograms)
//   ./idba_stat --connect 127.0.0.1:7450 --stats-json
//                                    # transport/session STATS document
//   ./idba_stat --connect 127.0.0.1:7450 --locks    # lock-table dump (JSON)
//   ./idba_stat --connect 127.0.0.1:7450 --caches   # cache-hierarchy dump
//   ./idba_stat --connect 127.0.0.1:7450 --prom     # Prometheus exposition
//   ./idba_stat --connect 127.0.0.1:7450 --watch 2  # repeat every 2 s,
//                                    # printing per-interval deltas/rates
//   ./idba_stat --connect 127.0.0.1:7450 --trace trace.json
//                                    # dump the server's span ring as a
//                                    # Chrome trace (load in about://tracing)
//   ./idba_stat --connect 127.0.0.1:7450 --trace-jsonl spans.jsonl --clear
//   ./idba_stat --connect 127.0.0.1:7450 --profile 2
//                                    # sample the server for 2 s at
//                                    # --profile-hz (default 99) and print
//                                    # folded stacks (flamegraph.pl input)
//   ./idba_stat --connect 127.0.0.1:7450 --flight flight.dump
//                                    # fetch the flight recorder's
//                                    # per-thread recent-event rings
//   ./idba_stat --connect 127.0.0.1:7450 --audit
//                                    # fetch the consistency auditor's
//                                    # report (mode, SLO, violation ring)
//
// The text report covers transport counters, connected sessions (with
// negotiated wire version), the display-lock table, the slow-RPC ring
// (with trace ids), trace-recorder occupancy, and every registered
// counter/histogram (rpc.* latency decompositions, display.staleness_vtime,
// storage/txn counters, ...).
//
// --watch computes deltas from the Prometheus exposition (the same bytes a
// scraper sees): counters print as rates, gauges as current values, and
// histograms as per-window p50/p99.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tools/admin_call.h"
#include "tools/prom_text.h"

namespace {

using idba::Encoder;
using idba::Socket;
using idba::Status;
using idba::tools::AdminCall;
using idba::tools::ExtractHistogram;
using idba::tools::ParsePromText;
using idba::tools::PromHistogram;
using idba::tools::PromSamples;
using idba::tools::QuantileOfDelta;

int Fail(const Status& st, const char* what) {
  std::fprintf(stderr, "idba_stat: %s: %s\n", what, st.ToString().c_str());
  return 1;
}

/// One --watch report: counters as rates over the interval, gauges as
/// levels, histograms as per-window p50/p99. Series idle this interval are
/// suppressed so the output tracks what the server is actually doing.
void PrintWatchReport(const PromSamples& cur, const PromSamples& prev,
                      double interval_s) {
  std::printf("--- %.0fs window ---\n", interval_s);
  bool any = false;
  for (const auto& [key, value] : cur) {
    // Counters: exporter suffixes them _total. Histogram _bucket/_count/_sum
    // series are folded into the histogram report below.
    if (key.size() > 6 && key.compare(key.size() - 6, 6, "_total") == 0 &&
        key.find("_bucket{") == std::string::npos) {
      auto it = prev.find(key);
      const double before = it == prev.end() ? 0 : it->second;
      const double delta = value - before;
      if (delta <= 0) continue;
      std::printf("%-56s %12.0f  (%.1f/s)\n", key.c_str(), delta,
                  delta / interval_s);
      any = true;
    }
  }
  // Histograms: find each base via its _count series.
  for (const auto& [key, value] : cur) {
    if (key.size() <= 6 || key.compare(key.size() - 6, 6, "_count") != 0 ||
        key.find('{') != std::string::npos) {
      continue;
    }
    const std::string base = key.substr(0, key.size() - 6);
    const PromHistogram ch = ExtractHistogram(cur, base);
    const PromHistogram ph = ExtractHistogram(prev, base);
    if (ch.count <= ph.count) continue;  // idle this window
    const double p50 = QuantileOfDelta(ch, ph, 0.50);
    const double p99 = QuantileOfDelta(ch, ph, 0.99);
    std::printf("%-56s %12llu  p50=%.0f p99=%.0f\n", base.c_str(),
                static_cast<unsigned long long>(ch.count - ph.count), p50, p99);
    any = true;
  }
  // Gauges: no _total suffix, no histogram suffix, no labels.
  for (const auto& [key, value] : cur) {
    if (key.find('{') != std::string::npos) continue;
    if (key.size() > 6 && key.compare(key.size() - 6, 6, "_total") == 0) continue;
    if (key.size() > 6 && key.compare(key.size() - 6, 6, "_count") == 0) continue;
    if (key.size() > 4 && key.compare(key.size() - 4, 4, "_sum") == 0) continue;
    if (value == 0) continue;
    std::printf("%-56s %12.9g  (gauge)\n", key.c_str(), value);
    any = true;
  }
  if (!any) std::printf("(idle)\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  bool json = false;
  bool stats_json = false;
  bool locks = false;
  bool caches = false;
  bool prom = false;
  bool clear = false;
  long watch_s = 0;
  long watch_count = 0;  // 0 = until interrupted
  std::string trace_path;
  uint8_t trace_format = 0;  // 0 = chrome, 1 = jsonl
  long profile_s = 0;
  long profile_hz = 99;
  bool flight = false;
  std::string flight_path = "-";
  bool audit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_json = true;
    } else if (std::strcmp(argv[i], "--locks") == 0) {
      locks = true;
    } else if (std::strcmp(argv[i], "--caches") == 0) {
      caches = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
      watch_s = std::atol(argv[++i]);
      if (watch_s <= 0) {
        std::fprintf(stderr, "idba_stat: --watch needs a positive interval\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--watch-count") == 0 && i + 1 < argc) {
      watch_count = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      trace_format = 0;
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      trace_format = 1;
    } else if (std::strcmp(argv[i], "--clear") == 0) {
      clear = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      // Optional duration argument, --trace-style: "--profile 2" or bare
      // "--profile" (default 2 s).
      profile_s = 2;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        profile_s = std::atol(argv[++i]);
        if (profile_s <= 0) {
          std::fprintf(stderr,
                       "idba_stat: --profile needs a positive duration\n");
          return 2;
        }
      }
    } else if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      profile_hz = std::atol(argv[++i]);
      if (profile_hz <= 0 || profile_hz > 1000) {
        std::fprintf(stderr, "idba_stat: --profile-hz must be in [1,1000]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') flight_path = argv[++i];
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      audit = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --connect HOST:PORT [--json | --stats-json | "
                   "--locks | --caches | --prom] [--watch SECS "
                   "[--watch-count N]] [--trace FILE | --trace-jsonl FILE] "
                   "[--clear] [--profile [SECS] [--profile-hz HZ]] "
                   "[--flight [FILE]] [--audit]\n",
                   argv[0]);
      return 2;
    }
  }
  std::string host;
  uint16_t port = 0;
  if (!idba::tools::SplitHostPort(connect, &host, &port)) {
    std::fprintf(stderr, "idba_stat: --connect HOST:PORT is required\n");
    return 2;
  }

  auto sock = Socket::ConnectTo(host, port, /*connect_timeout_ms=*/5000);
  if (!sock.ok()) return Fail(sock.status(), "connect");
  Status st = sock.value().SetRecvTimeout(5000);
  if (!st.ok()) return Fail(st, "recv timeout");

  if (profile_s > 0) {
    // start -> sleep -> dump folded -> stop; the folded stacks go to stdout
    // so they pipe straight into flamegraph.pl.
    uint64_t seq = 1;
    {
      std::vector<uint8_t> body;
      Encoder enc(&body);
      enc.PutU8(1);  // action: start
      enc.PutU32(static_cast<uint32_t>(profile_hz));
      std::string status;
      st = AdminCall(sock.value(), idba::wire::Method::kProfile, body, &status,
                     seq++);
      if (!st.ok()) return Fail(st, "PROFILE start");
      std::fprintf(stderr, "idba_stat: %s, sampling %lds...\n", status.c_str(),
                   profile_s);
    }
    std::this_thread::sleep_for(std::chrono::seconds(profile_s));
    std::string folded;
    {
      std::vector<uint8_t> body;
      Encoder enc(&body);
      enc.PutU8(3);  // action: dump folded stacks
      st = AdminCall(sock.value(), idba::wire::Method::kProfile, body, &folded,
                     seq++);
      if (!st.ok()) return Fail(st, "PROFILE dump");
    }
    {
      std::vector<uint8_t> body;
      Encoder enc(&body);
      enc.PutU8(2);  // action: stop
      std::string status;
      st = AdminCall(sock.value(), idba::wire::Method::kProfile, body, &status,
                     seq++);
      if (!st.ok()) return Fail(st, "PROFILE stop");
      std::fprintf(stderr, "idba_stat: %s\n", status.c_str());
    }
    std::fputs(folded.c_str(), stdout);
    return 0;
  }

  if (audit) {
    std::vector<uint8_t> body;
    std::string report;
    st = AdminCall(sock.value(), idba::wire::Method::kAudit, body, &report);
    if (!st.ok()) return Fail(st, "AUDIT");
    std::fputs(report.c_str(), stdout);
    if (report.empty() || report.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }

  if (flight) {
    std::vector<uint8_t> body;
    std::string dump;
    st = AdminCall(sock.value(), idba::wire::Method::kFlight, body, &dump);
    if (!st.ok()) return Fail(st, "FLIGHT");
    std::FILE* f =
        flight_path == "-" ? stdout : std::fopen(flight_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "idba_stat: cannot open %s\n", flight_path.c_str());
      return 1;
    }
    std::fputs(dump.c_str(), f);
    if (f != stdout) {
      std::fclose(f);
      std::fprintf(stderr, "idba_stat: wrote %zu bytes to %s\n", dump.size(),
                   flight_path.c_str());
    }
    return 0;
  }

  if (watch_s > 0) {
    PromSamples prev;
    uint64_t seq = 1;
    for (long iter = 0; watch_count == 0 || iter <= watch_count; ++iter) {
      std::vector<uint8_t> body;
      Encoder enc(&body);
      enc.PutU8(0);  // METRICS format 0: Prometheus text
      std::string text;
      st = AdminCall(sock.value(), idba::wire::Method::kMetrics, body, &text,
                     seq++);
      if (!st.ok()) return Fail(st, "METRICS");
      PromSamples cur = ParsePromText(text);
      if (iter > 0) {
        PrintWatchReport(cur, prev, static_cast<double>(watch_s));
      }
      prev = std::move(cur);
      if (watch_count != 0 && iter == watch_count) break;
      std::this_thread::sleep_for(std::chrono::seconds(watch_s));
    }
    return 0;
  }

  if (trace_path.empty()) {
    idba::wire::Method method = idba::wire::Method::kStats;
    std::vector<uint8_t> body;
    Encoder enc(&body);
    const char* what = "STATS";
    if (json) {
      method = idba::wire::Method::kMetrics;
      enc.PutU8(1);  // registry DumpJson passthrough
      what = "METRICS";
    } else if (prom) {
      method = idba::wire::Method::kMetrics;
      enc.PutU8(0);  // Prometheus text exposition
      what = "METRICS";
    } else if (locks) {
      method = idba::wire::Method::kLocks;
      enc.PutU8(0);  // default top-K contended OIDs
      what = "LOCKS";
    } else if (caches) {
      method = idba::wire::Method::kCaches;
      what = "CACHES";
    } else {
      enc.PutU8(stats_json ? 0 : 1);  // STATS format flag: 0 = json, 1 = text
    }
    std::string out;
    st = AdminCall(sock.value(), method, body, &out);
    if (!st.ok()) return Fail(st, what);
    std::fputs(out.c_str(), stdout);
    if (out.empty() || out.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }

  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU8(trace_format);
  enc.PutU8(clear ? 1 : 0);
  std::string dump;
  st = AdminCall(sock.value(), idba::wire::Method::kTraceDump, body, &dump);
  if (!st.ok()) return Fail(st, "TRACE_DUMP");
  std::FILE* f = trace_path == "-" ? stdout : std::fopen(trace_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "idba_stat: cannot open %s\n", trace_path.c_str());
    return 1;
  }
  std::fputs(dump.c_str(), f);
  if (f != stdout) {
    std::fclose(f);
    std::fprintf(stderr, "idba_stat: wrote %zu bytes to %s\n", dump.size(),
                 trace_path.c_str());
  }
  return 0;
}
