// idba_stat: live introspection CLI for a running idba_serve.
//
// Speaks the raw wire protocol (no Hello handshake: STATS and TRACE_DUMP
// are admin methods callable on a fresh connection), so it never perturbs
// session state — it can be pointed at a production server mid-run.
//
//   ./idba_stat --connect 127.0.0.1:7450            # human-readable stats
//   ./idba_stat --connect 127.0.0.1:7450 --json     # machine-readable JSON
//   ./idba_stat --connect 127.0.0.1:7450 --trace trace.json
//                                    # dump the server's span ring as a
//                                    # Chrome trace (load in about://tracing)
//   ./idba_stat --connect 127.0.0.1:7450 --trace-jsonl spans.jsonl --clear
//
// The text report covers transport counters, connected sessions (with
// negotiated wire version), the display-lock table, the slow-RPC ring
// (with trace ids), trace-recorder occupancy, and every registered
// counter/histogram (rpc.* latency decompositions, display.staleness_vtime,
// storage/txn counters, ...).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace {

using idba::Decoder;
using idba::Encoder;
using idba::Socket;
using idba::Status;

// One admin RPC on `sock`: request payload is method | client_vtime |
// method body; response is [TraceInfo] status | completion | body.
Status AdminCall(Socket& sock, idba::wire::Method method,
                 const std::vector<uint8_t>& method_body, std::string* out) {
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU8(static_cast<uint8_t>(method));
  enc.PutI64(0);  // client vtime: admin calls are unmetered
  payload.insert(payload.end(), method_body.begin(), method_body.end());
  std::mutex write_mu;
  IDBA_RETURN_NOT_OK(sock.WriteFrame(write_mu, idba::wire::FrameType::kRequest,
                                     /*seq=*/1, payload));
  idba::wire::FrameHeader header;
  std::vector<uint8_t> resp;
  // Skip any NOTIFY/CALLBACK frames the server might interleave (none are
  // expected pre-Hello, but be robust).
  for (;;) {
    IDBA_RETURN_NOT_OK(sock.ReadFrame(&header, &resp));
    if (header.type == idba::wire::FrameType::kResponse) break;
  }
  Decoder dec(resp.data(), resp.size());
  if (header.traced) {
    idba::wire::TraceInfo ignored;
    IDBA_RETURN_NOT_OK(idba::wire::DecodeTraceInfo(&dec, &ignored));
  }
  Status st;
  IDBA_RETURN_NOT_OK(idba::wire::DecodeStatus(&dec, &st));
  IDBA_RETURN_NOT_OK(st);
  int64_t completion = 0;
  IDBA_RETURN_NOT_OK(dec.GetI64(&completion));
  return dec.GetString(out);
}

int Fail(const Status& st, const char* what) {
  std::fprintf(stderr, "idba_stat: %s: %s\n", what, st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  bool json = false;
  bool clear = false;
  std::string trace_path;
  uint8_t trace_format = 0;  // 0 = chrome, 1 = jsonl
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      trace_format = 0;
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      trace_format = 1;
    } else if (std::strcmp(argv[i], "--clear") == 0) {
      clear = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --connect HOST:PORT [--json] "
                   "[--trace FILE | --trace-jsonl FILE] [--clear]\n",
                   argv[0]);
      return 2;
    }
  }
  auto colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos) {
    std::fprintf(stderr, "idba_stat: --connect HOST:PORT is required\n");
    return 2;
  }
  std::string host = connect.substr(0, colon);
  uint16_t port = static_cast<uint16_t>(std::atoi(connect.c_str() + colon + 1));

  auto sock = Socket::ConnectTo(host, port, /*connect_timeout_ms=*/5000);
  if (!sock.ok()) return Fail(sock.status(), "connect");
  Status st = sock.value().SetRecvTimeout(5000);
  if (!st.ok()) return Fail(st, "recv timeout");

  if (trace_path.empty()) {
    std::vector<uint8_t> body;
    Encoder enc(&body);
    enc.PutU8(json ? 0 : 1);  // STATS format flag: 0 = json, 1 = text
    std::string stats;
    st = AdminCall(sock.value(), idba::wire::Method::kStats, body, &stats);
    if (!st.ok()) return Fail(st, "STATS");
    std::fputs(stats.c_str(), stdout);
    if (stats.empty() || stats.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }

  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU8(trace_format);
  enc.PutU8(clear ? 1 : 0);
  std::string dump;
  st = AdminCall(sock.value(), idba::wire::Method::kTraceDump, body, &dump);
  if (!st.ok()) return Fail(st, "TRACE_DUMP");
  std::FILE* f = trace_path == "-" ? stdout : std::fopen(trace_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "idba_stat: cannot open %s\n", trace_path.c_str());
    return 1;
  }
  std::fputs(dump.c_str(), f);
  if (f != stdout) {
    std::fclose(f);
    std::fprintf(stderr, "idba_stat: wrote %zu bytes to %s\n", dump.size(),
                 trace_path.c_str());
  }
  return 0;
}
