#include "objectmodel/object.h"

namespace idba {

Result<Value> DatabaseObject::GetByName(const SchemaCatalog& catalog,
                                        const std::string& name) const {
  auto slot = catalog.ResolveAttribute(class_id_, name);
  if (!slot.has_value()) {
    return Status::NotFound("attribute " + name + " on class " +
                            std::to_string(class_id_));
  }
  if (*slot >= values_.size()) {
    return Status::Internal("slot out of range for " + name);
  }
  return values_[*slot];
}

Status DatabaseObject::SetByName(const SchemaCatalog& catalog,
                                 const std::string& name, Value v) {
  auto slot = catalog.ResolveAttribute(class_id_, name);
  if (!slot.has_value()) {
    return Status::NotFound("attribute " + name + " on class " +
                            std::to_string(class_id_));
  }
  if (*slot >= values_.size()) {
    return Status::Internal("slot out of range for " + name);
  }
  values_[*slot] = std::move(v);
  return Status::OK();
}

size_t DatabaseObject::MemoryBytes() const {
  size_t bytes = sizeof(DatabaseObject);
  for (const auto& v : values_) bytes += v.MemoryBytes();
  return bytes;
}

size_t DatabaseObject::WireBytes() const {
  size_t bytes = 8 /*oid*/ + 4 /*class*/ + 8 /*version*/ + 5 /*count*/;
  for (const auto& v : values_) bytes += v.WireBytes();
  return bytes;
}

void DatabaseObject::EncodeTo(Encoder* enc) const {
  enc->PutU64(oid_.value);
  enc->PutU32(class_id_);
  enc->PutU64(version_);
  enc->PutVarint(values_.size());
  for (const auto& v : values_) v.EncodeTo(enc);
}

Status DatabaseObject::DecodeFrom(Decoder* dec, DatabaseObject* out) {
  uint64_t oid;
  IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
  uint32_t class_id;
  IDBA_RETURN_NOT_OK(dec->GetU32(&class_id));
  uint64_t version;
  IDBA_RETURN_NOT_OK(dec->GetU64(&version));
  uint64_t count;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&count));
  *out = DatabaseObject(Oid(oid), class_id, count);
  out->set_version(version);
  for (uint64_t i = 0; i < count; ++i) {
    Value v;
    IDBA_RETURN_NOT_OK(Value::DecodeFrom(dec, &v));
    out->Set(i, std::move(v));
  }
  return Status::OK();
}

std::string DatabaseObject::ToString(const SchemaCatalog& catalog) const {
  const ClassDef* cls = catalog.Find(class_id_);
  std::string out = (cls ? cls->name() : "class" + std::to_string(class_id_)) +
                    "(" + oid_.ToString() + ", v" + std::to_string(version_) + "){";
  auto attrs = catalog.AllAttributes(class_id_);
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += (i < attrs.size() ? attrs[i]->name : "a" + std::to_string(i));
    out += "=" + values_[i].ToString();
  }
  return out + "}";
}

}  // namespace idba
