#include "objectmodel/value.h"

#include <cstdio>

namespace idba {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kBool: return "bool";
    case ValueType::kString: return "string";
    case ValueType::kOid: return "oid";
    case ValueType::kOidList: return "oid_list";
  }
  return "?";
}

double Value::AsNumber() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(AsInt());
    case ValueType::kDouble: return AsDouble();
    case ValueType::kBool: return AsBool() ? 1.0 : 0.0;
    default: return 0.0;
  }
}

size_t Value::MemoryBytes() const {
  switch (type()) {
    case ValueType::kNull: return sizeof(Value);
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kBool:
    case ValueType::kOid:
      return sizeof(Value);
    case ValueType::kString:
      return sizeof(Value) + AsString().capacity();
    case ValueType::kOidList:
      return sizeof(Value) + AsOidList().capacity() * sizeof(Oid);
  }
  return sizeof(Value);
}

size_t Value::WireBytes() const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kBool: return 2;
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kOid:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 5 + AsString().size();  // tag + varint bound + bytes
    case ValueType::kOidList:
      return 1 + 5 + AsOidList().size() * 8;
  }
  return 1;
}

void Value::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      enc->PutI64(AsInt());
      break;
    case ValueType::kDouble:
      enc->PutDouble(AsDouble());
      break;
    case ValueType::kBool:
      enc->PutU8(AsBool() ? 1 : 0);
      break;
    case ValueType::kString:
      enc->PutString(AsString());
      break;
    case ValueType::kOid:
      enc->PutU64(AsOid().value);
      break;
    case ValueType::kOidList: {
      const auto& list = AsOidList();
      enc->PutVarint(list.size());
      for (Oid oid : list) enc->PutU64(oid.value);
      break;
    }
  }
}

Status Value::DecodeFrom(Decoder* dec, Value* out) {
  uint8_t tag;
  IDBA_RETURN_NOT_OK(dec->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value();
      return Status::OK();
    case ValueType::kInt: {
      int64_t v;
      IDBA_RETURN_NOT_OK(dec->GetI64(&v));
      *out = Value(v);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double v;
      IDBA_RETURN_NOT_OK(dec->GetDouble(&v));
      *out = Value(v);
      return Status::OK();
    }
    case ValueType::kBool: {
      uint8_t v;
      IDBA_RETURN_NOT_OK(dec->GetU8(&v));
      *out = Value(v != 0);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      IDBA_RETURN_NOT_OK(dec->GetString(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
    case ValueType::kOid: {
      uint64_t v;
      IDBA_RETURN_NOT_OK(dec->GetU64(&v));
      *out = Value(Oid(v));
      return Status::OK();
    }
    case ValueType::kOidList: {
      uint64_t n;
      IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
      std::vector<Oid> list;
      list.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t v;
        IDBA_RETURN_NOT_OK(dec->GetU64(&v));
        list.emplace_back(v);
      }
      *out = Value(std::move(list));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown value tag " + std::to_string(tag));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kString: return "\"" + AsString() + "\"";
    case ValueType::kOid: return AsOid().ToString();
    case ValueType::kOidList: {
      std::string out = "[";
      for (size_t i = 0; i < AsOidList().size(); ++i) {
        if (i) out += ",";
        out += std::to_string(AsOidList()[i].value);
      }
      return out + "]";
    }
  }
  return "?";
}

}  // namespace idba
