// Database objects: an OID, a class, a version counter and attribute values.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "objectmodel/oid.h"
#include "objectmodel/schema.h"
#include "objectmodel/value.h"

namespace idba {

/// A materialized database object. Attribute slots are positional, matching
/// SchemaCatalog::AllAttributes(class_id) order.
class DatabaseObject {
 public:
  DatabaseObject() = default;
  DatabaseObject(Oid oid, ClassId class_id, size_t attr_count)
      : oid_(oid), class_id_(class_id), values_(attr_count) {}

  Oid oid() const { return oid_; }
  ClassId class_id() const { return class_id_; }

  /// Version, incremented on every committed update. Lets clients and
  /// display objects detect stale copies cheaply.
  uint64_t version() const { return version_; }
  void set_version(uint64_t v) { version_ = v; }
  void BumpVersion() { ++version_; }

  size_t attr_count() const { return values_.size(); }

  const Value& Get(size_t slot) const { return values_[slot]; }
  void Set(size_t slot, Value v) { values_[slot] = std::move(v); }

  /// Named access via the catalog. Returns NotFound for unknown attributes.
  Result<Value> GetByName(const SchemaCatalog& catalog, const std::string& name) const;
  Status SetByName(const SchemaCatalog& catalog, const std::string& name, Value v);

  /// Approximate in-memory footprint (for client DB-cache accounting).
  size_t MemoryBytes() const;
  /// Serialized size in bytes (for pages and message payloads).
  size_t WireBytes() const;

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, DatabaseObject* out);

  std::string ToString(const SchemaCatalog& catalog) const;

  bool operator==(const DatabaseObject& other) const = default;

 private:
  Oid oid_;
  ClassId class_id_ = 0;
  uint64_t version_ = 0;
  std::vector<Value> values_;
};

}  // namespace idba
