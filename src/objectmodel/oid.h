// Object identifiers.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace idba {

/// Globally unique, immutable identifier of a database object.
/// OID 0 is reserved as "null".
struct Oid {
  uint64_t value = 0;

  constexpr Oid() = default;
  constexpr explicit Oid(uint64_t v) : value(v) {}

  constexpr bool IsNull() const { return value == 0; }
  constexpr bool operator==(const Oid&) const = default;
  constexpr auto operator<=>(const Oid&) const = default;

  std::string ToString() const { return "oid:" + std::to_string(value); }
};

constexpr Oid kNullOid{};

}  // namespace idba

template <>
struct std::hash<idba::Oid> {
  size_t operator()(const idba::Oid& oid) const noexcept {
    // Fibonacci hashing of the raw id.
    return static_cast<size_t>(oid.value * 0x9E3779B97F4A7C15ULL);
  }
};
