#include "objectmodel/query.h"

namespace idba {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {

template <typename T>
bool Compare(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kDouble ||
         v.type() == ValueType::kBool;
}

}  // namespace

bool AttrPredicate::Matches(const SchemaCatalog& catalog,
                            const DatabaseObject& obj) const {
  auto got = obj.GetByName(catalog, attr);
  if (!got.ok()) return false;
  const Value& lhs = got.value();
  if (IsNumeric(lhs) && IsNumeric(value)) {
    return Compare(op, lhs.AsNumber(), value.AsNumber());
  }
  if (lhs.type() == ValueType::kString && value.type() == ValueType::kString) {
    return Compare(op, lhs.AsString(), value.AsString());
  }
  // Remaining types (oid, oid-list, null or mixed): equality only.
  switch (op) {
    case CompareOp::kEq: return lhs == value;
    case CompareOp::kNe: return !(lhs == value);
    default: return false;
  }
}

size_t ObjectQuery::WireBytes() const {
  size_t bytes = 16;
  for (const auto& p : conjuncts) {
    bytes += 2 + p.attr.size() + p.value.WireBytes();
  }
  return bytes;
}


void AttrPredicate::EncodeTo(Encoder* enc) const {
  enc->PutString(attr);
  enc->PutU8(static_cast<uint8_t>(op));
  value.EncodeTo(enc);
}

Status AttrPredicate::DecodeFrom(Decoder* dec, AttrPredicate* out) {
  IDBA_RETURN_NOT_OK(dec->GetString(&out->attr));
  uint8_t op = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&op));
  if (op > static_cast<uint8_t>(CompareOp::kGe)) {
    return Status::Corruption("unknown compare op " + std::to_string(op));
  }
  out->op = static_cast<CompareOp>(op);
  return Value::DecodeFrom(dec, &out->value);
}

void ObjectQuery::EncodeTo(Encoder* enc) const {
  enc->PutU32(cls);
  enc->PutU8(include_subclasses ? 1 : 0);
  enc->PutVarint(conjuncts.size());
  for (const auto& p : conjuncts) p.EncodeTo(enc);
}

Status ObjectQuery::DecodeFrom(Decoder* dec, ObjectQuery* out) {
  IDBA_RETURN_NOT_OK(dec->GetU32(&out->cls));
  uint8_t incl = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&incl));
  out->include_subclasses = incl != 0;
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->conjuncts.clear();
  for (uint64_t i = 0; i < n; ++i) {
    AttrPredicate p;
    IDBA_RETURN_NOT_OK(AttrPredicate::DecodeFrom(dec, &p));
    out->conjuncts.push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace idba
