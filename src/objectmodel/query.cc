#include "objectmodel/query.h"

namespace idba {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {

template <typename T>
bool Compare(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kDouble ||
         v.type() == ValueType::kBool;
}

}  // namespace

bool AttrPredicate::Matches(const SchemaCatalog& catalog,
                            const DatabaseObject& obj) const {
  auto got = obj.GetByName(catalog, attr);
  if (!got.ok()) return false;
  const Value& lhs = got.value();
  if (IsNumeric(lhs) && IsNumeric(value)) {
    return Compare(op, lhs.AsNumber(), value.AsNumber());
  }
  if (lhs.type() == ValueType::kString && value.type() == ValueType::kString) {
    return Compare(op, lhs.AsString(), value.AsString());
  }
  // Remaining types (oid, oid-list, null or mixed): equality only.
  switch (op) {
    case CompareOp::kEq: return lhs == value;
    case CompareOp::kNe: return !(lhs == value);
    default: return false;
  }
}

size_t ObjectQuery::WireBytes() const {
  size_t bytes = 16;
  for (const auto& p : conjuncts) {
    bytes += 2 + p.attr.size() + p.value.WireBytes();
  }
  return bytes;
}

}  // namespace idba
