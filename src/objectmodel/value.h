// Typed attribute values stored in database and display objects.

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "objectmodel/oid.h"

namespace idba {

/// Attribute type tags. Wire-stable: values are persisted.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
  kOid = 5,
  kOidList = 6,  ///< relationships: ordered list of target OIDs
};

std::string_view ValueTypeName(ValueType t);

/// A dynamically typed attribute value.
class Value {
 public:
  Value() : var_(std::monostate{}) {}
  Value(int64_t v) : var_(v) {}                    // NOLINT
  Value(int v) : var_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : var_(v) {}                     // NOLINT
  Value(bool v) : var_(v) {}                       // NOLINT
  Value(std::string v) : var_(std::move(v)) {}     // NOLINT
  Value(const char* v) : var_(std::string(v)) {}   // NOLINT
  Value(Oid v) : var_(v) {}                        // NOLINT
  Value(std::vector<Oid> v) : var_(std::move(v)) {}  // NOLINT

  ValueType type() const {
    return static_cast<ValueType>(var_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(var_); }
  double AsDouble() const { return std::get<double>(var_); }
  bool AsBool() const { return std::get<bool>(var_); }
  const std::string& AsString() const { return std::get<std::string>(var_); }
  Oid AsOid() const { return std::get<Oid>(var_); }
  const std::vector<Oid>& AsOidList() const {
    return std::get<std::vector<Oid>>(var_);
  }

  /// Numeric view: int or double widened to double; 0 otherwise.
  double AsNumber() const;

  bool operator==(const Value& other) const = default;

  /// Approximate in-memory footprint in bytes (for cache accounting).
  size_t MemoryBytes() const;

  /// Serialized wire/page size in bytes.
  size_t WireBytes() const;

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, Value* out);

  std::string ToString() const;

 private:
  // Variant index order must match ValueType values.
  std::variant<std::monostate, int64_t, double, bool, std::string, Oid,
               std::vector<Oid>>
      var_;
};

}  // namespace idba
