// Database schema catalog: classes and attributes.
//
// Per the paper (§2.1), the *database* schema models only the real-world
// entities — no GUI attributes. Display schemas (src/core/display_schema.h)
// are defined externally over these classes.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "objectmodel/value.h"

namespace idba {

/// Identifier of a class in the catalog. 0 is reserved.
using ClassId = uint32_t;

/// One attribute of a database class.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kNull;
  Value default_value;  ///< value a new object starts with
};

/// A database class: a named, ordered collection of attributes, optionally
/// derived from a base class (single inheritance; attributes are inherited).
class ClassDef {
 public:
  ClassDef(ClassId id, std::string name, ClassId base = 0)
      : id_(id), name_(std::move(name)), base_(base) {}

  ClassId id() const { return id_; }
  const std::string& name() const { return name_; }
  ClassId base() const { return base_; }

  /// Appends an attribute. Names must be unique within the class (including
  /// inherited ones; enforced by the catalog at registration).
  void AddAttribute(AttributeDef attr) {
    index_[attr.name] = attrs_.size();
    attrs_.push_back(std::move(attr));
  }

  const std::vector<AttributeDef>& attributes() const { return attrs_; }

  /// Index of `name` among this class's own attributes, or nullopt.
  std::optional<size_t> FindAttribute(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

 private:
  ClassId id_;
  std::string name_;
  ClassId base_;
  std::vector<AttributeDef> attrs_;
  std::unordered_map<std::string, size_t> index_;
};

/// The schema catalog. Owned by the server; clients hold an immutable copy
/// (schema evolution is out of scope — the paper argues for orthogonal,
/// stable database design).
class SchemaCatalog {
 public:
  /// Registers a new class; returns its id.
  Result<ClassId> DefineClass(const std::string& name, ClassId base = 0);

  /// Adds an attribute to an existing class.
  Status AddAttribute(ClassId cls, const std::string& name, ValueType type,
                      Value default_value = Value());

  const ClassDef* Find(ClassId id) const;
  const ClassDef* FindByName(const std::string& name) const;

  /// All attributes of `cls` including inherited ones, base-first.
  /// Returns an empty vector for unknown classes.
  std::vector<const AttributeDef*> AllAttributes(ClassId cls) const;

  /// Position of `attr` within AllAttributes(cls), or nullopt.
  std::optional<size_t> ResolveAttribute(ClassId cls, const std::string& attr) const;

  /// True if `cls` equals or transitively derives from `ancestor`.
  bool IsA(ClassId cls, ClassId ancestor) const;

  size_t class_count() const { return classes_.size(); }

  /// Wire serialization of the whole catalog (remote clients receive a
  /// snapshot at connect time). Decoding replays DefineClass/AddAttribute,
  /// so class ids are reproduced exactly.
  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, SchemaCatalog* out);

 private:
  std::vector<ClassDef> classes_;  // index = id - 1
  std::unordered_map<std::string, ClassId> by_name_;
};

}  // namespace idba
