#include "objectmodel/schema.h"

namespace idba {

Result<ClassId> SchemaCatalog::DefineClass(const std::string& name, ClassId base) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("class " + name + " already defined");
  }
  if (base != 0 && Find(base) == nullptr) {
    return Status::NotFound("base class id " + std::to_string(base));
  }
  ClassId id = static_cast<ClassId>(classes_.size() + 1);
  classes_.emplace_back(id, name, base);
  by_name_[name] = id;
  return id;
}

Status SchemaCatalog::AddAttribute(ClassId cls, const std::string& name,
                                   ValueType type, Value default_value) {
  if (cls == 0 || cls > classes_.size()) {
    return Status::NotFound("class id " + std::to_string(cls));
  }
  if (ResolveAttribute(cls, name).has_value()) {
    return Status::AlreadyExists("attribute " + name + " already defined on class " +
                                 classes_[cls - 1].name());
  }
  classes_[cls - 1].AddAttribute(AttributeDef{name, type, std::move(default_value)});
  return Status::OK();
}

const ClassDef* SchemaCatalog::Find(ClassId id) const {
  if (id == 0 || id > classes_.size()) return nullptr;
  return &classes_[id - 1];
}

const ClassDef* SchemaCatalog::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return Find(it->second);
}

std::vector<const AttributeDef*> SchemaCatalog::AllAttributes(ClassId cls) const {
  std::vector<const AttributeDef*> out;
  // Walk to the root, collecting the inheritance chain.
  std::vector<const ClassDef*> chain;
  for (const ClassDef* c = Find(cls); c != nullptr; c = Find(c->base())) {
    chain.push_back(c);
    if (c->base() == 0) break;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& a : (*it)->attributes()) out.push_back(&a);
  }
  return out;
}

std::optional<size_t> SchemaCatalog::ResolveAttribute(ClassId cls,
                                                      const std::string& attr) const {
  auto attrs = AllAttributes(cls);
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i]->name == attr) return i;
  }
  return std::nullopt;
}

bool SchemaCatalog::IsA(ClassId cls, ClassId ancestor) const {
  for (const ClassDef* c = Find(cls); c != nullptr; c = Find(c->base())) {
    if (c->id() == ancestor) return true;
    if (c->base() == 0) break;
  }
  return false;
}


void SchemaCatalog::EncodeTo(Encoder* enc) const {
  enc->PutVarint(classes_.size());
  for (const ClassDef& cls : classes_) {
    enc->PutString(cls.name());
    enc->PutU32(cls.base());
    enc->PutVarint(cls.attributes().size());
    for (const AttributeDef& attr : cls.attributes()) {
      enc->PutString(attr.name);
      enc->PutU8(static_cast<uint8_t>(attr.type));
      attr.default_value.EncodeTo(enc);
    }
  }
}

Status SchemaCatalog::DecodeFrom(Decoder* dec, SchemaCatalog* out) {
  uint64_t class_count = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&class_count));
  for (uint64_t c = 0; c < class_count; ++c) {
    std::string name;
    uint32_t base = 0;
    IDBA_RETURN_NOT_OK(dec->GetString(&name));
    IDBA_RETURN_NOT_OK(dec->GetU32(&base));
    auto id = out->DefineClass(name, base);
    IDBA_RETURN_NOT_OK(id.status());
    uint64_t attr_count = 0;
    IDBA_RETURN_NOT_OK(dec->GetVarint(&attr_count));
    for (uint64_t a = 0; a < attr_count; ++a) {
      std::string attr_name;
      uint8_t type = 0;
      Value default_value;
      IDBA_RETURN_NOT_OK(dec->GetString(&attr_name));
      IDBA_RETURN_NOT_OK(dec->GetU8(&type));
      if (type > static_cast<uint8_t>(ValueType::kOidList)) {
        return Status::Corruption("unknown value type " + std::to_string(type));
      }
      IDBA_RETURN_NOT_OK(Value::DecodeFrom(dec, &default_value));
      IDBA_RETURN_NOT_OK(out->AddAttribute(id.value(), attr_name,
                                           static_cast<ValueType>(type),
                                           std::move(default_value)));
    }
  }
  return Status::OK();
}

}  // namespace idba
