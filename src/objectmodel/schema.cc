#include "objectmodel/schema.h"

namespace idba {

Result<ClassId> SchemaCatalog::DefineClass(const std::string& name, ClassId base) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("class " + name + " already defined");
  }
  if (base != 0 && Find(base) == nullptr) {
    return Status::NotFound("base class id " + std::to_string(base));
  }
  ClassId id = static_cast<ClassId>(classes_.size() + 1);
  classes_.emplace_back(id, name, base);
  by_name_[name] = id;
  return id;
}

Status SchemaCatalog::AddAttribute(ClassId cls, const std::string& name,
                                   ValueType type, Value default_value) {
  if (cls == 0 || cls > classes_.size()) {
    return Status::NotFound("class id " + std::to_string(cls));
  }
  if (ResolveAttribute(cls, name).has_value()) {
    return Status::AlreadyExists("attribute " + name + " already defined on class " +
                                 classes_[cls - 1].name());
  }
  classes_[cls - 1].AddAttribute(AttributeDef{name, type, std::move(default_value)});
  return Status::OK();
}

const ClassDef* SchemaCatalog::Find(ClassId id) const {
  if (id == 0 || id > classes_.size()) return nullptr;
  return &classes_[id - 1];
}

const ClassDef* SchemaCatalog::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return Find(it->second);
}

std::vector<const AttributeDef*> SchemaCatalog::AllAttributes(ClassId cls) const {
  std::vector<const AttributeDef*> out;
  // Walk to the root, collecting the inheritance chain.
  std::vector<const ClassDef*> chain;
  for (const ClassDef* c = Find(cls); c != nullptr; c = Find(c->base())) {
    chain.push_back(c);
    if (c->base() == 0) break;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& a : (*it)->attributes()) out.push_back(&a);
  }
  return out;
}

std::optional<size_t> SchemaCatalog::ResolveAttribute(ClassId cls,
                                                      const std::string& attr) const {
  auto attrs = AllAttributes(cls);
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i]->name == attr) return i;
  }
  return std::nullopt;
}

bool SchemaCatalog::IsA(ClassId cls, ClassId ancestor) const {
  for (const ClassDef* c = Find(cls); c != nullptr; c = Find(c->base())) {
    if (c->id() == ancestor) return true;
    if (c->base() == 0) break;
  }
  return false;
}

}  // namespace idba
