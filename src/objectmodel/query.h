// Predicate queries over classes — the minimal query capability an
// interactive application needs to populate a view ("all links with
// utilization above 0.8", "all devices in site-3"). Conjunctions of
// attribute comparisons, evaluated server-side so only matching objects
// travel to the client.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "objectmodel/object.h"

namespace idba {

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpName(CompareOp op);

/// One conjunct: <attr> <op> <value>.
struct AttrPredicate {
  std::string attr;
  CompareOp op = CompareOp::kEq;
  Value value;

  /// Evaluates against `obj` (attribute resolved through `catalog`).
  /// Unknown attributes never match. Numeric comparisons widen int/double;
  /// strings compare lexicographically; other types support kEq/kNe only.
  bool Matches(const SchemaCatalog& catalog, const DatabaseObject& obj) const;

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, AttrPredicate* out);
};

/// A conjunctive query over one class (optionally with subclasses).
struct ObjectQuery {
  ClassId cls = 0;
  bool include_subclasses = false;
  std::vector<AttrPredicate> conjuncts;

  bool Matches(const SchemaCatalog& catalog, const DatabaseObject& obj) const {
    for (const auto& p : conjuncts) {
      if (!p.Matches(catalog, obj)) return false;
    }
    return true;
  }

  /// Approximate request wire size (for cost metering).
  size_t WireBytes() const;

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, ObjectQuery* out);
};

}  // namespace idba
