#include "txn/lock_manager.h"

#include <algorithm>
#include <chrono>

#include "obs/flight.h"
#include "obs/trace.h"

namespace idba {

std::string_view LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNL: return "NL";
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kX: return "X";
    case LockMode::kD: return "D";
  }
  return "?";
}

bool LockCompatible(LockMode held, LockMode requested) {
  // Display locks (paper §3.3): "display locks are compatible with all
  // types of locks" — in both directions.
  if (held == LockMode::kD || requested == LockMode::kD) return true;
  if (held == LockMode::kNL || requested == LockMode::kNL) return true;
  auto idx = [](LockMode m) {
    switch (m) {
      case LockMode::kIS: return 0;
      case LockMode::kIX: return 1;
      case LockMode::kS: return 2;
      case LockMode::kSIX: return 3;
      case LockMode::kX: return 4;
      default: return 4;
    }
  };
  // Rows: held IS,IX,S,SIX,X; columns: requested.
  static constexpr bool kCompat[5][5] = {
      /*IS */ {true, true, true, true, false},
      /*IX */ {true, true, false, false, false},
      /*S  */ {true, false, true, false, false},
      /*SIX*/ {true, false, false, false, false},
      /*X  */ {false, false, false, false, false},
  };
  return kCompat[idx(held)][idx(requested)];
}

LockMode LockSupremum(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kNL) return b;
  if (b == LockMode::kNL) return a;
  // D does not join the regular lattice; callers must not mix (enforced in
  // LockInternal). Treat sup(D, m) = m defensively.
  if (a == LockMode::kD) return b;
  if (b == LockMode::kD) return a;
  auto rank = [](LockMode m) {
    switch (m) {
      case LockMode::kIS: return 1;
      case LockMode::kIX: return 2;
      case LockMode::kS: return 2;
      case LockMode::kSIX: return 3;
      case LockMode::kX: return 4;
      default: return 0;
    }
  };
  // sup(IX, S) = SIX is the one non-chain join.
  if ((a == LockMode::kIX && b == LockMode::kS) ||
      (a == LockMode::kS && b == LockMode::kIX)) {
    return LockMode::kSIX;
  }
  return rank(a) >= rank(b) ? a : b;
}

LockManager::LockManager(LockManagerOptions opts) : opts_(opts) {
  // Per-instance accessors (grants() etc.) stay exact; the registry sees
  // the canonical aggregate across all lock managers in the process.
  MetricsRegistry& reg = GlobalMetrics();
  grants_.BindGlobal(reg.GetCounter("txn.lock.grants"));
  waits_.BindGlobal(reg.GetCounter("txn.lock.waits"));
  deadlocks_.BindGlobal(reg.GetCounter("txn.lock.deadlocks"));
  timeouts_.BindGlobal(reg.GetCounter("txn.lock.timeouts"));
  wait_hist_ = reg.GetHistogram("txn.lock.wait_us");
}

Status LockManager::Lock(LockOwnerId owner, Oid oid, LockMode mode) {
  return LockInternal(owner, oid, mode, /*blocking=*/true);
}

Status LockManager::TryLock(LockOwnerId owner, Oid oid, LockMode mode) {
  return LockInternal(owner, oid, mode, /*blocking=*/false);
}

bool LockManager::CanGrantLocked(const Queue& q, LockOwnerId owner, LockMode mode,
                                 uint64_t ticket) const {
  for (const Held& h : q.granted) {
    if (h.owner == owner) continue;  // self-compatibility (upgrade path)
    if (!LockCompatible(h.mode, mode)) return false;
  }
  // FIFO fairness: an earlier conflicting waiter goes first. Upgrades jump
  // the queue (a blocked upgrade behind a new waiter is an instant deadlock).
  bool is_upgrade = false;
  for (const Held& h : q.granted) {
    if (h.owner == owner) is_upgrade = true;
  }
  if (is_upgrade) return true;
  for (const Waiter& w : q.waiting) {
    if (w.ticket >= ticket || w.owner == owner) continue;
    if (!LockCompatible(w.mode, mode) || !LockCompatible(mode, w.mode)) return false;
  }
  return true;
}

void LockManager::GrantLocked(Queue& q, LockOwnerId owner, LockMode mode) {
  for (Held& h : q.granted) {
    if (h.owner == owner) {
      h.mode = LockSupremum(h.mode, mode);
      grants_.Add();
      return;
    }
  }
  q.granted.push_back(Held{owner, mode});
  owner_locks_[owner];  // ensure entry exists
  grants_.Add();
}

bool LockManager::WouldDeadlockLocked(LockOwnerId requester, const Oid& oid,
                                      LockMode mode) const {
  // DFS over the waits-for graph. Each owner (thread) has at most one
  // outstanding blocking request, recorded in waiting_requests_, so edges
  // are cheap to expand: x waits-for every granted owner whose held mode
  // conflicts with x's requested mode. Edges to earlier queued waiters are
  // not modeled; those rare deadlocks fall back to the wait timeout.
  std::vector<LockOwnerId> stack;
  std::unordered_set<LockOwnerId> visited;
  auto expand = [&](const Oid& target_oid, LockMode req, LockOwnerId self) {
    auto qit = table_.find(target_oid);
    if (qit == table_.end()) return;
    for (const Held& h : qit->second.granted) {
      if (h.owner == self) continue;
      if (!LockCompatible(h.mode, req) && !visited.count(h.owner)) {
        visited.insert(h.owner);
        stack.push_back(h.owner);
      }
    }
  };
  expand(oid, mode, requester);
  while (!stack.empty()) {
    LockOwnerId x = stack.back();
    stack.pop_back();
    if (x == requester) return true;
    auto wit = waiting_requests_.find(x);
    if (wit == waiting_requests_.end()) continue;
    expand(wit->second.first, wit->second.second, x);
  }
  return visited.count(requester) != 0;
}

void LockManager::RemoveWaiterLocked(Queue& q, LockOwnerId owner, uint64_t ticket) {
  q.waiting.erase(std::remove_if(q.waiting.begin(), q.waiting.end(),
                                 [&](const Waiter& w) {
                                   return w.owner == owner && w.ticket == ticket;
                                 }),
                  q.waiting.end());
}

Status LockManager::LockInternal(LockOwnerId owner, Oid oid, LockMode mode,
                                 bool blocking) {
  if (mode == LockMode::kNL) return Status::InvalidArgument("cannot lock in NL");
  std::unique_lock<std::mutex> lock(mu_);
  Queue& q = table_[oid];

  LockMode held = LockMode::kNL;
  for (const Held& h : q.granted) {
    if (h.owner == owner) held = h.mode;
  }
  // D and regular modes live in disjoint owner spaces (client ids vs
  // transaction ids); mixing them under one owner is a usage error.
  if (held != LockMode::kNL &&
      ((held == LockMode::kD) != (mode == LockMode::kD))) {
    return Status::InvalidArgument("owner mixes display and regular locks on " +
                                   oid.ToString());
  }
  if (held != LockMode::kNL && LockSupremum(held, mode) == held) {
    return Status::OK();  // already holds a sufficient mode
  }
  LockMode effective = LockSupremum(held, mode);

  // Display locks never conflict and are granted unconditionally (§3.3:
  // "the lock manager is expected to grant those locks").
  if (mode == LockMode::kD) {
    GrantLocked(q, owner, LockMode::kD);
    owner_locks_[owner].insert(oid);
    return Status::OK();
  }

  uint64_t ticket = next_ticket_++;
  if (CanGrantLocked(q, owner, effective, ticket)) {
    GrantLocked(q, owner, effective);
    owner_locks_[owner].insert(oid);
    return Status::OK();
  }
  if (!blocking) {
    if (q.granted.empty() && q.waiting.empty()) table_.erase(oid);
    return Status::Busy("lock " + std::string(LockModeName(mode)) + " on " +
                        oid.ToString() + " unavailable");
  }
  if (opts_.deadlock_detection && WouldDeadlockLocked(owner, oid, effective)) {
    deadlocks_.Add();
    if (q.granted.empty() && q.waiting.empty()) table_.erase(oid);
    return Status::Deadlock("lock " + std::string(LockModeName(mode)) + " on " +
                            oid.ToString() + " would deadlock");
  }

  waits_.Add();
  IDBA_TRACE_SPAN("txn.lock_wait");
  const int64_t wait_start_us = obs::NowUs();
  q.waiting.push_back(
      Waiter{owner, effective, held != LockMode::kNL, ticket, wait_start_us});
  waiting_requests_[owner] = {oid, effective};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.wait_timeout_ms);
  for (;;) {
    // Re-find the queue: rehash may have moved it while we slept.
    Queue& cur = table_[oid];
    if (CanGrantLocked(cur, owner, effective, ticket)) {
      RemoveWaiterLocked(cur, owner, ticket);
      waiting_requests_.erase(owner);
      NoteWaitEndLocked(oid, wait_start_us);
      GrantLocked(cur, owner, effective);
      owner_locks_[owner].insert(oid);
      cv_.notify_all();
      return Status::OK();
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      Queue& cur2 = table_[oid];
      RemoveWaiterLocked(cur2, owner, ticket);
      waiting_requests_.erase(owner);
      NoteWaitEndLocked(oid, wait_start_us);
      timeouts_.Add();
      cv_.notify_all();
      return Status::TimedOut("lock wait on " + oid.ToString());
    }
  }
}

void LockManager::NoteWaitEndLocked(const Oid& oid, int64_t wait_start_us) {
  const int64_t waited = std::max<int64_t>(obs::NowUs() - wait_start_us, 0);
  auto& [cum_us, count] = contention_[oid];
  cum_us += static_cast<uint64_t>(waited);
  count += 1;
  // Histogram shard locks nest inside mu_ and never call back out.
  if (wait_hist_ != nullptr) wait_hist_->Record(static_cast<double>(waited));
  obs::FlightRecord(obs::FlightType::kLockWait, oid.value,
                    static_cast<uint64_t>(waited));
}

Status LockManager::Unlock(LockOwnerId owner, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(oid);
  if (it == table_.end()) return Status::NotFound("no locks on " + oid.ToString());
  auto& granted = it->second.granted;
  auto pos = std::find_if(granted.begin(), granted.end(),
                          [&](const Held& h) { return h.owner == owner; });
  if (pos == granted.end()) {
    return Status::NotFound("owner holds no lock on " + oid.ToString());
  }
  granted.erase(pos);
  auto oit = owner_locks_.find(owner);
  if (oit != owner_locks_.end()) oit->second.erase(oid);
  if (granted.empty() && it->second.waiting.empty()) table_.erase(it);
  cv_.notify_all();
  return Status::OK();
}

void LockManager::ReleaseAll(LockOwnerId owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto oit = owner_locks_.find(owner);
  if (oit == owner_locks_.end()) return;
  for (const Oid& oid : oit->second) {
    auto it = table_.find(oid);
    if (it == table_.end()) continue;
    auto& granted = it->second.granted;
    granted.erase(std::remove_if(granted.begin(), granted.end(),
                                 [&](const Held& h) { return h.owner == owner; }),
                  granted.end());
    if (granted.empty() && it->second.waiting.empty()) table_.erase(it);
  }
  owner_locks_.erase(oit);
  cv_.notify_all();
}

LockMode LockManager::HeldMode(LockOwnerId owner, Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(oid);
  if (it == table_.end()) return LockMode::kNL;
  for (const Held& h : it->second.granted) {
    if (h.owner == owner) return h.mode;
  }
  return LockMode::kNL;
}

std::vector<LockOwnerId> LockManager::DisplayLockHolders(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LockOwnerId> out;
  auto it = table_.find(oid);
  if (it == table_.end()) return out;
  for (const Held& h : it->second.granted) {
    if (h.mode == LockMode::kD) out.push_back(h.owner);
  }
  return out;
}

std::vector<LockOwnerId> LockManager::Holders(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LockOwnerId> out;
  auto it = table_.find(oid);
  if (it == table_.end()) return out;
  for (const Held& h : it->second.granted) {
    if (h.mode != LockMode::kD) out.push_back(h.owner);
  }
  return out;
}

size_t LockManager::LockedObjectCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

LockManager::TableDump LockManager::DumpTable(size_t top_k) const {
  std::lock_guard<std::mutex> lock(mu_);
  TableDump dump;
  const int64_t now = obs::NowUs();
  dump.entries.reserve(table_.size());
  for (const auto& [oid, q] : table_) {
    TableDump::Entry e;
    e.oid = oid;
    e.granted.reserve(q.granted.size());
    for (const Held& h : q.granted) {
      e.granted.push_back(TableDump::HeldEntry{h.owner, h.mode});
    }
    for (const Waiter& w : q.waiting) {
      e.waiting.push_back(TableDump::WaiterEntry{
          w.owner, w.mode, w.is_upgrade,
          std::max<int64_t>(now - w.wait_start_us, 0)});
      // Direct blockers only — the same edges WouldDeadlockLocked expands.
      for (const Held& h : q.granted) {
        if (h.owner != w.owner && !LockCompatible(h.mode, w.mode)) {
          dump.wait_edges.push_back(TableDump::Edge{w.owner, h.owner, oid});
        }
      }
    }
    dump.entries.push_back(std::move(e));
  }
  std::sort(dump.entries.begin(), dump.entries.end(),
            [](const TableDump::Entry& a, const TableDump::Entry& b) {
              return a.oid < b.oid;
            });
  dump.top_contended.reserve(contention_.size());
  for (const auto& [oid, cw] : contention_) {
    dump.top_contended.push_back(TableDump::HotOid{oid, cw.first, cw.second});
  }
  std::sort(dump.top_contended.begin(), dump.top_contended.end(),
            [](const TableDump::HotOid& a, const TableDump::HotOid& b) {
              return a.cumulative_wait_us != b.cumulative_wait_us
                         ? a.cumulative_wait_us > b.cumulative_wait_us
                         : a.oid < b.oid;
            });
  if (dump.top_contended.size() > top_k) dump.top_contended.resize(top_k);
  return dump;
}

}  // namespace idba
