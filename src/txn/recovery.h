// Crash recovery: redo-only replay of the WAL into a heap store.
//
// The commit protocol is no-steal (uncommitted writes never reach the heap)
// so recovery is pure redo: replay committed transactions' images in log
// order. Images carry versions, making replay idempotent against whatever
// prefix of updates already reached the data disk before the crash.

#pragma once

#include "common/status.h"
#include "storage/heap_store.h"
#include "storage/wal.h"

namespace idba {

struct RecoveryStats {
  size_t records_scanned = 0;
  size_t committed_txns = 0;
  size_t redone_writes = 0;
  size_t skipped_stale = 0;  ///< images already present with >= version
};

/// Replays `wal_disk` into `heap`. Call on a freshly opened heap store.
Result<RecoveryStats> RecoverFromWal(Disk* wal_disk, HeapStore* heap);

}  // namespace idba
