#include "txn/txn_manager.h"

#include "obs/trace.h"

namespace idba {

TxnManager::TxnManager(HeapStore* heap, Wal* wal, TxnManagerOptions opts)
    : heap_(heap), wal_(wal), opts_(opts), locks_(opts.lock_options) {
  // Never hand out an OID that already exists (e.g. after restart/recovery).
  uint64_t max_oid = 0;
  for (Oid oid : heap_->AllOids()) max_oid = std::max(max_oid, oid.value);
  next_oid_.store(max_oid + 1);
  wal_->set_group_commit_window_us(opts_.group_commit_window_us);
}

TxnId TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = next_txn_++;
  txns_[id] = std::make_unique<Txn>();
  return id;
}

Oid TxnManager::AllocateOid() { return Oid(next_oid_.fetch_add(1)); }

void TxnManager::ReseedOidCounter() {
  uint64_t max_oid = 0;
  for (Oid oid : heap_->AllOids()) max_oid = std::max(max_oid, oid.value);
  uint64_t floor = max_oid + 1;
  uint64_t cur = next_oid_.load();
  while (cur < floor && !next_oid_.compare_exchange_weak(cur, floor)) {
  }
}

Result<Lsn> TxnManager::AppendCheckpointBegin() {
  std::unique_lock<std::shared_mutex> fence(commit_fence_);
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  return wal_->Append(std::move(rec));
}

Result<TxnManager::Txn*> TxnManager::FindActive(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) return Status::NotFound("txn " + std::to_string(txn));
  if (it->second->state != TxnState::kActive) {
    return Status::InvalidArgument("txn " + std::to_string(txn) + " not active");
  }
  return it->second.get();
}

Result<DatabaseObject> TxnManager::Get(TxnId txn, Oid oid, IoStats* io) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  // Read-your-writes from the intention list.
  auto wit = t->last_write.find(oid);
  if (wit != t->last_write.end()) {
    const PendingWrite& w = t->writes[wit->second];
    if (w.kind == WriteKind::kErase) return Status::NotFound(oid.ToString());
    return w.obj;
  }
  IDBA_RETURN_NOT_OK(locks_.Lock(txn, oid, LockMode::kS));
  return heap_->Read(oid, io);
}

Status TxnManager::LockRead(TxnId txn, Oid oid) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  (void)t;
  return locks_.Lock(txn, oid, LockMode::kS);
}

Status TxnManager::ValidateReads(
    TxnId txn, const std::vector<std::pair<Oid, uint64_t>>& reads, IoStats* io) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  (void)t;
  for (const auto& [oid, version] : reads) {
    IDBA_RETURN_NOT_OK(locks_.Lock(txn, oid, LockMode::kS));
    auto current = heap_->Read(oid, io);
    if (!current.ok()) {
      return Status::Aborted("validation: " + oid.ToString() + " vanished");
    }
    if (current.value().version() != version) {
      return Status::Aborted("validation: stale read of " + oid.ToString() +
                             " (read v" + std::to_string(version) + ", now v" +
                             std::to_string(current.value().version()) + ")");
    }
  }
  return Status::OK();
}

Status TxnManager::Put(TxnId txn, DatabaseObject obj) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  Oid oid = obj.oid();
  if (oid.IsNull()) return Status::InvalidArgument("Put with null OID");
  IDBA_RETURN_NOT_OK(locks_.Lock(txn, oid, LockMode::kX));
  if (xlock_hook_) xlock_hook_(txn, oid);
  auto wit = t->last_write.find(oid);
  WriteKind kind = WriteKind::kUpdate;
  if (wit != t->last_write.end() &&
      t->writes[wit->second].kind == WriteKind::kInsert) {
    kind = WriteKind::kInsert;  // updating an object this txn inserted
  }
  t->last_write[oid] = t->writes.size();
  t->writes.push_back(PendingWrite{kind, std::move(obj), oid});
  return Status::OK();
}

Status TxnManager::Insert(TxnId txn, DatabaseObject obj) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  Oid oid = obj.oid();
  if (oid.IsNull()) return Status::InvalidArgument("Insert with null OID");
  if (heap_->Contains(oid)) return Status::AlreadyExists(oid.ToString());
  IDBA_RETURN_NOT_OK(locks_.Lock(txn, oid, LockMode::kX));
  if (xlock_hook_) xlock_hook_(txn, oid);
  t->last_write[oid] = t->writes.size();
  t->writes.push_back(PendingWrite{WriteKind::kInsert, std::move(obj), oid});
  return Status::OK();
}

Status TxnManager::Erase(TxnId txn, Oid oid) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  IDBA_RETURN_NOT_OK(locks_.Lock(txn, oid, LockMode::kX));
  if (xlock_hook_) xlock_hook_(txn, oid);
  t->last_write[oid] = t->writes.size();
  t->writes.push_back(PendingWrite{WriteKind::kErase, DatabaseObject{}, oid});
  return Status::OK();
}

Status TxnManager::FailCommit(TxnId txn, Txn* t, Status cause) {
  // Best-effort abort record: if it reaches disk it durably cancels any
  // commit record from the failed batch that might otherwise survive
  // (recovery processes commit/abort in LSN order, last wins). The log may
  // be the broken component, so ignore the append's own outcome.
  WalRecord rec;
  rec.type = WalRecordType::kAbort;
  rec.txn = txn;
  (void)wal_->Append(std::move(rec));
  if (abort_hook_) abort_hook_(txn);
  locks_.ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    t->state = TxnState::kAborted;
  }
  aborts_.Add();
  return cause;
}

Result<CommitResult> TxnManager::Commit(TxnId txn) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  CommitResult result;
  result.txn = txn;
  IoStats io;

  // 1. Determine final images (last write per OID wins) and bump versions.
  std::vector<PendingWrite> finals;
  for (const auto& [oid, idx] : t->last_write) {
    PendingWrite w = t->writes[idx];
    if (w.kind != WriteKind::kErase) {
      uint64_t old_version = 0;
      if (w.kind == WriteKind::kUpdate) {
        auto cur = heap_->Read(oid, &io);
        if (!cur.ok()) {
          return FailCommit(txn, t, cur.status());  // update of a vanished object
        }
        old_version = cur.value().version();
      }
      w.obj.set_version(old_version + 1);
    }
    finals.push_back(std::move(w));
  }

  // Commit fence: held shared from the first WAL append until the heap
  // apply completes, so a checkpoint-begin record (appended under the
  // exclusive side) never lands between a commit record and its heap
  // effects. WaitDurable under a shared fence cannot deadlock: the flush
  // leader is itself a committer holding shared, and the checkpointer
  // never holds the fence while waiting on the WAL.
  std::shared_lock<std::shared_mutex> fence(commit_fence_);

  // 2a. Append phase (lock-light): buffer redo images + the commit record
  //     into the WAL. No I/O happens here.
  for (const PendingWrite& w : finals) {
    WalRecord rec;
    rec.txn = txn;
    rec.oid = w.oid;
    switch (w.kind) {
      case WriteKind::kInsert:
        rec.type = WalRecordType::kInsert;
        rec.after = w.obj;
        break;
      case WriteKind::kUpdate:
        rec.type = WalRecordType::kUpdate;
        rec.after = w.obj;
        break;
      case WriteKind::kErase:
        rec.type = WalRecordType::kErase;
        break;
    }
    auto lsn = wal_->Append(std::move(rec));
    if (!lsn.ok()) return FailCommit(txn, t, lsn.status());
  }
  WalRecord commit_rec;
  commit_rec.type = WalRecordType::kCommit;
  commit_rec.txn = txn;
  auto commit_lsn = wal_->Append(std::move(commit_rec));
  if (!commit_lsn.ok()) return FailCommit(txn, t, commit_lsn.status());

  // 2b. Durability barrier: block until the commit LSN is covered by a
  //     sync. Concurrent committers coalesce into one batched fsync inside
  //     the Wal (group commit); on failure the transaction never became
  //     durable, so abort it cleanly — releasing the X locks, which the
  //     pre-group-commit code leaked, hanging every later reader.
  if (opts_.durable_commit) {
    IDBA_TRACE_SPAN("storage.wal_flush");
    Status st = wal_->WaitDurable(commit_lsn.value());
    if (!st.ok()) return FailCommit(txn, t, st);
  }

  // 3. Apply to the heap (we still hold X locks, so this is race-free).
  //    Failures here are past the durability point: the transaction IS
  //    committed on disk (recovery will redo it), so release locks and
  //    report the storage error without marking it aborted.
  for (const PendingWrite& w : finals) {
    Status apply = Status::OK();
    switch (w.kind) {
      case WriteKind::kInsert:
        apply = heap_->Insert(w.obj, &io);
        if (apply.ok()) result.updated.push_back(w.obj);
        break;
      case WriteKind::kUpdate:
        apply = heap_->Update(w.obj, &io);
        if (apply.ok()) result.updated.push_back(w.obj);
        break;
      case WriteKind::kErase: {
        apply = heap_->Erase(w.oid, &io);
        if (apply.IsNotFound()) apply = Status::OK();
        if (apply.ok()) result.erased.push_back(w.oid);
        break;
      }
    }
    if (!apply.ok()) {
      locks_.ReleaseAll(txn);
      {
        std::lock_guard<std::mutex> lock(mu_);
        t->state = TxnState::kCommitted;  // durably committed; heap diverged
      }
      commits_.Add();
      return apply;
    }
  }
  result.page_misses = io.page_misses;
  fence.unlock();  // WAL + heap agree; the checkpointer may fence here

  // 4. Fire hooks while locks are still held (strictness: nobody can read
  //    a newer uncommitted state between the hook and the release).
  if (commit_hook_) commit_hook_(result);

  // 5. Release locks, mark committed.
  locks_.ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    t->state = TxnState::kCommitted;
  }
  commits_.Add();
  return result;
}

Status TxnManager::Abort(TxnId txn) {
  IDBA_ASSIGN_OR_RETURN(Txn * t, FindActive(txn));
  WalRecord rec;
  rec.type = WalRecordType::kAbort;
  rec.txn = txn;
  IDBA_RETURN_NOT_OK(wal_->Append(std::move(rec)).status());
  if (abort_hook_) abort_hook_(txn);
  locks_.ReleaseAll(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    t->state = TxnState::kAborted;
  }
  aborts_.Add();
  return Status::OK();
}

TxnState TxnManager::GetState(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) return TxnState::kAborted;
  return it->second->state;
}

}  // namespace idba
