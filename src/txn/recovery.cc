#include "txn/recovery.h"

#include <unordered_set>

namespace idba {

Result<RecoveryStats> RecoverFromWal(Disk* wal_disk, HeapStore* heap) {
  RecoveryStats stats;
  IDBA_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                        Wal::ReadAllFromDisk(wal_disk));
  stats.records_scanned = records.size();

  // Pass 1: winners, in log order — an abort record appended after a commit
  // record cancels it. The commit path emits exactly that sequence when the
  // sync covering a commit record fails: the record may still have reached
  // disk, so the transaction appends a best-effort abort record and reports
  // failure to the client. Replaying such a txn would resurrect a commit
  // the client was told did not happen.
  std::unordered_set<TxnId> committed;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kCommit) {
      committed.insert(rec.txn);
    } else if (rec.type == WalRecordType::kAbort) {
      committed.erase(rec.txn);
    }
  }
  stats.committed_txns = committed.size();

  // Pass 2: redo committed writes in log order.
  for (const WalRecord& rec : records) {
    if (!committed.count(rec.txn)) continue;
    switch (rec.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kUpdate: {
        auto current = heap->Read(rec.oid);
        if (current.ok()) {
          if (current.value().version() >= rec.after.version()) {
            ++stats.skipped_stale;
            break;
          }
          IDBA_RETURN_NOT_OK(heap->Update(rec.after));
        } else if (current.status().IsNotFound()) {
          IDBA_RETURN_NOT_OK(heap->Insert(rec.after));
        } else {
          return current.status();
        }
        ++stats.redone_writes;
        break;
      }
      case WalRecordType::kErase: {
        Status st = heap->Erase(rec.oid);
        if (!st.ok() && !st.IsNotFound()) return st;
        ++stats.redone_writes;
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

}  // namespace idba
