#include "txn/recovery.h"

#include <unordered_set>

namespace idba {

Result<RecoveryStats> RecoverFromWal(Disk* wal_disk, HeapStore* heap) {
  RecoveryStats stats;
  IDBA_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                        Wal::ReadAllFromDisk(wal_disk));
  stats.records_scanned = records.size();

  // Pass 1: winners.
  std::unordered_set<TxnId> committed;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn);
  }
  stats.committed_txns = committed.size();

  // Pass 2: redo committed writes in log order.
  for (const WalRecord& rec : records) {
    if (!committed.count(rec.txn)) continue;
    switch (rec.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kUpdate: {
        auto current = heap->Read(rec.oid);
        if (current.ok()) {
          if (current.value().version() >= rec.after.version()) {
            ++stats.skipped_stale;
            break;
          }
          IDBA_RETURN_NOT_OK(heap->Update(rec.after));
        } else if (current.status().IsNotFound()) {
          IDBA_RETURN_NOT_OK(heap->Insert(rec.after));
        } else {
          return current.status();
        }
        ++stats.redone_writes;
        break;
      }
      case WalRecordType::kErase: {
        Status st = heap->Erase(rec.oid);
        if (!st.ok() && !st.IsNotFound()) return st;
        ++stats.redone_writes;
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

}  // namespace idba
