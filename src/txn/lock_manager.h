// Object-granularity lock manager.
//
// Modes are the classical IS/IX/S/SIX/X hierarchy (Gray & Reuter ch. 8,
// which the paper cites as the substrate display locks extend) plus the
// paper's contribution: mode D ("display lock", §3.3) — a non-restrictive
// shared lock **compatible with every mode including X and other D locks**.
// Holding D never blocks anyone and never waits; its only semantics is
// membership in the notification set maintained by the DLM / callback
// machinery.
//
// Owners are generic uint64 ids: transactions for IS..X, clients for D and
// for cache callback bookkeeping.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/vtime.h"
#include "objectmodel/oid.h"

namespace idba {

/// Lock owner (transaction id or client id depending on mode).
using LockOwnerId = uint64_t;

enum class LockMode : uint8_t {
  kNL = 0,   ///< no lock
  kIS = 1,   ///< intention shared
  kIX = 2,   ///< intention exclusive
  kS = 3,    ///< shared (read)
  kSIX = 4,  ///< shared + intention exclusive
  kX = 5,    ///< exclusive (write)
  kD = 6,    ///< display lock (paper §3.3): compatible with everything
};

std::string_view LockModeName(LockMode m);

/// True if a requested mode is compatible with a held mode.
bool LockCompatible(LockMode held, LockMode requested);

/// The least-upper-bound of two modes (for upgrades), e.g. sup(S,IX)=SIX.
LockMode LockSupremum(LockMode a, LockMode b);

struct LockManagerOptions {
  /// Wall-clock bound on a single lock wait before TimedOut (safety net on
  /// top of deadlock detection).
  int64_t wait_timeout_ms = 5000;
  /// If false, deadlocks are resolved only by timeout.
  bool deadlock_detection = true;
};

/// Thread-safe lock manager. Blocking requests wait on a condition
/// variable; deadlocks are detected with a waits-for-graph DFS at block
/// time and resolved by aborting the requester (Status::Deadlock).
class LockManager {
 public:
  explicit LockManager(LockManagerOptions opts = {});

  /// Acquires (or upgrades to) `mode` on `oid` for `owner`. Blocks while
  /// conflicting. D-mode requests never block (granted immediately).
  Status Lock(LockOwnerId owner, Oid oid, LockMode mode);

  /// Non-blocking variant: Busy instead of waiting.
  Status TryLock(LockOwnerId owner, Oid oid, LockMode mode);

  /// Releases `owner`'s lock on `oid` (whatever its mode).
  Status Unlock(LockOwnerId owner, Oid oid);

  /// Releases every lock held by `owner` (commit/abort/disconnect).
  void ReleaseAll(LockOwnerId owner);

  /// Mode currently held by `owner` on `oid` (kNL if none).
  LockMode HeldMode(LockOwnerId owner, Oid oid) const;

  /// Owners currently holding D locks on `oid` (the notification set).
  std::vector<LockOwnerId> DisplayLockHolders(Oid oid) const;

  /// Owners holding any non-D lock on `oid`.
  std::vector<LockOwnerId> Holders(Oid oid) const;

  /// Number of OIDs with at least one lock entry.
  size_t LockedObjectCount() const;

  uint64_t grants() const { return grants_.Get(); }
  uint64_t waits() const { return waits_.Get(); }
  uint64_t deadlocks() const { return deadlocks_.Get(); }
  uint64_t timeouts() const { return timeouts_.Get(); }

  /// Deep point-in-time view of the lock table for the LOCKS admin RPC and
  /// idba_stat: per-OID holders and waiters (with how long each has waited
  /// so far), the waits-for edges among them, and the all-time top-K OIDs
  /// by cumulative wall-clock wait (contention survives entry removal, so
  /// the hot list reflects history, not just the current instant).
  struct TableDump {
    struct HeldEntry {
      LockOwnerId owner = 0;
      LockMode mode = LockMode::kNL;
    };
    struct WaiterEntry {
      LockOwnerId owner = 0;
      LockMode mode = LockMode::kNL;
      bool is_upgrade = false;
      int64_t waited_us = 0;  ///< so far, at dump time
    };
    struct Entry {
      Oid oid;
      std::vector<HeldEntry> granted;
      std::vector<WaiterEntry> waiting;
    };
    /// `waiter` is blocked (directly) behind `holder`'s grant on `oid`.
    struct Edge {
      LockOwnerId waiter = 0;
      LockOwnerId holder = 0;
      Oid oid;
    };
    struct HotOid {
      Oid oid;
      uint64_t cumulative_wait_us = 0;
      uint64_t waits = 0;
    };
    std::vector<Entry> entries;       ///< sorted by oid
    std::vector<Edge> wait_edges;
    std::vector<HotOid> top_contended;  ///< by cumulative wait, descending
  };
  TableDump DumpTable(size_t top_k = 10) const;

 private:
  struct Held {
    LockOwnerId owner;
    LockMode mode;
  };
  struct Waiter {
    LockOwnerId owner;
    LockMode mode;
    bool is_upgrade;
    uint64_t ticket;  // FIFO ordering
    int64_t wait_start_us;
  };
  struct Queue {
    std::vector<Held> granted;
    std::deque<Waiter> waiting;
  };

  Status LockInternal(LockOwnerId owner, Oid oid, LockMode mode, bool blocking);
  // All helpers below require mu_.
  bool CanGrantLocked(const Queue& q, LockOwnerId owner, LockMode mode,
                      uint64_t ticket) const;
  void GrantLocked(Queue& q, LockOwnerId owner, LockMode mode);
  bool WouldDeadlockLocked(LockOwnerId requester, const Oid& oid, LockMode mode) const;
  void RemoveWaiterLocked(Queue& q, LockOwnerId owner, uint64_t ticket);
  void NoteWaitEndLocked(const Oid& oid, int64_t wait_start_us);

  LockManagerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<Oid, Queue> table_;
  std::unordered_map<LockOwnerId, std::unordered_set<Oid>> owner_locks_;
  // Each owner thread blocks on at most one request at a time; this map
  // backs the waits-for-graph expansion in WouldDeadlockLocked.
  std::unordered_map<LockOwnerId, std::pair<Oid, LockMode>> waiting_requests_;
  // Per-OID {cumulative wait us, wait count}, kept after entries vanish so
  // DumpTable's hot list is historical. One entry per ever-contended OID —
  // contention is rare enough that this does not need eviction.
  std::unordered_map<Oid, std::pair<uint64_t, uint64_t>> contention_;
  uint64_t next_ticket_ = 1;
  MirroredCounter grants_, waits_, deadlocks_, timeouts_;
  Histogram* wait_hist_ = nullptr;  ///< txn.lock.wait_us in GlobalMetrics
};

}  // namespace idba
