// Object-granularity lock manager.
//
// Modes are the classical IS/IX/S/SIX/X hierarchy (Gray & Reuter ch. 8,
// which the paper cites as the substrate display locks extend) plus the
// paper's contribution: mode D ("display lock", §3.3) — a non-restrictive
// shared lock **compatible with every mode including X and other D locks**.
// Holding D never blocks anyone and never waits; its only semantics is
// membership in the notification set maintained by the DLM / callback
// machinery.
//
// Owners are generic uint64 ids: transactions for IS..X, clients for D and
// for cache callback bookkeeping.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/vtime.h"
#include "objectmodel/oid.h"

namespace idba {

/// Lock owner (transaction id or client id depending on mode).
using LockOwnerId = uint64_t;

enum class LockMode : uint8_t {
  kNL = 0,   ///< no lock
  kIS = 1,   ///< intention shared
  kIX = 2,   ///< intention exclusive
  kS = 3,    ///< shared (read)
  kSIX = 4,  ///< shared + intention exclusive
  kX = 5,    ///< exclusive (write)
  kD = 6,    ///< display lock (paper §3.3): compatible with everything
};

std::string_view LockModeName(LockMode m);

/// True if a requested mode is compatible with a held mode.
bool LockCompatible(LockMode held, LockMode requested);

/// The least-upper-bound of two modes (for upgrades), e.g. sup(S,IX)=SIX.
LockMode LockSupremum(LockMode a, LockMode b);

struct LockManagerOptions {
  /// Wall-clock bound on a single lock wait before TimedOut (safety net on
  /// top of deadlock detection).
  int64_t wait_timeout_ms = 5000;
  /// If false, deadlocks are resolved only by timeout.
  bool deadlock_detection = true;
};

/// Thread-safe lock manager. Blocking requests wait on a condition
/// variable; deadlocks are detected with a waits-for-graph DFS at block
/// time and resolved by aborting the requester (Status::Deadlock).
class LockManager {
 public:
  explicit LockManager(LockManagerOptions opts = {});

  /// Acquires (or upgrades to) `mode` on `oid` for `owner`. Blocks while
  /// conflicting. D-mode requests never block (granted immediately).
  Status Lock(LockOwnerId owner, Oid oid, LockMode mode);

  /// Non-blocking variant: Busy instead of waiting.
  Status TryLock(LockOwnerId owner, Oid oid, LockMode mode);

  /// Releases `owner`'s lock on `oid` (whatever its mode).
  Status Unlock(LockOwnerId owner, Oid oid);

  /// Releases every lock held by `owner` (commit/abort/disconnect).
  void ReleaseAll(LockOwnerId owner);

  /// Mode currently held by `owner` on `oid` (kNL if none).
  LockMode HeldMode(LockOwnerId owner, Oid oid) const;

  /// Owners currently holding D locks on `oid` (the notification set).
  std::vector<LockOwnerId> DisplayLockHolders(Oid oid) const;

  /// Owners holding any non-D lock on `oid`.
  std::vector<LockOwnerId> Holders(Oid oid) const;

  /// Number of OIDs with at least one lock entry.
  size_t LockedObjectCount() const;

  uint64_t grants() const { return grants_.Get(); }
  uint64_t waits() const { return waits_.Get(); }
  uint64_t deadlocks() const { return deadlocks_.Get(); }
  uint64_t timeouts() const { return timeouts_.Get(); }

 private:
  struct Held {
    LockOwnerId owner;
    LockMode mode;
  };
  struct Waiter {
    LockOwnerId owner;
    LockMode mode;
    bool is_upgrade;
    uint64_t ticket;  // FIFO ordering
  };
  struct Queue {
    std::vector<Held> granted;
    std::deque<Waiter> waiting;
  };

  Status LockInternal(LockOwnerId owner, Oid oid, LockMode mode, bool blocking);
  // All helpers below require mu_.
  bool CanGrantLocked(const Queue& q, LockOwnerId owner, LockMode mode,
                      uint64_t ticket) const;
  void GrantLocked(Queue& q, LockOwnerId owner, LockMode mode);
  bool WouldDeadlockLocked(LockOwnerId requester, const Oid& oid, LockMode mode) const;
  void RemoveWaiterLocked(Queue& q, LockOwnerId owner, uint64_t ticket);

  LockManagerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<Oid, Queue> table_;
  std::unordered_map<LockOwnerId, std::unordered_set<Oid>> owner_locks_;
  // Each owner thread blocks on at most one request at a time; this map
  // backs the waits-for-graph expansion in WouldDeadlockLocked.
  std::unordered_map<LockOwnerId, std::pair<Oid, LockMode>> waiting_requests_;
  uint64_t next_ticket_ = 1;
  Counter grants_, waits_, deadlocks_, timeouts_;
};

}  // namespace idba
