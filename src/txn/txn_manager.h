// Transaction manager: strict two-phase locking with deferred updates.
//
// Reads take S locks and hit the heap store; writes take X locks and are
// buffered in a per-transaction intention list. Commit appends redo records
// + a commit record to the WAL, forces the log, applies the intention list
// to the heap (bumping object versions), fires the commit hooks (client
// cache callbacks and display-lock notifications are driven from there) and
// only then releases locks — guaranteeing ACID per Gray & Reuter, as the
// paper assumes of its substrate DBMS.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "objectmodel/object.h"
#include "storage/heap_store.h"
#include "storage/wal.h"
#include "txn/lock_manager.h"

namespace idba {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// What a commit changed — input for cache callbacks and DLM notification.
struct CommitResult {
  TxnId txn = 0;
  std::vector<DatabaseObject> updated;  ///< post-commit images (incl. inserts)
  std::vector<Oid> erased;
  int page_misses = 0;  ///< physical reads incurred applying the commit
};

/// Fired while holding no internal mutex, after locks are still held
/// (strictness) but the commit is durable.
using CommitHook = std::function<void(const CommitResult&)>;

/// Fired when a transaction acquires an X lock on an object (the paper's
/// early-notify trigger: "update intention").
using XLockHook = std::function<void(TxnId, Oid)>;

/// Fired when a transaction aborts (early-notify resolution messages).
using AbortHook = std::function<void(TxnId)>;

struct TxnManagerOptions {
  LockManagerOptions lock_options;
  /// Force the WAL at commit (disable only in throughput microbenches).
  bool durable_commit = true;
  /// Group-commit window: how long the WAL flush leader lingers for more
  /// committers before paying the sync (applied to the Wal at construction;
  /// 0 = flush immediately, batching then comes from sync backpressure).
  int64_t group_commit_window_us = 0;
};

/// Thread-safe transaction manager over a heap store and WAL.
class TxnManager {
 public:
  TxnManager(HeapStore* heap, Wal* wal, TxnManagerOptions opts = {});

  /// Starts a transaction.
  TxnId Begin();

  /// Reads `oid` under an S lock (sees the transaction's own writes).
  Result<DatabaseObject> Get(TxnId txn, Oid oid, IoStats* io = nullptr);

  /// Takes only the S lock (no data access): clients reading a cached copy
  /// acquire this before trusting it inside an update transaction. With the
  /// S lock held, a present cached copy is guaranteed current (invalidation
  /// happens strictly before the writer's X lock is released).
  Status LockRead(TxnId txn, Oid oid);

  /// Detection-based consistency support (the protocol family §2.3/§3.3
  /// contrasts with avoidance): validates that each (oid, version) pair a
  /// client read optimistically from its cache is still current, taking S
  /// locks so the validation holds through commit. Returns Aborted on any
  /// stale read (the caller then aborts the transaction).
  Status ValidateReads(TxnId txn,
                       const std::vector<std::pair<Oid, uint64_t>>& reads,
                       IoStats* io = nullptr);

  /// Buffers an update of an existing object (X lock).
  Status Put(TxnId txn, DatabaseObject obj);

  /// Buffers insertion of a new object (X lock on its fresh OID).
  Status Insert(TxnId txn, DatabaseObject obj);

  /// Buffers deletion (X lock).
  Status Erase(TxnId txn, Oid oid);

  /// Durably commits; returns what changed.
  Result<CommitResult> Commit(TxnId txn);

  /// Discards the intention list and releases locks.
  Status Abort(TxnId txn);

  /// Allocates a fresh OID (monotonic, never reused).
  Oid AllocateOid();

  /// Re-derives the allocator floor from the heap's current contents.
  /// The constructor scans the heap once, but WAL replay (which runs after
  /// server construction) can add objects with higher oids; callers that
  /// replay must reseed or later allocations would collide. Never lowers
  /// the counter.
  void ReseedOidCounter();

  /// Appends a fuzzy-checkpoint begin record and returns its LSN, holding
  /// the commit fence exclusively so no transaction is between its WAL
  /// append and its heap apply at that instant. After this returns, every
  /// commit with LSN <= the returned fence has fully reached the heap, and
  /// every later commit's records survive the WAL truncation that follows
  /// the checkpoint. Appends only — no I/O under the fence.
  Result<Lsn> AppendCheckpointBegin();

  TxnState GetState(TxnId txn) const;
  LockManager& lock_manager() { return locks_; }
  const TxnManagerOptions& options() const { return opts_; }

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void set_xlock_hook(XLockHook hook) { xlock_hook_ = std::move(hook); }
  void set_abort_hook(AbortHook hook) { abort_hook_ = std::move(hook); }

  uint64_t commits() const { return commits_.Get(); }
  uint64_t aborts() const { return aborts_.Get(); }

 private:
  enum class WriteKind : uint8_t { kInsert, kUpdate, kErase };
  struct PendingWrite {
    WriteKind kind;
    DatabaseObject obj;  // kInsert/kUpdate
    Oid oid;
  };
  struct Txn {
    TxnState state = TxnState::kActive;
    std::vector<PendingWrite> writes;                // in issue order
    std::unordered_map<Oid, size_t> last_write;      // oid -> index in writes
  };

  Result<Txn*> FindActive(TxnId txn);

  /// Commit failed before the transaction became durable: release its
  /// locks, mark it aborted and surface `cause`. Leaving the X locks held
  /// here (the pre-group-commit behaviour) hung every later reader of the
  /// transaction's OIDs forever.
  Status FailCommit(TxnId txn, Txn* t, Status cause);

  HeapStore* heap_;
  Wal* wal_;
  TxnManagerOptions opts_;
  LockManager locks_;
  CommitHook commit_hook_;
  XLockHook xlock_hook_;
  AbortHook abort_hook_;

  /// Commits hold this shared from WAL append through heap apply; the
  /// checkpointer takes it exclusively (only to append its begin record)
  /// so the begin LSN cleanly separates fully-applied transactions from
  /// ones whose records will survive truncation.
  mutable std::shared_mutex commit_fence_;

  mutable std::mutex mu_;
  std::unordered_map<TxnId, std::unique_ptr<Txn>> txns_;
  TxnId next_txn_ = 1;
  std::atomic<uint64_t> next_oid_{1};
  Counter commits_, aborts_;
};

}  // namespace idba
