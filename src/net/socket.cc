#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace idba {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectTo(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string service = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      SetNoDelay(fd);
      freeaddrinfo(res);
      return Socket(fd);
    }
    last = Errno("connect " + host + ":" + service);
    ::close(fd);
  }
  freeaddrinfo(res);
  return last;
}

Status Socket::SendAll(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (rc == 0) return Status::IOError("send: connection closed");
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (rc == 0) return Status::IOError("recv: connection closed");
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::WriteFrame(std::mutex& write_mu, wire::FrameType type,
                          uint64_t seq, const std::vector<uint8_t>& payload,
                          Counter* bytes_out) {
  wire::FrameHeader header;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.type = type;
  header.seq = seq;
  uint8_t raw[wire::kHeaderBytes];
  wire::EncodeHeader(header, raw);
  std::lock_guard<std::mutex> lock(write_mu);
  IDBA_RETURN_NOT_OK(SendAll(raw, wire::kHeaderBytes));
  if (!payload.empty()) {
    IDBA_RETURN_NOT_OK(SendAll(payload.data(), payload.size()));
  }
  if (bytes_out != nullptr) {
    bytes_out->Add(wire::kHeaderBytes + payload.size());
  }
  return Status::OK();
}

Status Socket::ReadFrame(wire::FrameHeader* header,
                         std::vector<uint8_t>* payload, Counter* bytes_in) {
  uint8_t raw[wire::kHeaderBytes];
  IDBA_RETURN_NOT_OK(RecvAll(raw, wire::kHeaderBytes));
  IDBA_RETURN_NOT_OK(wire::DecodeHeader(raw, header));
  payload->resize(header->payload_len);
  if (header->payload_len > 0) {
    IDBA_RETURN_NOT_OK(RecvAll(payload->data(), payload->size()));
  }
  if (bytes_in != nullptr) {
    bytes_in->Add(wire::kHeaderBytes + payload->size());
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int one = 1;
  (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    Close();
    return st;
  }
  if (::listen(fd_, 64) != 0) {
    Status st = Errno("listen");
    Close();
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    Close();
    return st;
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<Socket> Listener::Accept() {
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  SetNoDelay(fd);
  return Socket(fd);
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace idba
