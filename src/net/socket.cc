#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace idba {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status SetNonBlockingFd(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

/// Completes a non-blocking connect within `timeout_ms`: polls for
/// writability, then checks SO_ERROR (the connect result).
Status FinishConnect(int fd, int64_t timeout_ms, const std::string& where) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll " + where);
  if (rc == 0) {
    return Status::TimedOut("connect " + where + ": no response within " +
                            std::to_string(timeout_ms) + " ms");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return Errno("getsockopt " + where);
  }
  if (err != 0) {
    return Status::IOError("connect " + where + ": " + std::strerror(err));
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    std::shared_ptr<FaultInjector> faults;
    {
      std::lock_guard<std::mutex> lock(other.faults_mu_);
      faults = std::move(other.faults_);
    }
    std::lock_guard<std::mutex> lock(faults_mu_);
    faults_ = std::move(faults);
  }
  return *this;
}

Result<Socket> Socket::ConnectTo(const std::string& host, uint16_t port,
                                 int64_t connect_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string service = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(rc));
  }
  const std::string where = host + ":" + service;
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (connect_timeout_ms > 0) {
      last = SetNonBlockingFd(fd, true);
      if (last.ok()) {
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
          last = Status::OK();
        } else if (errno == EINPROGRESS) {
          last = FinishConnect(fd, connect_timeout_ms, where);
        } else {
          last = Errno("connect " + where);
        }
      }
      if (last.ok()) last = SetNonBlockingFd(fd, false);
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      last = Status::OK();
    } else {
      last = Errno("connect " + where);
    }
    if (last.ok()) {
      SetNoDelay(fd);
      freeaddrinfo(res);
      return Socket(fd);
    }
    ::close(fd);
  }
  freeaddrinfo(res);
  return last;
}

Status Socket::SendAll(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (rc == 0) return Status::IOError("send: connection closed");
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::TimedOut("recv: idle timeout expired");
      }
      return Errno("recv");
    }
    if (rc == 0) return Status::IOError("recv: connection closed");
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::SetNonBlocking(bool enable) {
  return SetNonBlockingFd(fd_, enable);
}

Status Socket::SetRecvTimeout(int64_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status Socket::WriteFrame(std::mutex& write_mu, wire::FrameType type,
                          uint64_t seq, const std::vector<uint8_t>& payload,
                          MirroredCounter* bytes_out, bool traced) {
  wire::FrameHeader header;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.type = type;
  header.seq = seq;
  header.traced = traced;
  uint8_t raw[wire::kHeaderBytes];
  wire::EncodeHeader(header, raw);

  FaultRule fault{FaultDirection::kWrite, FaultKind::kNone, 0, 0, 0};
  if (std::shared_ptr<FaultInjector> faults = fault_injector()) {
    fault = faults->OnFrame(FaultDirection::kWrite);
  }
  switch (fault.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDelay:
      // Stall outside the write mutex so other frames still flow.
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
      break;
    case FaultKind::kDrop:
      // The frame vanishes; the sender believes it went out.
      return Status::OK();
    case FaultKind::kTruncate: {
      // Header plus half the payload reach the wire, then "the sender
      // dies": the peer stalls mid-frame. Reported as sent.
      std::lock_guard<std::mutex> lock(write_mu);
      IDBA_RETURN_NOT_OK(SendAll(raw, wire::kHeaderBytes));
      if (!payload.empty()) {
        IDBA_RETURN_NOT_OK(SendAll(payload.data(), payload.size() / 2));
      }
      return Status::OK();
    }
    case FaultKind::kError:
      return Status::IOError("fault injection: write error");
  }

  std::lock_guard<std::mutex> lock(write_mu);
  IDBA_RETURN_NOT_OK(SendAll(raw, wire::kHeaderBytes));
  if (!payload.empty()) {
    IDBA_RETURN_NOT_OK(SendAll(payload.data(), payload.size()));
  }
  if (bytes_out != nullptr) {
    bytes_out->Add(wire::kHeaderBytes + payload.size());
  }
  return Status::OK();
}

Status Socket::ReadFrame(wire::FrameHeader* header,
                         std::vector<uint8_t>* payload, MirroredCounter* bytes_in) {
  for (;;) {
    uint8_t raw[wire::kHeaderBytes];
    IDBA_RETURN_NOT_OK(RecvAll(raw, wire::kHeaderBytes));
    IDBA_RETURN_NOT_OK(wire::DecodeHeader(raw, header));
    // Consult the injector only once a frame has actually arrived: the
    // reader thread sits blocked in RecvAll between frames, so a rule
    // installed during that wait must hit the next frame that lands, not
    // be decided before it exists.
    FaultRule fault{FaultDirection::kRead, FaultKind::kNone, 0, 0, 0};
    if (std::shared_ptr<FaultInjector> faults = fault_injector()) {
      fault = faults->OnFrame(FaultDirection::kRead);
    }
    if (fault.kind == FaultKind::kError ||
        fault.kind == FaultKind::kTruncate) {
      // "The receiver dies" mid-frame; the stream is desynced and the
      // connection must be dropped, which the caller does on error.
      return Status::IOError(fault.kind == FaultKind::kError
                                 ? "fault injection: read error"
                                 : "fault injection: truncated read");
    }
    if (fault.kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    }
    payload->resize(header->payload_len);
    if (header->payload_len > 0) {
      IDBA_RETURN_NOT_OK(RecvAll(payload->data(), payload->size()));
    }
    if (fault.kind == FaultKind::kDrop) {
      continue;  // frame consumed and discarded; deliver the next one
    }
    if (bytes_in != nullptr) {
      bytes_in->Add(wire::kHeaderBytes + payload->size());
    }
    return Status::OK();
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::Listen(uint16_t port, const std::string& bind_host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bind address '" + bind_host +
                                   "' is not a numeric IPv4 address");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int one = 1;
  (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind " + bind_host);
    Close();
    return st;
  }
  if (::listen(fd_, 64) != 0) {
    Status st = Errno("listen");
    Close();
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    Close();
    return st;
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<Socket> Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EMFILE || errno == ENFILE) {
      // Fd exhaustion is transient under a connection flood: back off
      // briefly instead of tearing down the accept loop. The caller's
      // rate-limited logging reports the pressure.
      Status st = Errno("accept");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return st;
    }
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace idba
