// Refcounted immutable byte buffer for single-serialization fan-out.
//
// A NOTIFY payload is encoded once into a SharedBuf and the same bytes are
// queued to every subscriber's connection; each outbound frame pairs a
// small per-connection head (frame header + trace/envelope metadata, which
// differ per subscriber) with the shared body, and the write path stitches
// the two together with vectored writev — no per-subscriber copy of the
// body ever exists. Message::SharedWireBody() memoizes the encoding on the
// message instance, so the encode-vs-reuse ratio is directly observable
// (transport.fanout.* counters).

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace idba {

/// Immutable shared byte buffer. Copying a SharedBuf copies a pointer, not
/// the bytes. An empty/default SharedBuf holds no buffer at all.
class SharedBuf {
 public:
  SharedBuf() = default;
  explicit SharedBuf(std::vector<uint8_t> bytes)
      : bytes_(std::make_shared<const std::vector<uint8_t>>(
            std::move(bytes))) {}

  explicit operator bool() const { return bytes_ != nullptr; }
  size_t size() const { return bytes_ ? bytes_->size() : 0; }
  const uint8_t* data() const { return bytes_ ? bytes_->data() : nullptr; }

  /// Number of SharedBuf copies alive for this buffer (diagnostics/tests).
  long use_count() const { return bytes_.use_count(); }

 private:
  std::shared_ptr<const std::vector<uint8_t>> bytes_;
};

}  // namespace idba
