// Per-connection state machine for the event-driven transport.
//
// A Conn owns one nonblocking socket registered with one EventLoop. The
// read side decodes frames incrementally — partial headers and payloads
// accumulate across readiness events — and hands complete frames to the
// Handler on the loop thread. The write side is a bounded queue of
// outbound frames drained with vectored writev, also on the loop thread:
// any thread may EnqueueFrame(), the loop does the socket I/O, and
// EPOLLOUT is armed only while a partial write is outstanding.
//
// Fan-out frames are queued as (head, body) pairs: `head` carries the
// 13-byte frame header plus per-connection metadata (trace context,
// envelope addressing), `body` is a refcounted SharedBuf holding the
// payload tail that every subscriber shares. writev stitches the two on
// the wire, so a NOTIFY fan-out to N subscribers serializes the message
// body exactly once (net/shared_buf.h).
//
// Backpressure: `write_backlogged()` reports when queued bytes exceed the
// watermark. The transport stops draining a connection's notification
// inbox while backlogged — the backlog then accumulates in the *bounded*
// inbox where the overload ladder (coalesce → resync → disconnect,
// DESIGN.md §9) applies — and resumes via Handler::OnWriteDrained when the
// queue empties below the watermark.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "net/event_loop.h"
#include "net/shared_buf.h"
#include "net/socket.h"
#include "net/wire.h"

namespace idba {

class Conn : public EventLoop::Handler,
             public std::enable_shared_from_this<Conn> {
 public:
  /// Transport semantics, invoked on the loop thread.
  class Handler {
   public:
    virtual ~Handler() = default;
    /// A complete, validated frame arrived.
    virtual void OnFrame(Conn* conn, const wire::FrameHeader& header,
                         std::vector<uint8_t> payload) = 0;
    /// The write queue drained below the watermark after having been above
    /// it: outbound lanes held back by backpressure may refill now.
    virtual void OnWriteDrained(Conn* conn) = 0;
    /// The peer closed or a fatal error occurred. Called exactly once, on
    /// the loop thread, after the fd has been removed from the loop.
    virtual void OnClosed(Conn* conn) = 0;
  };

  struct Options {
    /// Bytes per read() attempt while draining the socket.
    size_t read_chunk = 64 * 1024;
    /// Notify lanes stop refilling while queued outbound bytes exceed this.
    size_t write_watermark_bytes = 256 * 1024;
    /// Raw-byte counters (optional; bumped on actual socket I/O).
    MirroredCounter* bytes_in = nullptr;
    MirroredCounter* bytes_out = nullptr;
  };

  Conn(EventLoop* loop, Socket sock, Handler* handler, Options opts);
  ~Conn() override;

  /// Sets the socket nonblocking and registers it with the loop. Call once
  /// before any traffic; safe from any thread.
  Status Register();

  int fd() const { return sock_.fd(); }
  EventLoop* loop() { return loop_; }
  Socket& socket() { return sock_; }

  /// Queues one outbound frame. `head` must already contain the encoded
  /// frame header (its payload_len covering head minus the header bytes,
  /// plus the body); `body` is the optional shared payload tail. Wakes the
  /// loop to flush. Thread-safe. Returns false when the connection is
  /// closed (the frame is dropped).
  bool EnqueueFrame(std::vector<uint8_t> head, SharedBuf body = {});

  /// Convenience: frames `payload` exactly like Socket::WriteFrame and
  /// enqueues it.
  bool EnqueueWireFrame(wire::FrameType type, uint64_t seq,
                        const std::vector<uint8_t>& payload,
                        bool traced = false);
  /// Fan-out form: header + `meta` + shared `body` as one frame.
  bool EnqueueWireFrame(wire::FrameType type, uint64_t seq,
                        const std::vector<uint8_t>& meta, const SharedBuf& body,
                        bool traced);

  size_t write_queue_bytes() const;
  bool write_backlogged() const {
    return write_queue_bytes() > opts_.write_watermark_bytes;
  }

  /// Shuts the socket down in both directions; the loop observes the
  /// resulting EOF/HUP and runs the close path (Handler::OnClosed). Safe
  /// from any thread, repeatedly.
  void Kill();

  /// Posts the full close path (deregister + Handler::OnClosed) to the
  /// loop, without waiting for the peer's EOF to be observed. Safe from any
  /// thread, repeatedly; used at server shutdown and when registration
  /// fails.
  void Close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  /// Monotonic wall clock (obs::NowUs) of the last byte read; the
  /// transport's idle scan compares against it.
  int64_t last_read_us() const {
    return last_read_us_.load(std::memory_order_relaxed);
  }

  // EventLoop::Handler
  void OnEvents(uint32_t events) override;

 private:
  struct OutFrame {
    std::vector<uint8_t> head;
    SharedBuf body;
    size_t offset = 0;  ///< bytes of head+body already written
    size_t size() const { return head.size() + body.size(); }
  };

  void HandleReadable();
  /// Drains the write queue with writev until empty or EAGAIN; manages the
  /// EPOLLOUT arm/disarm and fires OnWriteDrained. Loop thread only.
  void Flush();
  /// Schedules Flush() on the loop (deduplicated). Any thread.
  void ScheduleFlush();
  void CloseOnLoop();

  EventLoop* loop_;
  Socket sock_;
  Handler* handler_;  ///< nulled on close (loop thread)
  Options opts_;

  // Read state: loop thread only.
  std::vector<uint8_t> rbuf_;
  size_t rpos_ = 0;  ///< consumed prefix of rbuf_

  // Write state: queue shared with enqueuers, socket I/O loop-thread only.
  mutable std::mutex out_mu_;
  std::deque<OutFrame> out_;
  size_t out_bytes_ = 0;           ///< guarded by out_mu_
  bool epollout_armed_ = false;    ///< loop thread only
  bool was_backlogged_ = false;    ///< guarded by out_mu_
  std::atomic<bool> flush_scheduled_{false};
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> last_read_us_{0};
  bool registered_ = false;

  Histogram* write_queue_hist_ = nullptr;
  Counter* writev_calls_ = nullptr;
  Counter* partial_writes_ = nullptr;
  Counter* frames_in_ = nullptr;
  Counter* frames_out_ = nullptr;
};

}  // namespace idba
