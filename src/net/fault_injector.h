// Deterministic transport fault injection.
//
// A FaultInjector hangs off a Socket (Socket::set_fault_injector) and is
// consulted once per *frame* in WriteFrame / ReadFrame. Rules select frames
// by direction and 1-based frame index (or "every frame from now on") and
// say what goes wrong:
//
//   kDelay     sleep delay_ms, then perform the I/O normally — a slow link
//   kDrop      write: the frame silently vanishes (reported as sent);
//              read: the frame is consumed off the wire and discarded, and
//              the read moves on to the next frame — a lossy peer
//   kTruncate  write: only the header and half the payload reach the wire
//              (reported as sent), leaving the peer stalled mid-frame — a
//              sender that died partway through;
//              read: the header is consumed, then the read fails — a
//              receiver that died partway through
//   kError     write: the call fails immediately with IOError, nothing
//              touches the wire; read: fails once the next frame arrives
//              (like kTruncate, the stream is desynced)
//
// Read rules are matched when a frame *arrives*, not when the read call
// starts — a rule installed while the reader is blocked waiting applies to
// the next frame that lands.
//
// Rules fire a bounded number of times (`times`; < 0 = forever) and are
// matched in insertion order. The injector is thread-safe: sockets are
// driven concurrently by reader/writer threads.
//
// Driven from tests (tests/transport_fault_test.cc) and the
// bench/exp_fault_tolerance.cc scenario; production sockets carry no
// injector and pay one null pointer check per frame.

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace idba {

enum class FaultKind : uint8_t {
  kNone = 0,
  kDelay,
  kDrop,
  kTruncate,
  kError,
};

enum class FaultDirection : uint8_t { kRead, kWrite };

struct FaultRule {
  FaultDirection dir = FaultDirection::kWrite;
  FaultKind kind = FaultKind::kNone;
  /// 1-based frame index (per direction) the rule fires on; 0 = any frame.
  uint64_t nth = 0;
  /// How many frames the rule may hit; negative = unlimited.
  int times = 1;
  /// For kDelay: how long to stall the frame.
  int delay_ms = 0;
};

class FaultInjector {
 public:
  void Inject(FaultRule rule) {
    std::lock_guard<std::mutex> lock(mu_);
    rules_.push_back(rule);
  }

  /// Convenience: every frame in `dir` suffers `kind` until Reset().
  void InjectAll(FaultDirection dir, FaultKind kind, int delay_ms = 0) {
    Inject({dir, kind, /*nth=*/0, /*times=*/-1, delay_ms});
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
  }

  uint64_t frames_seen(FaultDirection dir) const {
    std::lock_guard<std::mutex> lock(mu_);
    return dir == FaultDirection::kRead ? reads_seen_ : writes_seen_;
  }

  uint64_t faults_fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

  /// Called by Socket once per frame; returns the rule to apply (kind
  /// kNone if the frame passes clean). Consumes one firing of the rule.
  FaultRule OnFrame(FaultDirection dir) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index =
        dir == FaultDirection::kRead ? ++reads_seen_ : ++writes_seen_;
    for (FaultRule& rule : rules_) {
      if (rule.dir != dir || rule.times == 0) continue;
      if (rule.nth != 0 && rule.nth != index) continue;
      if (rule.times > 0) --rule.times;
      ++fired_;
      return rule;
    }
    return FaultRule{dir, FaultKind::kNone, 0, 0, 0};
  }

 private:
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t fired_ = 0;
};

}  // namespace idba
