#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/health.h"
#include "obs/trace.h"

namespace idba {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

constexpr int kMaxEvents = 256;

}  // namespace

EventLoop::EventLoop() : EventLoop(Options()) {}

EventLoop::EventLoop(Options opts) : opts_(std::move(opts)) {
  MetricsRegistry& reg = GlobalMetrics();
  wait_us_ = reg.GetHistogram("net.loop.wait_us");
  dispatch_us_ = reg.GetHistogram("net.loop.dispatch_us");
  ready_ = reg.GetHistogram("net.loop.ready");
  lag_us_ = reg.GetHistogram("net.loop.lag_us");
  polls_ = reg.GetCounter("net.loop.polls");
  wakeups_ = reg.GetCounter("net.loop.wakeups");
  if (!opts_.metric_prefix.empty()) {
    loop_lag_us_ = reg.GetHistogram(opts_.metric_prefix + ".lag_us");
    loop_wakeups_ = reg.GetCounter(opts_.metric_prefix + ".wakeups");
  }
}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (running_.load()) return Status::OK();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    Status st = Errno("eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // sentinel: the wakeup eventfd
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    Status st = Errno("epoll_ctl(eventfd)");
    ::close(event_fd_);
    ::close(epoll_fd_);
    event_fd_ = epoll_fd_ = -1;
    return st;
  }
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (running_.exchange(false)) {
    Wakeup();
  }
  if (thread_.joinable()) thread_.join();
  // Deferred releases (connection teardown) must still run even though the
  // loop thread is gone; they are safe on the caller now that no thread
  // dispatches events anymore.
  DrainTasks();
  if (event_fd_ >= 0) {
    ::close(event_fd_);
    event_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

uint32_t EventLoop::TriggerBits() const {
  return opts_.edge_triggered ? EPOLLET : 0;
}

Status EventLoop::Add(int fd, uint32_t events, Handler* handler) {
  if (epoll_fd_ < 0) return Status::Internal("event loop not started");
  epoll_event ev{};
  ev.events = events | TriggerBits();
  ev.data.ptr = handler;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(add)");
  }
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events, Handler* handler) {
  if (epoll_fd_ < 0) return Status::Internal("event loop not started");
  epoll_event ev{};
  ev.events = events | TriggerBits();
  ev.data.ptr = handler;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

Status EventLoop::Del(int fd) {
  if (epoll_fd_ < 0) return Status::OK();  // already shut down
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(del)");
  }
  return Status::OK();
}

void EventLoop::Post(std::function<void()> fn) {
  if (!running_.load(std::memory_order_acquire)) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(PostedTask{std::move(fn), obs::NowUs()});
  }
  Wakeup();
}

void EventLoop::InjectStallForTest(int64_t ms) {
  Post([ms] {
    const int64_t deadline = obs::NowUs() + ms * 1000;
    // Deliberately no HealthEpochBump: from the watchdog's view this is a
    // dispatch that never finishes. nanosleep may be cut short by capture
    // signals; the loop re-checks the deadline.
    while (obs::NowUs() < deadline) {
      timespec ts{0, 1'000'000};
      ::nanosleep(&ts, nullptr);
    }
  });
}

void EventLoop::Wakeup() {
  if (event_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t rc;
  do {
    rc = ::write(event_fd_, &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
  // EAGAIN means the counter is already nonzero: the loop is waking anyway.
}

void EventLoop::DrainTasks() {
  for (;;) {
    std::vector<PostedTask> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      if (tasks_.empty()) return;
      tasks.swap(tasks_);
    }
    const int64_t now = obs::NowUs();
    for (auto& task : tasks) {
      const double lag = static_cast<double>(now - task.posted_us);
      lag_us_->Record(lag);
      if (loop_lag_us_ != nullptr) loop_lag_us_->Record(lag);
      task.fn();
    }
  }
}

void EventLoop::Run() {
  thread_id_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  obs::RegisterThisThread(opts_.role);
  epoll_event events[kMaxEvents];
  int64_t last_tick_us = obs::NowUs();
  const int timeout_ms =
      opts_.tick_interval_ms > 0 ? static_cast<int>(opts_.tick_interval_ms)
                                 : -1;
  while (running_.load(std::memory_order_relaxed)) {
    const int64_t wait_start = obs::NowUs();
    obs::SetThreadWorking(false);  // blocked in epoll is idle, not stalled
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    obs::SetThreadWorking(true);
    obs::HealthEpochBump();
    const int64_t dispatch_start = obs::NowUs();
    wait_us_->Record(static_cast<double>(dispatch_start - wait_start));
    polls_->Add();
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; nothing sensible left to do
    }
    ready_->Record(static_cast<double>(n));
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drain = 0;
        while (::read(event_fd_, &drain, sizeof(drain)) > 0) {
        }
        wakeups_->Add();
        if (loop_wakeups_ != nullptr) loop_wakeups_->Add();
        continue;
      }
      static_cast<Handler*>(events[i].data.ptr)->OnEvents(events[i].events);
    }
    // Tasks run after the ready set: a task that releases a handler cannot
    // race an event dispatched in the same batch (see header contract).
    DrainTasks();
    if (opts_.on_tick && opts_.tick_interval_ms > 0) {
      const int64_t now = obs::NowUs();
      if (now - last_tick_us >= opts_.tick_interval_ms * 1000) {
        last_tick_us = now;
        opts_.on_tick();
      }
    }
    dispatch_us_->Record(static_cast<double>(obs::NowUs() - dispatch_start));
  }
  obs::SetThreadWorking(false);
  obs::UnregisterThisThread();
  thread_id_.store(std::thread::id(), std::memory_order_relaxed);
}

}  // namespace idba
