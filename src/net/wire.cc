#include "net/wire.h"

namespace idba {
namespace wire {

std::string_view MethodName(Method m) {
  switch (m) {
    case Method::kHello: return "Hello";
    case Method::kBegin: return "Begin";
    case Method::kCommit: return "Commit";
    case Method::kCommitValidated: return "CommitValidated";
    case Method::kAbort: return "Abort";
    case Method::kFetch: return "Fetch";
    case Method::kFetchCurrent: return "FetchCurrent";
    case Method::kLockForRead: return "LockForRead";
    case Method::kPut: return "Put";
    case Method::kInsert: return "Insert";
    case Method::kErase: return "Erase";
    case Method::kScanClass: return "ScanClass";
    case Method::kQuery: return "Query";
    case Method::kAllocateOid: return "AllocateOid";
    case Method::kGetVersion: return "GetVersion";
    case Method::kDefineClass: return "DefineClass";
    case Method::kAddAttribute: return "AddAttribute";
    case Method::kNoteEvicted: return "NoteEvicted";
    case Method::kDlmLock: return "DlmLock";
    case Method::kDlmUnlock: return "DlmUnlock";
    case Method::kDlmLockBatch: return "DlmLockBatch";
    case Method::kDlmUnlockBatch: return "DlmUnlockBatch";
    case Method::kPing: return "Ping";
    case Method::kStats: return "Stats";
    case Method::kTraceDump: return "TraceDump";
    case Method::kMetrics: return "Metrics";
    case Method::kLocks: return "Locks";
    case Method::kCaches: return "Caches";
    case Method::kFlight: return "Flight";
    case Method::kProfile: return "Profile";
    case Method::kDlmReregister: return "DlmReregister";
    case Method::kAudit: return "Audit";
  }
  return "Unknown";
}

void EncodeHeader(const FrameHeader& h, uint8_t out[kHeaderBytes]) {
  std::vector<uint8_t> buf;
  buf.reserve(kHeaderBytes);
  Encoder enc(&buf);
  enc.PutU32(h.payload_len);
  enc.PutU8(static_cast<uint8_t>(h.type) | (h.traced ? kTracedBit : 0));
  enc.PutU64(h.seq);
  std::memcpy(out, buf.data(), kHeaderBytes);
}

Status DecodeHeader(const uint8_t in[kHeaderBytes], FrameHeader* out) {
  Decoder dec(in, kHeaderBytes);
  uint8_t type = 0;
  IDBA_RETURN_NOT_OK(dec.GetU32(&out->payload_len));
  IDBA_RETURN_NOT_OK(dec.GetU8(&type));
  IDBA_RETURN_NOT_OK(dec.GetU64(&out->seq));
  out->traced = (type & kTracedBit) != 0;
  type &= static_cast<uint8_t>(~kTracedBit);
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kResyncAck)) {
    return Status::Corruption("unknown frame type " + std::to_string(type));
  }
  if (out->payload_len > kMaxPayloadBytes) {
    return Status::Corruption("frame payload " +
                              std::to_string(out->payload_len) +
                              " exceeds limit");
  }
  out->type = static_cast<FrameType>(type);
  return Status::OK();
}

void EncodeTraceInfo(const TraceInfo& t, Encoder* enc) {
  enc->PutU64(t.trace_id);
  enc->PutU64(t.span_id);
  enc->PutU32(t.queue_us);
  enc->PutU32(t.exec_us);
}

Status DecodeTraceInfo(Decoder* dec, TraceInfo* out) {
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->trace_id));
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->span_id));
  IDBA_RETURN_NOT_OK(dec->GetU32(&out->queue_us));
  IDBA_RETURN_NOT_OK(dec->GetU32(&out->exec_us));
  return Status::OK();
}

void EncodeStatus(const Status& st, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(st.code()));
  enc->PutString(st.message());
}

Status DecodeStatus(Decoder* dec, Status* out) {
  uint8_t code = 0;
  std::string message;
  IDBA_RETURN_NOT_OK(dec->GetU8(&code));
  IDBA_RETURN_NOT_OK(dec->GetString(&message));
  // Accept every code this build knows, including kOverloaded (added in
  // wire-era v2 servers). An *older* peer decoding an Overloaded response
  // rejects just that call as Corruption — the connection survives, so the
  // new code degrades per-call rather than per-session on v1 clients.
  if (code > static_cast<uint8_t>(StatusCode::kOverloaded)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void EncodeOidVector(const std::vector<Oid>& oids, Encoder* enc) {
  enc->PutVarint(oids.size());
  for (Oid oid : oids) enc->PutU64(oid.value);
}

Status DecodeOidVector(Decoder* dec, std::vector<Oid>* out) {
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    out->emplace_back(oid);
  }
  return Status::OK();
}

void EncodeObjectVector(const std::vector<DatabaseObject>& objs, Encoder* enc) {
  enc->PutVarint(objs.size());
  for (const DatabaseObject& obj : objs) obj.EncodeTo(enc);
}

Status DecodeObjectVector(Decoder* dec, std::vector<DatabaseObject>* out) {
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->clear();
  for (uint64_t i = 0; i < n; ++i) {
    DatabaseObject obj;
    IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &obj));
    out->push_back(std::move(obj));
  }
  return Status::OK();
}

void EncodeCommitResult(const CommitResult& result, Encoder* enc) {
  enc->PutU64(result.txn);
  EncodeObjectVector(result.updated, enc);
  EncodeOidVector(result.erased, enc);
  enc->PutVarint(static_cast<uint64_t>(result.page_misses));
}

Status DecodeCommitResult(Decoder* dec, CommitResult* out) {
  IDBA_RETURN_NOT_OK(dec->GetU64(&out->txn));
  IDBA_RETURN_NOT_OK(DecodeObjectVector(dec, &out->updated));
  IDBA_RETURN_NOT_OK(DecodeOidVector(dec, &out->erased));
  uint64_t misses = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&misses));
  out->page_misses = static_cast<int>(misses);
  return Status::OK();
}

void EncodeReadSet(const std::vector<std::pair<Oid, uint64_t>>& reads,
                   Encoder* enc) {
  enc->PutVarint(reads.size());
  for (const auto& [oid, version] : reads) {
    enc->PutU64(oid.value);
    enc->PutU64(version);
  }
}

Status DecodeReadSet(Decoder* dec,
                     std::vector<std::pair<Oid, uint64_t>>* out) {
  uint64_t n = 0;
  IDBA_RETURN_NOT_OK(dec->GetVarint(&n));
  out->clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid = 0, version = 0;
    IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
    IDBA_RETURN_NOT_OK(dec->GetU64(&version));
    out->emplace_back(Oid(oid), version);
  }
  return Status::OK();
}

void EncodeNotifyMeta(const NotifyFrame& f, Encoder* enc) {
  enc->PutU32(f.from);
  enc->PutU32(f.to);
  enc->PutI64(f.sent_at);
  enc->PutI64(f.arrives_at);
  enc->PutVarint(f.virtual_wire_bytes);
  enc->PutU8(static_cast<uint8_t>(f.kind));
}

Status DecodeNotifyMeta(Decoder* dec, NotifyFrame* out) {
  IDBA_RETURN_NOT_OK(dec->GetU32(&out->from));
  IDBA_RETURN_NOT_OK(dec->GetU32(&out->to));
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->sent_at));
  IDBA_RETURN_NOT_OK(dec->GetI64(&out->arrives_at));
  IDBA_RETURN_NOT_OK(dec->GetVarint(&out->virtual_wire_bytes));
  uint8_t kind = 0;
  IDBA_RETURN_NOT_OK(dec->GetU8(&kind));
  if (kind < static_cast<uint8_t>(NotifyKind::kUpdate) ||
      kind > static_cast<uint8_t>(NotifyKind::kResync)) {
    return Status::Corruption("unknown notify kind " + std::to_string(kind));
  }
  out->kind = static_cast<NotifyKind>(kind);
  return Status::OK();
}

}  // namespace wire
}  // namespace idba
