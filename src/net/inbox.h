// Per-endpoint queue of incoming asynchronous messages.
//
// By default the queue is unbounded (the seed behaviour). With
// InboxOptions::max_pending set, the inbox becomes the first rung of the
// overload-protection ladder (DESIGN.md §9): once the queue reaches the
// coalesce watermark, a newly delivered envelope is merged into the most
// recently queued one when the messages are coalescible
// (Message::CoalesceWith — latest-version-wins, sound for display
// notifications); when the queue is full and the pair is not coalescible,
// the whole backlog is shed and the inbox enters *overflow* state: further
// deliveries are dropped and counted until the consumer acknowledges via
// TakeOverflow() and resynchronizes (refetch displayed state). Only the
// newest queued envelope is a merge candidate, so queue order — in
// particular the relative order of intent notices and their resolutions —
// is never disturbed.

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "net/message.h"
#include "obs/trace.h"

namespace idba {

struct InboxOptions {
  /// Queue bound; 0 = unbounded (coalescing and overflow never trigger).
  size_t max_pending = 0;
  /// Start coalescing at this depth instead of only when full; 0 means
  /// "only when full". Ignored when max_pending == 0.
  size_t coalesce_watermark = 0;
  /// Full + non-coalescible behaviour: true drops the *oldest* envelope to
  /// admit the new one (an object whose dropped notification is never
  /// followed by another may stay stale — the weakest policy); false
  /// (default) sheds the whole backlog and enters overflow state, which
  /// the consumer must resolve with a resync.
  bool drop_oldest_on_full = false;
  /// Called (outside the inbox lock) after each overflow with the total
  /// overflow count — the transport uses it to escalate a persistently
  /// slow subscriber to disconnect.
  std::function<void(uint64_t overflow_count)> overflow_hook;
  /// Called (outside the inbox lock) after every delivery, including shed
  /// ones. The event-driven transport installs a hook that posts a flush to
  /// the owning event loop — its notifier is a loop task, not a thread
  /// blocked in WaitNext, so the cv notify alone would not reach it.
  std::function<void()> wakeup_hook;
  /// Optional metric mirrors, bumped on the corresponding events (cache
  /// the GlobalMetrics pointers at construction; lookups stay off the
  /// delivery path).
  MirroredCounter* coalesced_metric = nullptr;
  MirroredCounter* shed_metric = nullptr;
  MirroredCounter* overflow_metric = nullptr;
};

/// What a delivery did (observable by tests and by delivering transports).
enum class DeliverOutcome {
  kQueued,     ///< appended normally
  kCoalesced,  ///< merged into the newest queued envelope
  kShed,       ///< dropped (overflow state, or drop-oldest displaced one)
  kOverflow,   ///< backlog shed; inbox now in overflow state
};

/// Thread-safe FIFO of envelopes. Producers are the NotificationBus;
/// consumers are client notification-pump threads (or tests pumping
/// manually for determinism).
class Inbox {
 public:
  Inbox() = default;
  explicit Inbox(InboxOptions opts) : opts_(std::move(opts)) {}

  /// Result of WaitNext: `envelope` when one was dequeued; otherwise
  /// `closed` distinguishes "inbox closed and fully drained" (no more will
  /// ever come) from a plain timeout or an external Kick().
  struct Next {
    std::optional<Envelope> envelope;
    bool closed = false;
  };

  DeliverOutcome Deliver(Envelope e) {
    DeliverOutcome outcome;
    uint64_t overflow_count = 0;
    uint64_t trace_id = e.trace_id, trace_span = e.trace_span;
    {
      std::lock_guard<std::mutex> lock(mu_);
      outcome = DeliverLocked(std::move(e), &overflow_count);
    }
    cv_.notify_all();
    if (opts_.wakeup_hook) opts_.wakeup_hook();
    if (opts_.overflow_hook && outcome == DeliverOutcome::kOverflow) {
      opts_.overflow_hook(overflow_count);
    }
    // Annotate the triggering operation's trace with the degradation the
    // subscriber experienced (zero-length marker spans).
    if (trace_id != 0 && outcome != DeliverOutcome::kQueued) {
      obs::SpanRecord mark;
      mark.trace_id = trace_id;
      mark.span_id = obs::NewSpanId();
      mark.parent_id = trace_span;
      mark.start_us = obs::NowUs();
      mark.dur_us = 0;
      mark.tid = ThisThreadId();
      mark.name = outcome == DeliverOutcome::kCoalesced ? "notify.coalesced"
                  : outcome == DeliverOutcome::kOverflow ? "notify.overflow"
                                                         : "notify.shed";
      obs::GlobalRecorder().Record(std::move(mark));
    }
    return outcome;
  }

  /// Non-blocking: next message if any.
  std::optional<Envelope> Poll() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    Envelope e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

  /// Blocks up to `timeout_ms` (real time) for the next message. Messages
  /// still queued when the inbox closes are drained before `closed` is
  /// reported.
  Next WaitNext(int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                 [&] { return !queue_.empty() || closed_ || kicked_; });
    kicked_ = false;
    Next next;
    if (queue_.empty()) {
      next.closed = closed_;
      return next;
    }
    next.envelope = std::move(queue_.front());
    queue_.pop_front();
    return next;
  }

  /// Wakes one WaitNext() spuriously (returns with neither envelope nor
  /// closed). The transport notifier uses this to interleave another
  /// outbound lane (callbacks) without waiting out the poll interval.
  void Kick() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      kicked_ = true;
    }
    cv_.notify_all();
  }

  /// Removes and returns everything queued.
  std::vector<Envelope> DrainAll() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Envelope> out(std::make_move_iterator(queue_.begin()),
                              std::make_move_iterator(queue_.end()));
    queue_.clear();
    return out;
  }

  /// True once since the last call iff the queue overflowed in between:
  /// the backlog was shed and deliveries were dropped. The consumer must
  /// resynchronize (treat all subscribed state as stale and refetch);
  /// acknowledging re-opens the queue.
  bool TakeOverflow() {
    std::lock_guard<std::mutex> lock(mu_);
    bool was = in_overflow_;
    in_overflow_ = false;
    return was;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  // --- degradation counters (cumulative) --------------------------------
  uint64_t coalesced() const { return coalesced_.Get(); }
  uint64_t shed() const { return shed_.Get(); }
  uint64_t overflows() const { return overflows_.Get(); }

  /// Wakes all waiters permanently (client shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  DeliverOutcome DeliverLocked(Envelope e, uint64_t* overflow_count) {
    if (in_overflow_) {
      // Between overflow and the consumer's resync everything is shed; the
      // resync refetches current state, so these deliveries add nothing.
      shed_.Add();
      if (opts_.shed_metric) opts_.shed_metric->Add();
      return DeliverOutcome::kShed;
    }
    if (opts_.max_pending == 0 || queue_.size() < Watermark()) {
      queue_.push_back(std::move(e));
      return DeliverOutcome::kQueued;
    }
    // At or above the watermark: try to merge into the newest queued
    // envelope (only the newest — merging deeper would reorder messages
    // across what sits between).
    Envelope& back = queue_.back();
    if (back.from == e.from && back.to == e.to && back.msg && e.msg) {
      if (auto merged = back.msg->CoalesceWith(*e.msg)) {
        back.msg = std::move(merged);
        // The merged envelope represents state as of the newer message.
        back.sent_at = e.sent_at;
        back.arrives_at = std::max(back.arrives_at, e.arrives_at);
        back.wire_bytes = back.msg->WireBytes();
        back.trace_id = e.trace_id;
        back.trace_span = e.trace_span;
        coalesced_.Add();
        if (opts_.coalesced_metric) opts_.coalesced_metric->Add();
        return DeliverOutcome::kCoalesced;
      }
    }
    if (queue_.size() < opts_.max_pending) {
      queue_.push_back(std::move(e));
      return DeliverOutcome::kQueued;
    }
    if (opts_.drop_oldest_on_full) {
      queue_.pop_front();
      queue_.push_back(std::move(e));
      shed_.Add();
      if (opts_.shed_metric) opts_.shed_metric->Add();
      return DeliverOutcome::kShed;
    }
    // Full and not coalescible: shed the whole backlog (bounded memory) and
    // flag overflow — the consumer must resync before the queue re-opens.
    shed_.Add(queue_.size() + 1);
    if (opts_.shed_metric) opts_.shed_metric->Add(queue_.size() + 1);
    queue_.clear();
    in_overflow_ = true;
    overflows_.Add();
    if (opts_.overflow_metric) opts_.overflow_metric->Add();
    *overflow_count = overflows_.Get();
    // Wake the consumer even though the queue is empty, so a notifier
    // blocked in WaitNext() reacts to the overflow promptly.
    kicked_ = true;
    return DeliverOutcome::kOverflow;
  }

  size_t Watermark() const {
    if (opts_.coalesce_watermark == 0) return opts_.max_pending;
    return std::min(opts_.coalesce_watermark, opts_.max_pending);
  }

  InboxOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
  bool kicked_ = false;
  bool in_overflow_ = false;
  Counter coalesced_, shed_, overflows_;
};

}  // namespace idba
