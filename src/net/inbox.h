// Per-endpoint queue of incoming asynchronous messages.

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "net/message.h"

namespace idba {

/// Thread-safe FIFO of envelopes. Producers are the NotificationBus;
/// consumers are client notification-pump threads (or tests pumping
/// manually for determinism).
class Inbox {
 public:
  void Deliver(Envelope e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(e));
    }
    cv_.notify_all();
  }

  /// Non-blocking: next message if any.
  std::optional<Envelope> Poll() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    Envelope e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

  /// Blocks up to `timeout_ms` (real time) for the next message.
  std::optional<Envelope> WaitNext(int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return !queue_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (queue_.empty()) return std::nullopt;
    Envelope e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

  /// Removes and returns everything queued.
  std::vector<Envelope> DrainAll() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Envelope> out(std::make_move_iterator(queue_.begin()),
                              std::make_move_iterator(queue_.end()));
    queue_.clear();
    return out;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Wakes all waiters permanently (client shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

}  // namespace idba
