// Message abstractions for the simulated client-server network.
//
// Request/response (RPC) traffic is executed as direct in-process calls and
// *metered* through RpcMeter (see rpc_meter.h); asynchronous server->client
// traffic (cache callbacks, display-lock notifications) flows as Envelopes
// through the NotificationBus into per-client Inboxes. Both paths charge
// virtual latency from the CostModel, so every experiment reports the
// paper's 1996-era message economics regardless of host speed.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/vtime.h"
#include "net/shared_buf.h"

namespace idba {

/// Logical network address of a component (server, DLM, each client).
using EndpointId = uint32_t;

constexpr EndpointId kServerEndpoint = 1;
constexpr EndpointId kDlmEndpoint = 2;
constexpr EndpointId kFirstClientEndpoint = 100;

/// Base class for notification payloads. Implementations are immutable
/// once sent (shared by sender and receivers).
class Message {
 public:
  Message() = default;
  // Copies (made by CoalesceWith to produce a merged message) do not carry
  // the memoized wire body: the copy is about to be mutated, so its bytes
  // must be re-encoded on first fan-out.
  Message(const Message&) {}
  Message& operator=(const Message&) { return *this; }
  virtual ~Message() = default;
  /// Short type name for tracing/metrics (e.g. "UpdateNotify").
  virtual std::string_view name() const = 0;
  /// Serialized size in bytes, used for bandwidth cost accounting.
  virtual size_t WireBytes() const = 0;
  /// Attempts to merge `newer` — a message queued *after* this one on the
  /// same channel — into this one, returning the combined message, or
  /// nullptr when the pair is not coalescible (the default). A bounded
  /// Inbox uses this to collapse backlog for slow consumers; merging must
  /// preserve receiver-visible semantics for a subscriber that only needs
  /// latest-state information (display-lock notifications qualify: a
  /// display only needs to learn "stale as of version v", so
  /// latest-version-wins is sound — see DESIGN.md §9).
  virtual std::shared_ptr<const Message> CoalesceWith(
      const Message& newer) const {
    (void)newer;
    return nullptr;
  }

  /// Wire-encoded notify body, produced at most once per message instance
  /// and shared by every caller thereafter: when one message fans out to N
  /// subscribers, the first connection to serialize it pays the encode and
  /// the other N-1 reuse the same bytes. `kind` receives the message's
  /// NOTIFY body kind (numeric value of wire::NotifyKind; plain uint8_t so
  /// this header stays free of the wire protocol). `encoded_now` (optional)
  /// reports whether this call performed the encode — the transport's
  /// fanout encode/reuse counters key off it. Returns an empty SharedBuf
  /// for message types with no wire form. Thread-safe.
  SharedBuf SharedWireBody(uint8_t* kind, bool* encoded_now = nullptr) const {
    bool first = false;
    std::call_once(body_once_, [&] {
      std::vector<uint8_t> out;
      uint8_t k = 0;
      if (EncodeWireBody(&out, &k)) {
        body_ = SharedBuf(std::move(out));
        body_kind_ = k;
      }
      first = true;
    });
    if (encoded_now != nullptr) *encoded_now = first;
    *kind = body_kind_;
    return body_;
  }

 protected:
  /// Serializes the NOTIFY body into `out` and sets `kind`; returns false
  /// when the message type has no wire encoding (the default).
  virtual bool EncodeWireBody(std::vector<uint8_t>* out, uint8_t* kind) const {
    (void)out;
    (void)kind;
    return false;
  }

 private:
  mutable std::once_flag body_once_;
  mutable SharedBuf body_;
  mutable uint8_t body_kind_ = 0;
};

/// One in-flight message.
struct Envelope {
  EndpointId from = 0;
  EndpointId to = 0;
  std::shared_ptr<const Message> msg;
  VTime sent_at = 0;     ///< sender's virtual clock at Send()
  VTime arrives_at = 0;  ///< sent_at + hop cost (receiver merges this)
  size_t wire_bytes = 0;
  /// Trace context of the operation that triggered this message (0 = not
  /// traced). Propagated into NOTIFY frames by the TCP transport so a
  /// subscriber's display refresh joins the committing writer's trace.
  uint64_t trace_id = 0;
  uint64_t trace_span = 0;
};

}  // namespace idba
