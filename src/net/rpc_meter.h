// Virtual-cost accounting for the synchronous RPC path.
//
// Client requests execute as direct in-process calls into the server; this
// meter charges the virtual latency such a call would have cost on the
// paper's 1996 testbed: request hop -> server CPU (serialized on the
// server's single virtual CPU, which naturally models queueing) -> disk
// misses -> response hop. It also counts logical messages/bytes so the
// experiments can report message economics (E1, E6, E7).

#pragma once

#include <cstdint>

#include "common/cost_model.h"
#include "common/metrics.h"
#include "common/vtime.h"

namespace idba {

/// One per deployment; shared by all clients of a server.
class RpcMeter {
 public:
  explicit RpcMeter(CostModel cost_model = CostModel()) : cost_(cost_model) {}

  /// Charges one full round trip initiated at client virtual time
  /// `client_now`. `server_clock` is the server's virtual CPU clock:
  /// work is serialized behind whatever it has already committed to.
  /// Returns the client-side completion time (response arrival).
  /// Marks the server clock with the arrival of a request issued at client
  /// virtual time `client_now`. Call *before* executing the server call so
  /// that events observed inside it (commit hooks capturing the commit
  /// time) see a causally correct server clock.
  VTime ObserveRequest(VTime client_now, VirtualClock* server_clock,
                       int64_t request_bytes = 64) {
    VTime arrival = client_now + cost_.MessageCost(request_bytes);
    server_clock->Observe(arrival);
    return arrival;
  }

  /// `callback_round_trips` models the cache-consistency callbacks + acks
  /// the server must complete before replying. They fan out in parallel:
  /// latency of one round trip, message count of all of them, plus a small
  /// per-callback CPU share.
  VTime ChargeRoundTrip(VTime client_now, VirtualClock* server_clock,
                        int64_t request_bytes, int64_t response_bytes,
                        int disk_page_misses, int callback_round_trips = 0) {
    // Request hop.
    VTime arrival = client_now + cost_.MessageCost(request_bytes);
    // Server: wait for its CPU, then process (CPU + any disk misses).
    server_clock->Observe(arrival);
    VTime service = cost_.ServerRequestCpu();
    if (disk_page_misses > 0) service += cost_.DiskCost(disk_page_misses);
    if (callback_round_trips > 0) {
      service += 2 * cost_.MessageCost(64);  // parallel fan-out: one RT
      service += callback_round_trips * (cost_.ServerRequestCpu() / 4);
      messages_.Add(static_cast<uint64_t>(callback_round_trips) * 2);
    }
    VTime done = server_clock->Advance(service);
    // Response hop.
    VTime completion = done + cost_.MessageCost(response_bytes);
    rpcs_.Add();
    messages_.Add(2);
    bytes_.Add(static_cast<uint64_t>(request_bytes + response_bytes));
    return completion;
  }

  const CostModel& cost_model() const { return cost_; }
  uint64_t rpcs() const { return rpcs_.Get(); }
  uint64_t messages() const { return messages_.Get(); }
  uint64_t bytes() const { return bytes_.Get(); }
  void ResetCounters() {
    rpcs_.Reset();
    messages_.Reset();
    bytes_.Reset();
  }

 private:
  CostModel cost_;
  Counter rpcs_, messages_, bytes_;
};

}  // namespace idba
