// Asynchronous message delivery between endpoints, with per-hop virtual
// latency from the CostModel and message/byte metering.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/cost_model.h"
#include "common/metrics.h"
#include "common/status.h"
#include "net/inbox.h"
#include "net/message.h"
#include "obs/trace.h"

namespace idba {

/// Routes envelopes to registered inboxes. Thread-safe.
class NotificationBus {
 public:
  explicit NotificationBus(CostModel cost_model = CostModel())
      : cost_(cost_model) {}

  void Register(EndpointId endpoint, Inbox* inbox) {
    std::lock_guard<std::mutex> lock(mu_);
    inboxes_[endpoint] = inbox;
  }

  void Unregister(EndpointId endpoint) {
    std::lock_guard<std::mutex> lock(mu_);
    inboxes_.erase(endpoint);
  }

  /// Sends `msg` from `from` (whose virtual clock read `sent_at`) to `to`.
  /// The receiver observes arrives_at = sent_at + hop cost.
  Status Send(EndpointId from, EndpointId to,
              std::shared_ptr<const Message> msg, VTime sent_at) {
    Inbox* inbox = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inboxes_.find(to);
      if (it == inboxes_.end()) {
        return Status::NotFound("endpoint " + std::to_string(to) +
                                " not registered");
      }
      inbox = it->second;
    }
    Envelope env;
    env.from = from;
    env.to = to;
    env.wire_bytes = msg->WireBytes();
    env.msg = std::move(msg);
    env.sent_at = sent_at;
    env.arrives_at = sent_at + cost_.MessageCost(static_cast<int64_t>(env.wire_bytes));
    // Stamp the sender's trace context (if any) so receivers — and the TCP
    // transport forwarding this as a NOTIFY frame — can join the trace.
    obs::TraceContext trace = obs::CurrentContext();
    env.trace_id = trace.trace_id;
    env.trace_span = trace.span_id;
    messages_.Add();
    bytes_.Add(env.wire_bytes);
    inbox->Deliver(std::move(env));
    return Status::OK();
  }

  const CostModel& cost_model() const { return cost_; }
  uint64_t messages_sent() const { return messages_.Get(); }
  uint64_t bytes_sent() const { return bytes_.Get(); }
  void ResetCounters() {
    messages_.Reset();
    bytes_.Reset();
  }

 private:
  CostModel cost_;
  mutable std::mutex mu_;
  std::unordered_map<EndpointId, Inbox*> inboxes_;
  Counter messages_, bytes_;
};

}  // namespace idba
