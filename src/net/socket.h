// Minimal POSIX TCP plumbing for the transport: RAII sockets, exact-length
// send/recv, and framed I/O (header + payload per net/wire.h).
//
// Blocking sockets only; concurrency comes from threads (one acceptor,
// per-connection reader/worker, see net/tcp_server.h). Writers must
// serialize frames externally (one mutex per connection) so a frame is
// never interleaved with another.
//
// Failure handling: ConnectTo takes an optional timeout (non-blocking
// connect + poll), SetRecvTimeout arms SO_RCVTIMEO so a blocked RecvAll /
// ReadFrame returns Status::TimedOut instead of hanging on a half-open
// peer, and an optional FaultInjector (net/fault_injector.h) can delay,
// drop, truncate, or fail individual frames for tests and fault-tolerance
// experiments.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/fault_injector.h"
#include "net/wire.h"

namespace idba {

/// RAII wrapper over a connected socket fd. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
    std::lock_guard<std::mutex> lock(other.faults_mu_);
    faults_ = std::move(other.faults_);
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4 or a resolvable name).
  /// `connect_timeout_ms` > 0 bounds the connect itself (non-blocking
  /// connect + poll, Status::TimedOut on expiry); 0 blocks indefinitely.
  static Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                                  int64_t connect_timeout_ms = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends exactly n bytes (loops over partial writes, retries EINTR).
  Status SendAll(const void* data, size_t n);
  /// Receives exactly n bytes; IOError("closed") on orderly peer shutdown,
  /// Status::TimedOut if a recv timeout is armed and expires.
  Status RecvAll(void* data, size_t n);

  /// Arms SO_RCVTIMEO: a recv blocked longer than `ms` fails with
  /// Status::TimedOut. 0 disarms (block forever, the default).
  Status SetRecvTimeout(int64_t ms);

  /// Toggles O_NONBLOCK. The event-driven server path (net/event_loop.h)
  /// requires nonblocking fds; the blocking client path leaves this off.
  Status SetNonBlocking(bool enable);

  /// Attaches a fault injector consulted once per frame by
  /// WriteFrame/ReadFrame; nullptr detaches. Safe to call while other
  /// threads are inside ReadFrame/WriteFrame (tests install rules against
  /// a live connection).
  void set_fault_injector(std::shared_ptr<FaultInjector> faults) {
    std::lock_guard<std::mutex> lock(faults_mu_);
    faults_ = std::move(faults);
  }
  std::shared_ptr<FaultInjector> fault_injector() const {
    std::lock_guard<std::mutex> lock(faults_mu_);
    return faults_;
  }

  /// Writes one frame (header + payload) atomically with respect to other
  /// WriteFrame calls through `write_mu`. `traced` sets the wire-v2 traced
  /// bit (the caller must already have prefixed the payload with an encoded
  /// TraceInfo and verified the peer negotiated v2).
  Status WriteFrame(std::mutex& write_mu, wire::FrameType type, uint64_t seq,
                    const std::vector<uint8_t>& payload,
                    MirroredCounter* bytes_out = nullptr, bool traced = false);

  /// Reads one frame. Blocks until a full frame arrives, the peer closes,
  /// or an armed recv timeout expires.
  Status ReadFrame(wire::FrameHeader* header, std::vector<uint8_t>* payload,
                   MirroredCounter* bytes_in = nullptr);

  /// Unblocks any thread inside RecvAll/SendAll (then Close()s later).
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
  /// Guards faults_: set_fault_injector races the reader/heartbeat threads
  /// consulting it per frame.
  mutable std::mutex faults_mu_;
  std::shared_ptr<FaultInjector> faults_;
};

/// Listening socket. Binds loopback by default; remote deployments pass an
/// explicit bind address ("0.0.0.0" for all interfaces).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port; the bound port is
  /// available from port() afterwards. `bind_host` must be a numeric IPv4
  /// address (default loopback).
  Status Listen(uint16_t port, const std::string& bind_host = "127.0.0.1");

  /// Accepts one connection, retrying transient per-connection failures
  /// (EINTR, ECONNABORTED, and under load EMFILE/ENFILE after a brief
  /// pause) so one misbehaving client cannot kill the accept loop. Fails
  /// after Close()/ShutdownBoth. Accepted sockets get TCP_NODELAY.
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Unblocks a pending Accept.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace idba
