// Minimal POSIX TCP plumbing for the transport: RAII sockets, exact-length
// send/recv, and framed I/O (header + payload per net/wire.h).
//
// Blocking sockets only; concurrency comes from threads (one acceptor,
// per-connection reader/worker, see net/tcp_server.h). Writers must
// serialize frames externally (one mutex per connection) so a frame is
// never interleaved with another.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/wire.h"

namespace idba {

/// RAII wrapper over a connected socket fd. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4 or a resolvable name).
  static Result<Socket> ConnectTo(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends exactly n bytes (loops over partial writes, retries EINTR).
  Status SendAll(const void* data, size_t n);
  /// Receives exactly n bytes; IOError("closed") on orderly peer shutdown.
  Status RecvAll(void* data, size_t n);

  /// Writes one frame (header + payload) atomically with respect to other
  /// WriteFrame calls through `write_mu`.
  Status WriteFrame(std::mutex& write_mu, wire::FrameType type, uint64_t seq,
                    const std::vector<uint8_t>& payload,
                    Counter* bytes_out = nullptr);

  /// Reads one frame. Blocks until a full frame arrives or the peer closes.
  Status ReadFrame(wire::FrameHeader* header, std::vector<uint8_t>* payload,
                   Counter* bytes_in = nullptr);

  /// Unblocks any thread inside RecvAll/SendAll (then Close()s later).
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 (loopback transport; remote
/// deployments front this with their own ingress).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port; the bound port is
  /// available from port() afterwards.
  Status Listen(uint16_t port);

  /// Accepts one connection. Fails after Close()/ShutdownBoth.
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Unblocks a pending Accept.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace idba
