// Out-of-process client: the full ClientApi surface over the TCP wire
// protocol, plus the DisplayLockService surface forwarded to the
// server-hosted DLM. Application code (InteractiveSession, DLC, NMS
// workload, examples) written against ClientApi runs unchanged over this
// or the in-process DatabaseClient.
//
// Threading: the application drives RPCs from its user thread(s); a
// dedicated reader thread owns the receiving half of the socket and
// demultiplexes
//   RESPONSE  -> wakes the Call() waiting on that correlation id
//   NOTIFY    -> decoded into an Envelope, delivered to inbox() (the DLC
//                notification pump consumes it exactly like in-process)
//   CALLBACK  -> invalidates the local ObjectCache, sends CALLBACK_ACK
// The reader never blocks on an RPC of its own, so a server commit that
// is waiting for this client's invalidation ack always gets it — even
// while this client's user thread is itself blocked inside Commit().
//
// Failure handling: every RPC is bounded by rpc_deadline_ms (late
// responses are dropped); connects are bounded by connect_timeout_ms; an
// optional heartbeat thread PINGs the server every heartbeat_interval_ms
// and declares the connection dead when pings stop answering (half-open
// detection). When the connection dies, pending non-commit calls fail
// with IOError, but a commit in flight fails with Status::Unknown — its
// outcome is genuinely indeterminate (the server may have applied it
// before the connection broke), and callers like RunTransaction must
// decide whether re-applying is safe. Reconnect() re-dials with
// exponential backoff, re-handshakes under the same client id, replaces
// the schema snapshot, and drops the object cache (the dead session's
// copy registrations are gone).
//
// Virtual time: each request carries the client clock; each response
// carries the virtual completion time the server's RpcMeter computed from
// the *measured* frame sizes, which the client clock Observes. Locally
// the client mirrors DatabaseClient exactly: avoidance cache hits inside
// update transactions still take the lock-only round trip, detection mode
// keeps optimistic read sets and validates at commit.

#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "client/client_api.h"
#include "net/fault_injector.h"
#include "net/socket.h"
#include "net/wire.h"

namespace idba {

struct RemoteClientOptions {
  ObjectCacheOptions cache;
  ConsistencyMode consistency = ConsistencyMode::kAvoidance;
  /// Send NoteEvicted one-way frames when the cache drops entries.
  bool report_evictions = true;
  /// Cost model for client-local virtual charges (DLC dispatch CPU); must
  /// match the server's so virtual timelines agree.
  CostModelOptions cost;
  /// Upper bound on one RPC round trip (request out to response in). On
  /// expiry the call returns Status::TimedOut and the (late) response is
  /// dropped when it eventually arrives. 0 = wait forever.
  int64_t rpc_deadline_ms = 30000;
  /// Upper bound on establishing the TCP connection. 0 = blocking connect.
  int64_t connect_timeout_ms = 5000;
  /// When > 0, a heartbeat thread issues a PING every interval; a ping
  /// that misses the RPC deadline (or the interval, whichever is smaller)
  /// marks the connection dead, unblocking every pending call. 0 = off.
  int64_t heartbeat_interval_ms = 0;
  /// Initial backoff between Reconnect() attempts; doubles per attempt.
  int64_t reconnect_backoff_ms = 50;
  /// Ceiling for the exponential reconnect backoff.
  int64_t reconnect_backoff_cap_ms = 2000;
  /// Jitter the reconnect sleeps (equal-jitter: uniform in
  /// [backoff/2, backoff]) so a fleet of clients dropped by one server
  /// restart does not re-dial in lockstep. Deterministic per client id.
  bool reconnect_jitter = true;
  /// Bounds for the notification inbox (0 = unbounded, the default).
  /// Bounding it adds the coalesce/shed/resync degradation ladder for
  /// clients whose pump cannot keep up (see net/inbox.h).
  InboxOptions inbox;
};

class RemoteDatabaseClient : public ClientApi, public DisplayLockService {
 public:
  /// Connects, performs the Hello handshake (registering `id` with the
  /// server) and snapshots the schema catalog.
  static Result<std::unique_ptr<RemoteDatabaseClient>> Connect(
      const std::string& host, uint16_t port, ClientId id,
      RemoteClientOptions opts = {});

  ~RemoteDatabaseClient() override;

  RemoteDatabaseClient(const RemoteDatabaseClient&) = delete;
  RemoteDatabaseClient& operator=(const RemoteDatabaseClient&) = delete;

  /// Re-establishes a dead connection: re-dials (with exponential
  /// backoff across `max_attempts`), re-handshakes under the same client
  /// id, replaces the schema snapshot with the server's current catalog,
  /// and drops the local object cache — the old session's copy
  /// registrations died with the old connection, so cached copies are no
  /// longer protected by callbacks.
  ///
  /// Caller contract: quiesce RPC-issuing threads first (calls issued
  /// while disconnected fail fast with IOError, but calls concurrent with
  /// the reconnect itself are undefined), and treat any commit that ended
  /// Status::Unknown as possibly-applied — re-run read-modify-write
  /// bodies, never blind re-sends.
  ///
  /// Session recovery: if this client holds display locks, they are
  /// replayed to the server's DLM (one idempotent DlmReregister) right
  /// after the handshake — a *restarted* server has an empty lock table
  /// and would otherwise silently stop notifying our views. A synthetic
  /// RESYNC is then delivered to inbox() so the DLC refetches every
  /// display: updates committed while we were disconnected produced no
  /// notifications for us.
  Status Reconnect(int max_attempts = 5);

  // --- ClientApi --------------------------------------------------------
  ClientId id() const override { return id_; }
  VirtualClock& clock() override { return clock_; }
  Inbox& inbox() override { return inbox_; }
  ObjectCache& cache() override { return cache_; }
  const SchemaCatalog& schema() const override { return schema_; }
  const CostModel& cost_model() const override { return cost_model_; }
  ConsistencyMode consistency() const override { return opts_.consistency; }

  Result<ClassId> DefineClass(const std::string& name,
                              ClassId base = 0) override;
  Status AddAttribute(ClassId cls, const std::string& name, ValueType type,
                      Value default_value = Value()) override;

  Result<TxnId> BeginTxn() override;
  Result<DatabaseObject> Read(TxnId txn, Oid oid) override;
  Result<DatabaseObject> ReadCurrent(Oid oid) override;
  Status Write(TxnId txn, DatabaseObject obj) override;
  Status Insert(TxnId txn, DatabaseObject obj) override;
  Status EraseObject(TxnId txn, Oid oid) override;
  Result<CommitResult> Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  Result<std::vector<DatabaseObject>> ScanClass(
      ClassId cls, bool include_subclasses = false) override;
  Result<std::vector<DatabaseObject>> RunQuery(
      const ObjectQuery& query) override;
  Result<Oid> NewOid() override;
  Result<uint64_t> LatestVersion(Oid oid) override;
  uint64_t rpcs_issued() const override { return rpcs_.Get(); }
  uint64_t validation_aborts() const override {
    return validation_aborts_.Get();
  }
  /// Retry-after hint from the most recent Overloaded rejection (0 when
  /// the server never shed one of our requests). Retry loops use it as a
  /// backoff floor.
  int64_t retry_after_hint_ms() const override {
    return retry_after_hint_ms_.load(std::memory_order_relaxed);
  }

  // --- DisplayLockService (forwarded to the server-hosted DLM) ----------
  Status Lock(ClientId holder, Oid oid, VTime sent_at) override;
  Status Unlock(ClientId holder, Oid oid, VTime sent_at) override;
  Status LockBatch(ClientId holder, const std::vector<Oid>& oids,
                   VTime sent_at) override;
  Status UnlockBatch(ClientId holder, const std::vector<Oid>& oids,
                     VTime sent_at) override;

  // --- Transport-level metrics ------------------------------------------
  bool connected() const { return connected_.load(); }
  /// Wire protocol version the server announced in the Hello response
  /// (1 = pre-trace server; trace headers are only exchanged at >= 2).
  uint8_t server_wire_version() const {
    return server_version_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_sent() const { return bytes_out_.Get(); }
  uint64_t bytes_received() const { return bytes_in_.Get(); }
  uint64_t notifications_received() const { return notify_frames_.Get(); }
  uint64_t callbacks_served() const { return callback_frames_.Get(); }
  uint64_t reconnects() const { return reconnects_.Get(); }
  uint64_t heartbeats_sent() const { return heartbeats_.Get(); }
  /// Calls the server rejected with Status::Overloaded (admission control).
  uint64_t overload_rejections() const { return overload_rejections_.Get(); }
  /// Server-forced RESYNC notifications received (our notify stream was
  /// shed; the local cache was dropped and displays told to refetch).
  uint64_t resyncs_received() const { return resyncs_received_.Get(); }
  /// Display locks this client currently believes it holds (the set
  /// Reconnect() replays to a restarted server).
  size_t held_display_locks() const;

  /// Attaches a fault injector to the transport socket (tests and the
  /// fault-tolerance experiment). Survives Reconnect().
  void set_fault_injector(std::shared_ptr<FaultInjector> faults);

 private:
  RemoteDatabaseClient(ClientId id, RemoteClientOptions opts);

  struct PendingCall {
    wire::Method method = wire::Method::kPing;
    std::vector<uint8_t> payload;
    Status transport = Status::OK();
    bool done = false;
    /// Response frame carried the traced bit (payload opens with the
    /// server's TraceInfo echo).
    bool traced = false;
  };

  /// One correlated round trip: REQUEST out, RESPONSE in, remote status
  /// decoded, completion vtime observed. On success `*reply` holds the
  /// response payload and `*body_at` the offset of the method body.
  /// Returns Status::TimedOut after rpc_deadline_ms without a response.
  Status Call(wire::Method method, const std::vector<uint8_t>& body,
              std::vector<uint8_t>* reply, size_t* body_at,
              bool count_rpc = true);
  /// Fire-and-forget frame (eviction notices).
  void SendOneWay(wire::Method method, const std::vector<uint8_t>& body);
  Status Hello();
  /// Replays held_display_locks_ to a freshly handshaken server and queues
  /// the synthetic RESYNC. Part of Reconnect().
  Status ReplayDisplayLocks();
  void ReaderLoop();
  void HeartbeatLoop();
  void FailAllPending(const Status& st);
  void RecordRead(TxnId txn, const DatabaseObject& obj);
  void InstallEvictionCallback();

  ClientId id_;
  RemoteClientOptions opts_;
  CostModel cost_model_;
  std::string host_;
  uint16_t port_ = 0;
  Socket sock_;
  std::mutex write_mu_;
  std::thread reader_;
  std::thread heartbeat_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> shutting_down_{false};
  std::atomic<uint8_t> server_version_{1};
  /// Serializes Reconnect() against itself and the destructor.
  std::mutex lifecycle_mu_;
  std::shared_ptr<FaultInjector> faults_;

  std::mutex calls_mu_;
  std::condition_variable calls_cv_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, PendingCall*> pending_;

  /// Wakes the heartbeat thread early (shutdown).
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;

  SchemaCatalog schema_;
  ObjectCache cache_;
  Inbox inbox_;
  VirtualClock clock_;
  Counter rpcs_, validation_aborts_;
  MirroredCounter bytes_in_, bytes_out_;
  Counter notify_frames_, callback_frames_;
  Counter reconnects_, heartbeats_;
  Counter overload_rejections_, resyncs_received_;
  std::atomic<int64_t> retry_after_hint_ms_{0};

  std::mutex read_sets_mu_;
  std::unordered_map<TxnId, std::vector<std::pair<Oid, uint64_t>>> read_sets_;

  /// Display locks successfully granted to this client and not yet
  /// released — the server-side state Reconnect() must rebuild after a
  /// server restart.
  mutable std::mutex held_mu_;
  std::unordered_set<Oid> held_display_locks_;
};

}  // namespace idba
