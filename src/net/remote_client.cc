#include "net/remote_client.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/rng.h"
#include "core/notification.h"
#include "obs/audit.h"
#include "obs/rpc_stats.h"
#include "obs/trace.h"

namespace idba {

namespace {

/// Records a span that already happened (retrospective child of `parent`).
/// Returns its span id so further synthesized spans can nest under it.
uint64_t EmitSpan(uint64_t trace_id, uint64_t parent, const char* name,
                  int64_t start_us, int64_t dur_us) {
  obs::SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = obs::NewSpanId();
  rec.parent_id = parent;
  rec.start_us = start_us;
  rec.dur_us = dur_us;
  rec.tid = ThisThreadId();
  rec.name = name;
  const uint64_t id = rec.span_id;
  obs::GlobalRecorder().Record(std::move(rec));
  return id;
}

}  // namespace

RemoteDatabaseClient::RemoteDatabaseClient(ClientId id, RemoteClientOptions opts)
    : id_(id), opts_(opts), cost_model_(opts.cost), cache_(opts.cache),
      inbox_(opts.inbox) {}

Result<std::unique_ptr<RemoteDatabaseClient>> RemoteDatabaseClient::Connect(
    const std::string& host, uint16_t port, ClientId id,
    RemoteClientOptions opts) {
  std::unique_ptr<RemoteDatabaseClient> client(
      new RemoteDatabaseClient(id, opts));
  client->host_ = host;
  client->port_ = port;
  IDBA_ASSIGN_OR_RETURN(client->sock_,
                        Socket::ConnectTo(host, port, opts.connect_timeout_ms));
  client->connected_.store(true);
  RemoteDatabaseClient* raw = client.get();
  client->reader_ = std::thread([raw] { raw->ReaderLoop(); });
  IDBA_RETURN_NOT_OK(client->Hello());
  if (opts.report_evictions) client->InstallEvictionCallback();
  if (opts.heartbeat_interval_ms > 0) {
    client->heartbeat_ = std::thread([raw] { raw->HeartbeatLoop(); });
  }
  return client;
}

RemoteDatabaseClient::~RemoteDatabaseClient() {
  shutting_down_.store(true);
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
  }
  hb_cv_.notify_all();
  cache_.set_eviction_callback(EvictionCallback());
  sock_.ShutdownBoth();
  if (reader_.joinable()) reader_.join();
  if (heartbeat_.joinable()) heartbeat_.join();
  inbox_.Close();
  sock_.Close();
}

void RemoteDatabaseClient::InstallEvictionCallback() {
  cache_.set_eviction_callback([this](Oid oid) {
    std::vector<uint8_t> body;
    Encoder enc(&body);
    enc.PutU64(oid.value);
    SendOneWay(wire::Method::kNoteEvicted, body);
  });
}

void RemoteDatabaseClient::set_fault_injector(
    std::shared_ptr<FaultInjector> faults) {
  std::lock_guard<std::mutex> lock(write_mu_);
  faults_ = faults;
  sock_.set_fault_injector(std::move(faults));
}

Status RemoteDatabaseClient::Reconnect(int max_attempts) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (shutting_down_.load()) return Status::IOError("client shutting down");
  if (connected_.load()) {
    return Status::InvalidArgument(
        "Reconnect: connection is still up; it is for dead connections");
  }
  if (reader_.joinable()) reader_.join();
  // The dead session's copy registrations died with it, so cached copies
  // are no longer protected by callbacks: drop them all (silently — the
  // new session never registered them, so no NoteEvicted).
  cache_.set_eviction_callback(EvictionCallback());
  cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(read_sets_mu_);
    read_sets_.clear();
  }
  int64_t backoff = std::max<int64_t>(opts_.reconnect_backoff_ms, 1);
  const int64_t backoff_cap = std::max<int64_t>(
      opts_.reconnect_backoff_cap_ms, backoff);
  // Deterministic per client and per reconnect episode, so tests replay
  // exactly while distinct clients still spread their re-dials.
  Rng jitter_rng(id_ * 0x9E3779B97F4A7C15ULL + reconnects_.Get() + 1);
  // An Overloaded rejection's retry-after hint floors the first sleep: the
  // server told us when it wants to hear from us again.
  const int64_t hint = retry_after_hint_ms_.load(std::memory_order_relaxed);
  if (hint > backoff) backoff = std::min(hint, backoff_cap);
  Status last = Status::IOError("reconnect: no attempts made");
  for (int attempt = 0; attempt < std::max(max_attempts, 1); ++attempt) {
    if (attempt > 0) {
      // Equal-jitter: uniform in [backoff/2, backoff] keeps the expected
      // wait growing exponentially while decorrelating a thundering herd.
      int64_t sleep_ms = opts_.reconnect_jitter && backoff > 1
                             ? jitter_rng.NextInRange(backoff / 2, backoff)
                             : backoff;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff = std::min<int64_t>(backoff * 2, backoff_cap);
    }
    Result<Socket> fresh =
        Socket::ConnectTo(host_, port_, opts_.connect_timeout_ms);
    if (!fresh.ok()) {
      last = fresh.status();
      IDBA_LOG_FIELDS(LogLevel::kWarn, "client", "reconnect attempt failed",
                      {{"client", std::to_string(id_)},
                       {"attempt", std::to_string(attempt + 1)},
                       {"error", last.ToString()}});
      continue;
    }
    {
      // Exclude stragglers mid-WriteFrame on the dead socket.
      std::lock_guard<std::mutex> lock(write_mu_);
      sock_ = std::move(fresh).value();
      if (faults_) sock_.set_fault_injector(faults_);
    }
    connected_.store(true);
    reader_ = std::thread([this] { ReaderLoop(); });
    last = Hello();
    if (last.ok()) last = ReplayDisplayLocks();
    if (last.ok()) {
      if (opts_.report_evictions) InstallEvictionCallback();
      reconnects_.Add();
      IDBA_LOG_FIELDS(LogLevel::kWarn, "client", "reconnected",
                      {{"client", std::to_string(id_)},
                       {"attempts", std::to_string(attempt + 1)}});
      return Status::OK();
    }
    // Handshake refused — commonly the server has not torn down the dead
    // session yet and still holds our client id. Drop this socket and
    // retry after backoff.
    connected_.store(false);
    sock_.ShutdownBoth();
    if (reader_.joinable()) reader_.join();
  }
  return last;
}

// ---------------------------------------------------------------------------
// Transport plumbing
// ---------------------------------------------------------------------------

Status RemoteDatabaseClient::Hello() {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(id_);
  enc.PutU8(static_cast<uint8_t>(opts_.consistency));
  // Announce our wire version as a trailing byte; v1 servers ignore it.
  enc.PutU8(wire::kWireVersion);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(
      Call(wire::Method::kHello, body, &reply, &at, /*count_rpc=*/false));
  Decoder dec(reply.data() + at, reply.size() - at);
  // Decode into a fresh catalog and swap: on Reconnect() the snapshot
  // *replaces* the old one (the server's catalog may have grown while we
  // were gone).
  SchemaCatalog snapshot;
  IDBA_RETURN_NOT_OK(SchemaCatalog::DecodeFrom(&dec, &snapshot));
  schema_ = std::move(snapshot);
  // A v2 server appends its version after the schema; absence means v1.
  uint8_t server_version = 1;
  if (dec.remaining() > 0) {
    IDBA_RETURN_NOT_OK(dec.GetU8(&server_version));
  }
  server_version_.store(server_version, std::memory_order_relaxed);
  return Status::OK();
}

Status RemoteDatabaseClient::Call(wire::Method method,
                                  const std::vector<uint8_t>& body,
                                  std::vector<uint8_t>* reply, size_t* body_at,
                                  bool count_rpc) {
  if (!connected_.load()) return Status::IOError("not connected");

  // Root span for this API call (child span when already inside a trace,
  // e.g. a session-level span). MethodName returns string literals, so
  // .data() is NUL-terminated. Inactive when sampling is off — the span
  // machinery then costs one thread-local load.
  const char* method_name = wire::MethodName(method).data();
  obs::Span rpc = obs::CurrentContext().valid()
                      ? obs::Span::Start(method_name)
                      : obs::Span::StartRoot(method_name);
  const bool send_trace =
      rpc.active() &&
      server_version_.load(std::memory_order_relaxed) >= wire::kWireVersion;

  // Latency decomposition is always recorded (a few steady_clock reads per
  // call), independent of trace sampling.
  obs::RpcPartHistograms& parts =
      obs::GlobalRpcStats().HandleFor(static_cast<int>(method), method_name);
  const int64_t t_start = obs::NowUs();

  std::vector<uint8_t> payload;
  payload.reserve(body.size() + 40);
  Encoder enc(&payload);
  if (send_trace) {
    wire::TraceInfo trace;
    trace.trace_id = rpc.context().trace_id;
    trace.span_id = rpc.context().span_id;
    wire::EncodeTraceInfo(trace, &enc);
  }
  enc.PutU8(static_cast<uint8_t>(method));
  enc.PutI64(clock_.Now());
  payload.insert(payload.end(), body.begin(), body.end());
  const int64_t t_serialized = obs::NowUs();

  PendingCall call;
  call.method = method;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(calls_mu_);
    seq = next_seq_++;
    pending_[seq] = &call;
  }
  Status sent = sock_.WriteFrame(write_mu_, wire::FrameType::kRequest, seq,
                                 payload, &bytes_out_, send_trace);
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(calls_mu_);
    // The reader may have failed the call (and erased it) concurrently;
    // only report the send error if the call is still ours.
    pending_.erase(seq);
    return sent;
  }
  // Pings answer within the heartbeat interval or the peer is considered
  // half-open; everything else gets the configured RPC deadline.
  int64_t deadline_ms = opts_.rpc_deadline_ms;
  if (method == wire::Method::kPing && opts_.heartbeat_interval_ms > 0) {
    deadline_ms = deadline_ms > 0
                      ? std::min(deadline_ms, opts_.heartbeat_interval_ms)
                      : opts_.heartbeat_interval_ms;
  }
  {
    std::unique_lock<std::mutex> lock(calls_mu_);
    if (deadline_ms > 0) {
      if (!calls_cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                              [&] { return call.done; })) {
        // Deadline missed: disown the correlation id so the late response
        // (if it ever arrives) is dropped by the reader.
        pending_.erase(seq);
        return Status::TimedOut(
            "rpc " + std::string(wire::MethodName(method)) + " missed its " +
            std::to_string(deadline_ms) + " ms deadline");
      }
    } else {
      calls_cv_.wait(lock, [&] { return call.done; });
    }
  }
  IDBA_RETURN_NOT_OK(call.transport);
  const int64_t t_response = obs::NowUs();

  Decoder dec(call.payload.data(), call.payload.size());
  // A traced response opens with the server's TraceInfo echo, carrying the
  // queue-wait/execute split of the server's time on this call.
  wire::TraceInfo resp_trace;
  bool have_server_split = false;
  if (call.traced) {
    have_server_split = wire::DecodeTraceInfo(&dec, &resp_trace).ok();
    if (!have_server_split) resp_trace = wire::TraceInfo{};
  }
  Status remote;
  IDBA_RETURN_NOT_OK(wire::DecodeStatus(&dec, &remote));
  VTime completion = 0;
  IDBA_RETURN_NOT_OK(dec.GetI64(&completion));
  clock_.Observe(completion);
  if (remote.IsOverloaded()) {
    // Admission-control rejection: the body is a retry-after hint (varint
    // ms). Stash it for retry loops (retry_after_hint_ms()).
    overload_rejections_.Add();
    uint64_t hint_ms = 0;
    Decoder hint_dec(call.payload.data() + dec.position(),
                     call.payload.size() - dec.position());
    if (hint_dec.GetVarint(&hint_ms).ok()) {
      retry_after_hint_ms_.store(static_cast<int64_t>(hint_ms),
                                 std::memory_order_relaxed);
    }
  }
  if (count_rpc) rpcs_.Add();
  *body_at = dec.position();
  *reply = std::move(call.payload);
  const int64_t t_decoded = obs::NowUs();

  // Decomposition histograms: serialize / network / queue / execute /
  // deserialize / total. Without a v2 server split, network absorbs the
  // server-side time.
  const int64_t wire_us = t_response - t_serialized;
  int64_t network_us = wire_us;
  if (have_server_split) {
    network_us = std::max<int64_t>(
        wire_us - resp_trace.queue_us - resp_trace.exec_us, 0);
    parts.queue_us->Record(static_cast<double>(resp_trace.queue_us));
    parts.execute_us->Record(static_cast<double>(resp_trace.exec_us));
  }
  parts.serialize_us->Record(static_cast<double>(t_serialized - t_start));
  parts.network_us->Record(static_cast<double>(network_us));
  parts.deserialize_us->Record(static_cast<double>(t_decoded - t_response));
  parts.total_us->Record(static_cast<double>(t_decoded - t_start));

  if (rpc.active()) {
    // Child spans of the call, reconstructed now that the times are known.
    const uint64_t trace_id = rpc.context().trace_id;
    const uint64_t rpc_span = rpc.context().span_id;
    EmitSpan(trace_id, rpc_span, "client.serialize", t_start,
             t_serialized - t_start);
    const uint64_t net_span = EmitSpan(trace_id, rpc_span, "client.network",
                                       t_serialized, wire_us);
    if (have_server_split) {
      // Synthesized from the response's TraceInfo so a single client-side
      // trace shows the full decomposition; the server's own recorder holds
      // the authoritative server.queue/server.execute spans (TRACE_DUMP).
      // Centered in the network window — their wall offsets are unknown.
      const int64_t server_us = resp_trace.queue_us + resp_trace.exec_us;
      const int64_t queue_start =
          t_serialized + std::max<int64_t>((wire_us - server_us) / 2, 0);
      EmitSpan(trace_id, net_span, "server.queue", queue_start,
               resp_trace.queue_us);
      EmitSpan(trace_id, net_span, "server.execute",
               queue_start + resp_trace.queue_us, resp_trace.exec_us);
    }
    EmitSpan(trace_id, rpc_span, "client.deserialize", t_response,
             t_decoded - t_response);
  }
  return remote;
}

void RemoteDatabaseClient::SendOneWay(wire::Method method,
                                      const std::vector<uint8_t>& body) {
  if (!connected_.load() || shutting_down_.load()) return;
  std::vector<uint8_t> payload;
  payload.reserve(body.size() + 16);
  Encoder enc(&payload);
  enc.PutU8(static_cast<uint8_t>(method));
  enc.PutI64(clock_.Now());
  payload.insert(payload.end(), body.begin(), body.end());
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(calls_mu_);
    seq = next_seq_++;
  }
  (void)sock_.WriteFrame(write_mu_, wire::FrameType::kOneWay, seq, payload,
                         &bytes_out_);
}

void RemoteDatabaseClient::FailAllPending(const Status& st) {
  const bool shutdown = shutting_down_.load();
  std::lock_guard<std::mutex> lock(calls_mu_);
  for (auto& [seq, call] : pending_) {
    if (!shutdown && (call->method == wire::Method::kCommit ||
                      call->method == wire::Method::kCommitValidated)) {
      // The commit request may have reached the server and applied before
      // the connection broke — its outcome is genuinely indeterminate.
      // Surface that explicitly so retry layers re-run read-modify-write
      // bodies instead of assuming the commit failed.
      call->transport = Status::Unknown(
          "connection lost with commit in flight; outcome unknown");
    } else {
      call->transport = st.ok() ? Status::IOError("connection closed") : st;
    }
    call->done = true;
  }
  pending_.clear();
  calls_cv_.notify_all();
}

void RemoteDatabaseClient::HeartbeatLoop() {
  const auto interval =
      std::chrono::milliseconds(opts_.heartbeat_interval_ms);
  std::unique_lock<std::mutex> lock(hb_mu_);
  while (!shutting_down_.load()) {
    hb_cv_.wait_for(lock, interval, [&] { return shutting_down_.load(); });
    if (shutting_down_.load()) return;
    if (!connected_.load()) continue;  // Reconnect() is the user's call
    lock.unlock();
    heartbeats_.Add();
    std::vector<uint8_t> reply;
    size_t at = 0;
    Status st =
        Call(wire::Method::kPing, {}, &reply, &at, /*count_rpc=*/false);
    if (st.IsTimedOut()) {
      // Half-open connection: the peer stopped answering but TCP has not
      // noticed. Kill the socket so every blocked caller fails fast and
      // connected() reads false.
      IDBA_LOG_FIELDS(LogLevel::kWarn, "client",
                      "heartbeat missed; marking connection dead",
                      {{"client", std::to_string(id_)}});
      connected_.store(false);
      sock_.ShutdownBoth();
    }
    lock.lock();
  }
}

void RemoteDatabaseClient::ReaderLoop() {
  Status st;
  for (;;) {
    wire::FrameHeader header;
    std::vector<uint8_t> payload;
    st = sock_.ReadFrame(&header, &payload, &bytes_in_);
    if (!st.ok()) break;
    switch (header.type) {
      case wire::FrameType::kResponse: {
        std::lock_guard<std::mutex> lock(calls_mu_);
        auto it = pending_.find(header.seq);
        if (it != pending_.end()) {
          it->second->payload = std::move(payload);
          it->second->traced = header.traced;
          it->second->done = true;
          pending_.erase(it);
          calls_cv_.notify_all();
        }
        break;
      }
      case wire::FrameType::kNotify: {
        Decoder dec(payload.data(), payload.size());
        wire::TraceInfo trace;
        if (header.traced && !wire::DecodeTraceInfo(&dec, &trace).ok()) break;
        wire::NotifyFrame frame;
        if (!wire::DecodeNotifyMeta(&dec, &frame).ok()) break;
        Envelope env;
        env.from = frame.from;
        env.to = frame.to;
        env.sent_at = frame.sent_at;
        env.arrives_at = frame.arrives_at;
        env.wire_bytes = frame.virtual_wire_bytes;
        // Carry the committing writer's context so the DLC dispatch and
        // display refresh join the writer's trace.
        env.trace_id = trace.trace_id;
        env.trace_span = trace.span_id;
        if (frame.kind == wire::NotifyKind::kUpdate) {
          auto msg = std::make_shared<UpdateNotifyMessage>();
          if (!UpdateNotifyMessage::DecodeFrom(&dec, msg.get()).ok()) break;
          obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
          if (auditor.enabled() && msg->committed) {
            // Transport-level monotonicity: commit vtimes for one OID must
            // arrive in commit order even before any display pump runs
            // (obligations are only opened at DLC dispatch).
            std::vector<uint64_t> oids;
            oids.reserve(msg->updated.size() + msg->erased.size());
            for (Oid oid : msg->updated) oids.push_back(oid.value);
            for (Oid oid : msg->erased) oids.push_back(oid.value);
            auditor.OnNotifyReceived(id_, oids.data(), oids.size(),
                                     msg->commit_vtime, env.trace_id);
          }
          env.msg = std::move(msg);
        } else if (frame.kind == wire::NotifyKind::kResync) {
          // The server shed our notification stream: cached copies may
          // have missed invalidations (elided callbacks), so drop the
          // whole object cache *before* the DLC pump sees the resync —
          // its display refetches then go to the server.
          auto msg = std::make_shared<ResyncNotifyMessage>();
          if (!ResyncNotifyMessage::DecodeFrom(&dec, msg.get()).ok()) break;
          resyncs_received_.Add();
          cache_.Clear();
          // Confirm before the pump refetches anything: the ack goes out on
          // this (reader) thread, so any refetch RPC a pump or user thread
          // issues afterwards reaches the server behind it — copies those
          // refetches register are protected by live callbacks again.
          (void)sock_.WriteFrame(write_mu_, wire::FrameType::kResyncAck,
                                 header.seq, {}, &bytes_out_);
          env.msg = std::move(msg);
        } else {
          auto msg = std::make_shared<IntentNotifyMessage>();
          if (!IntentNotifyMessage::DecodeFrom(&dec, msg.get()).ok()) break;
          env.msg = std::move(msg);
        }
        notify_frames_.Add();
        inbox_.Deliver(std::move(env));
        break;
      }
      case wire::FrameType::kCallback: {
        // Synchronous cache invalidation: the server's committing client is
        // blocked until our ack. Handled here on the reader thread — which
        // never issues RPCs of its own — so the ack flows even while this
        // client's user thread is blocked inside its own Commit().
        Decoder dec(payload.data(), payload.size());
        wire::TraceInfo trace;
        if (header.traced && !wire::DecodeTraceInfo(&dec, &trace).ok()) {
          trace = wire::TraceInfo{};
        }
        uint64_t oid = 0, version = 0;
        if (dec.GetU64(&oid).ok() && dec.GetU64(&version).ok()) {
          obs::Span span = obs::Span::StartChildOf(
              {trace.trace_id, trace.span_id}, "client.invalidate");
          // An invalidation proves `version` committed: raise the
          // auditor's coherence floor (~0 marks an erase — no floor).
          if (version != ~0ULL) {
            obs::GlobalAuditor().OnVersionCommitted(id_, oid, version);
          }
          cache_.InvalidateCached(Oid(oid), version);
          callback_frames_.Add();
        }
        (void)sock_.WriteFrame(write_mu_, wire::FrameType::kCallbackAck,
                               header.seq, {}, &bytes_out_);
        break;
      }
      default:
        break;  // server never sends REQUEST/ONEWAY; ignore
    }
  }
  connected_.store(false);
  FailAllPending(shutting_down_.load() ? Status::IOError("client shut down")
                                       : st);
  // Keep the inbox open across a disconnect: a Reconnect()ed session keeps
  // using it, and the DLC pump tolerates an idle one. It closes for good
  // at destruction.
  if (shutting_down_.load()) inbox_.Close();
}

// ---------------------------------------------------------------------------
// ClientApi
// ---------------------------------------------------------------------------

Result<ClassId> RemoteDatabaseClient::DefineClass(const std::string& name,
                                                  ClassId base) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutString(name);
  enc.PutU32(base);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(wire::Method::kDefineClass, body, &reply, &at,
                          /*count_rpc=*/false));
  Decoder dec(reply.data() + at, reply.size() - at);
  ClassId remote_id = 0;
  IDBA_RETURN_NOT_OK(dec.GetU32(&remote_id));
  // Replay into the local catalog so class ids (and object layouts) match
  // the server's exactly.
  IDBA_ASSIGN_OR_RETURN(ClassId local_id, schema_.DefineClass(name, base));
  if (local_id != remote_id) {
    return Status::Internal("schema divergence: server assigned class " +
                            std::to_string(remote_id) + ", local replay " +
                            std::to_string(local_id));
  }
  return remote_id;
}

Status RemoteDatabaseClient::AddAttribute(ClassId cls, const std::string& name,
                                          ValueType type,
                                          Value default_value) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU32(cls);
  enc.PutString(name);
  enc.PutU8(static_cast<uint8_t>(type));
  default_value.EncodeTo(&enc);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(wire::Method::kAddAttribute, body, &reply, &at,
                          /*count_rpc=*/false));
  return schema_.AddAttribute(cls, name, type, std::move(default_value));
}

Result<TxnId> RemoteDatabaseClient::BeginTxn() {
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(
      Call(wire::Method::kBegin, {}, &reply, &at, /*count_rpc=*/false));
  Decoder dec(reply.data() + at, reply.size() - at);
  uint64_t txn = 0;
  IDBA_RETURN_NOT_OK(dec.GetU64(&txn));
  if (txn == 0) return Status::Internal("server assigned txn id 0");
  return txn;
}

void RemoteDatabaseClient::RecordRead(TxnId txn, const DatabaseObject& obj) {
  std::lock_guard<std::mutex> lock(read_sets_mu_);
  read_sets_[txn].emplace_back(obj.oid(), obj.version());
}

Result<DatabaseObject> RemoteDatabaseClient::Read(TxnId txn, Oid oid) {
  if (auto cached = cache_.Get(oid)) {
    if (opts_.consistency == ConsistencyMode::kDetection) {
      RecordRead(txn, *cached);
      return *cached;
    }
    // Avoidance: valid copy, but an update transaction needs the S lock —
    // lock-only round trip, then re-check (the copy may have been called
    // back while we waited; with S held a present copy is current).
    std::vector<uint8_t> body;
    Encoder enc(&body);
    enc.PutU64(txn);
    enc.PutU64(oid.value);
    std::vector<uint8_t> reply;
    size_t at = 0;
    IDBA_RETURN_NOT_OK(
        Call(wire::Method::kLockForRead, body, &reply, &at));
    if (auto still = cache_.Get(oid)) return *still;
  }
  std::vector<uint8_t> body;
  Encoder enc(&body);
  wire::Method method;
  if (opts_.consistency == ConsistencyMode::kDetection) {
    // Optimistic read: no S lock, copy untracked by the server.
    method = wire::Method::kFetchCurrent;
    enc.PutU64(oid.value);
    enc.PutU8(0);
  } else {
    method = wire::Method::kFetch;
    enc.PutU64(txn);
    enc.PutU64(oid.value);
  }
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(method, body, &reply, &at));
  Decoder dec(reply.data() + at, reply.size() - at);
  DatabaseObject obj;
  IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(&dec, &obj));
  if (opts_.consistency == ConsistencyMode::kDetection) RecordRead(txn, obj);
  cache_.Put(obj);
  return obj;
}

Result<DatabaseObject> RemoteDatabaseClient::ReadCurrent(Oid oid) {
  if (auto cached = cache_.Get(oid)) return *cached;
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(oid.value);
  enc.PutU8(opts_.consistency == ConsistencyMode::kAvoidance ? 1 : 0);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(wire::Method::kFetchCurrent, body, &reply, &at));
  Decoder dec(reply.data() + at, reply.size() - at);
  DatabaseObject obj;
  IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(&dec, &obj));
  cache_.Put(obj);
  return obj;
}

Status RemoteDatabaseClient::Write(TxnId txn, DatabaseObject obj) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(txn);
  obj.EncodeTo(&enc);
  std::vector<uint8_t> reply;
  size_t at = 0;
  return Call(wire::Method::kPut, body, &reply, &at);
}

Status RemoteDatabaseClient::Insert(TxnId txn, DatabaseObject obj) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(txn);
  obj.EncodeTo(&enc);
  std::vector<uint8_t> reply;
  size_t at = 0;
  return Call(wire::Method::kInsert, body, &reply, &at);
}

Status RemoteDatabaseClient::EraseObject(TxnId txn, Oid oid) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(txn);
  enc.PutU64(oid.value);
  std::vector<uint8_t> reply;
  size_t at = 0;
  return Call(wire::Method::kErase, body, &reply, &at);
}

Result<CommitResult> RemoteDatabaseClient::Commit(TxnId txn) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(txn);
  wire::Method method = wire::Method::kCommit;
  std::vector<std::pair<Oid, uint64_t>> read_set;
  if (opts_.consistency == ConsistencyMode::kDetection) {
    {
      std::lock_guard<std::mutex> lock(read_sets_mu_);
      auto it = read_sets_.find(txn);
      if (it != read_sets_.end()) {
        read_set = std::move(it->second);
        read_sets_.erase(it);
      }
    }
    wire::EncodeReadSet(read_set, &enc);
    method = wire::Method::kCommitValidated;
  }
  std::vector<uint8_t> reply;
  size_t at = 0;
  Status st = Call(method, body, &reply, &at);
  if (!st.ok()) {
    if (st.IsAborted() && method == wire::Method::kCommitValidated) {
      validation_aborts_.Add();
      // Our optimistic copies proved stale; drop them so a retry
      // re-fetches current images.
      for (const auto& [oid, version] : read_set) cache_.Drop(oid);
    }
    return st;
  }
  Decoder dec(reply.data() + at, reply.size() - at);
  CommitResult result;
  IDBA_RETURN_NOT_OK(wire::DecodeCommitResult(&dec, &result));
  for (const DatabaseObject& obj : result.updated) {
    if (cache_.Contains(obj.oid())) cache_.Put(obj);
  }
  for (Oid oid : result.erased) cache_.Drop(oid);
  return result;
}

Status RemoteDatabaseClient::Abort(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(read_sets_mu_);
    read_sets_.erase(txn);
  }
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(txn);
  std::vector<uint8_t> reply;
  size_t at = 0;
  return Call(wire::Method::kAbort, body, &reply, &at);
}

Result<std::vector<DatabaseObject>> RemoteDatabaseClient::ScanClass(
    ClassId cls, bool include_subclasses) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU32(cls);
  enc.PutU8(include_subclasses ? 1 : 0);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(wire::Method::kScanClass, body, &reply, &at));
  Decoder dec(reply.data() + at, reply.size() - at);
  std::vector<DatabaseObject> objs;
  IDBA_RETURN_NOT_OK(wire::DecodeObjectVector(&dec, &objs));
  for (const DatabaseObject& obj : objs) cache_.Put(obj);
  return objs;
}

Result<std::vector<DatabaseObject>> RemoteDatabaseClient::RunQuery(
    const ObjectQuery& query) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  query.EncodeTo(&enc);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(wire::Method::kQuery, body, &reply, &at));
  Decoder dec(reply.data() + at, reply.size() - at);
  std::vector<DatabaseObject> objs;
  IDBA_RETURN_NOT_OK(wire::DecodeObjectVector(&dec, &objs));
  for (const DatabaseObject& obj : objs) cache_.Put(obj);
  return objs;
}

Result<Oid> RemoteDatabaseClient::NewOid() {
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(
      Call(wire::Method::kAllocateOid, {}, &reply, &at, /*count_rpc=*/false));
  Decoder dec(reply.data() + at, reply.size() - at);
  uint64_t oid = 0;
  IDBA_RETURN_NOT_OK(dec.GetU64(&oid));
  if (oid == 0) return Status::Internal("server allocated the null oid");
  return Oid(oid);
}

Result<uint64_t> RemoteDatabaseClient::LatestVersion(Oid oid) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutU64(oid.value);
  std::vector<uint8_t> reply;
  size_t at = 0;
  IDBA_RETURN_NOT_OK(Call(wire::Method::kGetVersion, body, &reply, &at,
                          /*count_rpc=*/false));
  Decoder dec(reply.data() + at, reply.size() - at);
  uint64_t version = 0;
  IDBA_RETURN_NOT_OK(dec.GetU64(&version));
  return version;
}

// ---------------------------------------------------------------------------
// DisplayLockService
// ---------------------------------------------------------------------------

Status RemoteDatabaseClient::Lock(ClientId holder, Oid oid, VTime sent_at) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutI64(sent_at);
  enc.PutU64(holder);
  enc.PutU64(oid.value);
  std::vector<uint8_t> reply;
  size_t at = 0;
  Status st =
      Call(wire::Method::kDlmLock, body, &reply, &at, /*count_rpc=*/false);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(held_mu_);
    held_display_locks_.insert(oid);
  }
  return st;
}

Status RemoteDatabaseClient::Unlock(ClientId holder, Oid oid, VTime sent_at) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutI64(sent_at);
  enc.PutU64(holder);
  enc.PutU64(oid.value);
  // Dropped from the held set even if the RPC fails: the caller no longer
  // wants notifications for this object, so a failed unlock must not be
  // resurrected by a later Reconnect() replay.
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    held_display_locks_.erase(oid);
  }
  std::vector<uint8_t> reply;
  size_t at = 0;
  return Call(wire::Method::kDlmUnlock, body, &reply, &at,
              /*count_rpc=*/false);
}

Status RemoteDatabaseClient::LockBatch(ClientId holder,
                                       const std::vector<Oid>& oids,
                                       VTime sent_at) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutI64(sent_at);
  enc.PutU64(holder);
  wire::EncodeOidVector(oids, &enc);
  std::vector<uint8_t> reply;
  size_t at = 0;
  Status st = Call(wire::Method::kDlmLockBatch, body, &reply, &at,
                   /*count_rpc=*/false);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(held_mu_);
    held_display_locks_.insert(oids.begin(), oids.end());
  }
  return st;
}

Status RemoteDatabaseClient::UnlockBatch(ClientId holder,
                                         const std::vector<Oid>& oids,
                                         VTime sent_at) {
  std::vector<uint8_t> body;
  Encoder enc(&body);
  enc.PutI64(sent_at);
  enc.PutU64(holder);
  wire::EncodeOidVector(oids, &enc);
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    for (Oid oid : oids) held_display_locks_.erase(oid);
  }
  std::vector<uint8_t> reply;
  size_t at = 0;
  return Call(wire::Method::kDlmUnlockBatch, body, &reply, &at,
              /*count_rpc=*/false);
}

size_t RemoteDatabaseClient::held_display_locks() const {
  std::lock_guard<std::mutex> lock(held_mu_);
  return held_display_locks_.size();
}

Status RemoteDatabaseClient::ReplayDisplayLocks() {
  // A reconnected session may face a *restarted* server whose virtual
  // clocks (and re-seeded object versions) start over below our old
  // watermarks. Forget everything audited about this subscriber BEFORE the
  // replayed registrations let new notifications flow — watermarks are
  // reset, not replayed, so post-restart vtimes are not false regressions.
  obs::GlobalAuditor().OnSessionReset(id_);
  std::vector<Oid> held;
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    held.assign(held_display_locks_.begin(), held_display_locks_.end());
  }
  if (!held.empty()) {
    std::vector<uint8_t> body;
    Encoder enc(&body);
    enc.PutI64(clock_.Now());
    enc.PutU64(id_);
    wire::EncodeOidVector(held, &enc);
    std::vector<uint8_t> reply;
    size_t at = 0;
    IDBA_RETURN_NOT_OK(Call(wire::Method::kDlmReregister, body, &reply, &at,
                            /*count_rpc=*/false));
  }
  // Updates committed while we were disconnected produced no notifications
  // for us: force every display through the resync path (full refetch),
  // exactly as if the server had shed our stream.
  auto msg = std::make_shared<ResyncNotifyMessage>();
  msg->resync_vtime = clock_.Now();
  Envelope env;
  env.from = 0;
  env.to = id_;
  env.sent_at = msg->resync_vtime;
  env.arrives_at = msg->resync_vtime;
  env.wire_bytes = msg->WireBytes();
  env.msg = std::move(msg);
  inbox_.Deliver(std::move(env));
  return Status::OK();
}

}  // namespace idba
