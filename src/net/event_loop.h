// Epoll readiness loop: the core of the event-driven transport.
//
// One EventLoop owns one epoll instance and one thread. Nonblocking fds are
// registered with a Handler; the loop thread dispatches readiness events to
// the handlers, runs posted tasks, and optionally fires a periodic tick
// (used by the transport for idle-connection scans). An eventfd wakes the
// loop from other threads (Post/Wakeup), so cross-thread work lands on the
// loop promptly without polling.
//
// Handler lifetime contract: a handler must stay alive until after it has
// been Del()ed on the loop thread AND any task posted before the Del has
// run. The transport guarantees this by releasing connection references
// only through Post(), which the loop runs *after* dispatching the current
// ready set — so a handler can never be destroyed while an event for it is
// still pending in the same epoll batch.
//
// Metrics (shared across loops, PR-5 registry):
//   net.loop.wait_us      histogram of epoll_wait block time
//   net.loop.dispatch_us  histogram of per-poll dispatch (events + tasks)
//   net.loop.ready        histogram of ready-set sizes (fds per poll)
//   net.loop.polls        epoll_wait returns
//   net.loop.wakeups      eventfd wakeups (Post/Wakeup calls delivered)
//   net.loop.lag_us       histogram of Post()-to-run latency of posted tasks
// With Options::metric_prefix set (e.g. "net.loop.0"), the loop also feeds
// <prefix>.lag_us / <prefix>.wakeups so idba_top can show per-loop skew.
//
// Health integration (PR-8, obs/health.h): the loop thread registers under
// Options::role, stamps its epoch every iteration, and flips `working` off
// around the epoll_wait block — so the watchdog distinguishes "idle in
// epoll" from "stuck dispatching" and the profiler can sample loop threads
// by role.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace idba {

class EventLoop {
 public:
  /// Receives readiness events for one registered fd, on the loop thread.
  class Handler {
   public:
    virtual ~Handler() = default;
    /// `events` is the EPOLL* bitmask reported by epoll_wait.
    virtual void OnEvents(uint32_t events) = 0;
  };

  struct Options {
    /// Epoll trigger mode for registered fds. Level-triggered (default) is
    /// forgiving — an unread byte re-arms the fd every poll; edge-triggered
    /// requires handlers to drain to EAGAIN (Conn does) and saves wakeups
    /// under load.
    bool edge_triggered = false;
    /// When > 0, `on_tick` fires at least this often (the poll timeout is
    /// capped accordingly). 0 = block indefinitely between events.
    int64_t tick_interval_ms = 0;
    std::function<void()> on_tick;
    /// Thread role registered with the health registry ("io-loop-0", ...).
    std::string role = "io-loop";
    /// When non-empty, per-loop <prefix>.lag_us / <prefix>.wakeups series
    /// are fed alongside the shared net.loop.* ones.
    std::string metric_prefix;
  };

  EventLoop();
  explicit EventLoop(Options opts);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and starts the loop thread.
  Status Start();
  /// Stops and joins the loop thread, then drains any leftover posted
  /// tasks on the calling thread (so deferred releases still run).
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Registers `fd` for `events` (EPOLLIN etc.; the trigger mode is added
  /// automatically). Thread-safe.
  Status Add(int fd, uint32_t events, Handler* handler);
  /// Re-arms `fd` with a new event mask. Thread-safe.
  Status Mod(int fd, uint32_t events, Handler* handler);
  /// Removes `fd` from the epoll set. Thread-safe; idempotent after Stop.
  Status Del(int fd);

  /// Runs `fn` on the loop thread and wakes it. Safe from any thread,
  /// including the loop thread itself (runs after the current dispatch).
  /// After Stop, the task runs inline on the calling thread.
  void Post(std::function<void()> fn);

  /// Wakes a blocked epoll_wait without queueing work.
  void Wakeup();

  /// Test-only: posts a task that busy-waits `ms` on the loop thread
  /// without stamping the health epoch, so the watchdog sees a genuine
  /// stall (the loop is `working` with a frozen epoch).
  void InjectStallForTest(int64_t ms);

  bool InLoopThread() const {
    return std::this_thread::get_id() ==
           thread_id_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void DrainTasks();
  uint32_t TriggerBits() const;

  Options opts_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> thread_id_{};

  /// A posted task plus its enqueue time, so DrainTasks can histogram the
  /// Post()-to-run lag the watchdog/idba_top reason about.
  struct PostedTask {
    std::function<void()> fn;
    int64_t posted_us = 0;
  };

  std::mutex tasks_mu_;
  std::vector<PostedTask> tasks_;

  Histogram* wait_us_ = nullptr;
  Histogram* dispatch_us_ = nullptr;
  Histogram* ready_ = nullptr;
  Histogram* lag_us_ = nullptr;
  Counter* polls_ = nullptr;
  Counter* wakeups_ = nullptr;
  Histogram* loop_lag_us_ = nullptr;  ///< per-loop, only with metric_prefix
  Counter* loop_wakeups_ = nullptr;   ///< per-loop, only with metric_prefix
};

}  // namespace idba
