#include "net/tcp_server.h"

#include <signal.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/notification.h"
#include "obs/audit.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/profiler.h"
#include "obs/prom_export.h"
#include "obs/rpc_stats.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace idba {

// Message::SharedWireBody reports the notify kind as a raw byte (core/
// cannot depend on net/); pin the correspondence so the values can never
// drift apart silently.
static_assert(static_cast<uint8_t>(wire::NotifyKind::kUpdate) == 1 &&
                  static_cast<uint8_t>(wire::NotifyKind::kIntent) == 2 &&
                  static_cast<uint8_t>(wire::NotifyKind::kResync) == 3,
              "wire::NotifyKind must match the kinds reported by "
              "notification.cc EncodeWireBody");

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

struct TransportServer::Connection
    : public CacheCallbackHandler,
      public Conn::Handler,
      public std::enable_shared_from_this<Connection> {
  explicit Connection(TransportServer* owner_in)
      : owner(owner_in), notify_inbox(owner_in->NotifyInboxOptions(this)) {}

  TransportServer* owner;
  /// I/O loop this connection is pinned to (round-robin at accept).
  EventLoop* loop = nullptr;
  /// Socket state machine (read decode + bounded write queue), owned here;
  /// its Handler callbacks land on `loop`'s thread.
  std::shared_ptr<Conn> conn;

  // Written once by a worker thread in the Hello handler, read by other
  // threads: client_id is published before hello_done (release), and
  // readers load hello_done first (acquire) — no mutex needed for this
  // one-shot handoff.
  std::atomic<ClientId> client_id{0};
  std::atomic<bool> hello_done{false};
  /// Wire protocol version the peer announced in Hello; 1 (no trace
  /// support) until the optional version byte arrives. Trace headers are
  /// only sent to peers >= 2.
  std::atomic<uint8_t> peer_version{1};

  /// Registered on the bus under the client's endpoint id after Hello;
  /// FlushNotifies (on the loop thread) forwards its envelopes as NOTIFY
  /// frames. Bounded: the delivering writer never blocks on this client's
  /// socket, and a backlog beyond the bound escalates per the
  /// slow-subscriber policy.
  Inbox notify_inbox;

  /// The client owes a full resync: its notify backlog overflowed, a
  /// callback ack timed out, or its callback lane overflowed. While set,
  /// invalidation callbacks are elided (the resync clears the whole client
  /// cache anyway); FlushNotifies clears it when it queues the RESYNC frame,
  /// handing off to `resync_awaiting_ack` until the client confirms.
  std::atomic<bool> stale{false};
  /// Seq of a RESYNC frame on the wire whose RESYNC_ACK has not arrived
  /// yet (0 = none). Callbacks stay elided while nonzero — a client that
  /// has not processed the resync is still inconsistent — and no second
  /// RESYNC is sent until the first is acknowledged; staleness events in
  /// the interim re-set `stale`, queueing exactly one follow-up resync.
  std::atomic<uint64_t> resync_awaiting_ack{0};
  /// RESYNC frames sent to this client (per-session stat row).
  std::atomic<uint64_t> forced_resyncs{0};
  /// Inbox shed count already reported in a RESYNC frame (loop thread).
  uint64_t shed_reported = 0;
  /// NOTIFY/CALLBACK-lane frame sequence (loop thread only).
  uint64_t notify_seq = 1;

  std::atomic<bool> closing{false};
  /// Teardown ran and the socket's close path completed; reapable.
  std::atomic<bool> finished{false};
  /// Strand flag: true while this connection is queued for (or executing
  /// on) the worker pool. At most one worker runs a connection at a time,
  /// preserving per-client request order on a shared pool.
  std::atomic<bool> scheduled{false};
  /// Deduplicates posted FlushNotifies tasks.
  std::atomic<bool> notify_flush_pending{false};

  /// One request waiting for the worker pool, stamped with its arrival time
  /// so the worker can attribute queue wait separately from execution.
  struct QueuedRequest {
    wire::FrameHeader header;
    std::vector<uint8_t> payload;
    int64_t enqueued_us = 0;
  };

  // Requests queued by the I/O loop for the worker pool.
  std::mutex q_mu;
  std::deque<QueuedRequest> requests;

  // Outstanding cache-invalidation callbacks awaiting CALLBACK_ACK frames.
  std::mutex cb_mu;
  std::condition_variable cb_cv;
  uint64_t next_callback_seq = 1;
  std::unordered_set<uint64_t> pending_acks;

  /// One invalidation CALLBACK queued for the loop thread to write. The
  /// trace ids are captured on the committing writer's thread (its context
  /// is thread-local) so the frame still joins the writer's trace even
  /// though another thread performs the write.
  struct PendingCallbackFrame {
    uint64_t seq = 0;
    uint64_t oid = 0;
    uint64_t version = 0;
    uint64_t trace_id = 0;
    uint64_t trace_span = 0;
  };
  // Callback lane, drained by FlushNotifies (guarded by cb_mu).
  std::deque<PendingCallbackFrame> callback_queue;

  /// Posts one FlushNotifies onto the loop (deduplicated). Callable from
  /// any thread — the deliver path, blocked writers, ack routing.
  void WakeNotify() {
    if (closing.load(std::memory_order_relaxed)) return;
    if (loop == nullptr) return;
    if (notify_flush_pending.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    auto self = shared_from_this();
    loop->Post([self] { self->owner->FlushNotifies(self.get()); });
  }

  /// Marks the client stale and wakes its flush so the RESYNC frame goes
  /// out promptly.
  void RequestResync() {
    stale.store(true);
    WakeNotify();
  }

  // Conn::Handler — all on the loop thread.
  void OnFrame(Conn*, const wire::FrameHeader& header,
               std::vector<uint8_t> payload) override {
    owner->OnConnFrame(this, header, std::move(payload));
  }
  void OnWriteDrained(Conn*) override { owner->FlushNotifies(this); }
  void OnClosed(Conn*) override {
    owner->Teardown(this);
    finished.store(true, std::memory_order_release);
  }

  // CacheCallbackHandler: invoked by the CallbackManager from the *writer's*
  // worker thread during its commit. Queues a CALLBACK frame for this
  // client's loop (the writer never touches this client's socket) and
  // blocks until the client's I/O loop routes back the ack — the
  // invalidate-before-commit guarantee. Acks are routed by loops, never
  // workers, so the wait cannot deadlock the pool even with every worker
  // blocked in a commit. Degradations that keep the writer responsive to
  // everyone else:
  //   - client already stale: skip entirely (the owed resync clears its
  //     whole cache, making this invalidation redundant);
  //   - callback lane full: don't queue or wait; schedule a resync;
  //   - ack timeout: proceed (as before), but now also schedule a resync —
  //     an un-acked client is silently inconsistent, and marking it stale
  //     means later commits skip the wait instead of re-paying the timeout.
  void InvalidateCached(Oid oid, uint64_t new_version) override {
    if (closing.load()) return;
    if (stale.load() || resync_awaiting_ack.load() != 0) {
      owner->callbacks_elided_.Add();
      // Marks the elision in the committing writer's trace.
      obs::Span elided = obs::Span::Start("server.callback_elided");
      elided.Note("client " +
                  std::to_string(client_id.load(std::memory_order_relaxed)) +
                  " owes resync");
      return;
    }
    // Capture the writer's trace context here, on its thread.
    obs::TraceContext ctx = obs::CurrentContext();
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(cb_mu);
      if (owner->opts_.max_callback_queue > 0 &&
          callback_queue.size() >= owner->opts_.max_callback_queue) {
        owner->callback_overflows_.Add();
        seq = 0;
      } else {
        seq = next_callback_seq++;
        pending_acks.insert(seq);
        callback_queue.push_back(
            {seq, oid.value, new_version, ctx.trace_id, ctx.span_id});
      }
    }
    if (seq == 0) {
      // Not even the callback lane drains: the client cannot be kept
      // consistent synchronously. Escalate to a resync, writer proceeds.
      RequestResync();
      return;
    }
    WakeNotify();  // wake the loop to write the frame
    std::unique_lock<std::mutex> lock(cb_mu);
    cb_cv.wait_for(
        lock, std::chrono::milliseconds(owner->opts_.callback_ack_timeout_ms),
        [&] { return pending_acks.count(seq) == 0 || closing.load(); });
    const bool timed_out = pending_acks.count(seq) != 0 && !closing.load();
    pending_acks.erase(seq);
    lock.unlock();
    if (timed_out) {
      owner->callback_timeouts_.Add();
      obs::Span timeout = obs::Span::Start("server.callback_timeout");
      timeout.Note("client " +
                   std::to_string(client_id.load(std::memory_order_relaxed)) +
                   " marked stale");
      RequestResync();
    }
  }
};

// ---------------------------------------------------------------------------
// TransportServer
// ---------------------------------------------------------------------------

TransportServer::TransportServer(DatabaseServer* server,
                                 DisplayLockManager* dlm, NotificationBus* bus,
                                 RpcMeter* meter, TransportServerOptions opts)
    : server_(server), dlm_(dlm), bus_(bus), meter_(meter), opts_(opts) {
  // Mirror every transport/overload counter into the registry so STATS,
  // METRICS and the Prometheus endpoint see canonical aggregate series;
  // the per-instance accessors used by tests stay exact.
  MetricsRegistry& reg = GlobalMetrics();
  bytes_in_.BindGlobal(reg.GetCounter("transport.bytes_in"));
  bytes_out_.BindGlobal(reg.GetCounter("transport.bytes_out"));
  requests_.BindGlobal(reg.GetCounter("transport.requests"));
  notifies_.BindGlobal(reg.GetCounter("transport.notifications"));
  accepts_.BindGlobal(reg.GetCounter("transport.accepts"));
  fanout_encodes_.BindGlobal(reg.GetCounter("transport.fanout.encodes"));
  fanout_reuses_.BindGlobal(reg.GetCounter("transport.fanout.reuses"));
  overload_rejections_.BindGlobal(reg.GetCounter("overload.rejections"));
  oneway_shed_.BindGlobal(reg.GetCounter("overload.oneway_shed"));
  notify_coalesced_.BindGlobal(reg.GetCounter("overload.notify_coalesced"));
  notify_shed_.BindGlobal(reg.GetCounter("overload.notify_shed"));
  notify_overflows_.BindGlobal(reg.GetCounter("overload.notify_overflows"));
  forced_resyncs_.BindGlobal(reg.GetCounter("overload.forced_resyncs"));
  slow_disconnects_.BindGlobal(reg.GetCounter("overload.slow_disconnects"));
  callbacks_elided_.BindGlobal(reg.GetCounter("overload.callbacks_elided"));
  callback_timeouts_.BindGlobal(
      reg.GetCounter("overload.callback_ack_timeouts"));
  callback_overflows_.BindGlobal(
      reg.GetCounter("overload.callback_overflows"));
  inflight_gauge_ = ScopedGauge(&reg, "transport.inflight",
                                [this] { return double(inflight_.load()); });
  dispatch_lag_ = reg.GetHistogram("worker.dispatch_lag_us");
  // Pre-create the full canonical cache taxonomy. The server process has a
  // BufferPool but object/display caches live in clients; a scraper of a
  // pure server must still see every cache.* series (zero until an
  // in-process client binds and bumps them), so dashboards never 404.
  for (const char* name :
       {"cache.page.hits", "cache.page.misses", "cache.page.evictions",
        "cache.object.hits", "cache.object.misses",
        "cache.object.invalidations", "cache.object.evictions",
        "cache.display.hits", "cache.display.misses",
        "cache.display.rejections", "cache.display.evictions"}) {
    (void)reg.GetCounter(name);
  }
}

TransportServer::~TransportServer() { Stop(); }

Status TransportServer::Start() {
  // A peer closing mid-writev must surface as EPIPE on that socket, never
  // as a process-killing SIGPIPE on the loop thread that happened to be
  // writing (Conn's writev cannot pass MSG_NOSIGNAL).
  ::signal(SIGPIPE, SIG_IGN);
  IDBA_RETURN_NOT_OK(listener_.Listen(opts_.port, opts_.bind_host));
  int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores <= 0) cores = 1;
  resolved_io_threads_ =
      opts_.io_threads > 0 ? opts_.io_threads
                           : std::min(std::max(cores / 2, 1), 8);
  resolved_worker_threads_ = opts_.worker_threads > 0 ? opts_.worker_threads
                                                      : std::max(cores, 4);
  loops_.clear();
  for (int i = 0; i < resolved_io_threads_; ++i) {
    EventLoop::Options lopts;
    lopts.role = "io-loop-" + std::to_string(i);
    lopts.metric_prefix = "net.loop." + std::to_string(i);
    if (i == 0 && opts_.idle_timeout_ms > 0) {
      // One loop carries the idle scan; Conn::Kill is thread-safe, so a
      // single ticker covers connections on every loop.
      lopts.tick_interval_ms = std::min<int64_t>(
          std::max<int64_t>(opts_.idle_timeout_ms / 2, 50), 1000);
      lopts.on_tick = [this] { ScanIdle(); };
    }
    auto loop = std::make_unique<EventLoop>(lopts);
    Status st = loop->Start();
    if (!st.ok()) {
      for (auto& started : loops_) started->Stop();
      loops_.clear();
      listener_.Close();
      return st;
    }
    loops_.push_back(std::move(loop));
  }
  loop_conn_gauges_.clear();
  for (int i = 0; i < resolved_io_threads_; ++i) {
    EventLoop* loop = loops_[i].get();
    loop_conn_gauges_.emplace_back(
        &GlobalMetrics(), "net.loop." + std::to_string(i) + ".conns",
        [this, loop] {
          std::lock_guard<std::mutex> lock(conns_mu_);
          size_t n = 0;
          for (const auto& conn : conns_) {
            if (conn->loop == loop) ++n;
          }
          return static_cast<double>(n);
        });
  }
  {
    std::lock_guard<std::mutex> lock(runq_mu_);
    workers_stop_ = false;
  }
  for (int i = 0; i < resolved_worker_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TransportServer::Stop() {
  running_.store(false);
  loop_conn_gauges_.clear();  // before conns_/loops_ go away
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) Teardown(conn.get());
  for (auto& conn : conns) {
    if (conn->conn) conn->conn->Close();
  }
  // Stopping a loop drains its posted tasks, so every pending close path
  // (and its OnClosed -> Teardown) runs before the loop is destroyed.
  for (auto& loop : loops_) loop->Stop();
  {
    std::lock_guard<std::mutex> lock(runq_mu_);
    workers_stop_ = true;
  }
  runq_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(runq_mu_);
    runq_.clear();
  }
  loops_.clear();
}

void TransportServer::AcceptLoop() {
  obs::RegisterThisThread("acceptor");
  while (running_.load()) {
    Result<Socket> sock = listener_.Accept();
    if (!sock.ok()) {
      if (!running_.load()) return;
      // Transient accept failure (e.g. fd pressure); log rate-limited and
      // back off briefly.
      NoteAcceptError(sock.status());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    ReapFinished();
    auto conn = std::make_shared<Connection>(this);
    Connection* c = conn.get();
    c->loop = loops_[next_loop_.fetch_add(1) % loops_.size()].get();
    if (opts_.so_sndbuf > 0) {
      // Shrink the kernel send buffer so a stalled subscriber's
      // backpressure surfaces in our bounded queues instead of hiding in
      // kernel memory (ops/test knob).
      int sz = opts_.so_sndbuf;
      (void)::setsockopt(sock.value().fd(), SOL_SOCKET, SO_SNDBUF, &sz,
                         sizeof(sz));
    }
    Conn::Options copts;
    copts.write_watermark_bytes = opts_.write_watermark_bytes;
    copts.bytes_in = &bytes_in_;
    copts.bytes_out = &bytes_out_;
    c->conn = std::make_shared<Conn>(c->loop, std::move(sock.value()), c,
                                     copts);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    accepts_.Add();
    Status st = c->conn->Register();
    if (!st.ok()) {
      NoteAcceptError(st);
      Teardown(c);
      c->conn->Close();  // runs OnClosed on the loop -> finished
    }
  }
}

void TransportServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TransportServer::ScanIdle() {
  if (opts_.idle_timeout_ms <= 0) return;
  const int64_t cutoff = obs::NowUs() - opts_.idle_timeout_ms * 1000;
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (conn->conn && !conn->closing.load() &&
        conn->conn->last_read_us() < cutoff) {
      // A frame gap longer than the timeout reads as a half-open client;
      // the shutdown surfaces as EOF on its loop, which tears it down.
      conn->conn->Kill();
    }
  }
}

void TransportServer::NoteAcceptError(const Status& st) {
  bool log_now = true;
  uint64_t suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    if (opts_.slow_rpc_log_interval_ms > 0) {
      const int64_t now = obs::NowUs();
      if (now - last_accept_log_us_ < opts_.slow_rpc_log_interval_ms * 1000) {
        ++accept_err_suppressed_;
        log_now = false;
      } else {
        last_accept_log_us_ = now;
        suppressed = accept_err_suppressed_;
        accept_err_suppressed_ = 0;
      }
    }
  }
  if (!log_now) return;
  IDBA_LOG_FIELDS(LogLevel::kWarn, "transport", "accept failed",
                  {{"error", st.ToString()},
                   {"suppressed_since_last", std::to_string(suppressed)}});
}

void TransportServer::Teardown(Connection* conn) {
  bool expected = false;
  if (!conn->closing.compare_exchange_strong(expected, true)) {
    if (conn->conn) conn->conn->Kill();
    return;
  }
  if (conn->hello_done.load(std::memory_order_acquire)) {
    const ClientId cid = conn->client_id.load(std::memory_order_relaxed);
    // Stop notification routing first, then drop the callback registration
    // and release everything the client held (including aborting its
    // in-flight transactions, so a reconnecting client can retry safely).
    bus_->Unregister(static_cast<EndpointId>(cid));
    server_->DisconnectClient(cid);
    dlm_->ReleaseClient(cid);
    std::lock_guard<std::mutex> lock(conns_mu_);
    active_clients_.erase(cid);
  }
  conn->notify_inbox.Close();
  {
    // Admitted-but-never-executed requests die with the connection; return
    // their slots to the server-wide in-flight budget. (A request already
    // popped by a worker is not in this queue; the worker returns its slot
    // itself.)
    std::lock_guard<std::mutex> lock(conn->q_mu);
    if (!conn->requests.empty()) {
      inflight_.fetch_sub(conn->requests.size());
      conn->requests.clear();
    }
  }
  conn->cb_cv.notify_all();
  if (conn->conn) conn->conn->Kill();
}

// ---------------------------------------------------------------------------
// I/O-loop frame dispatch and the worker pool
// ---------------------------------------------------------------------------

void TransportServer::OnConnFrame(Connection* conn,
                                  const wire::FrameHeader& header,
                                  std::vector<uint8_t> payload) {
  if (conn->closing.load()) return;
  if (header.type == wire::FrameType::kRequest ||
      header.type == wire::FrameType::kOneWay) {
    // Admission control runs here, on the I/O loop: a saturated worker
    // pool must not grow queues without bound, and the rejection response
    // must not sit behind the very backlog that caused it.
    VTime client_now = 0;
    if (ShouldShed(conn, header, payload, &client_now)) {
      const uint64_t cid = conn->client_id.load(std::memory_order_relaxed);
      if (header.type == wire::FrameType::kRequest) {
        overload_rejections_.Add();
        obs::FlightRecord(obs::FlightType::kOverload, cid, 1);
        WriteOverloadedResponse(conn, header, client_now);
      } else {
        oneway_shed_.Add();  // no response channel; just count
        obs::FlightRecord(obs::FlightType::kOverload, cid, 2);
      }
      return;
    }
    obs::FlightRecord(obs::FlightType::kFrameIn,
                      conn->client_id.load(std::memory_order_relaxed),
                      static_cast<uint64_t>(header.type));
    inflight_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn->q_mu);
      conn->requests.push_back({header, std::move(payload), obs::NowUs()});
    }
    ScheduleWork(conn);
  } else if (header.type == wire::FrameType::kCallbackAck) {
    // Routed inline on the loop — never needs a worker, so a commit
    // blocked on this ack cannot deadlock a saturated pool.
    {
      std::lock_guard<std::mutex> lock(conn->cb_mu);
      conn->pending_acks.erase(header.seq);
    }
    conn->cb_cv.notify_all();
  } else if (header.type == wire::FrameType::kResyncAck) {
    // The client processed the RESYNC and cleared its cache: callbacks
    // go live again. Wake the flush in case a staleness event during the
    // ack round trip queued a follow-up resync.
    if (conn->resync_awaiting_ack.load() == header.seq) {
      conn->resync_awaiting_ack.store(0);
      conn->WakeNotify();
    }
  } else {
    // RESPONSE / NOTIFY / CALLBACK never flow client->server: protocol
    // violation, drop the connection.
    if (conn->conn) conn->conn->Kill();
  }
}

void TransportServer::ScheduleWork(Connection* conn) {
  bool expected = false;
  if (!conn->scheduled.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
    return;  // already queued or executing; that pass reschedules
  }
  obs::FlightRecord(obs::FlightType::kStrandSchedule,
                    conn->client_id.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(runq_mu_);
    runq_.push_back(conn->shared_from_this());
  }
  runq_cv_.notify_one();
}

void TransportServer::WorkerMain(int index) {
  obs::RegisterThisThread("worker-" + std::to_string(index));
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(runq_mu_);
      obs::SetThreadWorking(false);  // run-queue wait is idle, not stalled
      runq_cv_.wait(lock, [&] { return workers_stop_ || !runq_.empty(); });
      if (runq_.empty()) return;  // workers_stop_ and fully drained
      conn = std::move(runq_.front());
      runq_.pop_front();
    }
    obs::SetThreadWorking(true);
    obs::HealthEpochBump();
    // Execute exactly one request, then clear the strand flag and recheck:
    // per-client order is preserved (no second worker can run this
    // connection until the flag clears), and no connection can monopolize
    // a worker while others wait.
    Connection::QueuedRequest item;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(conn->q_mu);
      if (!conn->requests.empty()) {
        item = std::move(conn->requests.front());
        conn->requests.pop_front();
        have = true;
      }
    }
    if (have) {
      const int64_t lag_us =
          std::max<int64_t>(obs::NowUs() - item.enqueued_us, 0);
      dispatch_lag_->Record(static_cast<double>(lag_us));
      obs::FlightRecord(obs::FlightType::kStrandRun,
                        conn->client_id.load(std::memory_order_relaxed),
                        static_cast<uint64_t>(lag_us));
      if (!conn->closing.load()) {
        HandleFrame(conn.get(), item.header, item.payload, item.enqueued_us);
      }
      inflight_.fetch_sub(1);
    }
    conn->scheduled.store(false, std::memory_order_release);
    bool more = false;
    {
      std::lock_guard<std::mutex> lock(conn->q_mu);
      more = !conn->requests.empty();
    }
    if (more) ScheduleWork(conn.get());
  }
}

namespace {

/// True for methods that start new work the server has not yet agreed to:
/// session entry, transaction begin, reads outside any transaction, lock
/// acquisition, DDL. Only these are shed by the server-wide in-flight cap.
/// Everything else either completes or releases already-admitted work
/// (Commit/Abort finish a transaction admitted at Begin; Fetch/Put/etc.
/// run inside one; unlocks and eviction notices free resources) — shedding
/// those would pin locks and transaction state on an overloaded server,
/// the opposite of shedding load.
bool IsWorkStarting(uint8_t method_raw) {
  switch (static_cast<wire::Method>(method_raw)) {
    case wire::Method::kHello:
    case wire::Method::kBegin:
    case wire::Method::kFetchCurrent:
    case wire::Method::kScanClass:
    case wire::Method::kQuery:
    case wire::Method::kAllocateOid:
    case wire::Method::kGetVersion:
    case wire::Method::kDefineClass:
    case wire::Method::kAddAttribute:
    case wire::Method::kDlmLock:
    case wire::Method::kDlmLockBatch:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool TransportServer::ShouldShed(Connection* conn,
                                 const wire::FrameHeader& header,
                                 const std::vector<uint8_t>& payload,
                                 VTime* client_now) {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(conn->q_mu);
    depth = conn->requests.size();
  }
  const bool queue_full =
      opts_.max_request_queue > 0 && depth >= opts_.max_request_queue;
  const bool inflight_full =
      opts_.max_inflight > 0 && inflight_.load() >= opts_.max_inflight;
  if (!queue_full && !inflight_full) return false;
  // Peek at the method (skipping a traced frame's TraceInfo prefix):
  // introspection calls stay admitted — an operator must be able to see an
  // overloaded server — and the client's clock stamp rides back in the
  // rejection so virtual time stays monotonic at the caller.
  Decoder dec(payload.data(), payload.size());
  wire::TraceInfo trace;
  if (header.traced) {
    if (!wire::DecodeTraceInfo(&dec, &trace).ok()) return true;
  }
  uint8_t method_raw = 0;
  if (!dec.GetU8(&method_raw).ok()) return true;
  (void)dec.GetI64(client_now);
  if (method_raw == static_cast<uint8_t>(wire::Method::kStats) ||
      method_raw == static_cast<uint8_t>(wire::Method::kTraceDump) ||
      method_raw == static_cast<uint8_t>(wire::Method::kMetrics) ||
      method_raw == static_cast<uint8_t>(wire::Method::kLocks) ||
      method_raw == static_cast<uint8_t>(wire::Method::kCaches) ||
      method_raw == static_cast<uint8_t>(wire::Method::kFlight) ||
      method_raw == static_cast<uint8_t>(wire::Method::kProfile) ||
      method_raw == static_cast<uint8_t>(wire::Method::kAudit)) {
    return false;
  }
  // The per-connection queue bound is a hard memory limit: a pipelining
  // client that outruns its worker is shed regardless of method. The
  // server-wide in-flight cap is load shedding: it turns away new work
  // only, never the completion of work already admitted.
  const bool shed = queue_full || IsWorkStarting(method_raw);
  if (shed && trace.trace_id != 0) {
    // The rejection joins the caller's trace so an operator sees *why* an
    // RPC came back Overloaded, not just that it did.
    obs::Span reject = obs::Span::StartChildOf(
        {trace.trace_id, trace.span_id}, "server.overload_reject");
    reject.Note(queue_full ? "request queue full" : "inflight cap");
  }
  return shed;
}

void TransportServer::WriteOverloadedResponse(Connection* conn,
                                              const wire::FrameHeader& header,
                                              VTime client_now) {
  // Untraced even for traced requests (the client keys its TraceInfo
  // decode off the *response* frame's traced bit): status | completion
  // vtime | retry-after hint (varint ms). The hint is the one piece of
  // Overloaded-specific body; v1 clients stop at the status and simply
  // fail the call, which is still safe (Overloaded maps to a non-OK code).
  std::vector<uint8_t> resp;
  Encoder enc(&resp);
  wire::EncodeStatus(
      Status::Overloaded("server overloaded; retry in ~" +
                         std::to_string(opts_.overload_retry_after_ms) +
                         " ms"),
      &enc);
  enc.PutI64(client_now);
  enc.PutVarint(static_cast<uint64_t>(
      std::max<int64_t>(opts_.overload_retry_after_ms, 0)));
  if (conn->conn) {
    (void)conn->conn->EnqueueWireFrame(wire::FrameType::kResponse, header.seq,
                                       resp);
  }
}

InboxOptions TransportServer::NotifyInboxOptions(Connection* conn) {
  InboxOptions in;
  in.max_pending = opts_.max_notify_queue;
  in.coalesce_watermark = opts_.notify_coalesce_watermark;
  // kCoalesce never escalates: full + non-coalescible drops the oldest.
  in.drop_oldest_on_full =
      opts_.slow_subscriber_policy == SlowSubscriberPolicy::kCoalesce;
  in.coalesced_metric = &notify_coalesced_;
  in.shed_metric = &notify_shed_;
  in.overflow_metric = &notify_overflows_;
  // The flush that forwards this inbox is a loop task, not a thread blocked
  // in WaitNext — every delivery posts one (deduplicated) flush.
  in.wakeup_hook = [conn] { conn->WakeNotify(); };
  // Runs on the *delivering* thread (a committing writer's worker, outside
  // the inbox lock). It must never take connection-table locks or join
  // threads: marking stale is a pair of atomic stores, and the disconnect
  // escalation only shuts the socket down — the I/O loop then observes the
  // EOF and runs the full Teardown.
  in.overflow_hook = [this, conn](uint64_t overflow_count) {
    conn->stale.store(true);
    if (opts_.slow_subscriber_policy == SlowSubscriberPolicy::kDisconnect &&
        overflow_count >=
            static_cast<uint64_t>(
                std::max(opts_.slow_subscriber_disconnect_after, 1))) {
      slow_disconnects_.Add();
      if (conn->conn) conn->conn->Kill();
    }
  };
  return in;
}

void TransportServer::FlushNotifies(Connection* conn) {
  // Clear the dedup flag first: a delivery racing this flush posts a new
  // task rather than being lost.
  conn->notify_flush_pending.store(false, std::memory_order_release);
  if (conn->closing.load()) return;
  Conn* c = conn->conn.get();
  if (c == nullptr || c->closed()) return;
  const uint8_t peer_version =
      conn->peer_version.load(std::memory_order_relaxed);

  // Lane 1: invalidation callbacks queued by committing writers. Queued
  // here so a writer never blocks on this client's (possibly stalled)
  // socket; the writer is meanwhile waiting on cb_cv for the ack. Always
  // flushed (never gated on backpressure): the lane is small and bounded,
  // and a blocked writer must not wait behind a notify backlog.
  std::deque<Connection::PendingCallbackFrame> cbs;
  {
    std::lock_guard<std::mutex> lock(conn->cb_mu);
    cbs.swap(conn->callback_queue);
  }
  for (const Connection::PendingCallbackFrame& cb : cbs) {
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    const bool traced =
        cb.trace_id != 0 && peer_version >= wire::kWireVersion;
    if (traced) {
      wire::TraceInfo trace;
      trace.trace_id = cb.trace_id;
      trace.span_id = cb.trace_span;
      wire::EncodeTraceInfo(trace, &enc);
    }
    enc.PutU64(cb.oid);
    enc.PutU64(cb.version);
    (void)c->EnqueueWireFrame(wire::FrameType::kCallback, cb.seq, payload,
                              traced);
  }

  // Lane 2: a forced resync owed to this client (notify overflow, callback
  // timeout, or callback-lane overflow).
  if (conn->notify_inbox.TakeOverflow()) {
    obs::FlightRecord(obs::FlightType::kOverload,
                      conn->client_id.load(std::memory_order_relaxed), 3);
    conn->stale.store(true);
  }
  if (conn->stale.load() && conn->resync_awaiting_ack.load() == 0) {
    if (peer_version < wire::kWireVersion) {
      // A v1 peer cannot decode the RESYNC kind, so the only escalation
      // left for a slow v1 subscriber is to drop it.
      slow_disconnects_.Add();
      c->Kill();
      return;
    }
    ResyncNotifyMessage msg;
    msg.resync_vtime = server_->cpu_clock().Now();
    msg.dropped = conn->notify_inbox.shed() - conn->shed_reported;
    wire::NotifyFrame frame;
    frame.from = 0;  // the server itself, not a committing peer
    frame.to = conn->client_id.load(std::memory_order_relaxed);
    frame.sent_at = msg.resync_vtime;
    frame.arrives_at = msg.resync_vtime;
    frame.kind = wire::NotifyKind::kResync;
    frame.virtual_wire_bytes = msg.WireBytes();
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    wire::EncodeNotifyMeta(frame, &enc);
    msg.EncodeTo(&enc);
    const uint64_t resync_seq = conn->notify_seq++;
    // Mark the ack outstanding *before* the frame is queued: once it is on
    // the wire the ack can race in on this same loop thread's next batch.
    conn->resync_awaiting_ack.store(resync_seq);
    conn->stale.store(false);
    (void)c->EnqueueWireFrame(wire::FrameType::kNotify, resync_seq, payload);
    conn->shed_reported = conn->notify_inbox.shed();
    forced_resyncs_.Add();
    conn->forced_resyncs.fetch_add(1);
    obs::FlightRecord(obs::FlightType::kResync, frame.to, msg.dropped);
    // The loop thread has no ambient trace; record the escalation as its
    // own (sampled) root so forced resyncs show up in trace dumps.
    obs::Span escalate = obs::Span::StartRoot("server.forced_resync");
    escalate.Note("client " + std::to_string(frame.to) + ", dropped " +
                  std::to_string(msg.dropped));
    // The client owes a RESYNC_ACK; until it arrives the connection keeps
    // eliding invalidation callbacks (the client is still inconsistent)
    // and a stalled subscriber costs committing writers nothing.
  }

  // Lane 3: the notify inbox, gated on write-queue backpressure. While the
  // socket's outbound queue sits above the watermark the backlog stays in
  // the *bounded* inbox — where coalescing and the overload ladder apply —
  // instead of ballooning the write queue; OnWriteDrained resumes this
  // drain when the queue empties.
  while (!c->write_backlogged()) {
    std::optional<Envelope> env = conn->notify_inbox.Poll();
    if (!env) break;
    uint8_t kind_raw = 0;
    bool encoded_now = false;
    SharedBuf body = env->msg
                         ? env->msg->SharedWireBody(&kind_raw, &encoded_now)
                         : SharedBuf();
    if (!body) continue;  // message kind with no wire form; none flow today
    wire::NotifyFrame frame;
    frame.from = env->from;
    frame.to = env->to;
    frame.sent_at = env->sent_at;
    frame.arrives_at = env->arrives_at;
    frame.virtual_wire_bytes = env->wire_bytes;
    frame.kind = static_cast<wire::NotifyKind>(kind_raw);
    // The head is per-connection (trace bit and context differ per peer);
    // the body is the SharedBuf every subscriber of this message shares —
    // serialized once, stitched to each head by writev.
    std::vector<uint8_t> meta;
    Encoder enc(&meta);
    const bool traced =
        env->trace_id != 0 && peer_version >= wire::kWireVersion;
    if (traced) {
      wire::TraceInfo trace;
      trace.trace_id = env->trace_id;
      trace.span_id = env->trace_span;
      wire::EncodeTraceInfo(trace, &enc);
    }
    wire::EncodeNotifyMeta(frame, &enc);
    if (encoded_now) {
      fanout_encodes_.Add();
    } else {
      fanout_reuses_.Add();
    }
    (void)c->EnqueueWireFrame(wire::FrameType::kNotify, conn->notify_seq++,
                              meta, body, traced);
    notifies_.Add();
  }
}

void TransportServer::HandleFrame(Connection* conn,
                                  const wire::FrameHeader& header,
                                  const std::vector<uint8_t>& payload,
                                  int64_t enqueued_us) {
  Decoder dec(payload.data(), payload.size());

  // Traced frame (wire v2): the payload opens with the client's context.
  wire::TraceInfo req_trace;
  if (header.traced) {
    if (!wire::DecodeTraceInfo(&dec, &req_trace).ok()) {
      req_trace = wire::TraceInfo{};
    }
  }
  const obs::TraceContext rpc_ctx{req_trace.trace_id, req_trace.span_id};
  const int64_t dequeued_us = obs::NowUs();
  const uint32_t queue_us =
      static_cast<uint32_t>(std::max<int64_t>(dequeued_us - enqueued_us, 0));
  if (rpc_ctx.valid()) {
    // The queue wait already happened; record it as an explicit span.
    obs::SpanRecord wait;
    wait.trace_id = rpc_ctx.trace_id;
    wait.span_id = obs::NewSpanId();
    wait.parent_id = rpc_ctx.span_id;
    wait.start_us = enqueued_us;
    wait.dur_us = dequeued_us - enqueued_us;
    wait.tid = ThisThreadId();
    wait.name = "server.queue";
    obs::GlobalRecorder().Record(std::move(wait));
  }
  // Adopt the client's context for the execution, so every span opened
  // inside the server stack (locks, storage, commit, callback fan-out,
  // DLM notify) becomes part of the client's trace.
  obs::ScopedContext adopt(rpc_ctx);

  uint8_t method_raw = 0;
  VTime client_now = 0;
  Status st = dec.GetU8(&method_raw);
  if (st.ok()) st = dec.GetI64(&client_now);
  Status result;
  std::vector<uint8_t> body;
  Encoder body_enc(&body);
  ServerCallInfo info;
  bool metered = false;
  wire::Method method = wire::Method::kPing;
  if (!st.ok()) {
    result = st;
  } else if (method_raw < static_cast<uint8_t>(wire::Method::kHello) ||
             method_raw > static_cast<uint8_t>(wire::Method::kAudit)) {
    result = Status::Corruption("unknown method " + std::to_string(method_raw));
  } else {
    requests_.Add();
    method = static_cast<wire::Method>(method_raw);
    // Traced request: join the client's trace. Untraced request: start a
    // server-local root (subject to this process's sampling), so a server
    // run with --trace yields traces even from v1 / untraced clients.
    obs::Span exec = rpc_ctx.valid()
                         ? obs::Span::StartChildOf(rpc_ctx, "server.execute")
                         : obs::Span::StartRoot("server.execute");
    exec.Note(std::string(wire::MethodName(method)));
    result = ExecuteMethod(conn, method, &dec, client_now,
                           static_cast<int64_t>(wire::kHeaderBytes +
                                                payload.size()),
                           &info, &body_enc, &metered);
  }
  const uint32_t exec_us = static_cast<uint32_t>(
      std::max<int64_t>(obs::NowUs() - dequeued_us, 0));

  if (st.ok() && method_raw >= static_cast<uint8_t>(wire::Method::kHello) &&
      method_raw <= static_cast<uint8_t>(wire::Method::kAudit)) {
    // Server-side per-opcode decomposition (the client records its own
    // rpc.* series; a server scraped over --prom-port needs its own view).
    obs::RpcPartHistograms& rh = obs::GlobalRpcStats().HandleFor(
        method_raw, wire::MethodName(method).data());
    rh.queue_us->Record(static_cast<double>(queue_us));
    rh.execute_us->Record(static_cast<double>(exec_us));
    rh.total_us->Record(static_cast<double>(queue_us) + exec_us);
  }

  if (opts_.slow_rpc_threshold_ms > 0 && st.ok() &&
      queue_us + exec_us >
          static_cast<uint64_t>(opts_.slow_rpc_threshold_ms) * 1000) {
    NoteSlowRpc(method, conn->client_id.load(std::memory_order_relaxed),
                static_cast<int64_t>(queue_us) + exec_us, req_trace.trace_id);
  }

  if (header.type == wire::FrameType::kOneWay) return;

  // The response payload is status | completion vtime | body. The virtual
  // completion time depends on the measured response size, so encode the
  // status first, size everything, then charge the meter.
  std::vector<uint8_t> head;
  Encoder head_enc(&head);
  wire::EncodeStatus(result, &head_enc);

  VTime completion = client_now;
  if (metered) {
    int64_t request_bytes =
        static_cast<int64_t>(wire::kHeaderBytes + payload.size());
    int64_t response_bytes = static_cast<int64_t>(
        wire::kHeaderBytes + head.size() + sizeof(int64_t) + body.size());
    completion =
        meter_->ChargeRoundTrip(client_now, &server_->cpu_clock(),
                                request_bytes, response_bytes,
                                info.page_misses, info.callbacks);
  }

  std::vector<uint8_t> resp;
  Encoder enc(&resp);
  if (header.traced) {
    // Echo the request's context and report the server-side time split so
    // the client can decompose its measured round-trip (and synthesize
    // queue/execute child spans) without reading this server's recorder.
    wire::TraceInfo resp_trace = req_trace;
    resp_trace.queue_us = queue_us;
    resp_trace.exec_us = exec_us;
    wire::EncodeTraceInfo(resp_trace, &enc);
  }
  resp.insert(resp.end(), head.begin(), head.end());
  enc.PutI64(completion);
  resp.insert(resp.end(), body.begin(), body.end());
  if (conn->conn) {
    obs::FlightRecord(
        obs::FlightType::kFrameOut,
        conn->client_id.load(std::memory_order_relaxed),
        static_cast<uint64_t>(wire::FrameType::kResponse));
    (void)conn->conn->EnqueueWireFrame(wire::FrameType::kResponse, header.seq,
                                       resp, header.traced);
  }
}

Status TransportServer::ExecuteMethod(Connection* conn, wire::Method method,
                                      Decoder* dec, VTime client_now,
                                      int64_t request_bytes,
                                      ServerCallInfo* info, Encoder* body,
                                      bool* metered) {
  using wire::Method;
  if (!conn->hello_done.load(std::memory_order_acquire) &&
      method != Method::kHello && method != Method::kPing &&
      method != Method::kStats && method != Method::kTraceDump &&
      method != Method::kMetrics && method != Method::kLocks &&
      method != Method::kCaches && method != Method::kFlight &&
      method != Method::kProfile && method != Method::kAudit) {
    return Status::InvalidArgument("Hello handshake required before " +
                                   std::string(wire::MethodName(method)));
  }
  const ClientId cid = conn->client_id.load(std::memory_order_relaxed);
  // Metered calls push the request's arrival into the server clock before
  // the call executes (mirrors DatabaseClient::PreObserve), so commit hooks
  // observe a causally correct virtual time.
  auto observe = [&] {
    *metered = true;
    meter_->ObserveRequest(client_now, &server_->cpu_clock(), request_bytes);
  };

  switch (method) {
    case Method::kHello: {
      uint64_t id = 0;
      uint8_t consistency = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&id));
      IDBA_RETURN_NOT_OK(dec->GetU8(&consistency));
      // Wire v2 clients append their protocol version; v1 clients end the
      // body here, which reads as v1 (trailing bytes were always ignored,
      // so this is back-compatible in both directions).
      if (dec->remaining() > 0) {
        uint8_t version = 1;
        IDBA_RETURN_NOT_OK(dec->GetU8(&version));
        conn->peer_version.store(version, std::memory_order_relaxed);
      }
      if (conn->hello_done.load(std::memory_order_acquire)) {
        return Status::InvalidArgument("duplicate Hello");
      }
      if (id == 0) {
        return Status::InvalidArgument("client id must be nonzero");
      }
      if (consistency > static_cast<uint8_t>(ConsistencyMode::kDetection)) {
        return Status::InvalidArgument("unknown consistency mode");
      }
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (!active_clients_.insert(id).second) {
          return Status::AlreadyExists("client " + std::to_string(id) +
                                       " already connected");
        }
      }
      conn->client_id.store(id, std::memory_order_relaxed);
      conn->hello_done.store(true, std::memory_order_release);
      server_->ConnectClient(id, conn);
      bus_->Register(static_cast<EndpointId>(id), &conn->notify_inbox);
      {
        std::lock_guard<std::mutex> lock(ddl_mu_);
        server_->schema().EncodeTo(body);
      }
      // Announce our protocol version (trailing byte, ignored by v1).
      body->PutU8(wire::kWireVersion);
      return Status::OK();
    }
    case Method::kPing:
      return Status::OK();
    case Method::kStats: {
      uint8_t format = 0;
      if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU8(&format));
      body->PutString(format == 1 ? StatsText() : StatsJson());
      return Status::OK();
    }
    case Method::kTraceDump: {
      uint8_t format = 0, clear = 0;
      if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU8(&format));
      if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU8(&clear));
      obs::TraceRecorder& rec = obs::GlobalRecorder();
      body->PutString(format == 1 ? rec.DumpJsonl() : rec.DumpChromeTrace());
      if (clear != 0) rec.Clear();
      return Status::OK();
    }
    case Method::kMetrics: {
      uint8_t format = 0;
      if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU8(&format));
      if (format == 1) {
        body->PutString(GlobalMetrics().DumpJson());
      } else if (format == 2) {
        body->PutString(obs::GlobalTimeSeries().DumpJson());
      } else {
        body->PutString(obs::PromExport(GlobalMetrics()));
      }
      return Status::OK();
    }
    case Method::kLocks: {
      uint8_t top_k = 0;
      if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU8(&top_k));
      body->PutString(LocksJson(top_k == 0 ? 10 : top_k));
      return Status::OK();
    }
    case Method::kCaches: {
      body->PutString(CachesJson());
      return Status::OK();
    }
    case Method::kFlight: {
      body->PutString(obs::FlightDumpString());
      return Status::OK();
    }
    case Method::kAudit: {
      body->PutString(obs::GlobalAuditor().ReportJson());
      return Status::OK();
    }
    case Method::kProfile: {
      uint8_t action = 0;
      if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU8(&action));
      obs::Profiler& prof = obs::GlobalProfiler();
      switch (action) {
        case 1: {  // start
          uint32_t hz = 0;
          if (dec->remaining() > 0) IDBA_RETURN_NOT_OK(dec->GetU32(&hz));
          if (hz == 0) hz = 99;
          if (!prof.Start(static_cast<int>(hz))) {
            return Status::InvalidArgument("profiler already running");
          }
          body->PutString(prof.StatusLine());
          return Status::OK();
        }
        case 2:  // stop
          prof.Stop();
          body->PutString(prof.StatusLine());
          return Status::OK();
        case 3:  // dump folded stacks
          body->PutString(prof.DumpFolded());
          return Status::OK();
        default:  // status
          body->PutString(prof.StatusLine());
          return Status::OK();
      }
    }
    case Method::kBegin: {
      body->PutU64(server_->Begin(cid));
      return Status::OK();
    }
    case Method::kCommit: {
      uint64_t txn = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      observe();
      Result<CommitResult> result = server_->Commit(cid, txn, info);
      IDBA_RETURN_NOT_OK(result.status());
      wire::EncodeCommitResult(result.value(), body);
      return Status::OK();
    }
    case Method::kCommitValidated: {
      uint64_t txn = 0;
      std::vector<std::pair<Oid, uint64_t>> read_set;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      IDBA_RETURN_NOT_OK(wire::DecodeReadSet(dec, &read_set));
      observe();
      Result<CommitResult> result =
          server_->CommitValidated(cid, txn, read_set, info);
      IDBA_RETURN_NOT_OK(result.status());
      wire::EncodeCommitResult(result.value(), body);
      return Status::OK();
    }
    case Method::kAbort: {
      uint64_t txn = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      observe();
      return server_->Abort(cid, txn, info);
    }
    case Method::kFetch: {
      uint64_t txn = 0, oid = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      observe();
      Result<DatabaseObject> obj = server_->Fetch(cid, txn, Oid(oid), info);
      IDBA_RETURN_NOT_OK(obj.status());
      obj.value().EncodeTo(body);
      return Status::OK();
    }
    case Method::kFetchCurrent: {
      uint64_t oid = 0;
      uint8_t register_copy = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      IDBA_RETURN_NOT_OK(dec->GetU8(&register_copy));
      observe();
      Result<DatabaseObject> obj =
          server_->FetchCurrent(cid, Oid(oid), info, register_copy != 0);
      IDBA_RETURN_NOT_OK(obj.status());
      obj.value().EncodeTo(body);
      return Status::OK();
    }
    case Method::kLockForRead: {
      uint64_t txn = 0, oid = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      observe();
      return server_->LockForRead(cid, txn, Oid(oid), info);
    }
    case Method::kPut:
    case Method::kInsert: {
      uint64_t txn = 0;
      DatabaseObject obj;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      IDBA_RETURN_NOT_OK(DatabaseObject::DecodeFrom(dec, &obj));
      observe();
      return method == Method::kPut
                 ? server_->Put(cid, txn, std::move(obj), info)
                 : server_->Insert(cid, txn, std::move(obj), info);
    }
    case Method::kErase: {
      uint64_t txn = 0, oid = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&txn));
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      observe();
      return server_->Erase(cid, txn, Oid(oid), info);
    }
    case Method::kScanClass: {
      uint32_t cls = 0;
      uint8_t include_subclasses = 0;
      IDBA_RETURN_NOT_OK(dec->GetU32(&cls));
      IDBA_RETURN_NOT_OK(dec->GetU8(&include_subclasses));
      observe();
      Result<std::vector<DatabaseObject>> objs =
          server_->ScanClass(cid, cls, include_subclasses != 0, info);
      IDBA_RETURN_NOT_OK(objs.status());
      wire::EncodeObjectVector(objs.value(), body);
      return Status::OK();
    }
    case Method::kQuery: {
      ObjectQuery query;
      IDBA_RETURN_NOT_OK(ObjectQuery::DecodeFrom(dec, &query));
      observe();
      Result<std::vector<DatabaseObject>> objs =
          server_->ExecuteQuery(cid, query, info);
      IDBA_RETURN_NOT_OK(objs.status());
      wire::EncodeObjectVector(objs.value(), body);
      return Status::OK();
    }
    case Method::kAllocateOid: {
      body->PutU64(server_->AllocateOid().value);
      return Status::OK();
    }
    case Method::kGetVersion: {
      uint64_t oid = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      Result<DatabaseObject> obj = server_->heap().Read(Oid(oid));
      IDBA_RETURN_NOT_OK(obj.status());
      body->PutU64(obj.value().version());
      return Status::OK();
    }
    case Method::kDefineClass: {
      std::string name;
      uint32_t base = 0;
      IDBA_RETURN_NOT_OK(dec->GetString(&name));
      IDBA_RETURN_NOT_OK(dec->GetU32(&base));
      std::lock_guard<std::mutex> lock(ddl_mu_);
      Result<ClassId> cls = server_->schema().DefineClass(name, base);
      IDBA_RETURN_NOT_OK(cls.status());
      body->PutU32(cls.value());
      return Status::OK();
    }
    case Method::kAddAttribute: {
      uint32_t cls = 0;
      std::string name;
      uint8_t type = 0;
      Value default_value;
      IDBA_RETURN_NOT_OK(dec->GetU32(&cls));
      IDBA_RETURN_NOT_OK(dec->GetString(&name));
      IDBA_RETURN_NOT_OK(dec->GetU8(&type));
      IDBA_RETURN_NOT_OK(Value::DecodeFrom(dec, &default_value));
      if (type > static_cast<uint8_t>(ValueType::kOidList)) {
        return Status::Corruption("unknown value type " + std::to_string(type));
      }
      std::lock_guard<std::mutex> lock(ddl_mu_);
      return server_->schema().AddAttribute(cls, name,
                                            static_cast<ValueType>(type),
                                            std::move(default_value));
    }
    case Method::kNoteEvicted: {
      uint64_t oid = 0;
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      server_->NoteEvicted(cid, Oid(oid));
      return Status::OK();
    }
    case Method::kDlmLock:
    case Method::kDlmUnlock: {
      // sent_at travels explicitly: the DLC stamps it from the client clock
      // when the (virtually unacknowledged) request leaves.
      VTime sent_at = 0;
      uint64_t holder = 0, oid = 0;
      IDBA_RETURN_NOT_OK(dec->GetI64(&sent_at));
      IDBA_RETURN_NOT_OK(dec->GetU64(&holder));
      IDBA_RETURN_NOT_OK(dec->GetU64(&oid));
      return method == Method::kDlmLock
                 ? dlm_->Lock(holder, Oid(oid), sent_at)
                 : dlm_->Unlock(holder, Oid(oid), sent_at);
    }
    case Method::kDlmLockBatch:
    case Method::kDlmUnlockBatch: {
      VTime sent_at = 0;
      uint64_t holder = 0;
      std::vector<Oid> oids;
      IDBA_RETURN_NOT_OK(dec->GetI64(&sent_at));
      IDBA_RETURN_NOT_OK(dec->GetU64(&holder));
      IDBA_RETURN_NOT_OK(wire::DecodeOidVector(dec, &oids));
      return method == Method::kDlmLockBatch
                 ? dlm_->LockBatch(holder, oids, sent_at)
                 : dlm_->UnlockBatch(holder, oids, sent_at);
    }
    case Method::kDlmReregister: {
      // Recovery traffic, not workload: a reconnecting client replaying the
      // display locks it already held before the server restarted. sent_at
      // travels for wire uniformity with the other DLM methods but is not
      // charged against the virtual clock.
      VTime sent_at = 0;
      uint64_t holder = 0;
      std::vector<Oid> oids;
      IDBA_RETURN_NOT_OK(dec->GetI64(&sent_at));
      IDBA_RETURN_NOT_OK(dec->GetU64(&holder));
      IDBA_RETURN_NOT_OK(wire::DecodeOidVector(dec, &oids));
      return dlm_->Reregister(holder, oids);
    }
  }
  return Status::Corruption("unhandled method");
}

void TransportServer::NoteSlowRpc(wire::Method method, ClientId client,
                                  int64_t duration_us, uint64_t trace_id) {
  SlowRpc slow;
  slow.method = std::string(wire::MethodName(method));
  slow.client = client;
  slow.duration_us = duration_us;
  slow.trace_id = trace_id;
  // The ring records every slow RPC; the WARN line is rate limited so a
  // storm of them (the very condition that makes RPCs slow) cannot drown
  // the log. Suppressed events are summed onto the next emitted line.
  bool log_now = true;
  uint64_t suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_rpcs_.push_back(slow);
    while (slow_rpcs_.size() > kSlowRpcRing) slow_rpcs_.pop_front();
    if (opts_.slow_rpc_log_interval_ms > 0) {
      const int64_t now = obs::NowUs();
      if (now - last_slow_log_us_ < opts_.slow_rpc_log_interval_ms * 1000) {
        ++slow_suppressed_;
        log_now = false;
      } else {
        last_slow_log_us_ = now;
        suppressed = slow_suppressed_;
        slow_suppressed_ = 0;
      }
    }
  }
  if (!log_now) return;
  char trace_hex[24];
  std::snprintf(trace_hex, sizeof(trace_hex), "%llx",
                static_cast<unsigned long long>(trace_id));
  IDBA_LOG_FIELDS(LogLevel::kWarn, "transport", "slow rpc",
                  {{"method", slow.method},
                   {"client", std::to_string(client)},
                   {"duration_us", std::to_string(duration_us)},
                   {"trace_id", trace_hex},
                   {"suppressed_since_last", std::to_string(suppressed)}});
}

std::vector<TransportServer::SlowRpc> TransportServer::SlowRpcLog() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_rpcs_.begin(), slow_rpcs_.end()};
}

namespace {

struct SessionRow {
  ClientId client;
  uint8_t wire_version;
  size_t notify_pending;
  uint64_t notify_coalesced;
  uint64_t notify_shed;
  uint64_t notify_overflows;
  uint64_t forced_resyncs;
  size_t callbacks_pending;
  bool stale;
};

void AppendSlowRpcJson(std::string& out,
                       const std::vector<TransportServer::SlowRpc>& slow) {
  out += "\"slow_rpcs\":[";
  bool first = true;
  for (const auto& s : slow) {
    if (!first) out += ',';
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"method\":\"%s\",\"client\":%llu,\"duration_us\":%lld,"
                  "\"trace_id\":\"%llx\"}",
                  s.method.c_str(), static_cast<unsigned long long>(s.client),
                  static_cast<long long>(s.duration_us),
                  static_cast<unsigned long long>(s.trace_id));
    out += buf;
  }
  out += ']';
}

}  // namespace

std::string TransportServer::StatsJson() const {
  std::vector<SessionRow> sessions;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (!conn->hello_done.load(std::memory_order_acquire)) continue;
      size_t callbacks_pending = 0;
      {
        std::lock_guard<std::mutex> cb_lock(conn->cb_mu);
        callbacks_pending = conn->pending_acks.size();
      }
      sessions.push_back(
          {conn->client_id.load(std::memory_order_relaxed),
           conn->peer_version.load(std::memory_order_relaxed),
           conn->notify_inbox.pending(), conn->notify_inbox.coalesced(),
           conn->notify_inbox.shed(), conn->notify_inbox.overflows(),
           conn->forced_resyncs.load(), callbacks_pending,
           conn->stale.load() || conn->resync_awaiting_ack.load() != 0});
    }
  }
  std::string out = "{\"transport\":{";
  out += "\"connections_accepted\":" + std::to_string(accepts_.Get());
  out += ",\"requests_served\":" + std::to_string(requests_.Get());
  out += ",\"notifications_forwarded\":" + std::to_string(notifies_.Get());
  out += ",\"bytes_in\":" + std::to_string(bytes_in_.Get());
  out += ",\"bytes_out\":" + std::to_string(bytes_out_.Get());
  out += ",\"io_threads\":" + std::to_string(resolved_io_threads_);
  out += ",\"worker_threads\":" + std::to_string(resolved_worker_threads_);
  out += ",\"fanout_encodes\":" + std::to_string(fanout_encodes_.Get());
  out += ",\"fanout_reuses\":" + std::to_string(fanout_reuses_.Get());
  out += "},\"overload\":{";
  out += "\"inflight\":" + std::to_string(inflight_.load());
  out += ",\"overload_rejections\":" +
         std::to_string(overload_rejections_.Get());
  out += ",\"oneway_shed\":" + std::to_string(oneway_shed_.Get());
  out += ",\"notifications_coalesced\":" +
         std::to_string(notify_coalesced_.Get());
  out += ",\"notifications_shed\":" + std::to_string(notify_shed_.Get());
  out += ",\"notify_overflows\":" + std::to_string(notify_overflows_.Get());
  out += ",\"forced_resyncs\":" + std::to_string(forced_resyncs_.Get());
  out += ",\"slow_disconnects\":" + std::to_string(slow_disconnects_.Get());
  out += ",\"callbacks_elided\":" + std::to_string(callbacks_elided_.Get());
  out += ",\"callback_ack_timeouts\":" +
         std::to_string(callback_timeouts_.Get());
  out += ",\"callback_overflows\":" +
         std::to_string(callback_overflows_.Get());
  out += "},\"sessions\":[";
  bool first = true;
  for (const SessionRow& s : sessions) {
    if (!first) out += ',';
    first = false;
    out += "{\"client\":" + std::to_string(s.client) +
           ",\"wire_version\":" + std::to_string(s.wire_version) +
           ",\"notify_pending\":" + std::to_string(s.notify_pending) +
           ",\"notify_coalesced\":" + std::to_string(s.notify_coalesced) +
           ",\"notify_shed\":" + std::to_string(s.notify_shed) +
           ",\"notify_overflows\":" + std::to_string(s.notify_overflows) +
           ",\"forced_resyncs\":" + std::to_string(s.forced_resyncs) +
           ",\"callbacks_pending\":" + std::to_string(s.callbacks_pending) +
           ",\"stale\":" + (s.stale ? std::string("true") : "false") + "}";
  }
  out += "],\"dlm\":{";
  if (dlm_ != nullptr) {
    out += "\"locked_objects\":" + std::to_string(dlm_->locked_object_count());
    out += ",\"lock_requests\":" + std::to_string(dlm_->lock_requests());
    out += ",\"unlock_requests\":" + std::to_string(dlm_->unlock_requests());
    out += ",\"update_notifications\":" +
           std::to_string(dlm_->update_notifications());
    out += ",\"intent_notifications\":" +
           std::to_string(dlm_->intent_notifications());
    out += ",\"table\":[";
    first = true;
    for (const auto& entry : dlm_->TableSnapshot()) {
      if (!first) out += ',';
      first = false;
      out += "{\"oid\":" + std::to_string(entry.oid.value) + ",\"holders\":[";
      for (size_t i = 0; i < entry.holders.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(entry.holders[i]);
      }
      out += "]}";
    }
    out += ']';
  }
  out += "},\"wal\":{";
  {
    Wal& wal = server_->wal();
    out += "\"durable_lsn\":" + std::to_string(wal.durable_lsn());
    out += ",\"next_lsn\":" + std::to_string(wal.next_lsn());
    out += ",\"appended_bytes\":" + std::to_string(wal.appended_bytes());
    out += ",\"fsyncs\":" + std::to_string(wal.fsyncs());
    out += ",\"recovered_records\":" + std::to_string(wal.recovered_records());
    out += ",\"group_commit_window_us\":" +
           std::to_string(wal.group_commit_window_us());
    out += ",\"truncate_below_lsn\":" +
           std::to_string(wal.truncate_below_lsn());
    out += ",\"bytes_since_checkpoint\":" +
           std::to_string(wal.bytes_since_truncate());
    out += ",\"checksum_failures\":" +
           std::to_string(
               GlobalMetrics()
                   .GetCounter("storage.page.checksum_failures_total")
                   ->Get());
    if (checkpointer_ != nullptr) {
      Checkpointer::Stats cs = checkpointer_->stats();
      out += ",\"checkpoints\":" + std::to_string(cs.checkpoints);
      out += ",\"checkpoint_failures\":" + std::to_string(cs.failures);
      out += ",\"last_checkpoint_lsn\":" + std::to_string(cs.last_fence_lsn);
      out += ",\"last_checkpoint_age_us\":" +
             std::to_string(cs.last_checkpoint_us > 0
                                ? obs::NowUs() - cs.last_checkpoint_us
                                : -1);
      out += ",\"last_checkpoint_pages\":" +
             std::to_string(cs.last_pages_written);
      out += ",\"last_checkpoint_bytes_truncated\":" +
             std::to_string(cs.last_bytes_truncated);
    }
  }
  out += "},";
  AppendSlowRpcJson(out, SlowRpcLog());
  out += ",\"trace\":{\"retained_spans\":" +
         std::to_string(obs::GlobalRecorder().Snapshot().size()) +
         ",\"dropped_spans\":" + std::to_string(obs::GlobalRecorder().dropped()) +
         "},";
  out += "\"metrics\":" + GlobalMetrics().DumpJson();
  out += '}';
  return out;
}

std::string TransportServer::StatsText() const {
  std::string out = "== transport ==\n";
  out += "connections_accepted     " + std::to_string(accepts_.Get()) + "\n";
  out += "requests_served          " + std::to_string(requests_.Get()) + "\n";
  out += "notifications_forwarded  " + std::to_string(notifies_.Get()) + "\n";
  out += "bytes_in                 " + std::to_string(bytes_in_.Get()) + "\n";
  out += "bytes_out                " + std::to_string(bytes_out_.Get()) + "\n";
  out += "\n== threading ==\n";
  out += "io_threads               " + std::to_string(resolved_io_threads_) +
         "\n";
  out += "worker_threads           " +
         std::to_string(resolved_worker_threads_) + "\n";
  out += "fanout_encodes           " + std::to_string(fanout_encodes_.Get()) +
         "\n";
  out += "fanout_reuses            " + std::to_string(fanout_reuses_.Get()) +
         "\n";
  out += "\n== overload ==\n";
  out += "inflight                 " + std::to_string(inflight_.load()) + "\n";
  out += "overload_rejections      " +
         std::to_string(overload_rejections_.Get()) + "\n";
  out += "oneway_shed              " + std::to_string(oneway_shed_.Get()) +
         "\n";
  out += "notifications_coalesced  " +
         std::to_string(notify_coalesced_.Get()) + "\n";
  out += "notifications_shed       " + std::to_string(notify_shed_.Get()) +
         "\n";
  out += "notify_overflows         " +
         std::to_string(notify_overflows_.Get()) + "\n";
  out += "forced_resyncs           " + std::to_string(forced_resyncs_.Get()) +
         "\n";
  out += "slow_disconnects         " +
         std::to_string(slow_disconnects_.Get()) + "\n";
  out += "callbacks_elided         " +
         std::to_string(callbacks_elided_.Get()) + "\n";
  out += "callback_ack_timeouts    " +
         std::to_string(callback_timeouts_.Get()) + "\n";
  out += "callback_overflows       " +
         std::to_string(callback_overflows_.Get()) + "\n";
  out += "\n== wal ==\n";
  {
    Wal& wal = server_->wal();
    out += "durable_lsn              " + std::to_string(wal.durable_lsn()) +
           "\n";
    out += "next_lsn                 " + std::to_string(wal.next_lsn()) + "\n";
    out += "appended_bytes           " + std::to_string(wal.appended_bytes()) +
           "\n";
    out += "fsyncs                   " + std::to_string(wal.fsyncs()) + "\n";
    out += "recovered_records        " +
           std::to_string(wal.recovered_records()) + "\n";
    out += "group_commit_window_us   " +
           std::to_string(wal.group_commit_window_us()) + "\n";
    out += "truncate_below_lsn       " +
           std::to_string(wal.truncate_below_lsn()) + "\n";
    out += "bytes_since_checkpoint   " +
           std::to_string(wal.bytes_since_truncate()) + "\n";
    out += "checksum_failures        " +
           std::to_string(
               GlobalMetrics()
                   .GetCounter("storage.page.checksum_failures_total")
                   ->Get()) +
           "\n";
    if (checkpointer_ != nullptr) {
      Checkpointer::Stats cs = checkpointer_->stats();
      out += "checkpoints              " + std::to_string(cs.checkpoints) +
             (cs.failures > 0
                  ? "  (" + std::to_string(cs.failures) + " FAILED)"
                  : "") +
             "\n";
      out += "last_checkpoint_lsn      " +
             std::to_string(cs.last_fence_lsn) + "\n";
      out += "last_checkpoint_age_ms   " +
             (cs.last_checkpoint_us > 0
                  ? std::to_string((obs::NowUs() - cs.last_checkpoint_us) /
                                   1000)
                  : std::string("never")) +
             "\n";
      out += "last_checkpoint_pages    " +
             std::to_string(cs.last_pages_written) + "\n";
    }
  }
  out += "\n== sessions ==\n";
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (!conn->hello_done.load(std::memory_order_acquire)) continue;
      out += "client " +
             std::to_string(conn->client_id.load(std::memory_order_relaxed)) +
             "  wire_version " +
             std::to_string(conn->peer_version.load(std::memory_order_relaxed)) +
             "  notify_pending " +
             std::to_string(conn->notify_inbox.pending()) +
             "  forced_resyncs " +
             std::to_string(conn->forced_resyncs.load()) +
             (conn->stale.load() || conn->resync_awaiting_ack.load() != 0
                  ? "  STALE"
                  : "") +
             "\n";
    }
  }
  if (dlm_ != nullptr) {
    out += "\n== display locks ==\n";
    out += "locked_objects " + std::to_string(dlm_->locked_object_count()) +
           "  lock_requests " + std::to_string(dlm_->lock_requests()) +
           "  update_notifications " +
           std::to_string(dlm_->update_notifications()) + "\n";
    for (const auto& entry : dlm_->TableSnapshot()) {
      out += "oid " + std::to_string(entry.oid.value) + " <-";
      for (ClientId holder : entry.holders) {
        out += ' ' + std::to_string(holder);
      }
      out += '\n';
    }
  }
  out += "\n== slow rpcs (threshold " +
         std::to_string(opts_.slow_rpc_threshold_ms) + " ms) ==\n";
  for (const SlowRpc& s : SlowRpcLog()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-16s client=%llu duration_us=%lld trace=%llx\n",
                  s.method.c_str(), static_cast<unsigned long long>(s.client),
                  static_cast<long long>(s.duration_us),
                  static_cast<unsigned long long>(s.trace_id));
    out += buf;
  }
  out += "\n== trace ==\n";
  out += "retained_spans " +
         std::to_string(obs::GlobalRecorder().Snapshot().size()) +
         "  dropped_spans " + std::to_string(obs::GlobalRecorder().dropped()) +
         "\n";
  out += "\n== metrics ==\n";
  out += GlobalMetrics().Dump();
  return out;
}

std::string TransportServer::LocksJson(size_t top_k) const {
  const LockManager::TableDump dump =
      server_->lock_manager().DumpTable(top_k);
  std::string out = "{\"lock_table\":[";
  bool first = true;
  for (const auto& e : dump.entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"oid\":" + std::to_string(e.oid.value) + ",\"granted\":[";
    for (size_t i = 0; i < e.granted.size(); ++i) {
      if (i) out += ',';
      out += "{\"owner\":" + std::to_string(e.granted[i].owner) +
             ",\"mode\":\"" + std::string(LockModeName(e.granted[i].mode)) +
             "\"}";
    }
    out += "],\"waiting\":[";
    for (size_t i = 0; i < e.waiting.size(); ++i) {
      if (i) out += ',';
      out += "{\"owner\":" + std::to_string(e.waiting[i].owner) +
             ",\"mode\":\"" + std::string(LockModeName(e.waiting[i].mode)) +
             "\",\"upgrade\":" + (e.waiting[i].is_upgrade ? "true" : "false") +
             ",\"waited_us\":" + std::to_string(e.waiting[i].waited_us) + "}";
    }
    out += "]}";
  }
  out += "],\"wait_edges\":[";
  first = true;
  for (const auto& edge : dump.wait_edges) {
    if (!first) out += ',';
    first = false;
    out += "{\"waiter\":" + std::to_string(edge.waiter) +
           ",\"holder\":" + std::to_string(edge.holder) +
           ",\"oid\":" + std::to_string(edge.oid.value) + "}";
  }
  out += "],\"top_contended\":[";
  first = true;
  for (const auto& hot : dump.top_contended) {
    if (!first) out += ',';
    first = false;
    out += "{\"oid\":" + std::to_string(hot.oid.value) +
           ",\"cumulative_wait_us\":" + std::to_string(hot.cumulative_wait_us) +
           ",\"waits\":" + std::to_string(hot.waits) + "}";
  }
  out += "],\"counters\":{";
  const LockManager& lm = server_->lock_manager();
  out += "\"grants\":" + std::to_string(lm.grants());
  out += ",\"waits\":" + std::to_string(lm.waits());
  out += ",\"deadlocks\":" + std::to_string(lm.deadlocks());
  out += ",\"timeouts\":" + std::to_string(lm.timeouts());
  out += "},\"display_locks\":[";
  first = true;
  if (dlm_ != nullptr) {
    for (const auto& entry : dlm_->TableSnapshot()) {
      if (!first) out += ',';
      first = false;
      out += "{\"oid\":" + std::to_string(entry.oid.value) + ",\"holders\":[";
      for (size_t i = 0; i < entry.holders.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(entry.holders[i]);
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

std::string TransportServer::CachesJson() const {
  char buf[64];
  // Page level: the server's own buffer pool.
  const BufferPool& pool = server_->buffer_pool();
  const BufferPool::PoolStats ps = pool.Stats();
  std::string out = "{\"page\":{";
  out += "\"frame_count\":" + std::to_string(ps.frame_count);
  out += ",\"resident\":" + std::to_string(ps.resident);
  out += ",\"dirty\":" + std::to_string(ps.dirty);
  out += ",\"pinned\":" + std::to_string(ps.pinned);
  std::snprintf(buf, sizeof(buf), ",\"dirty_ratio\":%.4f",
                ps.resident > 0 ? double(ps.dirty) / double(ps.resident) : 0.0);
  out += buf;
  out += ",\"hits\":" + std::to_string(pool.hits());
  out += ",\"misses\":" + std::to_string(pool.misses());
  out += ",\"evictions\":" + std::to_string(pool.evictions());
  const uint64_t page_total = pool.hits() + pool.misses();
  std::snprintf(buf, sizeof(buf), ",\"hit_rate\":%.4f",
                page_total > 0 ? double(pool.hits()) / double(page_total) : 0.0);
  out += buf;
  // Object level: the server cannot see inside remote caches, but its
  // callback registry is the authoritative map of who holds what.
  out += "},\"object\":{\"copies_by_client\":{";
  bool first = true;
  for (const auto& [client, count] :
       server_->callback_manager().CopyCountsByClient()) {
    if (!first) out += ',';
    first = false;
    out += '"' + std::to_string(client) + "\":" + std::to_string(count);
  }
  out += "},\"callbacks_issued\":" +
         std::to_string(server_->callback_manager().callbacks_issued());
  // Display level: per-client pinned-view subscriptions via D locks.
  out += "},\"display\":{\"subscriptions_by_client\":{";
  first = true;
  if (dlm_ != nullptr) {
    for (const auto& [client, count] : dlm_->HolderCounts()) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(client) + "\":" + std::to_string(count);
    }
  }
  out += "},\"locked_objects\":" +
         std::to_string(dlm_ != nullptr ? dlm_->locked_object_count() : 0);
  // Registry aggregates: every cache.* series (counters and gauges), which
  // also covers in-process clients' object/display caches.
  out += "},\"registry\":{";
  first = true;
  for (const auto& [name, value] : GlobalMetrics().CounterSnapshot()) {
    if (name.rfind("cache.", 0) != 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(value);
  }
  for (const auto& [name, value] : GlobalMetrics().GaugeSnapshot()) {
    if (name.rfind("cache.", 0) != 0) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out += '"' + name + "\":" + buf;
  }
  out += "}}";
  return out;
}

}  // namespace idba
