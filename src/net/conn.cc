#include "net/conn.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"

namespace idba {

namespace {

/// iovec batch per writev call. Well under IOV_MAX; with head+body pairs
/// this still coalesces 32 fan-out frames into one syscall.
constexpr int kMaxIov = 64;

}  // namespace

Conn::Conn(EventLoop* loop, Socket sock, Handler* handler, Options opts)
    : loop_(loop), sock_(std::move(sock)), handler_(handler), opts_(opts) {
  MetricsRegistry& reg = GlobalMetrics();
  write_queue_hist_ = reg.GetHistogram("net.conn.write_queue_bytes");
  writev_calls_ = reg.GetCounter("net.conn.writev_calls");
  partial_writes_ = reg.GetCounter("net.conn.partial_writes");
  frames_in_ = reg.GetCounter("net.conn.frames_in");
  frames_out_ = reg.GetCounter("net.conn.frames_out");
  last_read_us_.store(obs::NowUs(), std::memory_order_relaxed);
}

Conn::~Conn() {
  if (registered_ && !closed_.load(std::memory_order_acquire)) {
    (void)loop_->Del(sock_.fd());
  }
}

Status Conn::Register() {
  IDBA_RETURN_NOT_OK(sock_.SetNonBlocking(true));
  Status st = loop_->Add(sock_.fd(), EPOLLIN | EPOLLRDHUP, this);
  if (st.ok()) registered_ = true;
  return st;
}

bool Conn::EnqueueFrame(std::vector<uint8_t> head, SharedBuf body) {
  if (closed_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    OutFrame frame;
    frame.head = std::move(head);
    frame.body = std::move(body);
    out_bytes_ += frame.size();
    out_.push_back(std::move(frame));
    if (out_bytes_ > opts_.write_watermark_bytes) was_backlogged_ = true;
    write_queue_hist_->Record(static_cast<double>(out_bytes_));
  }
  ScheduleFlush();
  return true;
}

bool Conn::EnqueueWireFrame(wire::FrameType type, uint64_t seq,
                            const std::vector<uint8_t>& payload, bool traced) {
  wire::FrameHeader header;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.type = type;
  header.seq = seq;
  header.traced = traced;
  std::vector<uint8_t> head(wire::kHeaderBytes + payload.size());
  wire::EncodeHeader(header, head.data());
  if (!payload.empty()) {
    std::memcpy(head.data() + wire::kHeaderBytes, payload.data(),
                payload.size());
  }
  return EnqueueFrame(std::move(head));
}

bool Conn::EnqueueWireFrame(wire::FrameType type, uint64_t seq,
                            const std::vector<uint8_t>& meta,
                            const SharedBuf& body, bool traced) {
  wire::FrameHeader header;
  header.payload_len = static_cast<uint32_t>(meta.size() + body.size());
  header.type = type;
  header.seq = seq;
  header.traced = traced;
  std::vector<uint8_t> head(wire::kHeaderBytes + meta.size());
  wire::EncodeHeader(header, head.data());
  if (!meta.empty()) {
    std::memcpy(head.data() + wire::kHeaderBytes, meta.data(), meta.size());
  }
  return EnqueueFrame(std::move(head), body);
}

size_t Conn::write_queue_bytes() const {
  std::lock_guard<std::mutex> lock(out_mu_);
  return out_bytes_;
}

void Conn::Kill() { sock_.ShutdownBoth(); }

void Conn::Close() {
  auto self = shared_from_this();
  loop_->Post([self] { self->CloseOnLoop(); });
}

void Conn::ScheduleFlush() {
  if (flush_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
  auto self = shared_from_this();
  loop_->Post([self] { self->Flush(); });
}

void Conn::OnEvents(uint32_t events) {
  if (closed_.load(std::memory_order_relaxed)) return;
  if (events & EPOLLOUT) Flush();
  if (closed_.load(std::memory_order_relaxed)) return;
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
    HandleReadable();
  }
}

void Conn::HandleReadable() {
  bool peer_gone = false;
  for (;;) {
    const size_t old_size = rbuf_.size();
    rbuf_.resize(old_size + opts_.read_chunk);
    ssize_t rc = ::recv(sock_.fd(), rbuf_.data() + old_size, opts_.read_chunk,
                        0);
    if (rc < 0) {
      rbuf_.resize(old_size);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer_gone = true;
      break;
    }
    if (rc == 0) {
      rbuf_.resize(old_size);
      peer_gone = true;
      break;
    }
    rbuf_.resize(old_size + static_cast<size_t>(rc));
    if (opts_.bytes_in != nullptr) {
      opts_.bytes_in->Add(static_cast<uint64_t>(rc));
    }
    last_read_us_.store(obs::NowUs(), std::memory_order_relaxed);
  }

  // Dispatch every complete frame accumulated so far. A handler may close
  // the connection mid-loop (protocol error), which nulls handler_.
  while (handler_ != nullptr && !closed_.load(std::memory_order_relaxed)) {
    const size_t avail = rbuf_.size() - rpos_;
    if (avail < wire::kHeaderBytes) break;
    wire::FrameHeader header;
    Status st = wire::DecodeHeader(rbuf_.data() + rpos_, &header);
    if (!st.ok()) {
      peer_gone = true;  // stream is desynced; drop the connection
      break;
    }
    if (avail < wire::kHeaderBytes + header.payload_len) break;
    const uint8_t* body = rbuf_.data() + rpos_ + wire::kHeaderBytes;
    std::vector<uint8_t> payload(body, body + header.payload_len);
    rpos_ += wire::kHeaderBytes + header.payload_len;
    frames_in_->Add();
    handler_->OnFrame(this, header, std::move(payload));
  }
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ >= 64 * 1024) {
    rbuf_.erase(rbuf_.begin(),
                rbuf_.begin() + static_cast<ptrdiff_t>(rpos_));
    rpos_ = 0;
  }
  if (peer_gone) CloseOnLoop();
}

void Conn::Flush() {
  flush_scheduled_.store(false, std::memory_order_release);
  if (closed_.load(std::memory_order_relaxed)) return;
  bool fatal = false;
  bool drained_below_watermark = false;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    while (!out_.empty()) {
      iovec iov[kMaxIov];
      int niov = 0;
      for (auto it = out_.begin(); it != out_.end() && niov + 2 <= kMaxIov;
           ++it) {
        size_t off = it->offset;
        if (off < it->head.size()) {
          iov[niov].iov_base = it->head.data() + off;
          iov[niov].iov_len = it->head.size() - off;
          ++niov;
          off = 0;
        } else {
          off -= it->head.size();
        }
        if (it->body && off < it->body.size()) {
          iov[niov].iov_base =
              const_cast<uint8_t*>(it->body.data()) + off;
          iov[niov].iov_len = it->body.size() - off;
          ++niov;
        }
      }
      ssize_t rc = ::writev(sock_.fd(), iov, niov);
      writev_calls_->Add();
      if (rc < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          partial_writes_->Add();
          if (!epollout_armed_) {
            epollout_armed_ = true;
            (void)loop_->Mod(sock_.fd(), EPOLLIN | EPOLLRDHUP | EPOLLOUT,
                             this);
          }
          return;
        }
        fatal = true;
        break;
      }
      if (opts_.bytes_out != nullptr) {
        opts_.bytes_out->Add(static_cast<uint64_t>(rc));
      }
      out_bytes_ -= static_cast<size_t>(rc);
      size_t written = static_cast<size_t>(rc);
      while (written > 0 && !out_.empty()) {
        OutFrame& frame = out_.front();
        const size_t remaining = frame.size() - frame.offset;
        if (written >= remaining) {
          written -= remaining;
          out_.pop_front();
          frames_out_->Add();
        } else {
          frame.offset += written;
          written = 0;
          partial_writes_->Add();
        }
      }
    }
    if (!fatal) {
      if (epollout_armed_ && out_.empty()) {
        epollout_armed_ = false;
        (void)loop_->Mod(sock_.fd(), EPOLLIN | EPOLLRDHUP, this);
      }
      if (was_backlogged_ && out_bytes_ <= opts_.write_watermark_bytes) {
        was_backlogged_ = false;
        drained_below_watermark = true;
      }
    }
  }
  if (fatal) {
    CloseOnLoop();
    return;
  }
  if (drained_below_watermark && handler_ != nullptr) {
    handler_->OnWriteDrained(this);
  }
}

void Conn::CloseOnLoop() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  if (registered_) (void)loop_->Del(sock_.fd());
  sock_.ShutdownBoth();
  Handler* handler = handler_;
  handler_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_.clear();
    out_bytes_ = 0;
  }
  if (handler != nullptr) handler->OnClosed(this);
}

}  // namespace idba
