// TCP transport host: serves a DatabaseServer + DisplayLockManager behind a
// listening socket, speaking the framed protocol of net/wire.h.
//
// Threading model (per figure: one acceptor + three threads per connection):
//
//   acceptor ──► Connection
//                  reader    reads frames; routes CALLBACK_ACKs to waiting
//                            invalidation calls, queues REQUEST/ONEWAY
//                  worker    executes queued requests serially against the
//                            DatabaseServer/DLM (preserves the per-client
//                            ordering the in-process path has), writes
//                            RESPONSE frames
//                  notifier  drains the connection's bus inbox and forwards
//                            DLM notifications as NOTIFY frames
//
// The reader/worker split matters for correctness: a commit executing on
// client A's worker blocks until every cached-copy holder acks its
// invalidation CALLBACK. Those acks arrive on *other* connections and are
// routed by their readers, which never execute blocking server work — so
// two clients concurrently committing updates to each other's cached
// objects cannot deadlock the transport.
//
// Virtual cost: each metered request charges the shared RpcMeter with the
// *measured* frame byte counts (header + payload, both directions) against
// the server's virtual CPU clock, and the response carries the virtual
// completion time back to the client — the experiments' 1996-era message
// economics keep working over the real wire, now fed by real sizes.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/dlm.h"
#include "net/rpc_meter.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/database_server.h"

namespace idba {

struct TransportServerOptions {
  /// TCP port; 0 binds an ephemeral port (see port() after Start).
  uint16_t port = 0;
  /// Numeric IPv4 address to bind; default loopback. "0.0.0.0" serves
  /// non-local clients (front with your own ingress/auth).
  std::string bind_host = "127.0.0.1";
  /// How long a commit waits for a client to ack a cache-invalidation
  /// callback before treating the client as dead and proceeding.
  int64_t callback_ack_timeout_ms = 5000;
  /// Drop a connection that sends no frame (not even a heartbeat PING)
  /// for this long — detects half-open clients. 0 = never. Only enable
  /// when clients run heartbeats faster than this, or idle-but-healthy
  /// clients get cut.
  int64_t idle_timeout_ms = 0;
  /// A request whose queue-wait + execution exceeds this logs one WARN line
  /// (method, duration, client, trace id) and lands in the slow-RPC ring
  /// reported by STATS/idba_stat. 0 disables.
  int64_t slow_rpc_threshold_ms = 250;
};

/// Hosts one deployment (server + DLM + bus + meter) behind a socket.
class TransportServer {
 public:
  TransportServer(DatabaseServer* server, DisplayLockManager* dlm,
                  NotificationBus* bus, RpcMeter* meter,
                  TransportServerOptions opts = {});
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Binds, listens and starts the acceptor thread.
  Status Start();
  /// Disconnects everything and joins all threads. Idempotent.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(); }

  // --- Transport-level metrics (real bytes, not virtual) ----------------
  uint64_t bytes_received() const { return bytes_in_.Get(); }
  uint64_t bytes_sent() const { return bytes_out_.Get(); }
  uint64_t requests_served() const { return requests_.Get(); }
  uint64_t notifications_forwarded() const { return notifies_.Get(); }
  uint64_t connections_accepted() const { return accepts_.Get(); }

  // --- Introspection (STATS admin RPC, idba_stat, --metrics-interval) ---
  /// One slow request, retained in a bounded ring (most recent last).
  struct SlowRpc {
    std::string method;
    ClientId client = 0;
    int64_t duration_us = 0;  ///< queue wait + execution
    uint64_t trace_id = 0;    ///< 0 when the request was untraced
  };
  std::vector<SlowRpc> SlowRpcLog() const;

  /// Full server state as one JSON object: transport counters, active
  /// sessions, DLM lock table, slow RPCs, and every GlobalMetrics metric.
  std::string StatsJson() const;
  /// The same, pre-formatted for humans (idba_stat prints this verbatim,
  /// so the CLI needs no JSON parser).
  std::string StatsText() const;

 private:
  struct Connection;
  static constexpr size_t kSlowRpcRing = 64;

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WorkerLoop(Connection* conn);
  void NotifierLoop(Connection* conn);
  /// Unregisters the connection from server/DLM/bus and unblocks its
  /// threads. Safe to call from any thread, more than once.
  void Teardown(Connection* conn);
  void ReapFinished();

  void HandleFrame(Connection* conn, const wire::FrameHeader& header,
                   const std::vector<uint8_t>& payload, int64_t enqueued_us);
  Status ExecuteMethod(Connection* conn, wire::Method method, Decoder* dec,
                       VTime client_now, int64_t request_bytes,
                       ServerCallInfo* info, Encoder* body, bool* metered);
  void NoteSlowRpc(wire::Method method, ClientId client, int64_t duration_us,
                   uint64_t trace_id);

  DatabaseServer* server_;
  DisplayLockManager* dlm_;
  NotificationBus* bus_;
  RpcMeter* meter_;
  TransportServerOptions opts_;

  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::unordered_set<ClientId> active_clients_;
  /// Serializes DDL (DefineClass/AddAttribute) across connections; the
  /// catalog itself is setup-phase and not internally synchronized.
  std::mutex ddl_mu_;

  Counter bytes_in_, bytes_out_, requests_, notifies_, accepts_;

  mutable std::mutex slow_mu_;
  std::deque<SlowRpc> slow_rpcs_;  ///< bounded to kSlowRpcRing
};

}  // namespace idba
